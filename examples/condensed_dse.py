"""Boundary-condensed DSE Step 2: reduced exchange and solve.

Run with::

    python examples/condensed_dse.py

Each subsystem eliminates its internal states from the extended gain
matrix onto the boundary buses via a Schur complement (factored once per
frame topology), so every Step-2 round solves a boundary-sized system,
back-substitutes the interior locally, and puts only compact
per-neighbour boundary blocks on the wire.  The example runs the
reference and the condensed path on IEEE-118, checks final-state parity,
and round-trips the condensed wire frames through the live middleware
runtime.
"""

import numpy as np

from repro.core import LiveDseRuntime
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


def main() -> None:
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 4, seed=0)
    rng = np.random.default_rng(7)
    placement = full_placement(net).merged_with(dse_pmu_placement(dec))
    mset = generate_measurements(net, placement, pf, rng=rng)

    ref = DistributedStateEstimator(dec, mset).run()
    con_dse = DistributedStateEstimator(dec, mset, condense=True)
    con = con_dse.run()

    print(f"{net.name}: {dec.m} subsystems, {con.rounds} Step-2 rounds")
    print("\ncondensed operator sizes (per subsystem):")
    for s, rec in con.records.items():
        print(f"  subsystem {s}: {rec.n_boundary_states:3d} boundary / "
              f"{rec.n_interior_states:3d} interior states "
              f"(factorization {rec.factor_time * 1e3:.2f} ms)")

    dvm = float(np.max(np.abs(con.Vm - ref.Vm)))
    dva = float(np.max(np.abs(con.Va - ref.Va)))
    print(f"\nfinal-state parity vs reference Step 2: "
          f"dVm {dvm:.2e}  dVa {dva:.2e}")

    b_ref = ref.total_bytes_exchanged
    b_con = con.total_bytes_exchanged
    print(f"exchange volume: {b_ref} -> {b_con} bytes "
          f"({b_ref / b_con:.2f}x smaller)")

    # The same condensed frames over the live middleware fabric: sites
    # learn about neighbours only from the packed boundary blocks.
    live = LiveDseRuntime(dec, mset, condense=True).run()
    sent = sum(st.bytes_sent for st in live.sites.values())
    match = bool(
        np.array_equal(live.Vm, con.Vm) and np.array_equal(live.Va, con.Va)
    )
    print(f"\nlive runtime (condensed wire frames): {sent} bytes sent, "
          f"bit-identical to in-process: {match}")

    err = con.state_error(pf.Vm, pf.Va)
    print(f"accuracy vs truth: Vm RMSE {err['vm_rmse']:.2e}  "
          f"Va RMSE {err['va_rmse']:.2e}")


if __name__ == "__main__":
    main()
