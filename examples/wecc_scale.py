"""WECC-scale extension: 37 balancing authorities (paper, section VI).

Run with::

    python examples/wecc_scale.py

The paper's ongoing work targets the Western Electricity Coordinating
Council system with 37 balancing authorities.  This example builds a
synthetic 37-area interconnection, decomposes it along the balancing
authorities, and runs the full architecture pipeline, comparing the
distributed timeline against the centralized alternative.
"""

import time

import numpy as np

from repro.core import ArchitecturePrototype, DseSession
from repro.cluster import ClusterSpec, ClusterTopology, LinkSpec
from repro.dse import decompose_by_areas, dse_pmu_placement
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements


def wecc_topology(p: int = 6) -> ClusterTopology:
    """A larger testbed: p clusters over a WAN."""
    clusters = [
        ClusterSpec(name=f"cc{i}", nodes=8, cores_per_node=8, core_gflops=10.0)
        for i in range(p)
    ]
    topo = ClusterTopology(clusters=clusters)
    wan = LinkSpec(latency=5e-3, bandwidth=115e6)
    for i in range(p):
        for j in range(i + 1, p):
            topo.add_link(f"cc{i}", f"cc{j}", wan)
    return topo


def main() -> None:
    net = synthetic_grid(n_areas=37, buses_per_area=40, seed=11)
    print(f"synthetic WECC-scale system: {net.n_bus} buses, "
          f"{net.n_branch} branches, 37 balancing authorities")
    pf = run_ac_power_flow(net, flat_start=True)
    print(f"power flow converged in {pf.iterations} iterations")

    with ArchitecturePrototype.assemble(
        net, m_subsystems=37, topology=wecc_topology(), seed=0
    ) as arch:
        # Decompose along balancing-authority boundaries instead of the
        # default graph partition.
        arch.dec = decompose_by_areas(net)
        from repro.core import ClusterMapper

        arch.mapper = ClusterMapper(arch.topology, seed=0)

        dec = arch.dec
        print(f"decomposition: {dec.m} subsystems, {len(dec.tie_lines)} tie "
              f"lines, quotient diameter {dec.diameter()}")

        rng = np.random.default_rng(0)
        placement = full_placement(net).merged_with(dse_pmu_placement(dec))
        mset = generate_measurements(net, placement, pf, rng=rng)

        session = DseSession(arch)
        report = session.process_frame(mset, truth=(pf.Vm, pf.Va))

        print(f"\nmapping {dec.m} subsystems onto {arch.mapper.p} control-"
              f"centre clusters; Step-1 imbalance {report.imbalance_step1:.3f}, "
              f"Step-2 imbalance {report.imbalance_step2:.3f}")
        tm = report.timings
        print(f"simulated distributed timeline: step1 {tm.step1 * 1e3:.1f} ms, "
              f"exchange {tm.exchange * 1e3:.1f} ms, "
              f"step2 {tm.step2 * 1e3:.1f} ms, total {tm.total * 1e3:.1f} ms")

        # Centralized comparison: one whole-system WLS on one cluster.
        t0 = time.perf_counter()
        cen = estimate_state(net, mset)
        cen_wall = time.perf_counter() - t0
        cen_sim = session.centralized_sim_time(cen_wall)
        print(f"\ncentralized WLS wall time {cen_wall * 1e3:.1f} ms -> "
              f"simulated single-cluster time {cen_sim * 1e3:.1f} ms")
        print(f"distributed vs centralized (simulated): "
              f"{tm.total * 1e3:.1f} ms vs {cen_sim * 1e3:.1f} ms")
        print(f"accuracy: distributed Vm RMSE {report.vm_rmse_vs_truth:.2e}, "
              f"centralized {cen.state_error(pf.Vm, pf.Va)['vm_rmse']:.2e}")


if __name__ == "__main__":
    main()
