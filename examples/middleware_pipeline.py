"""MeDICi-style pipeline between two state estimators (paper, Figure 7).

Run with::

    python examples/middleware_pipeline.py

Builds a real TCP pipeline on localhost ("nwiceb" estimator → relay →
"chinook" estimator), pushes pseudo-measurement payloads through it, and
compares against a direct socket transfer — the experiment behind the
paper's Tables III/IV and Figure 8, scaled to laptop-friendly sizes.
"""

import threading
import time

import numpy as np

from repro.middleware import (
    MifComponent,
    MifPipeline,
    TcpTransport,
    pack_state_update,
    unpack_state_update,
)


def time_direct(payload: bytes, repeats: int = 5) -> float:
    """Median time of a direct TCP transfer (sender -> receiver)."""
    transport = TcpTransport()
    listener = transport.listen("tcp://127.0.0.1:0")
    done = threading.Event()

    def receiver():
        conn = listener.accept(timeout=5)
        for _ in range(repeats):
            conn.recv_bytes(timeout=10)
            done.set()
        conn.close()

    th = threading.Thread(target=receiver, daemon=True)
    th.start()
    conn = transport.connect(listener.endpoint.url)
    times = []
    for _ in range(repeats):
        done.clear()
        t0 = time.perf_counter()
        conn.send_bytes(payload)
        done.wait(timeout=10)
        times.append(time.perf_counter() - t0)
    conn.close()
    listener.close()
    return float(np.median(times))


def time_relayed(payload: bytes, repeats: int = 5) -> float:
    """Median time via a MeDICi-style pipeline relay."""
    transport = TcpTransport()
    sink = transport.listen("tcp://127.0.0.1:0")

    pipeline = MifPipeline()
    se = MifComponent("SE")
    pipeline.add_mif_component(se)
    se.set_in_endpoint("tcp://127.0.0.1:0")  # the paper's nwiceb:6789
    se.set_out_endpoint(sink.endpoint.url)  # the paper's chinook:7890
    pipeline.start()

    done = threading.Event()

    def receiver():
        conn = sink.accept(timeout=5)
        for _ in range(repeats):
            conn.recv_bytes(timeout=10)
            done.set()
        conn.close()

    th = threading.Thread(target=receiver, daemon=True)
    th.start()
    conn = transport.connect(se.in_endpoint)
    times = []
    for _ in range(repeats):
        done.clear()
        t0 = time.perf_counter()
        conn.send_bytes(payload)
        done.wait(timeout=10)
        times.append(time.perf_counter() - t0)
    conn.close()
    pipeline.stop()
    sink.close()
    return float(np.median(times))


def main() -> None:
    # First: a structured state-update exchange, as the estimators send it.
    rng = np.random.default_rng(0)
    ids = np.arange(27, dtype=np.int64)  # a Table-I-sized exchange set
    update = pack_state_update(ids, 1 + 0.01 * rng.standard_normal(27),
                               0.1 * rng.standard_normal(27))
    print(f"state update for 27 buses = {len(update)} bytes")
    t = time_relayed(update)
    print(f"relayed through the pipeline in {t * 1e3:.3f} ms "
          f"(the actual DSE Step-2 exchange unit)\n")

    # Then the Table III sweep, scaled from the paper's 100 MB - 2 GB down
    # to 256 KB - 8 MB (same shape, laptop-sized).
    print(f"{'size':>8} | {'direct T1 (ms)':>14} | {'w/ MeDICi T2 (ms)':>17} "
          f"| {'overhead (ms)':>13}")
    print("-" * 62)
    for size in (256 * 1024, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024,
                 8 * 1024 * 1024):
        payload = b"\x5a" * size
        t1 = time_direct(payload)
        t2 = time_relayed(payload)
        print(f"{size // 1024:6d}KB | {t1 * 1e3:14.3f} | {t2 * 1e3:17.3f} "
              f"| {(t2 - t1) * 1e3:13.3f}")
    print("\noverhead grows with size (store-and-forward copy), matching "
          "the paper's linear trend (Fig. 8)")


if __name__ == "__main__":
    main()
