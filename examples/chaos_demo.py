"""Seeded chaos demo: deterministic fault injection over the live stack.

Run with::

    python examples/chaos_demo.py

Exercises the PR-5 fault-tolerance layer end to end in a few seconds:

- a transient dial failure on a pooled ``MWClient`` healed transparently
  by the typed-error retry policy (one retry, zero payload loss);
- a seeded ``FaultPlan`` that starves one estimator site of every
  neighbour update during a live distributed run — the run completes,
  the affected site is flagged degraded, and nothing hangs;
- exact replay: a fresh run under the same plan fires the identical
  faults (``FaultInjector.fired_summary`` is compared key by key).

The script exits non-zero on any deviation, so ``scripts/verify.sh``
uses it as the chaos smoke test.
"""

import time

import numpy as np

from repro import faults
from repro.core import LiveDseRuntime
from repro.dse import decompose, dse_pmu_placement
from repro.faults import FaultPlan
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements
from repro.middleware import (
    EndpointRegistry,
    InprocTransport,
    MWClient,
    RetryPolicy,
)


def smoke_retry_heals_transient_dial_fault() -> None:
    """A dial refused once by the injector succeeds on the retry."""
    transport = InprocTransport()
    registry = EndpointRegistry()
    sender = MWClient(
        "snd", registry, inproc=transport,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
    )
    receiver = MWClient("rcv", registry, inproc=transport)
    receiver.serve("inproc://chaos-demo-rcv")
    try:
        plan = FaultPlan(seed=0).add("client.dial", "fail", count=1)
        with faults.injection(plan) as inj:
            sender.send("rcv", b"survives the refused dial")
        assert receiver.recv(timeout=2.0) == b"survives the refused dial"
        assert sender.retries == 1, "expected exactly one retry"
        assert inj.total_fired("client.dial") == 1
        print(f"retry policy    : 1 dial refused, healed after "
              f"{sender.retries} retry, payload intact")
    finally:
        sender.close()
        receiver.close()


def smoke_degraded_live_run() -> None:
    """Starve site 0 of every neighbour update; the run degrades, never
    hangs, and replays exactly under the same seed."""
    net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
    pf = run_ac_power_flow(net, flat_start=True)
    dec = decompose(net, 3, seed=0)
    rng = np.random.default_rng(5)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)

    plan = FaultPlan(seed=11).add("mux.forward", "drop", key=(None, 0))

    def one_run():
        live = LiveDseRuntime(
            dec, ms, fast=True, recv_timeout=0.3, round_deadline=2.0
        )
        with faults.injection(plan) as inj:
            res = live.run(rounds=1)
        return res, inj.fired_summary()

    t0 = time.perf_counter()
    res, fired = one_run()
    dt = time.perf_counter() - t0
    assert res.degraded_subsystems == [0], "site 0 should run degraded"
    assert all(dst == 0 for (_l, (_s, dst), _a) in fired)
    err = res.state_error(pf.Vm, pf.Va)
    print(f"degraded run    : site 0 starved, {sum(fired.values())} frames "
          f"dropped, completed in {dt * 1e3:.0f} ms "
          f"(vm_rmse {err['vm_rmse']:.2e})")

    _, fired2 = one_run()
    assert fired2 == fired, "same seed must fire the same faults"
    print(f"replay          : identical fired summary across runs "
          f"({len(fired)} keys)")


def main() -> None:
    smoke_retry_heals_transient_dial_fault()
    smoke_degraded_live_run()
    print("chaos demo: OK")


if __name__ == "__main__":
    main()
