"""Batched scenario serving: estimation frames + N-1 cases, one engine.

Run with::

    python examples/serve_scenarios.py            # IEEE-118
    python examples/serve_scenarios.py --tiny     # IEEE-14 smoke (CI)

The control-room load the paper motivates is not one estimate: it is a
stream of estimation frames interleaved with contingency screenings, all
against the same monitored system.  ``ScenarioService`` serves that stream:
requests are coalesced into batches (bounded by ``max_batch`` and a flush
latency) and fanned out across one shared executor; results stream back in
completion order with per-request latency and the batch each rode in.
"""

import argparse

import numpy as np

from repro.contingency import enumerate_n1
from repro.dse import decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14, case118
from repro.measurements import full_placement, generate_measurements
from repro.serving import ContingencyRequest, ScenarioService


def main(tiny: bool = False) -> None:
    net = case14() if tiny else case118()
    m = 2 if tiny else 9
    max_batch = 4 if tiny else 16
    pf = run_ac_power_flow(net)
    dec = decompose(net, m, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    mset = generate_measurements(net, plac, pf, rng=rng)
    safe, _ = enumerate_n1(net)
    print(f"{net.name}: {dec.m} subsystems, {len(safe)} N-1 cases, "
          f"serving with max_batch={max_batch}")

    with ScenarioService(
        dec, mset, executor="threads:4", max_batch=max_batch,
        flush_latency=2e-3,
    ) as svc:
        # a burst of contingency screenings...
        futures = svc.submit_contingencies(safe)
        # ...interleaved with fresh estimation frames (values-only z)
        for k in range(3):
            z = mset.z + 0.002 * mset.sigma * rng.standard_normal(len(mset))
            futures.append(svc.submit_estimation(z=z))

        insecure = 0
        for fut in futures:
            res = fut.result()
            if isinstance(res.request, ContingencyRequest):
                insecure += not res.value.secure
        print(f"served {svc.stats.n_requests} scenarios in "
              f"{svc.stats.n_batches} batches "
              f"(mean batch {svc.stats.mean_batch_size:.1f})")
        print(f"latency p50 {svc.stats.latency_percentile(50) * 1e3:.1f} ms, "
              f"p99 {svc.stats.latency_percentile(99) * 1e3:.1f} ms")
        print(f"insecure contingencies: {insecure}/{len(safe)}")


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--tiny", action="store_true",
                    help="IEEE-14 with a tiny batch (smoke run)")
    main(tiny=ap.parse_args().tiny)
