"""SCADA scan cycles + PMU streams feeding state estimation over time.

Run with::

    python examples/pmu_streaming.py

Simulates the telemetry environment the paper motivates: 4-second SCADA
scans with drifting load, a 30 Hz PMU stream between scans, gross-error
injection with bad-data identification, and the storage arithmetic behind
the paper's "1.12 TB per 30 days" feasibility citation.
"""

import numpy as np

from repro.estimation import chi_square_test, estimate_state, identify_bad_data
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import (
    PmuStream,
    ScadaSystem,
    full_placement,
    greedy_pmu_sites,
    inject_bad_data,
    pmu_storage_bytes,
)


def main() -> None:
    net = case118()

    # --- PMU fleet sizing (section I feasibility numbers) -------------
    sites = greedy_pmu_sites(net)
    print(f"greedy PMU siting covers all {net.n_bus} buses with "
          f"{len(sites)} PMUs")
    tb = pmu_storage_bytes(300, 30) / 1e12
    print(f"300 PMUs x 30 days at 30 Hz ≈ {tb:.2f} TB of raw synchrophasor "
          f"data (paper cites ~1.12 TB)\n")

    # --- SCADA scan cycle ----------------------------------------------
    placement = full_placement(net)
    scada = ScadaSystem(net, placement, scan_period=4.0, seed=3)
    print("SCADA scans (4 s cycle):")
    print(f"{'t (s)':>6} | {'noise x':>8} | {'WLS iters':>9} | {'Vm RMSE':>10} "
          f"| {'chi2 ok':>7}")
    frames = scada.frames(5)
    for frame in frames:
        res = estimate_state(net, frame.mset)
        err = res.state_error(frame.pf.Vm, frame.pf.Va)
        print(f"{frame.t:6.1f} | {frame.noise_level:8.3f} | "
              f"{res.iterations:9d} | {err['vm_rmse']:.2e} | "
              f"{str(chi_square_test(res)):>7}")

    # --- PMU stream between two scans -----------------------------------
    stream = PmuStream(net, sites, rate_hz=30.0, seed=4)
    samples = stream.samples(frames[-1].pf, t0=frames[-1].t, n=5)
    print(f"\nPMU stream: {len(samples)} samples at 30 Hz from "
          f"{stream.n_sites} sites "
          f"({samples[1].t - samples[0].t:.4f} s apart)")

    # --- Bad data on the wire -------------------------------------------
    rng = np.random.default_rng(9)
    clean = frames[-1].mset
    rows = rng.choice(len(clean), size=2, replace=False)
    bad = inject_bad_data(clean, rows, magnitude_sigmas=25, rng=rng)
    res_bad = estimate_state(net, bad)
    print(f"\ninjected gross errors at measurement rows {sorted(rows.tolist())}")
    print(f"chi-square on corrupted snapshot passes: {chi_square_test(res_bad)}")
    report = identify_bad_data(net, bad)
    print(f"largest-normalized-residual loop removed rows "
          f"{sorted(report.removed_rows)} -> passes: {report.passes_chi_square}")


if __name__ == "__main__":
    main()
