"""Observability end to end: trace a DSE frame across threads, worker
processes and a TCP mux hop, then export and render the recording.

Run with::

    python examples/observability_demo.py

What it shows:

1. ``obs.configure(enabled=True)`` flips on the process-wide layer (off by
   default; every instrumentation point is one flag check when disabled).
2. A :class:`~repro.core.session.DseSession` frame becomes one trace tree
   — noise estimation, Step-1 mapping, both DSE steps with every exchange
   round, and the repartition, all as nested spans.
3. A process-pool DSE run ships worker spans back on the result channel:
   the per-subsystem solves in the tree carry the worker pids.
4. A :class:`~repro.core.runtime.LiveDseRuntime` run over localhost TCP
   carries the trace context inside the mux frames, so the router hop's
   ``mux.forward`` spans join the sender's trace.
5. The recording is dumped to JSONL and re-rendered: flame summary +
   metrics table here, and ``python -m repro.tools.obsreport`` offline.
"""

import os
import tempfile

import numpy as np

from repro import obs
from repro.core import ArchitecturePrototype, DseSession, LiveDseRuntime
from repro.dse import DistributedStateEstimator, decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14
from repro.measurements import ScadaSystem, full_placement, generate_measurements


def main() -> None:
    net = case14()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 2, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    mset = generate_measurements(net, plac, pf, rng=rng)

    obs.configure(enabled=True, reset=True)
    try:
        # 1. one architecture-session frame -> one trace tree
        with ArchitecturePrototype.assemble(net, m_subsystems=2, seed=0) as arch:
            scada = ScadaSystem(net, plac, seed=0)
            session = DseSession(arch)
            frame = next(iter(scada.frames(1)))
            rep = session.process_frame(frame.mset, t=frame.t)
            print(f"session frame: {rep.rounds} rounds, "
                  f"{rep.bytes_exchanged} B exchanged")

        # 2. the same estimation over a process pool: subsystem solves run
        #    in worker pids, their spans come back into this trace
        dse = DistributedStateEstimator(dec, mset, executor="processes:2")
        try:
            dse.run()
        finally:
            dse.executor.shutdown()
        pids = {d["pid"] for d in obs.tracer().finished()}
        print(f"process-pool run: spans recorded by {len(pids)} pids "
              f"(parent={os.getpid()})")

        # 3. live thread-per-site runtime over real TCP: the mux router
        #    hop records mux.forward spans inside the sender's trace
        live = LiveDseRuntime(dec, mset, use_tcp=True, fast=True).run()
        hops = obs.tracer().spans_named("mux.forward")
        print(f"live TCP run: {len(live.errors)} errors, "
              f"{len(hops)} mux.forward spans at the router hop")

        # 4. export + render
        path = os.path.join(tempfile.gettempdir(), "obs_demo.jsonl")
        n = obs.export_jsonl(path, tracer=obs.tracer(),
                             registry=obs.metrics(),
                             frames=session.reports,
                             meta={"example": "observability_demo"})
        print(f"\nwrote {path} ({n} records); "
              f"render with: python -m repro.tools.obsreport {path}\n")

        print("== flame summary ==")
        print(obs.render_flame(obs.tracer().finished(), max_depth=3))
        print("== metrics ==")
        print(obs.render_metrics_table(obs.metrics().collect()))
    finally:
        obs.configure(enabled=False, reset=True)


if __name__ == "__main__":
    main()
