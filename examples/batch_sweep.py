"""Copy-on-write scenario forking + SIMD-over-scenarios batch solving.

Run with::

    python examples/batch_sweep.py

A scenario sweep (what-if studies, N-1 screening, Monte-Carlo telemetry
frames) solves many *nearly identical* problems.  The batched stack
exploits that: each scenario is a compact :class:`NetworkDelta` against
one shared base network (O(changed elements), never a network copy), and
the whole sweep runs as batched array kernels — one compensation-based DC
solve for an entire contingency list, one block-diagonal Gauss-Newton
iteration for a batch of estimation scenarios.
"""

import time

import numpy as np

from repro.contingency import ContingencyAnalyzer, enumerate_n1
from repro.estimation import BatchEstimator, BatchScenario, WlsEstimator
from repro.grid import NetworkDelta, run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


def main() -> None:
    net = case118()
    pf = run_ac_power_flow(net)

    # 1. Scenarios are deltas, not copies: forking is O(changed elements).
    delta = NetworkDelta.branch_outage(0, label="what-if")
    forked = net.fork(delta)
    print(f"scenario delta: {delta.nbytes} B payload "
          f"(vs {net.r.nbytes * 12} B-class network arrays); "
          f"fork shares untouched arrays: {forked.r is net.r}")

    # 2. One batched DC solve screens the whole N-1 list.
    safe, islanding = enumerate_n1(net)
    analyzer = ContingencyAnalyzer(net, method="dc", rating_margin=1.3)
    t0 = time.perf_counter()
    serial = [analyzer.analyze(c) for c in safe]
    t_serial = time.perf_counter() - t0
    analyzer.analyze_batch(safe)  # warm the compensation cache
    t0 = time.perf_counter()
    batched = analyzer.analyze_batch(safe)
    t_batch = time.perf_counter() - t0
    agree = sum(
        abs(a.max_loading - b.max_loading) < 1e-9
        for a, b in zip(serial, batched)
    )
    print(f"\nN-1 sweep ({len(safe)} outages, {len(islanding)} islanding "
          f"skipped): serial {t_serial * 1e3:.1f} ms, "
          f"batched {t_batch * 1e3:.1f} ms, "
          f"speedup {t_serial / t_batch:.1f}x, "
          f"max-loading agreement {agree}/{len(safe)}")

    # 3. Batched estimation: K scenarios, one block solve per iteration.
    rng = np.random.default_rng(0)
    mset = generate_measurements(net, full_placement(net), pf, rng=rng)
    scenarios = [
        BatchScenario(label="base"),
        BatchScenario(delta=NetworkDelta.branch_outage(0), label="outage 0"),
        BatchScenario(
            z=mset.z + 0.01 * mset.sigma * rng.standard_normal(len(mset)),
            label="fresh scan",
        ),
        BatchScenario(
            delta=NetworkDelta.load_override([10], Pd=[0.9]),
            label="load step",
        ),
    ]
    est = BatchEstimator(net, mset)
    batch = est.estimate_batch(scenarios)
    ref = WlsEstimator(net, mset).estimate()
    print(f"\nbatched estimation of {len(batch)} scenarios:")
    for sc, res in zip(scenarios, batch):
        print(f"  {sc.label:>10}: converged={res.converged} "
              f"in {res.iterations} iterations, "
              f"max|dVm| vs base {np.abs(res.Vm - ref.Vm).max():.2e}")


if __name__ == "__main__":
    main()
