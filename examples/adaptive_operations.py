"""Operating through disturbances: branch outages and a cluster failure.

Run with::

    python examples/adaptive_operations.py

Processes SCADA frames through the architecture while the world changes
underneath it: a tie line trips (one exchange session disappears), an
internal line trips and strands a bus (the decomposition self-repairs),
and an entire HPC cluster fails (the mapping method re-places its
subsystems on the survivors).  Frames keep flowing throughout.
"""

import numpy as np

from repro.core import (
    ArchitecturePrototype,
    DseSession,
    apply_branch_outage,
    apply_cluster_outage,
)
from repro.dse import dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements
from repro.reporting import frame_table, session_summary


def frame_for(arch, rng):
    pf = run_ac_power_flow(arch.net)
    placement = full_placement(arch.net).merged_with(dse_pmu_placement(arch.dec))
    return pf, generate_measurements(arch.net, placement, pf, rng=rng)


def main() -> None:
    rng = np.random.default_rng(0)
    with ArchitecturePrototype.assemble(case118(), m_subsystems=9, seed=0) as arch:
        session = DseSession(arch)

        # --- normal operation ------------------------------------------
        pf, mset = frame_for(arch, rng)
        session.process_frame(mset, t=0.0, truth=(pf.Vm, pf.Va))

        # --- a tie line trips -------------------------------------------
        tie = int(arch.dec.tie_lines[0])
        rep = apply_branch_outage(arch, tie)
        print(f"t=4s: tie line {tie} tripped "
              f"(tie sessions now {len(arch.dec.tie_lines)}); "
              f"decomposition changed: {rep.decomposition_changed}")
        pf, mset = frame_for(arch, rng)
        session.process_frame(mset, t=4.0, truth=(pf.Vm, pf.Va))

        # --- an internal line strands a fragment -------------------------
        target = None
        from repro.grid.islands import subgraph_components

        for s in range(arch.dec.m):
            for k in arch.dec.internal_branches(s):
                arch.net.br_status[k] = 0
                frags = subgraph_components(
                    arch.net.n_bus, arch.net.adjacency_pairs(), arch.dec.buses(s)
                )
                arch.net.br_status[k] = 1
                if len(frags) > 1:
                    target = int(k)
                    break
            if target is not None:
                break
        rep = apply_branch_outage(arch, target)
        print(f"t=8s: internal line {target} tripped; buses "
              f"{rep.reassigned_buses.tolist()} reassigned to a neighbour "
              f"subsystem; decomposition connected: "
              f"{arch.dec.is_internally_connected()}")
        pf, mset = frame_for(arch, rng)
        session.process_frame(mset, t=8.0, truth=(pf.Vm, pf.Va))

        # --- a whole cluster fails ---------------------------------------
        mapping = arch.mapper.map_step1(arch.dec, 1.0)
        crep = apply_cluster_outage(arch, "chinook", mapping)
        print(f"t=12s: cluster 'chinook' failed; subsystems "
              f"{crep.orphaned_subsystems.tolist()} re-placed onto "
              f"{crep.survivors} (imbalance "
              f"{crep.new_mapping.imbalance:.3f})")
        pf, mset = frame_for(arch, rng)
        session.process_frame(mset, t=12.0, truth=(pf.Vm, pf.Va))

        # --- session report ----------------------------------------------
        print("\n" + frame_table(session.reports))
        summary = session_summary(session.reports)
        print(f"\n{summary['frames']} frames; mean simulated cycle "
              f"{summary['mean_sim_total'] * 1e3:.1f} ms; "
              f"{summary['total_bytes']} bytes exchanged in total")


if __name__ == "__main__":
    main()
