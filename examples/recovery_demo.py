"""Self-healing demo: kill a site mid-run, watch failover re-host it.

Run with::

    python examples/recovery_demo.py

Exercises the recovery plane end to end in a few seconds:

- a live distributed run with recovery enabled replicates every
  subsystem's checkpoint to its hash-ring successor each round and
  beats round-based leases across the mux fabric;
- a seeded ``FaultPlan`` hard-disconnects one site's hub socket
  mid-frame; its lease expires after ``lease_rounds`` silent rounds,
  the cluster epoch advances, and the orphaned subsystem is promoted
  onto the successor holding its replica — the zombie's frames are
  fenced at the hub from then on;
- the recovered run converges back onto the state of an uninterrupted
  run, and the same seed replays the identical fault sequence.

The script exits non-zero on any deviation, so ``scripts/verify.sh``
uses it as the recovery smoke test.
"""

import time

import numpy as np

from repro import faults
from repro.cluster import RecoveryConfig
from repro.core import LiveDseRuntime
from repro.dse import decompose, dse_pmu_placement
from repro.faults import FaultInjector, FaultPlan
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements

KILL = FaultPlan(seed=2026).add(
    "mux.forward", "disconnect", key=(2, 1), count=1
)


def main() -> None:
    net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
    pf = run_ac_power_flow(net)
    dec = decompose(net, 3, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    rounds = max(1, dec.diameter()) + 18

    def run(plan=None):
        live = LiveDseRuntime(
            dec, ms, fast=True, recv_timeout=0.5, round_deadline=2.0,
            recovery=RecoveryConfig(lease_rounds=2),
        )
        if plan is None:
            return live.run(rounds=rounds), None
        inj = FaultInjector(plan)
        with faults.injection(inj):
            res = live.run(rounds=rounds)
        return res, inj.fired_summary()

    clean, _ = run()
    assert clean.lost_sites == [] and clean.recovered_subsystems == []
    print(f"clean run       : {dec.m} sites, {rounds} rounds, "
          f"no losses, no false lease expiries")

    t0 = time.perf_counter()
    res, fired = run(KILL)
    dt = time.perf_counter() - t0
    assert res.lost_sites == [1], f"expected site 1 lost, got {res.lost_sites}"
    assert res.recovered_subsystems == [1], "subsystem 1 should be re-hosted"
    host = next(s for s, st in res.sites.items() if st.promoted_subsystems)
    degraded_until = max(max(rs) for rs in res.degraded.values())
    print(f"site kill       : se1 disconnected at round 0, lease expired, "
          f"epoch bumped, subsystem 1 promoted onto se{host}")
    print(f"degradation     : bounded to rounds <= {degraded_until}, "
          f"then clean through round {rounds - 1} ({dt * 1e3:.0f} ms)")

    dvm = float(np.max(np.abs(res.Vm - clean.Vm)))
    dva = float(np.max(np.abs(res.Va - clean.Va)))
    assert dvm <= 1e-7 and dva <= 1e-7, (dvm, dva)
    print(f"re-convergence  : |dVm| {dvm:.1e}, |dVa| {dva:.1e} vs the "
          f"uninterrupted run")

    _, fired2 = run(KILL)
    assert fired2 == fired, "same seed must fire the same faults"
    print(f"replay          : identical fired summary across runs "
          f"({len(fired)} keys)")
    print("recovery demo: OK — recovered")


if __name__ == "__main__":
    main()
