"""The runtime health plane end to end: watchdog, SLO burn alert,
telemetry aggregation, and a flight-recorder blackbox.

Run with::

    python examples/health_demo.py

What it shows:

1. ``obs.configure(health=True, slo=[...])`` arms the health plane (off
   by default; every hook in serving / DSE / the pools is one flag check
   when disabled).
2. A :class:`~repro.obs.health.Watchdog` watch over a deliberately
   stalled loop trips once per stall episode — detected by the monitor's
   tick, never by anything on the hot path.
3. A latency SLO burns when a slow burst eats the error budget faster
   than the objective allows; the multi-window burn-rate alert fires
   through hysteresis and the autoscaler hint flips to scale-up.
4. A :class:`~repro.obs.aggregate.TelemetryPublisher` ships compact
   metric deltas over the mux fabric as ``FLAG_TELEMETRY`` frames; the
   hub-side :class:`~repro.obs.aggregate.TelemetryAggregator` folds them
   into one cluster registry with a ``site`` label.
5. The flight recorder dumps a self-contained blackbox JSONL, rendered
   here with the ``obstop`` dashboard (also:
   ``python -m repro.tools.obstop blackbox.jsonl``).
"""

import os
import tempfile

from repro import obs
from repro.middleware import MiddlewareFabric
from repro.obs.aggregate import TelemetryAggregator, TelemetryPublisher
from repro.serving.requests import ServiceStats
from repro.tools.obstop import render_dashboard


def main() -> None:
    obs.configure(
        enabled=True, health=True, reset=True,
        slo=["lat:latency:0.9:0.01:1/5:1"],
    )
    mon = obs.health()
    try:
        # 1. a watchdog watch over a loop that stops beating
        tok = mon.watch("demo.loop", timeout=0.0001, source="demo")
        mon.beat(tok)
        import time as _t
        _t.sleep(0.01)                     # ... the loop goes silent
        stalled = mon.tick()
        print(f"watchdog: {[ev.kind for ev in stalled]} "
              f"(watch={stalled[0].detail['watch']})")
        mon.disarm(tok)

        # 2. a latency SLO burning under a slow burst
        stats = ServiceStats()
        mon.watch_service("demo-svc", stats)
        mon.tick()                         # baseline burn-rate sample
        for _ in range(20):
            stats.record_request(0.05)     # 5x over the 10 ms threshold
        burn = mon.tick() + mon.tick()
        fired = [ev for ev in burn if ev.kind == "slo.burn"]
        print(f"slo: {fired[0].detail['slo']} burning, "
              f"autoscaler hint {mon.slo.hint_for(stats):+d}")

        # 3. telemetry deltas over the fast mux fabric
        agg = TelemetryAggregator()
        with MiddlewareFabric(["hub", "site-a"], pairs=[("site-a", "hub")],
                              fast=True) as fab:
            fab.enable_telemetry(agg.ingest)
            pub = TelemetryPublisher("site-a", mon.registry)
            pub.publish(lambda p: fab.send_telemetry("site-a", p))
        n = agg.registry.counter("health.events_total",
                                 kind="watchdog.stall", site="site-a").value
        print(f"telemetry: {agg.records_ingested} records aggregated, "
              f"cluster sees {n:.0f} stall event(s) from site-a")

        # 4. the blackbox artifact + the obstop dashboard
        with tempfile.TemporaryDirectory() as td:
            path = mon.dump(os.path.join(td, "blackbox.jsonl"), reason="demo")
            events = [ev.to_dict() for ev in mon.recorder.events()]
            print()
            print(render_dashboard(mon.registry.collect(), events,
                                   {"blackbox": True, "trigger": "demo"},
                                   max_events=4))
            print(f"\nblackbox written: {os.path.basename(path)} "
                  f"({sum(1 for _ in open(path))} records)")
    finally:
        obs.configure(enabled=False, health=False, reset=True, slo=[])


if __name__ == "__main__":
    main()
