"""The paper's scenario: distributed state estimation of the IEEE 118-bus
system on three (simulated) HPC clusters.

Run with::

    python examples/dse_ieee118.py

Reproduces the flow of sections IV-V: decompose into 9 subsystems, build
the weighted decomposition graph (Table I), map onto the Nwiceb /
Catamount / Chinook testbed before Step 1 (Fig. 4) and Step 2 (Fig. 5),
run the two-step DSE and report accuracy plus the simulated distributed
timeline.
"""

import numpy as np

from repro.core import ArchitecturePrototype, DseSession
from repro.dse import dse_pmu_placement, exchange_bus_sets
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


def main() -> None:
    net = case118()
    pf = run_ac_power_flow(net)

    # the paper's exact 9-way decomposition sizes (Table I)
    with ArchitecturePrototype.assemble(
        net, subsystem_sizes=(14, 13, 13, 13, 13, 12, 14, 13, 13),
        seed=0, with_fabric=True,
    ) as arch:
        dec = arch.dec
        print(f"decomposed {net.name} into {dec.m} subsystems "
              f"(sizes {dec.sizes().tolist()}), {len(dec.tie_lines)} tie lines, "
              f"quotient diameter {dec.diameter()}")

        # Table I analogue: initial vertex/edge weights.
        g = dec.quotient_graph()
        pairs, w = g.edge_list()
        print("\ninitial decomposition-graph weights (Table I analogue):")
        print("  vertex weights:", g.vwgt.tolist())
        for (u, v), x in zip(pairs, w):
            print(f"  edge ({u + 1}, {v + 1}): {int(x)}")

        # Measurements: SCADA everywhere + one anchor PMU per subsystem.
        rng = np.random.default_rng(7)
        placement = full_placement(net).merged_with(dse_pmu_placement(dec))
        mset = generate_measurements(net, placement, pf, rng=rng)

        session = DseSession(arch)
        report = session.process_frame(mset, truth=(pf.Vm, pf.Va))

        print(f"\nnoise level x = {report.noise_level:.3f} -> expected "
              f"iterations Ni = {report.expected_iterations:.1f}")
        print(f"mapping before Step 1 (Fig. 4 analogue), "
              f"imbalance {report.imbalance_step1:.3f}:")
        for cluster, subs in report.mapping_step1.items():
            print(f"  {cluster:10s}: subsystems {[s + 1 for s in subs]}")
        print(f"mapping before Step 2 (Fig. 5 analogue), "
              f"imbalance {report.imbalance_step2:.3f}, "
              f"migrated weight {report.migrated_weight}:")
        for cluster, subs in report.mapping_step2.items():
            print(f"  {cluster:10s}: subsystems {[s + 1 for s in subs]}")

        sets = exchange_bus_sets(dec)
        print(f"\nexchange sets (boundary + sensitive internal) sizes: "
              f"{[len(sets[s]) for s in range(dec.m)]}")

        tm = report.timings
        print(f"\nsimulated distributed timeline "
              f"({report.rounds} Step-2 rounds):")
        print(f"  Step 1 compute      : {tm.step1 * 1e3:8.2f} ms")
        print(f"  data redistribution : {tm.redistribution * 1e3:8.2f} ms")
        print(f"  Step 2 exchange     : {tm.exchange * 1e3:8.2f} ms")
        print(f"  Step 2 compute      : {tm.step2 * 1e3:8.2f} ms")
        print(f"  total               : {tm.total * 1e3:8.2f} ms")
        print(f"bytes exchanged through middleware: {report.bytes_exchanged}")

        # Accuracy vs the centralized estimator.
        cen = estimate_state(net, mset)
        cen_err = cen.state_error(pf.Vm, pf.Va)
        print(f"\naccuracy (RMSE vs truth):")
        print(f"  centralized : Vm {cen_err['vm_rmse']:.2e}  "
              f"Va {cen_err['va_rmse']:.2e}")
        print(f"  distributed : Vm {report.vm_rmse_vs_truth:.2e}  "
              f"Va {report.va_rmse_vs_truth:.2e}")


if __name__ == "__main__":
    main()
