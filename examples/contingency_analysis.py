"""Estimation-fed N-1 contingency analysis with dynamic load balancing.

Run with::

    python examples/contingency_analysis.py

Closes the loop the paper's introduction draws: state estimation produces
the real-time snapshot, and contingency analysis — PNNL's original massive
HPC workload (the paper's reference [2]) — consumes it.  The N-1 sweep of
the IEEE 118 system runs on worker threads under both static and
counter-based dynamic load balancing.
"""

import numpy as np

from repro.contingency import (
    ContingencyAnalyzer,
    enumerate_n1,
    run_parallel_threads,
    simulate_parallel_analysis,
)
from repro.cluster import ClusterSpec, ClusterTopology
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


def main() -> None:
    net = case118()
    pf = run_ac_power_flow(net)

    # 1. The real-time snapshot comes from the estimator, not an oracle.
    rng = np.random.default_rng(0)
    mset = generate_measurements(net, full_placement(net), pf, rng=rng)
    estimate = estimate_state(net, mset)
    print(f"estimated state: {estimate.iterations} WLS iterations, "
          f"Vm RMSE {estimate.state_error(pf.Vm, pf.Va)['vm_rmse']:.2e}")

    # 2. Enumerate N-1 outages.
    safe, islanding = enumerate_n1(net)
    print(f"N-1 enumeration: {len(safe)} analysable outages, "
          f"{len(islanding)} islanding outages "
          f"({', '.join(c.label for c in islanding)})")

    # 3. Screen against estimated-state-derived ratings.
    analyzer = ContingencyAnalyzer.from_estimate(
        net, estimate, method="dc", rating_margin=1.5
    )
    report = run_parallel_threads(analyzer, safe, n_workers=4, scheme="dynamic")
    insecure = [r for r in report.results if not r.secure]
    print(f"\nDC screening of {len(safe)} contingencies in "
          f"{report.makespan * 1e3:.1f} ms on 4 workers "
          f"(cases/worker {report.per_worker_cases})")
    print(f"insecure cases at 1.5x ratings: {len(insecure)}")
    worst = max(report.results, key=lambda r: r.max_loading)
    print(f"worst loading {worst.max_loading:.2f}x after outage of "
          f"branch {worst.contingency.label}")

    # 4. Static vs dynamic balancing at scale (simulated 32-core cluster).
    rng = np.random.default_rng(1)
    durations = rng.lognormal(-4.0, 1.2, 2000)  # heavy-tailed case times
    topo = ClusterTopology(
        clusters=[ClusterSpec(name="hpc", nodes=4, cores_per_node=8)]
    )
    dyn = simulate_parallel_analysis(durations, topo, scheme="dynamic")
    sta = simulate_parallel_analysis(durations, topo, scheme="static")
    print(f"\n2000 simulated cases on 32 cores: static {sta.makespan:.3f}s, "
          f"dynamic {dyn.makespan:.3f}s "
          f"({sta.makespan / dyn.makespan:.2f}x speedup from the shared "
          f"counter — Chen et al.'s result)")


if __name__ == "__main__":
    main()
