"""Middleware fast-path round-trip smoke (in-process and localhost TCP).

Run with::

    python examples/middleware_roundtrip.py

Exercises the PR-3 data plane end to end in a few hundred milliseconds:

- a pooled ``MWClient`` pair over localhost TCP (persistent connection,
  ``send`` + ``send_many``, event-driven receive);
- the multiplexed fabric (``MiddlewareFabric(fast=True)``) on both the
  in-process and the TCP hub, including a packed state-update exchange
  decoded with the zero-copy ``unpack_state_update``.

Every payload is verified byte-for-byte; the script exits non-zero on any
mismatch, so ``scripts/verify.sh`` uses it as the middleware smoke test.
"""

import time

import numpy as np

from repro.middleware import (
    EndpointRegistry,
    MiddlewareFabric,
    MWClient,
    pack_state_update,
    unpack_state_update,
)


def smoke_pooled_client(n: int = 200) -> None:
    """Pooled point-to-point round trip over localhost TCP."""
    registry = EndpointRegistry()
    rx = MWClient("rx", registry)
    rx.serve("tcp://127.0.0.1:0")
    tx = MWClient("tx", registry)
    try:
        payloads = [bytes([i % 256]) * (64 + i) for i in range(n)]
        t0 = time.perf_counter()
        for p in payloads[: n // 2]:
            tx.send("rx", p)
        tx.send_many("rx", payloads[n // 2 :])
        got = [rx.recv(timeout=10) for _ in range(n)]
        dt = time.perf_counter() - t0
        assert [bytes(g) for g in got] == payloads, "payload mismatch"
        assert tx.dials == 1, f"expected 1 dial, got {tx.dials}"
        print(f"pooled MWClient : {n} msgs over 1 connection in "
              f"{dt * 1e3:.1f} ms ({n / dt:.0f} msgs/s)")
    finally:
        tx.close()
        rx.close()


def smoke_fabric(use_tcp: bool, n: int = 100) -> None:
    """State-update exchange through the multiplexed fabric hub."""
    rng = np.random.default_rng(7)
    ids = np.arange(24, dtype=np.int64)
    vm = 1 + 0.01 * rng.standard_normal(24)
    va = 0.1 * rng.standard_normal(24)
    update = bytes(pack_state_update(ids, vm, va))

    with MiddlewareFabric(
        ["a", "b"], pairs=[("a", "b"), ("b", "a")], use_tcp=use_tcp, fast=True
    ) as fab:
        t0 = time.perf_counter()
        for _ in range(n):
            fab.send("a", "b", update)
        for _ in range(n):
            raw = fab.recv("b", timeout=10)
        dt = time.perf_counter() - t0
        got_ids, got_vm, got_va = unpack_state_update(raw)
        assert np.array_equal(got_ids, ids), "bus ids corrupted in transit"
        assert np.array_equal(got_vm, vm) and np.array_equal(got_va, va), \
            "state values corrupted in transit"
        (frames, nbytes) = fab.relay_stats()[("a", "b")]
        assert frames == n and nbytes == n * len(update)
        label = "tcp" if use_tcp else "inproc"
        print(f"fast fabric ({label:>6}): {n} state updates "
              f"({len(update)} B) in {dt * 1e3:.1f} ms ({n / dt:.0f} msgs/s)")


def main() -> None:
    smoke_pooled_client()
    smoke_fabric(use_tcp=False)
    smoke_fabric(use_tcp=True)
    print("middleware round-trip: OK")


if __name__ == "__main__":
    main()
