"""Sharded scenario serving: a router over N service replicas.

Run with::

    python examples/serve_sharded.py            # IEEE-118, 2 shards
    python examples/serve_sharded.py --tiny     # IEEE-14 smoke (CI)

One :class:`~repro.serving.service.ScenarioService` is one process's
serving capacity.  ``ShardRouter`` is the horizontal layer above it:
traffic spreads over N replicas by consistent hashing on a
``(grid, region)`` key — repeated what-if scenarios for one region keep
hitting the replica whose warm caches already hold them — while plain
values-only frames round-robin across the ring.  Losing a replica moves
only ~1/N of the keyspace; its queued requests re-hash to the survivors
instead of being dropped.
"""

import argparse

import numpy as np

from repro.dse import decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14, case118
from repro.grid.delta import NetworkDelta
from repro.measurements import full_placement, generate_measurements
from repro.serving import ScenarioService, ShardRouter


def main(tiny: bool = False) -> None:
    net = case14() if tiny else case118()
    m = 2 if tiny else 9
    n_frames = 8 if tiny else 24
    pf = run_ac_power_flow(net)
    dec = decompose(net, m, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    mset = generate_measurements(net, plac, pf, rng=rng)

    def replica():
        return ScenarioService(
            dec, mset, executor="serial", max_batch=8, flush_latency=2e-3,
            batch_solve=True,
        )

    # per-region what-if scenarios: hashed by label, so each region's
    # traffic has a stable home replica
    regions = [
        NetworkDelta.load_override([b], Pd=[0.05], label=f"region-{b}")
        for b in range(4)
    ]

    with ShardRouter(
        {"s0": replica(), "s1": replica()}, grid=net.name
    ) as router:
        futures = [router.submit_estimation() for _ in range(n_frames)]
        futures += [
            router.submit_estimation(delta=d) for d in regions for _ in (0, 1)
        ]
        homes = {}
        for fut in futures:
            res = fut.result(timeout=120)
            if res.request.delta is not None:
                homes.setdefault(res.request.delta.label, set()).add(res.shard)
        print(f"{net.name}: routed {router.stats.to_dict()['routed']} "
              f"over {len(router.live_shards())} shards")
        sticky = all(len(s) == 1 for s in homes.values())
        print(f"scenario affinity: {len(homes)} regions, "
              f"one home shard each: {sticky}")

        # graceful drain: s0 leaves the ring, its queued work completes,
        # traffic continues on the survivor
        mid_flight = [router.submit_estimation() for _ in range(4)]
        router.remove_shard("s0", drain=True)
        for fut in mid_flight:
            fut.result(timeout=120)
        after = router.submit_estimation().result(timeout=120)
        print(f"after drain: {len(router.live_shards())} live shard(s), "
              f"new traffic served by {after.shard!r}, "
              f"rehashed={router.stats.rehashed}, shed={router.stats.shed}")

    snap = router.stats_snapshot()["router"]
    assert snap["completed"] == len(futures) + len(mid_flight) + 1
    assert snap["shed"] == 0
    print(f"completed {snap['completed']} requests, nothing lost")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tiny", action="store_true", help="IEEE-14 smoke run")
    main(**vars(ap.parse_args()))
