"""Quickstart: centralized WLS state estimation on the IEEE 14-bus system.

Run with::

    python examples/quickstart.py

Solves the AC power flow for the true operating point, samples a noisy
SCADA snapshot, estimates the state by weighted least squares, and checks
the estimate with the chi-square bad-data test.
"""

import numpy as np

from repro.estimation import chi_square_test, estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14
from repro.measurements import full_placement, generate_measurements


def main() -> None:
    # 1. The network and its true operating point.
    net = case14()
    pf = run_ac_power_flow(net)
    print(f"{net.name}: {net.n_bus} buses, {net.n_branch} branches; "
          f"power flow converged in {pf.iterations} iterations")

    # 2. A noisy measurement snapshot (V, P/Q injections, P/Q flows).
    placement = full_placement(net)
    rng = np.random.default_rng(42)
    mset = generate_measurements(net, placement, pf, noise_level=1.0, rng=rng)
    print(f"measurements: {mset!r}")

    # 3. Weighted-least-squares estimation (Gauss-Newton).
    result = estimate_state(net, mset)
    print(f"WLS converged: {result.converged} in {result.iterations} iterations; "
          f"J(x̂) = {result.objective:.1f} with {result.dof} dof")

    # 4. Accuracy against the known truth.
    err = result.state_error(pf.Vm, pf.Va)
    print(f"V magnitude RMSE: {err['vm_rmse']:.2e} p.u., "
          f"angle RMSE: {np.rad2deg(err['va_rmse']):.4f} deg")

    # 5. Statistical consistency check.
    print(f"chi-square test passes: {chi_square_test(result)}")

    print("\n bus   Vm_true   Vm_est    Va_true(deg)  Va_est(deg)")
    for b in range(net.n_bus):
        print(f"  {net.bus_ids[b]:3d}   {pf.Vm[b]:.4f}    {result.Vm[b]:.4f}   "
              f"{np.rad2deg(pf.Va[b]):9.3f}    {np.rad2deg(result.Va[b]):9.3f}")


if __name__ == "__main__":
    main()
