"""E5 — Table III: direct TCP vs. through-middleware transfer within one
workstation.

Paper (100 MB - 2 GB payloads on one Linux workstation):

    size   T1 direct (s)  T2 w/ MeDICi (s)  overhead (s)
    100MB  0.052          0.381             0.329
    2GB    1.098          6.015             4.917

i.e. the relay adds an overhead that is linear in the payload (relay rate
~0.4 GB/s).  We reproduce the experiment with real localhost sockets at
laptop-friendly sizes (256 KB - 8 MB — the substitution is documented in
DESIGN.md); the shape to check is: T2 > T1 at every size, overhead grows
~linearly with size.
"""

import threading
import time

import numpy as np
import pytest

from repro.middleware import MifComponent, MifPipeline, TcpTransport

SIZES = [256 * 1024, 512 * 1024, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024]


class _Sink:
    """Accepts one connection and counts frames."""

    def __init__(self, transport):
        self.listener = transport.listen("tcp://127.0.0.1:0")
        self.received = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._stop = False
        self._thread.start()

    def _run(self):
        try:
            conn = self.listener.accept(timeout=10)
        except Exception:
            return
        while not self._stop:
            try:
                conn.recv_bytes(timeout=0.5)
                self.received.set()
            except TimeoutError:
                continue
            except Exception:
                break
        conn.close()

    def close(self):
        self._stop = True
        self.listener.close()


def _median_transfer(conn, sink, payload, repeats=5):
    times = []
    for _ in range(repeats):
        sink.received.clear()
        t0 = time.perf_counter()
        conn.send_bytes(payload)
        assert sink.received.wait(timeout=30)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


@pytest.fixture(scope="module")
def table3_rows():
    """Measure the full Table III sweep once; benchmarks sample from it."""
    transport = TcpTransport()
    rows = []

    # direct path
    sink_d = _Sink(transport)
    conn_d = transport.connect(sink_d.listener.endpoint.url)
    # relayed path
    sink_r = _Sink(transport)
    pipeline = MifPipeline()
    comp = MifComponent("SE")
    pipeline.add_mif_component(comp)
    comp.set_in_endpoint("tcp://127.0.0.1:0")
    comp.set_out_endpoint(sink_r.listener.endpoint.url)
    pipeline.start()
    conn_r = transport.connect(comp.in_endpoint)

    try:
        for size in SIZES:
            payload = b"\xa5" * size
            t1 = _median_transfer(conn_d, sink_d, payload)
            t2 = _median_transfer(conn_r, sink_r, payload)
            rows.append((size, t1, t2, t2 - t1))
    finally:
        conn_d.close()
        conn_r.close()
        pipeline.stop()
        sink_d.close()
        sink_r.close()
    return rows


def test_table3_local_overhead(benchmark, table3_rows):
    print("\nTable III (reproduced, scaled sizes) — within one workstation")
    print(f"{'size':>8} | {'T1 direct (ms)':>14} | {'T2 w/ mw (ms)':>13} "
          f"| {'overhead (ms)':>13}")
    for size, t1, t2, ov in table3_rows:
        print(f"{size // 1024:6d}KB | {t1 * 1e3:14.3f} | {t2 * 1e3:13.3f} "
              f"| {ov * 1e3:13.3f}")

    # Shape checks against the paper:
    # (1) the relay is always slower than the direct socket
    for _, t1, t2, _ in table3_rows:
        assert t2 > t1
    # (2) overhead grows with size (monotone up to timing noise at the
    #     small end): largest size has more overhead than smallest
    assert table3_rows[-1][3] > table3_rows[0][3]
    # (3) effective relay rate is in a plausible band (paper: ~0.4 GB/s;
    #     localhost queues span a wide range across machines)
    size, _, _, ov = table3_rows[-1]
    rate = size / ov
    print(f"effective relay rate ≈ {rate / 1e9:.2f} GB/s (paper: ~0.4 GB/s)")
    assert 0.01e9 < rate < 50e9

    # the benchmarked operation: one mid-size relay round
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table3_direct_socket_throughput(benchmark):
    """Benchmark a single direct localhost transfer (the T1 column)."""
    transport = TcpTransport()
    sink = _Sink(transport)
    conn = transport.connect(sink.listener.endpoint.url)
    payload = b"\x5a" * (1024 * 1024)

    def xfer():
        sink.received.clear()
        conn.send_bytes(payload)
        sink.received.wait(timeout=30)

    try:
        benchmark(xfer)
    finally:
        conn.close()
        sink.close()


def test_table3_fastpath_relay_comparison(benchmark):
    """The PR-3 fast path re-measures the T2 column: the same relayed
    transfer through the multiplexed router hub instead of a per-pair
    pipeline.  Both are one store-and-forward hop; the mux hub must carry
    the payload correctly and stay within the same order of magnitude."""
    from repro.middleware import MuxRouter

    transport = TcpTransport()
    rows = []

    # legacy relayed path: MifPipeline component
    sink_r = _Sink(transport)
    pipeline = MifPipeline()
    comp = MifComponent("SE")
    pipeline.add_mif_component(comp)
    comp.set_in_endpoint("tcp://127.0.0.1:0")
    comp.set_out_endpoint(sink_r.listener.endpoint.url)
    pipeline.start()
    conn_r = transport.connect(comp.in_endpoint)

    # fast relayed path: mux router hub, ids 1 -> 2
    router = MuxRouter()
    router.start()
    got = threading.Event()
    rx_link = router.attach(2, lambda payload: got.set())
    tx_link = router.attach(1, lambda payload: None)

    def _mux_transfer(payload, repeats=5):
        times = []
        for _ in range(repeats):
            got.clear()
            t0 = time.perf_counter()
            tx_link.send(2, payload)
            assert got.wait(timeout=30)
            times.append(time.perf_counter() - t0)
        return float(np.median(times))

    try:
        for size in (256 * 1024, 1024 * 1024, 4 * 1024 * 1024):
            payload = b"\xa5" * size
            t_pipe = _median_transfer(conn_r, sink_r, payload)
            t_mux = _mux_transfer(payload)
            rows.append((size, t_pipe, t_mux))
    finally:
        conn_r.close()
        pipeline.stop()
        sink_r.close()
        tx_link.close()
        rx_link.close()
        router.stop()

    print("\nTable III fast-path column — relayed transfer, pipeline vs mux hub")
    print(f"{'size':>8} | {'pipeline (ms)':>13} | {'mux hub (ms)':>12}")
    for size, t_pipe, t_mux in rows:
        print(f"{size // 1024:6d}KB | {t_pipe * 1e3:13.3f} | {t_mux * 1e3:12.3f}")

    # shape checks only: both relays complete; the mux hop is not
    # pathologically slower than the pipeline hop (same single copy)
    for _, t_pipe, t_mux in rows:
        assert t_mux > 0
        assert t_mux < 10 * t_pipe + 0.1

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
