"""E5 — Table III: direct TCP vs. through-middleware transfer within one
workstation.

Paper (100 MB - 2 GB payloads on one Linux workstation):

    size   T1 direct (s)  T2 w/ MeDICi (s)  overhead (s)
    100MB  0.052          0.381             0.329
    2GB    1.098          6.015             4.917

i.e. the relay adds an overhead that is linear in the payload (relay rate
~0.4 GB/s).  We reproduce the experiment with real localhost sockets at
laptop-friendly sizes (256 KB - 8 MB — the substitution is documented in
DESIGN.md); the shape to check is: T2 > T1 at every size, overhead grows
~linearly with size.
"""

import threading
import time

import numpy as np
import pytest

from repro.middleware import MifComponent, MifPipeline, TcpTransport

SIZES = [256 * 1024, 512 * 1024, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024]


class _Sink:
    """Accepts one connection and counts frames."""

    def __init__(self, transport):
        self.listener = transport.listen("tcp://127.0.0.1:0")
        self.received = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._stop = False
        self._thread.start()

    def _run(self):
        try:
            conn = self.listener.accept(timeout=10)
        except Exception:
            return
        while not self._stop:
            try:
                conn.recv_bytes(timeout=0.5)
                self.received.set()
            except TimeoutError:
                continue
            except Exception:
                break
        conn.close()

    def close(self):
        self._stop = True
        self.listener.close()


def _median_transfer(conn, sink, payload, repeats=5):
    times = []
    for _ in range(repeats):
        sink.received.clear()
        t0 = time.perf_counter()
        conn.send_bytes(payload)
        assert sink.received.wait(timeout=30)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


@pytest.fixture(scope="module")
def table3_rows():
    """Measure the full Table III sweep once; benchmarks sample from it."""
    transport = TcpTransport()
    rows = []

    # direct path
    sink_d = _Sink(transport)
    conn_d = transport.connect(sink_d.listener.endpoint.url)
    # relayed path
    sink_r = _Sink(transport)
    pipeline = MifPipeline()
    comp = MifComponent("SE")
    pipeline.add_mif_component(comp)
    comp.set_in_endpoint("tcp://127.0.0.1:0")
    comp.set_out_endpoint(sink_r.listener.endpoint.url)
    pipeline.start()
    conn_r = transport.connect(comp.in_endpoint)

    try:
        for size in SIZES:
            payload = b"\xa5" * size
            t1 = _median_transfer(conn_d, sink_d, payload)
            t2 = _median_transfer(conn_r, sink_r, payload)
            rows.append((size, t1, t2, t2 - t1))
    finally:
        conn_d.close()
        conn_r.close()
        pipeline.stop()
        sink_d.close()
        sink_r.close()
    return rows


def test_table3_local_overhead(benchmark, table3_rows):
    print("\nTable III (reproduced, scaled sizes) — within one workstation")
    print(f"{'size':>8} | {'T1 direct (ms)':>14} | {'T2 w/ mw (ms)':>13} "
          f"| {'overhead (ms)':>13}")
    for size, t1, t2, ov in table3_rows:
        print(f"{size // 1024:6d}KB | {t1 * 1e3:14.3f} | {t2 * 1e3:13.3f} "
              f"| {ov * 1e3:13.3f}")

    # Shape checks against the paper:
    # (1) the relay is always slower than the direct socket
    for _, t1, t2, _ in table3_rows:
        assert t2 > t1
    # (2) overhead grows with size (monotone up to timing noise at the
    #     small end): largest size has more overhead than smallest
    assert table3_rows[-1][3] > table3_rows[0][3]
    # (3) effective relay rate is in a plausible band (paper: ~0.4 GB/s;
    #     localhost queues span a wide range across machines)
    size, _, _, ov = table3_rows[-1]
    rate = size / ov
    print(f"effective relay rate ≈ {rate / 1e9:.2f} GB/s (paper: ~0.4 GB/s)")
    assert 0.01e9 < rate < 50e9

    # the benchmarked operation: one mid-size relay round
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table3_direct_socket_throughput(benchmark):
    """Benchmark a single direct localhost transfer (the T1 column)."""
    transport = TcpTransport()
    sink = _Sink(transport)
    conn = transport.connect(sink.listener.endpoint.url)
    payload = b"\x5a" * (1024 * 1024)

    def xfer():
        sink.received.clear()
        conn.send_bytes(payload)
        sink.received.wait(timeout=30)

    try:
        benchmark(xfer)
    finally:
        conn.close()
        sink.close()
