"""E3 — Figure 5: repartitioning before DSE Step 2.

Paper result: after switching on the communication weights, METIS'
repartitioning moves subsystem 4 to Catamount and subsystem 5 to Chinook
(Nwiceb unchanged), giving imbalance 1.079 — slightly above Step 1's 1.035
because the objective now trades balance against edge-cut.  We reproduce
the remap and check the same qualitative behaviour: few migrations, small
imbalance, reduced communication cut.
"""

from repro.cluster import pnnl_testbed
from repro.core import ClusterMapper
from repro.dse import exchange_bus_sets
from repro.partition import edge_cut
from repro.core.weights import step2_graph

PAPER_IMBALANCE_STEP2 = 1.079


def test_fig5_step2_remap(benchmark, dec118):
    mapper = ClusterMapper(pnnl_testbed(), seed=0)
    map1 = mapper.map_step1(dec118, 1.0)
    sets = exchange_bus_sets(dec118)

    mapping, moved = benchmark(mapper.remap_step2, dec118, 1.0, map1, sets)

    migrated = [s + 1 for s in range(9)
                if map1.cluster_of(s) != mapping.cluster_of(s)]
    print("\nFigure 5 (reproduced) — remapping before DSE Step 2")
    for cluster, subs in mapping.as_dict().items():
        print(f"  {cluster:10s}: subsystems {[s + 1 for s in subs]}")
    print(f"  load-imbalance ratio: {mapping.imbalance:.3f} "
          f"(paper: {PAPER_IMBALANCE_STEP2})")
    print(f"  migrated subsystems: {migrated} (paper migrated 2 of 9)")
    print(f"  migrated vertex weight: {moved}")

    # Paper shape: at most a few subsystems move; balance stays near 1.05.
    assert len(migrated) <= 4
    assert mapping.imbalance <= 1.25

    # The comm-aware mapping cuts no more communication weight than the
    # Step-1 mapping evaluated on the Step-2 graph.
    g2 = step2_graph(dec118, 1.0, sets)
    cut_before = edge_cut(g2, map1.assignment)
    cut_after = edge_cut(g2, mapping.assignment)
    print(f"  comm edge-cut: step1 mapping {cut_before} -> step2 mapping "
          f"{cut_after}")
    assert cut_after <= cut_before
