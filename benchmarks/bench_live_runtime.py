"""E8b — the live prototype: concurrent estimator sites over real middleware.

Complements E8 (analytic testbed replay) with an actual multi-threaded,
socket-backed execution of Figure 6: nine estimator sites exchanging packed
pseudo-measurement frames through MeDICi-style pipelines.  Checks the two
facts the paper's prototype demonstrated — the distributed solution matches
the in-process algorithm exactly, and running the exchange through the
middleware (vs in-process queues) costs little.
"""

import numpy as np
import pytest

from repro.core import LiveDseRuntime
from repro.dse import DistributedStateEstimator


def test_live_runtime_inproc(benchmark, dec118, mset118, pf118):
    ref = DistributedStateEstimator(dec118, mset118).run()

    live = benchmark.pedantic(
        lambda: LiveDseRuntime(dec118, mset118).run(), rounds=2, iterations=1
    )
    assert live.errors == []
    assert np.array_equal(live.Vm, ref.Vm)

    print("\nE8b — live distributed runtime (9 sites, in-process pipelines)")
    print(f"  wall time        : {live.wall_time * 1e3:8.1f} ms")
    print(f"  bytes on the wire: {sum(s.bytes_sent for s in live.sites.values())}")
    err = live.state_error(pf118.Vm, pf118.Va)
    print(f"  Vm RMSE vs truth : {err['vm_rmse']:.3e}")


def test_live_runtime_tcp(benchmark, dec118, mset118, pf118):
    live = benchmark.pedantic(
        lambda: LiveDseRuntime(dec118, mset118, use_tcp=True).run(),
        rounds=2, iterations=1,
    )
    assert live.errors == []
    err = live.state_error(pf118.Vm, pf118.Va)

    print("\nE8b — live distributed runtime (9 sites, real TCP pipelines)")
    print(f"  wall time        : {live.wall_time * 1e3:8.1f} ms")
    print(f"  Vm RMSE vs truth : {err['vm_rmse']:.3e}")
    assert err["vm_rmse"] < 3e-3
    # real-time viability: one full DSE cycle fits in a SCADA scan period
    assert live.wall_time < 4.0
