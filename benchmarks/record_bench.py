"""Record headline benchmark numbers to a JSON artifact.

Runs the gating benchmarks — E8 (Figure 6, one end-to-end DSE cycle on the
architecture), A1 (the PCG solver ablation on the IEEE-118 gain system),
the hot-path seed-vs-optimised comparison, the PR-2 scale-out throughput
grid, the PR-3 middleware fast path (pooled/batched small-message
throughput, echo round-trip latency and the mux-fabric data path over
localhost TCP), the PR-4 observability instrumentation overhead on the
warm DSE hot path, the PR-5 fault-injection hook overhead on the live
frame loop, the PR-6 batched scenario sweep (copy-on-write fork cost
and the one-batched-solve N-1 throughput), the PR-7 boundary
condensation comparison (reference vs Schur-condensed Step 2 on IEEE-14,
IEEE-118 and the WECC-scale synthetic interconnection), the PR-8
serving-capacity curve (open-loop Poisson load against a direct service,
a one-shard router and a two-shard router), and the PR-9 health-plane
overhead (obs + flight recorder + monitor loop on the warm DSE frame
loop), and the PR-10 recovery plane (checkpoint/heartbeat overhead on
the live frame loop plus frames-to-recovery after seeded site kills) —
and writes the numbers to ``BENCH_pr10.json`` at the repository
root::

    PYTHONPATH=src python benchmarks/record_bench.py

Acceptance criteria pinned here: the cached + warm-started DSE must stay
at least 1.5× faster than the seed-style cold path while matching its
state to ≤ 1e-10; on hosts with at least 4 cores the process-backend
contingency throughput must reach 3× the thread backend; on hosts with at
least 2 cores, where the sender and the event-driven receiver can
physically run in parallel, the pooled fast path must sustain ≥ 5× the
connect-per-message small-message throughput and ≥ 2× better p50
round-trip latency; and — also on ≥ 2 cores, where timing is not swamped
by single-core scheduler jitter — enabling observability at the default
sampling must cost ≤ 5% on the warm IEEE-118 frame loop, with bit-identical
estimator outputs either way (the parity check runs regardless of cores).
The PR-5 gate follows the same shape: an installed-but-idle fault injector
must cost ≤ 5% on the live IEEE-118 frame loop (≥ 2 cores), with
bit-identical outputs and zero fired faults on every host.  The PR-6 gate:
the warm batched IEEE-118 N-1 sweep must reach ≥ 10× the serial per-outage
loop (≥ 2 cores), scenario forks must stay O(delta) (a ≥ 100× smaller
payload than the network, required on every host), and batch/serial
loadings must agree to ≤ 1e-9.  The PR-7 gate: the condensed Step 2 must
match the reference final state to ≤ 1e-8 on every case (every host),
shrink the WECC-scale exchange volume ≥ 5×, and — on ≥ 2 cores — reduce
the warm WECC-scale Step-2 solve time.  The PR-8 gate: every offered
request must resolve (zero hung, zero untyped failures) on every host;
on ≥ 2 cores, where the shards' dispatcher threads can physically run in
parallel, the two-shard router must sustain ≥ 1.5× the single-service
capacity at the same p99 SLO, and the one-shard router path must stay
within 5% of the direct service's p50 latency.  On smaller hosts the
numbers are still recorded (with the core count) but the scale-dependent
gates are not evaluated.  The PR-9 gate follows the PR-4 shape: enabling
the full health plane (tracer mirror into the flight recorder plus the
monitor's background tick loop) must cost ≤ 5% over the disabled
baseline on the warm IEEE-118 frame loop (≥ 2 cores), with estimator
outputs bit-identical across disabled / obs-only / health modes on every
host.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from bench_middleware_fastpath import (  # noqa: E402
    measure_fabric_throughput,
    measure_roundtrip_latency,
    measure_small_message_throughput,
)
from bench_batch_sweep import (  # noqa: E402
    measure_fork_cost,
    measure_sweep_throughput,
)
from bench_condensation import measure_condensation  # noqa: E402
from bench_serving_capacity import measure_serving_capacity  # noqa: E402
from bench_fault_overhead import measure_fault_overhead  # noqa: E402
from bench_recovery import (  # noqa: E402
    measure_frames_to_recovery,
    measure_recovery_overhead,
)
from bench_obs_overhead import measure_obs_overhead  # noqa: E402
from bench_scaleout_throughput import (  # noqa: E402
    backend_specs,
    bench_contingency_throughput,
    bench_dse_round_throughput,
    bench_serving_batches,
)
from repro.contingency import enumerate_n1  # noqa: E402
from repro.core import ArchitecturePrototype, DseSession  # noqa: E402
from repro.dse import (  # noqa: E402
    DistributedStateEstimator,
    decompose,
    dse_pmu_placement,
)
from repro.estimation import build_gain, pcg_solve  # noqa: E402
from repro.estimation.wls import WlsEstimator  # noqa: E402
from repro.grid import run_ac_power_flow  # noqa: E402
from repro.grid.cases import case118  # noqa: E402
from repro.measurements import full_placement, generate_measurements  # noqa: E402

OUT = ROOT / "BENCH_pr10.json"


def _setup118():
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    return net, pf, dec, ms


def bench_hotpath(net, pf, dec, ms, repeats=3) -> dict:
    """Seed-style cold DSE vs the cached + warm-started hot path."""

    def run(**kw):
        best, res = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = DistributedStateEstimator(dec, ms, **kw).run()
            best = min(best, time.perf_counter() - t0)
        return best, res

    t_seed, r_seed = run(reuse_structures=False, warm_start=False)
    t_hot, r_hot = run(reuse_structures=True, warm_start=True)
    return {
        "case": "ieee118",
        "n_bus": net.n_bus,
        "n_subsystems": dec.m,
        "n_measurements": len(ms),
        "rounds": r_hot.rounds,
        "seed_time_s": t_seed,
        "optimized_time_s": t_hot,
        "speedup": t_seed / t_hot,
        "max_abs_dVm": float(np.abs(r_hot.Vm - r_seed.Vm).max()),
        "max_abs_dVa": float(np.abs(r_hot.Va - r_seed.Va).max()),
    }


def bench_fig6(net, pf, repeats=3) -> dict:
    """E8 — one full DSE cycle (Figure 6) on the architecture prototype."""
    arch = ArchitecturePrototype.assemble(net, m_subsystems=9, seed=0)
    plac = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
    rng = np.random.default_rng(0)
    mset = generate_measurements(net, plac, pf, rng=rng)
    best = None
    for _ in range(repeats):
        session = DseSession(arch)
        report = session.process_frame(mset, truth=(pf.Vm, pf.Va))
        if best is None or report.wall_time < best.wall_time:
            best = report
    arch.close()
    tm = best.timings
    return {
        "case": "ieee118",
        "rounds": best.rounds,
        "wall_time_s": best.wall_time,
        "sim_step1_s": tm.step1,
        "sim_redistribution_s": tm.redistribution,
        "sim_exchange_s": tm.exchange,
        "sim_step2_s": tm.step2,
        "sim_total_s": tm.total,
        "bytes_exchanged": best.bytes_exchanged,
        "vm_rmse_vs_truth": best.vm_rmse_vs_truth,
    }


def bench_pcg_ablation(net, pf, ms) -> dict:
    """A1 — solver iteration counts on the IEEE-118 gain system."""
    est = WlsEstimator(net, ms)
    H = est.model.jacobian(pf.Vm, pf.Va).tocsc()[:, est._keep]
    w = ms.weights
    G = build_gain(H, w)
    rhs = H.T @ (w * (ms.z - est.model.h(pf.Vm, pf.Va)))
    out = {}
    for name, prec in (
        ("cg-none", "none"),
        ("pcg-jacobi", "jacobi"),
        ("pcg-ichol", "ichol"),
    ):
        t0 = time.perf_counter()
        res = pcg_solve(G, rhs, preconditioner=prec, tol=1e-10, max_iter=5000)
        out[name] = {
            "iterations": res.iterations,
            "converged": bool(res.converged),
            "time_s": time.perf_counter() - t0,
        }
    return out


def bench_scaleout(net, dec, ms) -> dict:
    """PR-2 scale-out grid: backend × workers × batch size."""
    cons, _ = enumerate_n1(net)
    specs = backend_specs()
    contingency = bench_contingency_throughput(net, cons, specs=specs)
    dse_rounds = bench_dse_round_throughput(dec, ms, specs=specs)
    serving = bench_serving_batches(dec, ms, cons[:64])
    return {
        "cores": os.cpu_count(),
        "backends": specs,
        "contingency_throughput": contingency,
        "dse_round_throughput": dse_rounds,
        "serving_vs_batch": serving,
    }


def bench_middleware_fastpath() -> dict:
    """PR-3 middleware fast path over localhost TCP."""
    return {
        "cores": os.cpu_count(),
        "small_message_throughput": measure_small_message_throughput(),
        "roundtrip_latency": measure_roundtrip_latency(),
        "fabric_throughput": measure_fabric_throughput(),
    }


def _fastpath_gate(fastpath: dict) -> tuple[bool, str]:
    """≥5× pooled small-message throughput and ≥2× p50 round-trip latency
    vs the connect-per-message baseline, gated on ≥2 cores (the sender and
    the event-driven receiver must be able to run in parallel)."""
    cores = fastpath["cores"] or 1
    tp = fastpath["small_message_throughput"]
    lat = fastpath["roundtrip_latency"]
    summary = (
        f"pooled {tp['pooled_speedup']:.1f}x / batched "
        f"{tp['batched_speedup']:.1f}x throughput, p50 "
        f"{lat['p50_improvement']:.1f}x"
    )
    if cores < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    best = max(tp["pooled_speedup"], tp["batched_speedup"])
    ok = best >= 5.0 and lat["p50_improvement"] >= 2.0
    return ok, f"{summary} (need >= 5.0x throughput and >= 2.0x p50)"


def _scaleout_gate(scaleout: dict) -> tuple[bool, str]:
    """≥3× process-over-thread contingency throughput, gated on ≥4 cores."""
    cores = scaleout["cores"] or 1
    if cores < 4:
        return True, f"gate skipped: {cores} core(s) < 4 (recorded only)"
    rates = scaleout["contingency_throughput"]
    ratios = []
    for spec, rec in rates.items():
        if spec.startswith("processes:"):
            twin = "threads:" + spec.split(":")[1]
            if twin in rates:
                ratios.append(rec["cases_per_s"] / rates[twin]["cases_per_s"])
    if not ratios:
        return False, "gate failed: no process/thread pair measured"
    best = max(ratios)
    ok = best >= 3.0
    return ok, f"best process/thread ratio {best:.2f}x (need >= 3.0x)"


def _obs_gate(rec: dict, cores: int | None) -> tuple[bool, str]:
    """≤5% enabled-mode overhead on the warm DSE frame loop, gated on
    ≥2 cores (single-core scheduler jitter swamps a percent-level signal);
    bit-identical estimator outputs are required on every host."""
    summary = (
        f"overhead {rec['overhead_frac'] * 100:+.2f}% "
        f"({rec['spans_per_frame']:.0f} spans/frame), "
        f"bit-identical={rec['bit_identical']}"
    )
    if not rec["bit_identical"]:
        return False, f"gate failed: outputs differ with obs enabled ({summary})"
    if (cores or 1) < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    ok = rec["overhead_frac"] <= 0.05
    return ok, f"{summary} (need <= +5.00%)"


def _health_gate(rec: dict, cores: int | None) -> tuple[bool, str]:
    """PR-9: ≤5% overhead with the full health plane on (obs + flight
    recorder mirror + monitor tick loop), gated on ≥2 cores; the
    three-way bit-identical check is required on every host."""
    summary = (
        f"health-plane overhead {rec['health_overhead_frac'] * 100:+.2f}%, "
        f"bit-identical={rec['bit_identical']}"
    )
    if not rec["bit_identical"]:
        return False, f"gate failed: outputs differ with health on ({summary})"
    if (cores or 1) < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    ok = rec["health_overhead_frac"] <= 0.05
    return ok, f"{summary} (need <= +5.00%)"


def _fault_gate(rec: dict, cores: int | None) -> tuple[bool, str]:
    """≤5% installed-but-idle injector overhead on the live frame loop,
    gated on ≥2 cores; bit-identical outputs and zero fired faults are
    required on every host."""
    summary = (
        f"idle-injector overhead {rec['overhead_frac'] * 100:+.2f}%, "
        f"bit-identical={rec['bit_identical']}, fired={rec['faults_fired']}"
    )
    if not rec["bit_identical"] or rec["faults_fired"] != 0:
        return False, f"gate failed: outputs differ or faults fired ({summary})"
    if (cores or 1) < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    ok = rec["overhead_frac"] <= 0.05
    return ok, f"{summary} (need <= +5.00%)"


def _batch_gate(sweep: dict, fork: dict, cores: int | None) -> tuple[bool, str]:
    """≥10× warm batched N-1 sweep vs the serial loop, gated on ≥2 cores;
    O(delta) fork payloads (≥100× smaller than the network) and ≤1e-9
    batch/serial loading parity are required on every host."""
    ratio = min(rec["bytes_ratio"] for rec in fork.values())
    summary = (
        f"batched sweep {sweep['batch_speedup_vs_serial']:.1f}x, "
        f"parity {sweep['max_abs_dloading']:.1e}, "
        f"fork payload {ratio:.0f}x smaller than the network"
    )
    if ratio < 100:
        return False, f"gate failed: fork payload not O(delta) ({summary})"
    if sweep["max_abs_dloading"] > 1e-9:
        return False, f"gate failed: batch/serial parity ({summary})"
    if (cores or 1) < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    ok = sweep["batch_speedup_vs_serial"] >= 10.0
    return ok, f"{summary} (need >= 10.0x)"


def _condensation_gate(cond: dict, cores: int | None) -> tuple[bool, str]:
    """≤1e-8 condensed/reference parity on every case (every host), ≥5×
    WECC-scale exchange-byte reduction (every host), and a measurable
    WECC-scale warm Step-2 time reduction (≥2 cores — on a single core
    the solve timings are swamped by scheduler jitter)."""
    wecc = cond["wecc37"]
    parity = max(
        max(rec["max_abs_dVm"], rec["max_abs_dVa"]) for rec in cond.values()
    )
    summary = (
        f"parity {parity:.1e}, wecc bytes {wecc['bytes_reduction']:.1f}x "
        f"smaller, wecc step2 {wecc['step2_speedup']:.2f}x"
    )
    if parity > 1e-8:
        return False, f"gate failed: parity worse than 1e-8 ({summary})"
    if wecc["bytes_reduction"] < 5.0:
        return False, f"gate failed: exchange reduction < 5x ({summary})"
    if (cores or 1) < 2:
        return True, f"time gate skipped: {cores} core(s) < 2 ({summary})"
    ok = wecc["step2_speedup"] > 1.0
    return ok, f"{summary} (need parity <= 1e-8, >= 5x bytes, > 1x step2)"


def _recovery_gate(ov: dict, rec: dict, cores: int | None) -> tuple[bool, str]:
    """≤5% recovery-plane (checkpoints + heartbeats) overhead on the
    live frame loop, gated on ≥ 2 cores; bit-identical clean outputs and
    full recovery from every injected site kill are required on every
    host."""
    summary = (
        f"recovery overhead {ov['overhead_frac'] * 100:+.2f}%, "
        f"bit-identical={ov['bit_identical']}, "
        f"frames-to-recovery mean {rec['mean_frames_to_recovery']:.1f} "
        f"max {rec['max_frames_to_recovery']}"
    )
    if not ov["bit_identical"]:
        return False, f"gate failed: clean recovery-on run diverged ({summary})"
    if not rec["all_recovered"] or rec["max_abs_state_delta"] > 1e-7:
        return False, (
            f"gate failed: a site kill did not recover "
            f"(delta {rec['max_abs_state_delta']:.1e}, {summary})"
        )
    if (cores or 1) < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    ok = ov["overhead_frac"] <= 0.05
    return ok, f"{summary} (need <= +5.00%)"


def _serving_gate(cap: dict) -> tuple[bool, str]:
    """Every offered request resolves (zero hung / untyped failures) on
    every host; on ≥ 2 cores the two-shard router must sustain ≥ 1.5× the
    single-service capacity within the p99 SLO and the one-shard router
    path must stay within 5% of the direct p50 latency."""
    cores = cap["cores"] or 1
    for name, rec in cap["configs"].items():
        for row in rec["rows"]:
            if row["n_hung"] or row["n_failed"]:
                return False, (
                    f"gate failed: {name} at {row['offered_rate']:.0f}/s "
                    f"had {row['n_hung']} hung / {row['n_failed']} untyped "
                    "failures"
                )
    direct = cap["configs"]["direct"]["capacity_per_s"]
    sharded = cap["configs"]["router2"]["capacity_per_s"]
    overhead = cap["router1_overhead"]["overhead_frac"]
    summary = (
        f"capacity direct {direct:.0f}/s vs 2-shard {sharded:.0f}/s, "
        f"router-layer p50 overhead {overhead * 100:+.1f}%"
    )
    if cores < 2:
        return True, f"gate skipped: {cores} core(s) < 2 (recorded: {summary})"
    ok = sharded >= 1.5 * direct and overhead <= 0.05
    return ok, f"{summary} (need >= 1.5x capacity and <= +5% p50)"


def main() -> int:
    net, pf, dec, ms = _setup118()

    print("running hot-path comparison (seed vs optimised) ...")
    hotpath = bench_hotpath(net, pf, dec, ms)
    print(f"  seed {hotpath['seed_time_s'] * 1e3:.1f} ms  "
          f"optimised {hotpath['optimized_time_s'] * 1e3:.1f} ms  "
          f"speedup {hotpath['speedup']:.2f}x")

    print("running E8 (Figure 6 end-to-end cycle) ...")
    fig6 = bench_fig6(net, pf)
    print(f"  wall {fig6['wall_time_s'] * 1e3:.1f} ms, "
          f"sim total {fig6['sim_total_s'] * 1e3:.2f} ms")

    print("running A1 (PCG solver ablation) ...")
    pcg = bench_pcg_ablation(net, pf, ms)
    for name, rec in pcg.items():
        print(f"  {name:>12}: {rec['iterations']} iterations")

    print("running scale-out throughput grid ...")
    scaleout = bench_scaleout(net, dec, ms)
    for spec, rec in scaleout["contingency_throughput"].items():
        print(f"  contingency {spec:>12}: {rec['cases_per_s']:8.1f} cases/s")
    scaleout_ok, scaleout_msg = _scaleout_gate(scaleout)
    print(f"  {scaleout_msg}")

    print("running middleware fast path (localhost TCP) ...")
    fastpath = bench_middleware_fastpath()
    tp = fastpath["small_message_throughput"]
    print(f"  legacy {tp['legacy_msgs_per_s']:8.0f} msgs/s  "
          f"pooled {tp['pooled_msgs_per_s']:8.0f}  "
          f"batched {tp['batched_msgs_per_s']:8.0f}")
    fastpath_ok, fastpath_msg = _fastpath_gate(fastpath)
    print(f"  {fastpath_msg}")

    print("running observability overhead (warm DSE frame loop) ...")
    obs_overhead = measure_obs_overhead()
    print(f"  disabled {obs_overhead['disabled_time_s'] * 1e3:.1f} ms  "
          f"enabled {obs_overhead['enabled_time_s'] * 1e3:.1f} ms")
    obs_ok, obs_msg = _obs_gate(obs_overhead, os.cpu_count())
    print(f"  {obs_msg}")
    health_ok, health_msg = _health_gate(obs_overhead, os.cpu_count())
    print(f"  {health_msg}")

    print("running fault-injection hook overhead (live frame loop) ...")
    fault_overhead = measure_fault_overhead()
    print(f"  uninstalled {fault_overhead['uninstalled_time_s'] * 1e3:.1f} ms  "
          f"idle injector {fault_overhead['installed_idle_time_s'] * 1e3:.1f} ms")
    fault_ok, fault_msg = _fault_gate(fault_overhead, os.cpu_count())
    print(f"  {fault_msg}")

    print("running batched scenario sweep (fork cost + N-1 throughput) ...")
    fork_cost = measure_fork_cost()
    sweep = measure_sweep_throughput()
    print(f"  serial {sweep['serial_time_s'] * 1e3:.1f} ms  "
          f"batched {sweep['batch_time_s'] * 1e3:.1f} ms  "
          f"speedup {sweep['batch_speedup_vs_serial']:.1f}x")
    batch_ok, batch_msg = _batch_gate(sweep, fork_cost, os.cpu_count())
    print(f"  {batch_msg}")

    print("running boundary condensation comparison (PR-7) ...")
    condensation = measure_condensation()
    for name, rec in condensation.items():
        print(f"  {name:>8}: bytes {rec['bytes_reduction']:.2f}x smaller, "
              f"step2 {rec['step2_speedup']:.2f}x, "
              f"parity {max(rec['max_abs_dVm'], rec['max_abs_dVa']):.1e}")
    cond_ok, cond_msg = _condensation_gate(condensation, os.cpu_count())
    print(f"  {cond_msg}")

    print("running serving-capacity curve (PR-8, open-loop load) ...")
    capacity = measure_serving_capacity()
    for name, rec in capacity["configs"].items():
        print(f"  {name:>8}: capacity {rec['capacity_per_s']:8.1f}/s")
    serving_ok, serving_msg = _serving_gate(capacity)
    print(f"  {serving_msg}")

    print("running recovery plane (PR-10, overhead + site-kill failover) ...")
    recovery_overhead = measure_recovery_overhead()
    print(f"  off {recovery_overhead['recovery_off_time_s'] * 1e3:.1f} ms  "
          f"on {recovery_overhead['recovery_on_time_s'] * 1e3:.1f} ms")
    frames_to_recovery = measure_frames_to_recovery()
    recovery_ok, recovery_msg = _recovery_gate(
        recovery_overhead, frames_to_recovery, os.cpu_count())
    print(f"  {recovery_msg}")

    payload = {
        "pr": 10,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": os.cpu_count(),
        "hotpath_dse": hotpath,
        "fig6_end_to_end": fig6,
        "pcg_solver_ablation": pcg,
        "scaleout": scaleout,
        "scaleout_gate": scaleout_msg,
        "middleware_fastpath": fastpath,
        "middleware_fastpath_gate": fastpath_msg,
        "obs_overhead": obs_overhead,
        "obs_overhead_gate": obs_msg,
        "health_overhead_gate": health_msg,
        "fault_overhead": fault_overhead,
        "fault_overhead_gate": fault_msg,
        "fork_cost": fork_cost,
        "batch_sweep": sweep,
        "batch_sweep_gate": batch_msg,
        "condensation": condensation,
        "condensation_gate": cond_msg,
        "serving_capacity": capacity,
        "serving_capacity_gate": serving_msg,
        "recovery_overhead": recovery_overhead,
        "frames_to_recovery": frames_to_recovery,
        "recovery_gate": recovery_msg,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")

    ok = hotpath["speedup"] >= 1.5 and hotpath["max_abs_dVm"] < 1e-10
    if not ok:
        print("ACCEPTANCE FAILED: speedup < 1.5x or parity worse than 1e-10")
    if not scaleout_ok:
        print(f"ACCEPTANCE FAILED: {scaleout_msg}")
    if not fastpath_ok:
        print(f"ACCEPTANCE FAILED: {fastpath_msg}")
    if not obs_ok:
        print(f"ACCEPTANCE FAILED: {obs_msg}")
    if not health_ok:
        print(f"ACCEPTANCE FAILED: {health_msg}")
    if not fault_ok:
        print(f"ACCEPTANCE FAILED: {fault_msg}")
    if not batch_ok:
        print(f"ACCEPTANCE FAILED: {batch_msg}")
    if not cond_ok:
        print(f"ACCEPTANCE FAILED: {cond_msg}")
    if not serving_ok:
        print(f"ACCEPTANCE FAILED: {serving_msg}")
    all_ok = (ok and scaleout_ok and fastpath_ok and obs_ok and health_ok
              and fault_ok and batch_ok and cond_ok and serving_ok)
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
