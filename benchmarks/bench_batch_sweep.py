"""PR-6 batching benchmarks: scenario fork cost and sweep throughput.

Two measurements back the batching layer's claims:

- ``measure_fork_cost`` — creating a scenario must cost O(changed
  elements): a copy-on-write ``net.fork(delta)`` against a deep
  ``net.copy()``, in both payload bytes and wall time, on IEEE-118.
- ``measure_sweep_throughput`` — the IEEE-118 N-1 sweep on three drain
  paths: the serial per-outage loop, the executor fan-out
  (threads, plus processes on multi-core hosts), and the batched
  compensation solve (``analyze_batch``, warm).  The batched path's gate
  is ≥10× the serial loop.

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_batch_sweep.py
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from repro.contingency import ContingencyAnalyzer, enumerate_n1, run_parallel
from repro.grid import NetworkDelta
from repro.grid.cases import case118, synthetic_grid

__all__ = ["measure_fork_cost", "measure_sweep_throughput"]


def _network_bytes(net) -> int:
    return sum(
        getattr(net, f.name).nbytes
        for f in dataclasses.fields(net)
        if isinstance(getattr(net, f.name), np.ndarray)
    )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fork_cost_on(net, case: str, repeats: int, loops: int) -> dict:
    delta = NetworkDelta.branch_outage(7)

    def forks():
        for _ in range(loops):
            net.fork(delta)

    def copies():
        for _ in range(loops):
            net.copy()

    t_fork = _best_of(forks, repeats) / loops
    t_copy = _best_of(copies, repeats) / loops
    return {
        "case": case,
        "n_bus": net.n_bus,
        "delta_bytes": delta.nbytes,
        "network_bytes": _network_bytes(net),
        "bytes_ratio": _network_bytes(net) / delta.nbytes,
        "fork_time_us": t_fork * 1e6,
        "copy_time_us": t_copy * 1e6,
        "fork_speedup": t_copy / t_fork,
    }


def measure_fork_cost(repeats: int = 5, loops: int = 2000) -> dict:
    """Copy-on-write fork vs deep copy: payload bytes and per-scenario time.

    Measured on IEEE-118 (where both are microseconds — the O(delta) win
    is the 2000×-smaller wire/pool payload) and on a ~2700-bus synthetic
    grid, where the fork's O(changed elements) time visibly decouples
    from the deep copy's O(network)."""
    big = synthetic_grid(n_areas=30, buses_per_area=90, seed=0)
    return {
        "ieee118": _fork_cost_on(case118(), "ieee118", repeats, loops),
        "synthetic2700": _fork_cost_on(big, "synthetic2700", repeats, loops),
    }


def measure_sweep_throughput(repeats: int = 5) -> dict:
    """IEEE-118 N-1 sweep: serial loop vs executor fan-out vs one batched
    solve.  The batched analyzer is warmed first (factorization + column
    cache), matching steady-state sweep operation."""
    net = case118()
    cons, _ = enumerate_n1(net)
    analyzer = ContingencyAnalyzer(net, method="dc", rating_margin=1.3)

    t_serial = _best_of(lambda: [analyzer.analyze(c) for c in cons], repeats)

    fanout: dict[str, float] = {}
    specs = ["threads:4"]
    if (os.cpu_count() or 1) >= 2:
        specs.append("processes:4")
    for spec in specs:
        # one throwaway run so process pools measure warm workers
        run_parallel(analyzer, cons, executor=spec)
        fanout[spec] = _best_of(
            lambda: run_parallel(analyzer, cons, executor=spec), repeats
        )

    analyzer.analyze_batch(cons)  # warm the compensation cache
    t_batch = _best_of(lambda: analyzer.analyze_batch(cons), repeats)

    serial_ref = [analyzer.analyze(c) for c in cons]
    batch_ref = analyzer.analyze_batch(cons)
    max_dloading = max(
        abs(a.max_loading - b.max_loading)
        for a, b in zip(serial_ref, batch_ref)
    )

    return {
        "case": "ieee118",
        "n_contingencies": len(cons),
        "serial_time_s": t_serial,
        "fanout_time_s": fanout,
        "batch_time_s": t_batch,
        "batch_speedup_vs_serial": t_serial / t_batch,
        "serial_cases_per_s": len(cons) / t_serial,
        "batch_cases_per_s": len(cons) / t_batch,
        "max_abs_dloading": max_dloading,
    }


def main() -> None:
    for rec in measure_fork_cost().values():
        print(f"fork cost ({rec['case']}, {rec['n_bus']} buses): "
              f"delta {rec['delta_bytes']} B vs network "
              f"{rec['network_bytes']} B ({rec['bytes_ratio']:.0f}x smaller); "
              f"fork {rec['fork_time_us']:.1f} us vs copy "
              f"{rec['copy_time_us']:.1f} us ({rec['fork_speedup']:.1f}x)")

    sweep = measure_sweep_throughput()
    print(f"N-1 sweep ({sweep['n_contingencies']} outages): "
          f"serial {sweep['serial_time_s'] * 1e3:.1f} ms, "
          f"batched {sweep['batch_time_s'] * 1e3:.1f} ms "
          f"({sweep['batch_speedup_vs_serial']:.1f}x), "
          f"parity {sweep['max_abs_dloading']:.2e}")
    for spec, t in sweep["fanout_time_s"].items():
        print(f"  fan-out {spec:>12}: {t * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
