"""Recovery-plane overhead and frames-to-recovery on live DSE runs.

Two measurements back the PR-10 acceptance gate:

1. **Checkpoint overhead** — the live IEEE-118 values-only frame loop
   (site threads, mux fast path, real wire bytes) with recovery off vs
   recovery on.  With no faults injected the recovery plane only packs
   and ships checkpoints and heartbeats; the gate pins that cost at
   ≤ 5% on hosts with at least 2 cores (single-core hosts record the
   numbers without evaluating the gate, the same policy as the
   PR-2..PR-9 gates).  Estimator outputs must be bit-identical either
   way on every host: a clean recovery-enabled run is bitwise inert.

2. **Frames to recovery** — a seeded ``FaultPlan`` hard-disconnects
   each site of a synthetic 3-area grid in turn; the run must declare
   exactly that site lost, promote its subsystem from the replicated
   checkpoint, and re-converge onto the uninterrupted run's state.
   Reported as mean/max frames from the kill to the first clean round
   (degradation is bounded by ``lease_rounds`` plus the promotion
   round).

Standalone::

    PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import faults  # noqa: E402
from repro.cluster import RecoveryConfig  # noqa: E402
from repro.core import LiveDseRuntime  # noqa: E402
from repro.dse import decompose, dse_pmu_placement  # noqa: E402
from repro.faults import FaultInjector, FaultPlan  # noqa: E402
from repro.grid import run_ac_power_flow  # noqa: E402
from repro.grid.cases import case118, synthetic_grid  # noqa: E402
from repro.measurements import full_placement, generate_measurements  # noqa: E402


def measure_recovery_overhead(*, frames: int = 3, repeats: int = 3) -> dict:
    """Best-of-``repeats`` timing of ``frames`` live values-only DSE
    frames with recovery off vs on (no faults); returns timings, the
    relative overhead and the state parity check."""
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    z = ms.z.copy()

    live_off = LiveDseRuntime(dec, ms, fast=True)
    live_on = LiveDseRuntime(
        dec, ms, fast=True, recovery=RecoveryConfig(lease_rounds=2)
    )
    live_off.run(z=z)  # warm the site caches outside the timed region
    live_on.run(z=z)

    def one_repeat(live: LiveDseRuntime) -> float:
        t0 = time.perf_counter()
        for _ in range(frames):
            live.run(z=z)
        return time.perf_counter() - t0

    # Interleave the two states so clock / cache drift over the run
    # biases neither (same discipline as bench_fault_overhead).
    t_off = t_on = float("inf")
    for _ in range(repeats):
        t_off = min(t_off, one_repeat(live_off))
        t_on = min(t_on, one_repeat(live_on))

    res_off = live_off.run(z=z)
    res_on = live_on.run(z=z)
    return {
        "case": "ieee118-live",
        "frames_per_repeat": frames,
        "repeats": repeats,
        "recovery_off_time_s": t_off,
        "recovery_on_time_s": t_on,
        "overhead_frac": t_on / t_off - 1.0,
        "bit_identical": bool(
            not res_off.errors
            and not res_on.errors
            and not res_on.lost_sites
            and np.array_equal(res_on.Vm, res_off.Vm)
            and np.array_equal(res_on.Va, res_off.Va)
        ),
    }


def measure_frames_to_recovery(*, lease_rounds: int = 2) -> dict:
    """Kill every site of a synthetic 3-area grid in turn and record
    how many frames each run spends degraded before failover lands."""
    net = synthetic_grid(n_areas=3, buses_per_area=10, seed=4)
    pf = run_ac_power_flow(net)
    dec = decompose(net, 3, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    rounds = max(1, dec.diameter()) + 20

    def run(plan=None):
        live = LiveDseRuntime(
            dec, ms, fast=True, recv_timeout=0.5, round_deadline=2.0,
            recovery=RecoveryConfig(lease_rounds=lease_rounds),
        )
        if plan is None:
            return live.run(rounds=rounds)
        with faults.injection(FaultInjector(plan)):
            return live.run(rounds=rounds)

    clean = run()
    kills = []
    for victim in range(dec.m):
        src = (victim + 1) % dec.m  # heartbeats give every pair traffic
        plan = FaultPlan(seed=2026).add(
            "mux.forward", "disconnect", key=(src, victim), count=1
        )
        t0 = time.perf_counter()
        res = run(plan)
        dt = time.perf_counter() - t0
        recovered = (
            res.lost_sites == [victim]
            and res.recovered_subsystems == [victim]
        )
        # The kill lands in round 0; degradation ends when the promoted
        # replica answers, so the last degraded round + 1 is the frame
        # count from loss to resumed Step 2.
        frames = (
            max(max(rs) for rs in res.degraded.values()) + 1
            if res.degraded else 0
        )
        parity = float(
            max(
                np.max(np.abs(res.Vm - clean.Vm)),
                np.max(np.abs(res.Va - clean.Va)),
            )
        )
        kills.append(
            {
                "victim": victim,
                "recovered": recovered,
                "frames_to_recovery": frames,
                "max_abs_state_delta": parity,
                "wall_time_s": dt,
            }
        )

    frames = [k["frames_to_recovery"] for k in kills]
    return {
        "case": "synthetic-3area-live",
        "rounds": rounds,
        "lease_rounds": lease_rounds,
        "kills": kills,
        "all_recovered": all(k["recovered"] for k in kills),
        "mean_frames_to_recovery": float(np.mean(frames)),
        "max_frames_to_recovery": int(max(frames)),
        "max_abs_state_delta": max(k["max_abs_state_delta"] for k in kills),
    }


def main() -> int:
    ov = measure_recovery_overhead()
    print(
        f"recovery off {ov['recovery_off_time_s'] * 1e3:8.1f} ms   "
        f"on {ov['recovery_on_time_s'] * 1e3:8.1f} ms   "
        f"overhead {ov['overhead_frac'] * 100:+.2f}%   "
        f"bit-identical {ov['bit_identical']}"
    )
    rec = measure_frames_to_recovery()
    for k in rec["kills"]:
        print(
            f"kill se{k['victim']}: recovered={k['recovered']}  "
            f"frames-to-recovery={k['frames_to_recovery']}  "
            f"state delta {k['max_abs_state_delta']:.1e}  "
            f"({k['wall_time_s'] * 1e3:.0f} ms)"
        )
    print(
        f"frames to recovery: mean {rec['mean_frames_to_recovery']:.1f}  "
        f"max {rec['max_frames_to_recovery']}  "
        f"(lease_rounds={rec['lease_rounds']})"
    )
    ok = (
        ov["bit_identical"]
        and rec["all_recovered"]
        and rec["max_abs_state_delta"] <= 1e-7
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
