"""E4 — Table II: decomposition comparison with and without the mapping.

Paper values for the IEEE 118 system split over 3 areas:

    w/o mapping: 35 / 46 / 37 buses    w/ mapping: 40 / 40 / 38 buses

"w/o mapping" is the conventional three-area split of the IEEE 118 system
(bus-number ranges — the balancing-authority geography); "w/ mapping" is a
balance-driven 3-way partition of the bus graph.
"""

import numpy as np

from repro.dse import decompose, decompose_by_areas

PAPER_WO = (35, 46, 37)
PAPER_W = (40, 40, 38)


def test_table2_mapping_vs_areas(benchmark, net118):
    without = decompose_by_areas(net118)
    with_mapping = benchmark(decompose, net118, 3, seed=0)

    wo = without.sizes().tolist()
    w = with_mapping.sizes().tolist()
    print("\nTable II (reproduced) — buses per area")
    print(f"{'area':>6} | {'w/o mapping':>12} | {'w/ mapping':>11}")
    for i, (a, b) in enumerate(zip(wo, w)):
        print(f"{i + 1:6d} | {a:12d} | {b:11d}")
    print(f" paper |  {PAPER_WO}  |  {PAPER_W}")

    assert sum(wo) == 118 and sum(w) == 118
    # w/o mapping reproduces the paper's column exactly.
    assert tuple(wo) == PAPER_WO
    # w/ mapping equalises the areas (paper: spread 2; allow a little slack).
    assert max(w) - min(w) <= 6
    assert max(w) - min(w) < max(wo) - min(wo)
    # the mapped decomposition is internally connected (the natural
    # bus-number areas need not be)
    assert with_mapping.is_internally_connected()
