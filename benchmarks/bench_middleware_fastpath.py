"""Middleware fast path: legacy connect-per-message vs pooled/multiplexed.

The PR-3 headline benchmark.  The paper's middleware experiments (Tables
III/IV) measure bulk transfers; the quantity that dominates a *running*
distributed state estimation is different — thousands of small
boundary-exchange messages per second (a pseudo-measurement record for a
handful of tie-line buses is a few hundred bytes).  This benchmark
measures exactly that regime over real localhost TCP:

- **legacy** — the seed's connect-per-message pattern (one TCP dial per
  send, ``MWClient(pool=False)``);
- **pooled** — one persistent connection per destination, reused across
  sends;
- **batched** — pooled + ``send_many`` so a burst rides one
  scatter-gather syscall;
- **fabric legacy / fabric fast** — the full data path including the
  store-and-forward hop: per-pair relay pipelines vs the mux router.

``measure_small_message_throughput`` / ``measure_roundtrip_latency`` /
``measure_fabric_throughput`` are importable by ``record_bench.py``; the
``test_*`` wrappers print the comparison for ``pytest benchmarks/ -s``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.middleware import (
    EndpointRegistry,
    MiddlewareFabric,
    MWClient,
    pack_state_update,
)

#: a boundary-exchange record for ~24 tie-line buses (8 + 24*24 bytes)
def exchange_payload(n_buses: int = 24) -> bytes:
    rng = np.random.default_rng(0)
    return bytes(
        pack_state_update(
            np.arange(n_buses, dtype=np.int64),
            1.0 + 0.02 * rng.standard_normal(n_buses),
            0.1 * rng.standard_normal(n_buses),
        )
    )


def _drain(client: MWClient, n: int, timeout: float = 60.0) -> None:
    for _ in range(n):
        client.recv(timeout=timeout)


# ----------------------------------------------------------------------
# point-to-point small-message throughput
# ----------------------------------------------------------------------
def measure_small_message_throughput(
    n_msgs: int = 1500, *, payload: bytes | None = None, batch: int = 64
) -> dict:
    """Messages/second for one sender → one receiver over localhost TCP."""
    payload = payload if payload is not None else exchange_payload()
    out = {"n_msgs": n_msgs, "payload_bytes": len(payload)}

    for mode in ("legacy", "pooled", "batched"):
        registry = EndpointRegistry()
        rx = MWClient("rx", registry)
        rx.serve("tcp://127.0.0.1:0")
        tx = MWClient("tx", registry, pool=(mode != "legacy"))
        try:
            t0 = time.perf_counter()
            if mode == "batched":
                for i in range(0, n_msgs, batch):
                    tx.send_many(
                        "rx", [payload] * min(batch, n_msgs - i)
                    )
            else:
                for _ in range(n_msgs):
                    tx.send("rx", payload)
            _drain(rx, n_msgs)
            elapsed = time.perf_counter() - t0
        finally:
            tx.close()
            rx.close()
        out[f"{mode}_msgs_per_s"] = n_msgs / elapsed
        out[f"{mode}_time_s"] = elapsed
        out[f"{mode}_dials"] = tx.dials

    out["pooled_speedup"] = out["pooled_msgs_per_s"] / out["legacy_msgs_per_s"]
    out["batched_speedup"] = out["batched_msgs_per_s"] / out["legacy_msgs_per_s"]
    return out


# ----------------------------------------------------------------------
# round-trip latency
# ----------------------------------------------------------------------
def measure_roundtrip_latency(n: int = 400, *, payload: bytes | None = None) -> dict:
    """p50/p95 echo round-trip over localhost TCP, legacy vs pooled."""
    payload = payload if payload is not None else exchange_payload()
    out = {"n_roundtrips": n, "payload_bytes": len(payload)}

    for mode in ("legacy", "pooled"):
        pool = mode != "legacy"
        registry = EndpointRegistry()
        a = MWClient("a", registry, pool=pool)
        b = MWClient("b", registry, pool=pool)
        a.serve("tcp://127.0.0.1:0")
        b.serve("tcp://127.0.0.1:0")
        stop = threading.Event()

        def echo():
            while not stop.is_set():
                try:
                    msg = b.recv(timeout=0.5)
                except TimeoutError:
                    continue
                except Exception:
                    break
                b.send("a", msg)

        th = threading.Thread(target=echo, daemon=True)
        th.start()
        try:
            samples = []
            for _ in range(n):
                t0 = time.perf_counter()
                a.send("b", payload)
                a.recv(timeout=30)
                samples.append(time.perf_counter() - t0)
        finally:
            stop.set()
            th.join(timeout=2)
            a.close()
            b.close()
        samples.sort()
        out[f"{mode}_p50_s"] = samples[len(samples) // 2]
        out[f"{mode}_p95_s"] = samples[min(len(samples) - 1, int(0.95 * len(samples)))]

    out["p50_improvement"] = out["legacy_p50_s"] / out["pooled_p50_s"]
    return out


# ----------------------------------------------------------------------
# full data path through the store-and-forward hop
# ----------------------------------------------------------------------
def measure_fabric_throughput(n_msgs: int = 1000, *, payload: bytes | None = None) -> dict:
    """Sustained a→b messages/second through the full fabric data path:
    legacy per-pair pipelines vs the multiplexed router hub."""
    payload = payload if payload is not None else exchange_payload()
    out = {"n_msgs": n_msgs, "payload_bytes": len(payload)}
    for mode, fast in (("legacy", False), ("fast", True)):
        with MiddlewareFabric(
            ["a", "b"], pairs=[("a", "b")], use_tcp=True, fast=fast
        ) as fab:
            t0 = time.perf_counter()
            for _ in range(n_msgs):
                fab.send("a", "b", payload)
            for _ in range(n_msgs):
                fab.recv("b", timeout=60)
            elapsed = time.perf_counter() - t0
        out[f"{mode}_msgs_per_s"] = n_msgs / elapsed
        out[f"{mode}_time_s"] = elapsed
    out["fabric_speedup"] = out["fast_msgs_per_s"] / out["legacy_msgs_per_s"]
    return out


# ----------------------------------------------------------------------
# pytest wrappers
# ----------------------------------------------------------------------
def test_small_message_throughput(benchmark):
    rec = measure_small_message_throughput()
    print("\nMiddleware fast path — sustained small-message throughput "
          f"({rec['payload_bytes']} B payloads, localhost TCP)")
    print(f"{'mode':>8} | {'msgs/s':>10} | {'dials':>6}")
    for mode in ("legacy", "pooled", "batched"):
        print(f"{mode:>8} | {rec[f'{mode}_msgs_per_s']:10.0f} "
              f"| {rec[f'{mode}_dials']:6d}")
    print(f"pooled speedup {rec['pooled_speedup']:.1f}x, "
          f"batched speedup {rec['batched_speedup']:.1f}x")
    # pooling must beat one-dial-per-message, and stop re-dialing
    assert rec["pooled_dials"] == 1
    assert rec["batched_dials"] == 1
    assert rec["pooled_msgs_per_s"] > rec["legacy_msgs_per_s"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_roundtrip_latency(benchmark):
    rec = measure_roundtrip_latency()
    print("\nMiddleware fast path — echo round-trip latency")
    for mode in ("legacy", "pooled"):
        print(f"{mode:>8}: p50 {rec[f'{mode}_p50_s'] * 1e6:8.1f} us   "
              f"p95 {rec[f'{mode}_p95_s'] * 1e6:8.1f} us")
    print(f"p50 improvement {rec['p50_improvement']:.1f}x")
    assert rec["pooled_p50_s"] < rec["legacy_p50_s"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fabric_throughput(benchmark):
    rec = measure_fabric_throughput()
    print("\nMiddleware fast path — full data path (client → hop → buffer)")
    for mode in ("legacy", "fast"):
        print(f"{mode:>8}: {rec[f'{mode}_msgs_per_s']:10.0f} msgs/s")
    print(f"fabric speedup {rec['fabric_speedup']:.1f}x")
    # both planes must sustain traffic; the mux hub must not be slower
    # than the per-pair pipelines by more than noise
    assert rec["fast_msgs_per_s"] > 0.5 * rec["legacy_msgs_per_s"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
