"""E7 — Figure 8: middleware overhead is linear in the data size.

The paper plots the absolute overhead (T2-T1 and T4-T3) against payload
size from 100 MB to 2 GB and observes a linear trend.  We regenerate the
series on the simulated testbed at the paper's sizes and fit a line: the
check is R² ≈ 1 and a positive slope whose inverse is the relay rate.
"""

import numpy as np
import pytest

from repro.cluster import MiddlewareCostModel, pnnl_testbed


def _series(sizes, mw, link):
    return np.array([mw.overhead(s, link) for s in sizes])


def test_fig8_overhead_linear_trend(benchmark):
    topo = pnnl_testbed()
    mw = MiddlewareCostModel()
    sizes = np.array([100e6, 200e6, 500e6, 1000e6, 2000e6])

    local_link = topo.loopback
    lan_link = topo.link("nwiceb", "chinook")
    ov_local = benchmark(_series, sizes, mw, local_link)
    ov_lan = _series(sizes, mw, lan_link)

    print("\nFigure 8 (reproduced) — middleware overhead vs data size")
    print(f"{'size (MB)':>9} | {'overhead local (s)':>18} | "
          f"{'overhead LAN (s)':>16}")
    for s, o1, o2 in zip(sizes, ov_local, ov_lan):
        print(f"{s / 1e6:9.0f} | {o1:18.3f} | {o2:16.3f}")

    for series in (ov_local, ov_lan):
        A = np.column_stack([sizes, np.ones_like(sizes)])
        coef, res, *_ = np.linalg.lstsq(A, series, rcond=None)
        pred = A @ coef
        ss_res = np.sum((series - pred) ** 2)
        ss_tot = np.sum((series - series.mean()) ** 2)
        r2 = 1 - ss_res / ss_tot
        slope = coef[0]
        print(f"linear fit: slope {slope * 1e9:.3f} s/GB, R^2 = {r2:.6f}")
        assert r2 > 0.999  # the paper's "linear trend"
        assert slope > 0
        # inverse slope = relay rate ≈ 0.4 GB/s
        assert 1 / slope == pytest.approx(0.4e9, rel=0.05)


def test_fig8_fastpath_overhead_series(benchmark):
    """Figure 8 with the PR-3 fast path overlaid: the multiplexed relay
    keeps the linear trend (it is still one store-and-forward copy) but
    with a steeper effective relay rate, so its overhead line lies
    strictly below the legacy line at every size."""
    topo = pnnl_testbed()
    legacy = MiddlewareCostModel()
    fast = MiddlewareCostModel(relay_rate=2 * legacy.relay_rate,
                               pipeline_overhead=1e-4)
    sizes = np.array([100e6, 200e6, 500e6, 1000e6, 2000e6])
    link = topo.link("nwiceb", "chinook")

    ov_legacy = benchmark(_series, sizes, legacy, link)
    ov_fast = _series(sizes, fast, link)

    print("\nFigure 8 with the fast-path series")
    print(f"{'size (MB)':>9} | {'overhead legacy (s)':>19} | "
          f"{'overhead fast (s)':>17}")
    for s, o1, o2 in zip(sizes, ov_legacy, ov_fast):
        print(f"{s / 1e6:9.0f} | {o1:19.3f} | {o2:17.3f}")

    # linear trend survives; fast line is below legacy everywhere
    A = np.column_stack([sizes, np.ones_like(sizes)])
    coef, *_ = np.linalg.lstsq(A, ov_fast, rcond=None)
    pred = A @ coef
    r2 = 1 - np.sum((ov_fast - pred) ** 2) / np.sum((ov_fast - ov_fast.mean()) ** 2)
    print(f"fast-path fit: slope {coef[0] * 1e9:.3f} s/GB, R^2 = {r2:.6f}")
    assert r2 > 0.999
    assert coef[0] > 0
    assert 1 / coef[0] == pytest.approx(fast.relay_rate, rel=0.05)
    assert np.all(ov_fast < ov_legacy)

