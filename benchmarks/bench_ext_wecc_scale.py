"""A4 — extension (section VI): the WECC scenario — 37 balancing
authorities running DSE in real time.

The paper's ongoing work deploys DSE across the Western Electricity
Coordinating Council's 37 balancing authorities.  We scale the pipeline to
a synthetic 37-area interconnection, decompose along the balancing
authorities, run a full frame through the architecture, and check that the
simulated distributed Step 1 beats the centralized single-site execution —
the scalability argument motivating the whole system.
"""

import time

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ClusterTopology, LinkSpec
from repro.core import ArchitecturePrototype, ClusterMapper, DseSession
from repro.dse import decompose_by_areas, dse_pmu_placement
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements


@pytest.fixture(scope="module")
def wecc_setup():
    net = synthetic_grid(n_areas=37, buses_per_area=40, seed=11)
    pf = run_ac_power_flow(net, flat_start=True)
    clusters = [
        ClusterSpec(name=f"cc{i}", nodes=8, cores_per_node=8) for i in range(6)
    ]
    topo = ClusterTopology(clusters=clusters)
    wan = LinkSpec(latency=5e-3, bandwidth=115e6)
    for i in range(6):
        for j in range(i + 1, 6):
            topo.add_link(f"cc{i}", f"cc{j}", wan)

    arch = ArchitecturePrototype.assemble(net, m_subsystems=37, topology=topo,
                                          seed=0)
    arch.dec = decompose_by_areas(net)
    arch.mapper = ClusterMapper(topo, seed=0)
    rng = np.random.default_rng(0)
    placement = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
    mset = generate_measurements(net, placement, pf, rng=rng)
    yield net, pf, arch, mset
    arch.close()


def test_wecc_scale_frame(benchmark, wecc_setup):
    net, pf, arch, mset = wecc_setup

    def frame():
        session = DseSession(arch)
        return session.process_frame(mset, truth=(pf.Vm, pf.Va))

    report = benchmark.pedantic(frame, rounds=2, iterations=1)

    t0 = time.perf_counter()
    cen = estimate_state(net, mset)
    cen_wall = time.perf_counter() - t0

    tm = report.timings
    print(f"\nA4 — WECC-scale extension ({net.n_bus} buses, 37 BAs, "
          f"6 clusters)")
    print(f"  step-1 sim makespan   : {tm.step1 * 1e3:8.1f} ms")
    print(f"  exchange sim          : {tm.exchange * 1e3:8.1f} ms")
    print(f"  step-2 sim makespan   : {tm.step2 * 1e3:8.1f} ms")
    print(f"  total sim             : {tm.total * 1e3:8.1f} ms")
    print(f"  centralized (1 site)  : {cen_wall * 1e3:8.1f} ms")
    print(f"  imbalance step1/step2 : {report.imbalance_step1:.3f} / "
          f"{report.imbalance_step2:.3f}")
    print(f"  accuracy Vm RMSE      : dist {report.vm_rmse_vs_truth:.2e} "
          f"vs cen {cen.state_error(pf.Vm, pf.Va)['vm_rmse']:.2e}")

    # Scalability shape: distributing Step 1 (the centralized function the
    # architecture decentralizes) beats the single-site whole-system solve.
    assert tm.step1 < cen_wall
    # Mapping keeps the 37 subsystems balanced over 6 clusters.
    assert report.imbalance_step1 <= 1.3
    # Estimation quality survives the distribution.
    assert report.vm_rmse_vs_truth < 5e-3
