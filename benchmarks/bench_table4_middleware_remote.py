"""E6 — Table IV: direct vs. through-middleware transfer between a
workstation and an HPC cluster.

Paper (over the laboratory LAN):

    size   T3 direct (s)  T4 w/ MeDICi (s)  overhead (s)
    100MB  0.873          1.256             0.383
    200MB  1.744          2.430             0.686
    500MB  4.400          6.133             1.734
    1GB    8.825          11.816            2.991
    2GB    17.755         24.058            6.304

We have no second machine, so this table runs on the calibrated simulated
testbed: the paper's own measured link rate (~115 MB/s payload throughput)
and relay rate (~0.4 GB/s) parameterise the models, and we regenerate the
full table at the paper's actual sizes.  The checks compare our rows
directly against the published numbers.
"""

import pytest

from repro.cluster import MiddlewareCostModel, pnnl_testbed

GB = 1e9
MB = 1e6

PAPER_ROWS = [
    # (bytes, T3, T4)
    (100 * MB, 0.872868, 1.255889),
    (200 * MB, 1.743650, 2.430136),
    (500 * MB, 4.399657, 6.133293),
    (1000 * MB, 8.825293, 11.816114),
    (2000 * MB, 17.754515, 24.058421),
]


def _rows(topo, mw):
    link = topo.link("nwiceb", "chinook")
    out = []
    for nbytes, t3_ref, t4_ref in PAPER_ROWS:
        t3 = mw.direct_time(nbytes, link)
        t4 = mw.relayed_time(nbytes, link)
        out.append((nbytes, t3, t4, t3_ref, t4_ref))
    return out


def test_table4_remote_overhead(benchmark):
    topo = pnnl_testbed()
    mw = MiddlewareCostModel()
    rows = benchmark(_rows, topo, mw)

    print("\nTable IV (reproduced on the simulated testbed) — across the LAN")
    print(f"{'size':>7} | {'T3 sim (s)':>10} | {'T3 paper':>9} | "
          f"{'T4 sim (s)':>10} | {'T4 paper':>9} | {'ovh sim':>8} | {'ovh paper':>9}")
    for nbytes, t3, t4, t3_ref, t4_ref in rows:
        print(f"{nbytes / MB:5.0f}MB | {t3:10.3f} | {t3_ref:9.3f} | "
              f"{t4:10.3f} | {t4_ref:9.3f} | {t4 - t3:8.3f} | "
              f"{t4_ref - t3_ref:9.3f}")

    for nbytes, t3, t4, t3_ref, t4_ref in rows:
        # within 25% of every published cell (the models are calibrated on
        # the 2 GB row; the rest follows from linearity)
        assert t3 == pytest.approx(t3_ref, rel=0.25)
        assert t4 == pytest.approx(t4_ref, rel=0.25)
        assert t4 > t3

    # Paper's headline: relative overhead comparable to the local scenario,
    # relay rate ~0.4 GB/s.
    nbytes, t3, t4, *_ = rows[-1]
    rate = nbytes / (t4 - t3)
    print(f"implied relay rate: {rate / GB:.2f} GB/s (paper: ~0.4)")
    assert rate == pytest.approx(0.4e9, rel=0.2)


def test_table4_fastpath_projection(benchmark):
    """Project Table IV onto the PR-3 fast path.

    The fast path removes the per-transfer dial and handshake from the
    relay hop (persistent pooled links, one mux connection per site) and
    forwards header+payload with scatter-gather writes instead of a
    re-framing copy.  Model that as the same linear relay with a higher
    effective relay rate and a near-zero fixed pipeline cost, and check
    the *shape*: every relayed cell improves, the direct column is
    untouched, and the overhead stays linear in size."""
    topo = pnnl_testbed()
    legacy = MiddlewareCostModel()
    # conservative fast-path calibration: the local measurement
    # (bench_middleware_fastpath) shows >2x relay-rate improvement and a
    # pooled link amortises the per-transfer pipeline setup away
    fast = MiddlewareCostModel(relay_rate=2 * legacy.relay_rate,
                               pipeline_overhead=1e-4)
    rows = benchmark(_rows, topo, legacy)
    link = topo.link("nwiceb", "chinook")

    print("\nTable IV projected onto the fast path")
    print(f"{'size':>7} | {'T4 legacy (s)':>13} | {'T4 fast (s)':>11} | "
          f"{'ovh legacy':>10} | {'ovh fast':>8}")
    for nbytes, t3, t4, *_ in rows:
        t4_fast = fast.relayed_time(nbytes, link)
        ov_legacy = t4 - t3
        ov_fast = t4_fast - t3
        print(f"{nbytes / MB:5.0f}MB | {t4:13.3f} | {t4_fast:11.3f} | "
              f"{ov_legacy:10.3f} | {ov_fast:8.3f}")
        # direct column is untouched; relayed column strictly improves
        assert fast.direct_time(nbytes, link) == t3
        assert t3 < t4_fast < t4
        # overhead shrinks by about the relay-rate ratio
        assert ov_fast == pytest.approx(ov_legacy / 2, rel=0.1)
