"""A5 — ablation: counter-based dynamic load balancing for contingency
analysis (the paper's HPC reference, Chen et al. [2]).

The HPC state-estimation code the architecture hosts descends from PNNL's
massive contingency analysis work, whose headline result is that a shared
counter beats static pre-assignment when per-case solve times vary.  We
reproduce that comparison on the simulated testbed with AC-solve-like
lognormal case durations and on real threads with actual DC re-solves of
the IEEE 118 system.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ClusterTopology
from repro.contingency import (
    ContingencyAnalyzer,
    enumerate_n1,
    run_parallel_threads,
    simulate_parallel_analysis,
)


def test_ablation_counter_balancing_simulated(benchmark):
    rng = np.random.default_rng(0)
    # lognormal case times: most fast, a heavy tail of hard cases
    durations = rng.lognormal(-4.0, 1.2, 1000)
    topo = ClusterTopology(
        clusters=[ClusterSpec(name="hpc", nodes=4, cores_per_node=8)]
    )

    dyn = benchmark(simulate_parallel_analysis, durations, topo, scheme="dynamic")
    sta = simulate_parallel_analysis(durations, topo, scheme="static")

    speedup = sta.makespan / dyn.makespan
    print("\nA5 — counter-based dynamic vs static balancing "
          "(1000 cases, 32 cores, simulated)")
    print(f"  {'static':>8}: makespan {sta.makespan:.4f}s  "
          f"busy-imbalance {sta.imbalance:.3f}")
    print(f"  {'dynamic':>8}: makespan {dyn.makespan:.4f}s  "
          f"busy-imbalance {dyn.imbalance:.3f}")
    print(f"  dynamic speedup: {speedup:.2f}x")

    assert dyn.makespan < sta.makespan
    assert dyn.imbalance < sta.imbalance


def test_ablation_counter_balancing_threads(benchmark, net118):
    analyzer = ContingencyAnalyzer(net118, method="dc", rating_margin=1.3)
    safe, _ = enumerate_n1(net118)

    rep_dyn = benchmark.pedantic(
        run_parallel_threads, args=(analyzer, safe),
        kwargs={"n_workers": 4, "scheme": "dynamic"}, rounds=2, iterations=1,
    )
    rep_sta = run_parallel_threads(analyzer, safe, n_workers=4, scheme="static")

    print("\nA5 — real-thread N-1 sweep of the IEEE 118 system "
          f"({len(safe)} cases, 4 workers)")
    print(f"  dynamic: makespan {rep_dyn.makespan * 1e3:.1f} ms, "
          f"cases/worker {rep_dyn.per_worker_cases}")
    print(f"  static : makespan {rep_sta.makespan * 1e3:.1f} ms, "
          f"cases/worker {rep_sta.per_worker_cases}")
    insecure = sum(1 for r in rep_dyn.results if not r.secure)
    print(f"  insecure contingencies at 1.3x ratings: {insecure}/{len(safe)}")

    assert sum(rep_dyn.per_worker_cases) == len(safe)
    assert sum(rep_sta.per_worker_cases) == len(safe)
    # both finish the sweep well inside a SCADA scan period
    assert rep_dyn.makespan < 4.0
