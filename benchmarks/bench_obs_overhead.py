"""Observability instrumentation overhead on the DSE hot path.

Measures the IEEE-118 values-only frame loop — the hot path the scenario
service drives — with observability disabled (the default: one flag check
per instrumentation point) and enabled at the default sampling (every
trace recorded, spans + metrics live), and reports the relative slowdown.

The PR-4 acceptance gate pins the enabled-mode overhead at ≤ 5% on hosts
with at least 2 cores; single-core hosts record the numbers without
evaluating the gate (timing noise under core contention swamps the
signal, the same policy as the PR-2/PR-3 gates).  Estimator outputs must
be bit-identical either way.

Standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import obs  # noqa: E402
from repro.dse import (  # noqa: E402
    DistributedStateEstimator,
    decompose,
    dse_pmu_placement,
)
from repro.grid import run_ac_power_flow  # noqa: E402
from repro.grid.cases import case118  # noqa: E402
from repro.measurements import full_placement, generate_measurements  # noqa: E402


def measure_obs_overhead(*, frames: int = 10, repeats: int = 5) -> dict:
    """Best-of-``repeats`` timing of ``frames`` warm values-only DSE
    frames, observability off vs on; returns timings, overhead and the
    state parity check."""
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    z = ms.z.copy()

    dse = DistributedStateEstimator(dec, ms)
    dse.run(z=z)  # warm the caches outside the timed region

    def one_repeat() -> float:
        t0 = time.perf_counter()
        for _ in range(frames):
            dse.run(z=z)
        return time.perf_counter() - t0

    # Interleave the three modes so clock-frequency / cache drift over the
    # run biases none of them: measuring all-off then all-on has been seen
    # to misattribute several percent of drift to the instrumentation.
    # "health" is full observability plus the PR-9 health plane: tracer
    # mirror feeding the flight recorder and the monitor's tick loop
    # running concurrently on its default interval.
    prior = obs.enabled()
    t_off = t_on = t_health = float("inf")

    def health_mode(on: bool) -> None:
        obs.configure(enabled=on, health=on, reset=True)
        if on:
            obs.health().start(interval=0.25)

    try:
        for _ in range(repeats):
            obs.configure(enabled=False, health=False, reset=True)
            t_off = min(t_off, one_repeat())
            obs.configure(enabled=True, health=False, reset=True)
            t_on = min(t_on, one_repeat())
            health_mode(True)
            t_health = min(t_health, one_repeat())
            health_mode(False)

        obs.configure(enabled=False, health=False, reset=True)
        res_off = dse.run(z=z)
        obs.configure(enabled=True, health=False, reset=True)
        res_on = dse.run(z=z)
        spans_per_frame = len(obs.tracer().finished())
        health_mode(True)
        res_health = dse.run(z=z)
        health_mode(False)
    finally:
        obs.configure(enabled=prior, health=False, reset=True)

    same = np.array_equal
    return {
        "case": "ieee118",
        "frames_per_repeat": frames,
        "repeats": repeats,
        "disabled_time_s": t_off,
        "enabled_time_s": t_on,
        "health_time_s": t_health,
        "overhead_frac": t_on / t_off - 1.0,
        "health_overhead_frac": t_health / t_off - 1.0,
        "spans_per_frame": spans_per_frame,
        "bit_identical": bool(
            same(res_on.Vm, res_off.Vm) and same(res_on.Va, res_off.Va)
            and same(res_health.Vm, res_off.Vm)
            and same(res_health.Va, res_off.Va)
        ),
    }


def main() -> int:
    rec = measure_obs_overhead()
    print(
        f"disabled {rec['disabled_time_s'] * 1e3:8.1f} ms   "
        f"enabled {rec['enabled_time_s'] * 1e3:8.1f} ms   "
        f"overhead {rec['overhead_frac'] * 100:+.2f}%   "
        f"({rec['spans_per_frame']:.0f} spans/frame)"
    )
    print(
        f"health   {rec['health_time_s'] * 1e3:8.1f} ms   "
        f"overhead {rec['health_overhead_frac'] * 100:+.2f}% "
        "(obs + flight recorder + monitor loop)"
    )
    print(f"bit-identical outputs: {rec['bit_identical']}")
    return 0 if rec["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
