"""PR-7 condensation benchmarks: Schur-reduced Step-2 exchange and solve.

``measure_condensation`` runs the reference and the boundary-condensed
DSE over the same warm estimators on three systems — IEEE-14, IEEE-118
and the WECC-scale synthetic interconnection of
:mod:`bench_ext_wecc_scale` (37 balancing authorities) — and records per
case:

- final-state parity between the two paths (gate: ≤ 1e-8 everywhere);
- exchanged wire bytes, reference vs condensed (gate: ≥ 5× reduction at
  WECC scale — the tie-endpoint boundary blocks against full
  exchange-set broadcasts);
- warm Step-2 solve time, reference vs condensed (gate: a measurable
  reduction at WECC scale, evaluated on ≥ 2 core hosts only — the
  boundary-sized solves against full extended re-factorizations).

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_condensation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.dse import (
    DistributedStateEstimator,
    decompose,
    decompose_by_areas,
    dse_pmu_placement,
)
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14, case118, synthetic_grid
from repro.measurements import full_placement, generate_measurements

__all__ = ["measure_condensation"]

#: benchmark systems: name -> (network builder, decomposition builder)
CASES = {
    "ieee14": (case14, lambda net: decompose(net, 3, seed=0)),
    "ieee118": (case118, lambda net: decompose(net, 4, seed=0)),
    "wecc37": (
        lambda: synthetic_grid(n_areas=37, buses_per_area=40, seed=11),
        decompose_by_areas,
    ),
}


def _warm_step2_time(dse: DistributedStateEstimator, repeats: int):
    """Best-of warm frame; returns (summed step2 time, result)."""
    best, res = float("inf"), None
    for _ in range(repeats):
        r = dse.run()
        s2 = sum(sum(rec.step2_times) for rec in r.records.values())
        if s2 < best:
            best, res = s2, r
    return best, res


def measure_condensation(repeats: int = 3) -> dict:
    out = {}
    for name, (build_net, build_dec) in CASES.items():
        net = build_net()
        dec = build_dec(net)
        pf = run_ac_power_flow(net, flat_start=True)
        rng = np.random.default_rng(7)
        plac = full_placement(net).merged_with(dse_pmu_placement(dec))
        ms = generate_measurements(net, plac, pf, rng=rng)

        ref_dse = DistributedStateEstimator(dec, ms)
        con_dse = DistributedStateEstimator(dec, ms, condense=True)
        ref_dse.run()  # warm the caches before timing
        t0 = time.perf_counter()
        con_dse.run()  # first condensed frame pays the factorization
        cold_frame = time.perf_counter() - t0
        s2_ref, r_ref = _warm_step2_time(ref_dse, repeats)
        s2_con, r_con = _warm_step2_time(con_dse, repeats)

        recs = r_con.records.values()
        out[name] = {
            "n_bus": net.n_bus,
            "n_subsystems": dec.m,
            "rounds": r_con.rounds,
            "max_abs_dVm": float(np.abs(r_con.Vm - r_ref.Vm).max()),
            "max_abs_dVa": float(np.abs(r_con.Va - r_ref.Va).max()),
            "bytes_reference": r_ref.total_bytes_exchanged,
            "bytes_condensed": r_con.total_bytes_exchanged,
            "bytes_reduction": (
                r_ref.total_bytes_exchanged / r_con.total_bytes_exchanged
            ),
            "step2_reference_s": s2_ref,
            "step2_condensed_s": s2_con,
            "step2_speedup": s2_ref / s2_con,
            "cold_condensed_frame_s": cold_frame,
            "factor_time_s": sum(
                con_dse._step2_cache[s][0].factor_time for s in range(dec.m)
            ),
            "boundary_states": sum(rec.n_boundary_states for rec in recs),
            "interior_states": sum(rec.n_interior_states for rec in recs),
            "fallbacks": sum(
                con_dse._step2_cache[s][0].fallbacks for s in range(dec.m)
            ),
        }
    return out


def main() -> None:
    res = measure_condensation()
    print("PR-7 — boundary condensation (reference vs condensed Step 2)")
    for name, rec in res.items():
        print(
            f"  {name:8s} ({rec['n_bus']:5d} buses, {rec['n_subsystems']:2d} "
            f"subsystems, {rec['rounds']} rounds)"
        )
        print(
            f"    parity     : dVm {rec['max_abs_dVm']:.2e}  "
            f"dVa {rec['max_abs_dVa']:.2e}"
        )
        print(
            f"    wire bytes : {rec['bytes_reference']:8d} -> "
            f"{rec['bytes_condensed']:8d}  ({rec['bytes_reduction']:.2f}x "
            "smaller)"
        )
        print(
            f"    step2 time : {rec['step2_reference_s'] * 1e3:8.1f} ms -> "
            f"{rec['step2_condensed_s'] * 1e3:8.1f} ms  "
            f"({rec['step2_speedup']:.2f}x)"
        )
        print(
            f"    condensed  : {rec['boundary_states']} boundary / "
            f"{rec['interior_states']} interior states, factorization "
            f"{rec['factor_time_s'] * 1e3:.1f} ms, "
            f"{rec['fallbacks']} fallbacks"
        )


if __name__ == "__main__":
    main()
