"""A9 — scaling sweep: the architecture as the system grows (section I).

The paper's motivation is growth: more PMUs, more subsystems, more data.
We sweep synthetic interconnections from 10 to 30 balancing authorities
through the full pipeline and track how the distributed Step-1 makespan
scales against the centralized whole-system solve — the crossover the
architecture exists to win.
"""

import time

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ClusterTopology, LinkSpec
from repro.core import ArchitecturePrototype, ClusterMapper, DseSession
from repro.dse import decompose_by_areas, dse_pmu_placement
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import synthetic_grid
from repro.measurements import full_placement, generate_measurements

SWEEP = (10, 20, 30)
BUSES_PER_AREA = 30


def _topology(p=4):
    clusters = [ClusterSpec(name=f"cc{i}", nodes=8, cores_per_node=8)
                for i in range(p)]
    topo = ClusterTopology(clusters=clusters)
    wan = LinkSpec(latency=2e-3, bandwidth=115e6)
    for i in range(p):
        for j in range(i + 1, p):
            topo.add_link(f"cc{i}", f"cc{j}", wan)
    return topo


def _one_point(n_areas: int) -> dict:
    net = synthetic_grid(n_areas=n_areas, buses_per_area=BUSES_PER_AREA,
                         seed=21)
    pf = run_ac_power_flow(net, flat_start=True)
    with ArchitecturePrototype.assemble(
        net, m_subsystems=n_areas, topology=_topology(), seed=0
    ) as arch:
        arch.dec = decompose_by_areas(net)
        arch.mapper = ClusterMapper(arch.topology, seed=0)
        rng = np.random.default_rng(0)
        plac = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
        ms = generate_measurements(net, plac, pf, rng=rng)
        session = DseSession(arch)
        rep = session.process_frame(ms, truth=(pf.Vm, pf.Va))

        # Per-subsystem step-1 durations for the load-insensitive
        # parallelism metric (serial work / parallel makespan).
        from repro.dse import DistributedStateEstimator

        dse = DistributedStateEstimator(arch.dec, ms)
        records = dse.run(rounds=1).records
        step1_times = [r.step1_time for r in records.values()]

        t0 = time.perf_counter()
        estimate_state(net, ms)
        cen = time.perf_counter() - t0
    return {
        "areas": n_areas,
        "buses": net.n_bus,
        "step1": rep.timings.step1,
        "serial_work": sum(step1_times),
        "slowest_subsystem": max(step1_times),
        "total": rep.timings.total,
        "centralized": cen,
        "vm_rmse": rep.vm_rmse_vs_truth,
        "imbalance": rep.imbalance_step1,
    }


def test_scaling_sweep(benchmark):
    rows = [_one_point(n) for n in SWEEP]
    benchmark.pedantic(_one_point, args=(SWEEP[0],), rounds=1, iterations=1)

    print("\nA9 — scaling sweep (4 clusters, 30 buses per balancing authority)")
    print(f"{'areas':>6} | {'buses':>6} | {'step1 (ms)':>10} | "
          f"{'centralized (ms)':>16} | {'parallelism':>11} | {'Vm RMSE':>9}")
    for r in rows:
        par = r["serial_work"] / r["slowest_subsystem"]
        print(f"{r['areas']:6d} | {r['buses']:6d} | {r['step1'] * 1e3:10.1f} | "
              f"{r['centralized'] * 1e3:16.1f} | {par:11.2f} | "
              f"{r['vm_rmse']:.3e}")

    # The architecture's scaling claim: the parallelisable work grows with
    # the system while the critical path (the slowest single subsystem)
    # stays flat — measured load-insensitively as serial-work / slowest-
    # subsystem from the same timing samples.
    parallelism = [r["serial_work"] / r["slowest_subsystem"] for r in rows]
    assert parallelism[-1] > parallelism[0]
    # distributing beats the single-site solve at the largest size (the
    # smaller points are informational; wall-clock noise can blur them)
    assert rows[-1]["step1"] < rows[-1]["centralized"]
    # accuracy holds across the sweep
    assert all(r["vm_rmse"] < 5e-3 for r in rows)
    # mapping stays balanced
    assert all(r["imbalance"] < 1.4 for r in rows)
