"""E1 — Table I: initial vertex/edge weights of the IEEE-118 decomposition.

Paper values (9 subsystems of the IEEE 118 system): vertex weights
14,13,13,13,13,12,14,13,13 (bus counts) and edge weights equal to the sum
of the endpoint subsystems' bus counts (25-27).  The size-targeted
decomposition reproduces the vertex-weight column *exactly*; the edge list
depends on which buses land in which subsystem, so edge weights match the
paper's scheme and range rather than its exact adjacency.
"""

import numpy as np

from repro.core import vertex_weights
from repro.dse import decompose_with_sizes, exchange_bus_sets

PAPER_SIZES = (14, 13, 13, 13, 13, 12, 14, 13, 13)


def test_table1_initial_weights(benchmark, net118):
    dec = benchmark(decompose_with_sizes, net118, PAPER_SIZES, seed=0)
    g = dec.quotient_graph()
    pairs, w = g.edge_list()

    print("\nTable I (reproduced) — initial weights of the decomposition graph")
    print(f"{'vertex':>7} | {'weight (bus count)':>18} | {'paper':>5}")
    for s, x in enumerate(g.vwgt):
        print(f"{s + 1:7d} | {int(x):18d} | {PAPER_SIZES[s]:5d}")
    print(f"{'edge':>10} | {'weight (size sum)':>17}")
    for (u, v), x in zip(pairs, w):
        print(f"({u + 1:3d},{v + 1:3d}) | {int(x):17d}")

    # Vertex weights reproduce the paper's column exactly.
    assert tuple(g.vwgt.tolist()) == PAPER_SIZES
    # The defining property of Table I's edge weights:
    sizes = dec.sizes()
    for (u, v), x in zip(pairs, w):
        assert x == sizes[u] + sizes[v]
    # Same range as the paper's 25-27.
    assert w.min() >= 24 and w.max() <= 29
    assert dec.is_internally_connected()


def test_table1_noise_scaled_vertex_weights(benchmark, dec118):
    """Expression (4) at work: the runtime vertex weights scale the bus
    counts by the expected iteration count."""
    w = benchmark(vertex_weights, dec118, 1.0)
    print("\nvertex weights at noise level x=1.0 (Wv = Nb * Ni):", w.tolist())
    assert np.all(w > dec118.sizes())  # Ni > 1


def test_table1_exchange_edge_weights(benchmark, dec118):
    """Expression (5): We = gs(s1) + gs(s2) from the sensitivity analysis —
    the refinement of the Table I upper bound."""
    sets = benchmark(exchange_bus_sets, dec118)
    sizes = dec118.sizes()
    print("\nexchange-set sizes gs(s):", [len(sets[s]) for s in range(dec118.m)])
    for s in range(dec118.m):
        assert 0 < len(sets[s]) <= sizes[s]
