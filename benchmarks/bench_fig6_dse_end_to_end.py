"""E8 — Figure 6: the full per-frame DSE execution on the architecture.

Figure 6 is the paper's pseudo-code for one state-estimation cycle: map →
Step 1 → exchange pseudo measurements via MeDICi → remap → Step 2 → final
combination.  This benchmark runs the entire pipeline (real local WLS
solves, real weight estimation and mapping, simulated-testbed replay) on
the IEEE 118 system and reports the phase breakdown.
"""

import numpy as np

from repro.core import ArchitecturePrototype, DseSession
from repro.dse import dse_pmu_placement
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


def test_fig6_end_to_end_frame(benchmark, net118, pf118):
    arch = ArchitecturePrototype.assemble(net118, m_subsystems=9, seed=0)
    placement = full_placement(net118).merged_with(dse_pmu_placement(arch.dec))
    rng = np.random.default_rng(0)
    mset = generate_measurements(net118, placement, pf118, rng=rng)

    def frame():
        session = DseSession(arch)
        return session.process_frame(mset, truth=(pf118.Vm, pf118.Va))

    report = benchmark.pedantic(frame, rounds=3, iterations=1)

    tm = report.timings
    print("\nFigure 6 (reproduced) — one DSE cycle on the architecture")
    print(f"  noise level x            : {report.noise_level:.3f}")
    print(f"  expected iterations Ni   : {report.expected_iterations:.1f}")
    print(f"  Step-2 rounds (diameter) : {report.rounds}")
    print(f"  sim Step 1 compute       : {tm.step1 * 1e3:8.2f} ms")
    print(f"  sim data redistribution  : {tm.redistribution * 1e3:8.2f} ms")
    print(f"  sim Step 2 exchange      : {tm.exchange * 1e3:8.2f} ms")
    print(f"  sim Step 2 compute       : {tm.step2 * 1e3:8.2f} ms")
    print(f"  sim total                : {tm.total * 1e3:8.2f} ms")
    print(f"  bytes through middleware : {report.bytes_exchanged}")
    print(f"  Vm RMSE vs truth         : {report.vm_rmse_vs_truth:.2e}")

    # the distributed cycle must be dominated by compute, with the
    # middleware exchange a minor share — the paper's "low overhead" claim
    assert tm.exchange < 0.5 * tm.total
    # accuracy within measurement noise
    assert report.vm_rmse_vs_truth < 3e-3
    arch.close()


def test_fig6_exchange_volume_small(net118, pf118, dec118, mset118):
    """The paper's rationale for tolerating middleware overhead: DSE only
    exchanges pseudo measurements (boundary + sensitive buses), a tiny
    fraction of the raw telemetry."""
    from repro.dse import DistributedStateEstimator

    dse = DistributedStateEstimator(dec118, mset118)
    res = dse.run()
    raw_bytes = len(mset118) * 8 * 3  # value + sigma + id per channel
    print(f"\nexchanged {res.total_bytes_exchanged} bytes vs "
          f"{raw_bytes} bytes of raw telemetry per frame")
    assert res.total_bytes_exchanged < 2 * raw_bytes
