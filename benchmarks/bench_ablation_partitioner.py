"""A2 — ablation: the multilevel k-way partitioner against cheaper
alternatives (random balanced assignment, greedy growing without
refinement).

DESIGN.md calls out the partitioner quality as a design choice — the METIS
stand-in must earn its complexity on decomposition-graph-like inputs.  The
comparison holds the balance constraint fixed: a partition only counts if
its load imbalance is within the feasibility bound, since an unbalanced
partition can always buy a smaller edge-cut (the k=1 "partition" cuts
nothing).
"""

import numpy as np

from repro.core.weights import step2_graph
from repro.dse import decompose, exchange_bus_sets
from repro.grid.cases import synthetic_grid
from repro.partition import (
    edge_cut,
    greedy_growing,
    load_imbalance,
    partition_kway,
)

IMBALANCE_BOUND = 1.25


def _best_feasible_random(g, k, rng, tries=500):
    """Best edge-cut among random assignments meeting the balance bound."""
    best = None
    feasible = 0
    for _ in range(tries):
        part = rng.integers(0, k, g.n_vertices)
        if load_imbalance(g, part, k) > IMBALANCE_BOUND:
            continue
        feasible += 1
        cut = edge_cut(g, part)
        if best is None or cut < best:
            best = cut
    return best, feasible


def _report(name, g, part, k):
    cut = edge_cut(g, part)
    imb = load_imbalance(g, part, k)
    print(f"  {name:>22}: edge-cut {cut:6d}  imbalance {imb:.3f}")
    return cut, imb


def test_ablation_partitioner_118(benchmark, dec118):
    sets = exchange_bus_sets(dec118)
    g = step2_graph(dec118, 1.0, sets)
    k = 3
    rng = np.random.default_rng(0)

    res = benchmark(partition_kway, g, k, seed=0)

    print("\nA2 — partitioner ablation on the IEEE-118 Step-2 graph (k=3)")
    cut_ml, imb_ml = _report("multilevel k-way", g, res.part, k)
    cut_rand, feasible = _best_feasible_random(g, k, rng)
    print(f"  {'random (feasible best)':>22}: edge-cut {cut_rand:6d}  "
          f"({feasible} feasible of 500)")
    greedy = greedy_growing(g, k, np.random.default_rng(0))
    cut_greedy, imb_greedy = _report("greedy growing only", g, greedy, k)

    assert imb_ml <= IMBALANCE_BOUND
    assert cut_ml <= cut_rand
    if imb_greedy <= IMBALANCE_BOUND:
        assert cut_ml <= cut_greedy


def test_ablation_partitioner_wecc_scale(benchmark):
    net = synthetic_grid(n_areas=37, buses_per_area=20, seed=3)
    dec = decompose(net, 37, seed=0)
    g = step2_graph(dec, 1.0)
    k = 6
    rng = np.random.default_rng(1)

    res = benchmark(partition_kway, g, k, seed=0)

    print("\nA2 — partitioner ablation on a 37-subsystem quotient graph (k=6)")
    cut_ml, imb_ml = _report("multilevel k-way", g, res.part, k)
    cut_rand, feasible = _best_feasible_random(g, k, rng)
    print(f"  {'random (feasible best)':>22}: edge-cut {cut_rand}  "
          f"({feasible} feasible of 500)")
    greedy = greedy_growing(g, k, np.random.default_rng(1))
    cut_greedy, imb_greedy = _report("greedy growing only", g, greedy, k)

    assert imb_ml <= IMBALANCE_BOUND
    if cut_rand is not None:
        assert cut_ml < cut_rand
    if imb_greedy <= IMBALANCE_BOUND:
        assert cut_ml <= cut_greedy
