"""A8 — the empirical iteration model Ni = g1·x + g2 (section IV-B.2).

The paper's vertex weights rest on an empirical fit for a 14-bus
subsystem: expected estimation iterations grow linearly in the noise level
x, with g1 = 3.7579 and g2 = 5.2464.  We rerun that calibration on the
IEEE 14-bus system with our own estimator: sweep the noise level, measure
Gauss-Newton iterations (averaged over trials), fit the line, and check
the model's defining properties — positive slope, positive intercept, good
linear fit over the operating range.

Our estimator's absolute constants differ from the authors' 2012 HPC code
(different solver and convergence tolerances produce different iteration
counts), but the *structure* the mapping method relies on — "iterations
grow roughly linearly with noise; use that to weight subsystems" — is what
the fit verifies.
"""

import numpy as np

from repro.core import IterationModel, PAPER_ITERATION_MODEL
from repro.estimation import estimate_state
from repro.grid import run_ac_power_flow
from repro.grid.cases import case14
from repro.measurements import full_placement, generate_measurements

LEVELS = np.array([0.25, 0.5, 1.0, 2.0, 4.0, 8.0])
TRIALS = 12


def _mean_iterations(net, pf, level, trials=TRIALS):
    plac = full_placement(net)
    iters = []
    for t in range(trials):
        rng = np.random.default_rng(1000 * t + int(level * 16))
        ms = generate_measurements(net, plac, pf, noise_level=level, rng=rng)
        res = estimate_state(net, ms, tol=1e-6)
        iters.append(res.iterations)
    return float(np.mean(iters))


def test_iteration_model_calibration(benchmark):
    net = case14()
    pf = run_ac_power_flow(net)

    ni = np.array([_mean_iterations(net, pf, x) for x in LEVELS])
    fitted = IterationModel().fit(LEVELS, ni)

    print("\nA8 — empirical Ni(x) on the IEEE 14-bus system")
    print(f"{'noise x':>8} | {'mean iterations':>15} | {'fit':>6}")
    for x, n in zip(LEVELS, ni):
        print(f"{x:8.2f} | {n:15.2f} | {fitted.iterations(x):6.2f}")
    print(f"fitted: g1 = {fitted.g1:.4f}, g2 = {fitted.g2:.4f} "
          f"(paper: g1 = {PAPER_ITERATION_MODEL.g1}, "
          f"g2 = {PAPER_ITERATION_MODEL.g2})")

    # R^2 of the linear fit over the sweep
    pred = fitted.g1 * LEVELS + fitted.g2
    ss_res = float(np.sum((ni - pred) ** 2))
    ss_tot = float(np.sum((ni - ni.mean()) ** 2))
    r2 = 1 - ss_res / ss_tot
    print(f"linear fit R^2 = {r2:.4f}")

    # The structural claims behind Expression (2):
    assert fitted.g1 > 0          # iterations grow with noise
    assert fitted.g2 > 0          # a noise-free solve still iterates
    assert r2 > 0.8               # the growth is well-modelled as linear
    assert ni[-1] > ni[0]         # monotone across the sweep ends

    benchmark(_mean_iterations, net, pf, 1.0, 3)
