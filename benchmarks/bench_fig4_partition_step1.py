"""E2 — Figure 4: partitioning the decomposition graph onto 3 HPC clusters
before DSE Step 1.

Paper result: subsystems {1,4,8} / {2,3,6} / {5,7,9} onto Chinook / Nwiceb /
Catamount with load-imbalance ratio 1.035.  Step 1 has no communication, so
only compute balance matters.  We reproduce the mapping with our METIS
stand-in and check the imbalance lands in the same regime (≤ the 1.05
threshold METIS suggests, as the paper emphasises).
"""

from repro.cluster import pnnl_testbed
from repro.core import ClusterMapper

PAPER_IMBALANCE_STEP1 = 1.035


def test_fig4_step1_mapping(benchmark, dec118):
    mapper = ClusterMapper(pnnl_testbed(), seed=0)
    mapping = benchmark(mapper.map_step1, dec118, 1.0)

    print("\nFigure 4 (reproduced) — mapping before DSE Step 1")
    for cluster, subs in mapping.as_dict().items():
        print(f"  {cluster:10s}: subsystems {[s + 1 for s in subs]}")
    print(f"  load-imbalance ratio: {mapping.imbalance:.3f} "
          f"(paper: {PAPER_IMBALANCE_STEP1})")

    counts = [len(v) for v in mapping.as_dict().values()]
    assert sum(counts) == 9
    assert all(c >= 2 for c in counts)  # 3 clusters share 9 subsystems
    # Same regime as the paper's 1.035 (within METIS' 1.05 + integrality slack)
    assert mapping.imbalance <= 1.15
