"""A3 — ablation: hierarchical vs. decentralized communication structure.

The paper's architecture supports both structures (section IV-A) and cites
Shahraeini et al.: decentralizing improves the latency of data exchange
between estimators because traffic flows peer-to-peer instead of through a
central coordinator.  We compare the two estimators' accuracy, their
communication volumes and the simulated exchange latency of each structure
on the testbed.
"""

import numpy as np

from repro.cluster import MessageSpec, SimExecutor, pnnl_testbed
from repro.core import ClusterMapper
from repro.dse import (
    BYTES_PER_EXCHANGED_BUS,
    DistributedStateEstimator,
    HierarchicalStateEstimator,
)


def test_ablation_hier_vs_dse(benchmark, dec118, mset118, pf118):
    dse = DistributedStateEstimator(dec118, mset118)
    dse_res = benchmark.pedantic(dse.run, rounds=3, iterations=1)
    hier = HierarchicalStateEstimator(dec118, mset118)
    hier_res = hier.run()

    dse_err = dse_res.state_error(pf118.Vm, pf118.Va)
    hier_err = hier_res.state_error(pf118.Vm, pf118.Va)

    print("\nA3 — hierarchical vs decentralized DSE (IEEE 118)")
    print(f"  {'':>14} | {'Vm RMSE':>9} | {'Va RMSE':>9} | {'bytes moved':>11}")
    print(f"  {'hierarchical':>14} | {hier_err['vm_rmse']:.2e} | "
          f"{hier_err['va_rmse']:.2e} | {hier_res.bytes_to_coordinator:11d}")
    print(f"  {'decentralized':>14} | {dse_err['vm_rmse']:.2e} | "
          f"{dse_err['va_rmse']:.2e} | {dse_res.total_bytes_exchanged:11d}")

    # Simulated exchange latency on the 3-cluster testbed.
    topo = pnnl_testbed()
    ex = SimExecutor(topo)
    mapper = ClusterMapper(topo, seed=0)
    mapping = mapper.map_step1(dec118, 1.0)

    # decentralized: peer-to-peer messages between neighbouring clusters
    p2p = []
    for s in range(dec118.m):
        nbytes = dse_res.records[s].exchange_size * BYTES_PER_EXCHANGED_BUS
        for nb in dec118.neighbors(s):
            a, b = mapping.cluster_of(s), mapping.cluster_of(int(nb))
            if a != b:
                p2p.append(MessageSpec(a, b, nbytes))
    t_p2p = ex.run_exchange(p2p).makespan

    # hierarchical: everything to one coordinator cluster
    coord = topo.clusters[0].name
    up = []
    for s in range(dec118.m):
        nbytes = len(dec118.boundary_buses(s)) * BYTES_PER_EXCHANGED_BUS
        src = mapping.cluster_of(s)
        if src != coord:
            up.append(MessageSpec(src, coord, nbytes))
    t_hier = ex.run_exchange(up).makespan

    print(f"  simulated exchange latency: decentralized {t_p2p * 1e3:.3f} ms, "
          f"hierarchical (to coordinator) {t_hier * 1e3:.3f} ms")

    # Both estimate well; DSE at least matches the hierarchical baseline.
    assert dse_err["vm_rmse"] <= 1.5 * hier_err["vm_rmse"]
    assert hier_err["vm_rmse"] < 5e-3
    # Decentralized moves more data overall (redundant peer exchange)…
    assert dse_res.total_bytes_exchanged > hier_res.bytes_to_coordinator
    # …but no single link serialises everything: latency stays comparable
    # (Shahraeini et al.'s argument for decentralization).
    assert t_p2p < 5 * t_hier
