"""A10 — ablation: estimator variants on the same telemetry.

One table comparing every estimator the library ships — full Newton WLS
(three normal-equation solvers), fast-decoupled, Huber, constrained and the
two-stage hybrid — on identical IEEE-118 snapshots: wall time, iterations,
accuracy.  This is the menu a control centre picks from when fitting the
paper's 10 ms – 1 s time-to-solution window.
"""

import time

import numpy as np
import pytest

from repro.estimation import (
    constrained_estimate,
    estimate_state,
    fast_decoupled_estimate,
    hybrid_estimate,
    huber_estimate,
)
from repro.measurements import (
    generate_measurements,
    greedy_pmu_sites,
    pmu_placement,
    scada_placement,
)


@pytest.fixture(scope="module")
def telemetry(net118, pf118):
    rng = np.random.default_rng(0)
    scada = generate_measurements(
        net118, scada_placement(net118, flow_fraction=0.8), pf118, rng=rng
    )
    sites = greedy_pmu_sites(net118)
    pmu = generate_measurements(
        net118, pmu_placement(net118, sites), pf118, rng=rng
    )
    return scada, pmu


def test_ablation_estimator_menu(benchmark, telemetry, net118, pf118):
    scada, pmu = telemetry

    variants = {
        "wls-lu": lambda: estimate_state(net118, scada, solver="lu"),
        "wls-pcg": lambda: estimate_state(net118, scada, solver="pcg"),
        "wls-lsqr": lambda: estimate_state(net118, scada, solver="lsqr"),
        "fast-decoupled": lambda: fast_decoupled_estimate(net118, scada),
        "huber": lambda: huber_estimate(net118, scada),
        "constrained": lambda: constrained_estimate(net118, scada),
        "hybrid (scada+pmu)": lambda: hybrid_estimate(net118, scada, pmu),
    }

    rows = []
    for name, fn in variants.items():
        t0 = time.perf_counter()
        res = fn()
        dt = time.perf_counter() - t0
        err = res.state_error(pf118.Vm, pf118.Va)
        rows.append((name, dt, res.iterations, err["vm_rmse"]))

    print("\nA10 — estimator menu on the IEEE 118 (SCADA 80% flows)")
    print(f"{'estimator':>20} | {'wall (ms)':>9} | {'iters':>5} | {'Vm RMSE':>9}")
    for name, dt, iters, rmse in rows:
        print(f"{name:>20} | {dt * 1e3:9.1f} | {iters:5d} | {rmse:.3e}")

    by = {name: (dt, iters, rmse) for name, dt, iters, rmse in rows}
    # all estimators land within measurement accuracy
    assert all(rmse < 5e-3 for *_, rmse in rows)
    # the decoupled variant trades iterations for cheap factorisations
    assert by["fast-decoupled"][1] >= by["wls-lu"][1]
    # solver choice does not change the WLS answer materially
    assert abs(by["wls-pcg"][2] - by["wls-lu"][2]) < 1e-6

    benchmark(lambda: estimate_state(net118, scada, solver="lu"))
