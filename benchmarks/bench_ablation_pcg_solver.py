"""A1 — ablation: the paper's HPC solver choice (preconditioned CG).

Section IV-C: the HPC state estimator solves the SPD gain system with a
parallel preconditioned conjugate gradient because preconditioning lowers
the condition number and speeds convergence.  We compare, on the IEEE-118
gain matrix: direct sparse LU, CG without preconditioning, Jacobi PCG,
IC(0) PCG and block-Jacobi PCG (blocks = the subsystem decomposition — the
"parallel" flavour).
"""

import numpy as np
import pytest

from repro.dse import DistributedStateEstimator  # noqa: F401 (doc link)
from repro.estimation import (
    BlockJacobiPreconditioner,
    build_gain,
    pcg_solve,
)
from repro.estimation.wls import WlsEstimator
import scipy.sparse.linalg as spla


@pytest.fixture(scope="module")
def gain_system(net118, mset118, pf118):
    est = WlsEstimator(net118, mset118)
    H = est.model.jacobian(pf118.Vm, pf118.Va).tocsc()[:, est._keep]
    w = mset118.weights
    G = build_gain(H, w)
    rhs = H.T @ (w * (mset118.z - est.model.h(pf118.Vm, pf118.Va)))
    return G, rhs, est


def _dse_blocks(dec, est):
    """State-variable blocks induced by the subsystem decomposition."""
    n = est.net.n_bus
    keep = est._keep
    pos = -np.ones(2 * n, dtype=np.int64)
    pos[keep] = np.arange(len(keep))
    blocks = []
    for s in range(dec.m):
        buses = dec.buses(s)
        idx = np.concatenate([buses, n + buses])
        blk = pos[idx]
        blk = blk[blk >= 0]
        blocks.append(np.sort(blk))
    return blocks


def test_ablation_solvers(benchmark, gain_system, dec118):
    G, rhs, est = gain_system
    ref = spla.spsolve(G.tocsc(), rhs)

    results = {}
    # iteration counts per strategy
    for name, prec in (
        ("cg-none", "none"),
        ("pcg-jacobi", "jacobi"),
        ("pcg-ichol", "ichol"),
        ("pcg-block-jacobi", BlockJacobiPreconditioner(G, _dse_blocks(dec118, est))),
    ):
        res = pcg_solve(G, rhs, preconditioner=prec, tol=1e-10, max_iter=5000)
        results[name] = res
        assert res.converged, name
        assert np.allclose(res.x, ref, atol=1e-6)

    print("\nA1 — gain-system solver ablation (IEEE 118, full telemetry)")
    print(f"{'solver':>18} | {'iterations':>10}")
    print(f"{'sparse LU':>18} | {'(direct)':>10}")
    for name, res in results.items():
        print(f"{name:>18} | {res.iterations:10d}")

    # preconditioning must pay off, as the paper argues
    assert results["pcg-jacobi"].iterations < results["cg-none"].iterations
    assert results["pcg-ichol"].iterations < results["pcg-jacobi"].iterations
    assert (
        results["pcg-block-jacobi"].iterations
        < results["pcg-jacobi"].iterations
    )

    benchmark(lambda: pcg_solve(G, rhs, preconditioner="jacobi", tol=1e-10))


def test_ablation_direct_baseline(benchmark, gain_system):
    G, rhs, _ = gain_system
    benchmark(lambda: spla.spsolve(G.tocsc(), rhs))
