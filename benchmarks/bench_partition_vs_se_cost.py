"""E9 — section V-A claim: "partitioning is typically much faster than
running state estimation computations".

The mapping method re-runs the partitioner every time frame, which is only
viable if its cost is negligible next to the estimation it schedules.  We
time both on the IEEE 118 setup: the full (re)mapping (weight estimation +
k-way partition + Step-2 repartition) against a single subsystem's WLS and
the whole-system WLS.
"""

import time

import numpy as np

from repro.cluster import pnnl_testbed
from repro.core import ClusterMapper
from repro.dse import exchange_bus_sets
from repro.estimation import estimate_state


def test_partition_much_faster_than_se(benchmark, dec118, mset118, net118):
    mapper = ClusterMapper(pnnl_testbed(), seed=0)
    sets = exchange_bus_sets(dec118)

    def full_mapping_cycle():
        m1 = mapper.map_step1(dec118, 1.0)
        m2, _ = mapper.remap_step2(dec118, 1.0, m1, sets)
        return m1, m2

    benchmark(full_mapping_cycle)

    # time both sides once for the reported ratio
    t0 = time.perf_counter()
    for _ in range(5):
        full_mapping_cycle()
    t_map = (time.perf_counter() - t0) / 5

    t0 = time.perf_counter()
    estimate_state(net118, mset118)
    t_se = time.perf_counter() - t0

    print(f"\nmapping cycle: {t_map * 1e3:.2f} ms; "
          f"whole-system WLS: {t_se * 1e3:.2f} ms; "
          f"ratio SE/mapping = {t_se / t_map:.1f}x")
    # the paper's claim: partitioning ≪ estimation
    assert t_map < t_se
