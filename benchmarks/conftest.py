"""Shared fixtures for the benchmark suite.

Run the benchmarks with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the reproduced table/figure rows each benchmark prints.)
"""

import numpy as np
import pytest

from repro.dse import decompose, dse_pmu_placement
from repro.grid import run_ac_power_flow
from repro.grid.cases import case118
from repro.measurements import full_placement, generate_measurements


@pytest.fixture(scope="session")
def net118():
    return case118()


@pytest.fixture(scope="session")
def pf118(net118):
    return run_ac_power_flow(net118)


@pytest.fixture(scope="session")
def dec118(net118):
    return decompose(net118, 9, seed=0)


@pytest.fixture(scope="session")
def mset118(net118, pf118, dec118):
    rng = np.random.default_rng(0)
    placement = full_placement(net118).merged_with(dse_pmu_placement(dec118))
    return generate_measurements(net118, placement, pf118, rng=rng)
