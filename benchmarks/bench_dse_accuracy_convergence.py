"""E10 — section II claims: DSE converges within a bounded number of
rounds (the decomposition-graph diameter) and its final solution tracks
the centralized estimate.

The paper adopts the Jiang-Vittal-Heydt result that Steps 1+2 need only a
finite number of iterations upper-bounded by the decomposition diameter.
We verify: (a) round-over-round corrections shrink monotonically and are
negligible by the diameter-th round; (b) DSE accuracy is within a small
factor of centralized WLS.
"""

import numpy as np

from repro.dse import DistributedStateEstimator
from repro.estimation import estimate_state


def test_dse_convergence_within_diameter(benchmark, dec118, mset118, pf118):
    diameter = dec118.diameter()

    def run():
        return DistributedStateEstimator(dec118, mset118).run(
            rounds=diameter + 2
        )

    res = benchmark.pedantic(run, rounds=3, iterations=1)

    print(f"\nquotient-graph diameter: {diameter}")
    print("round corrections (max |Δstate| on exchanged buses):")
    for r, d in enumerate(res.round_deltas, 1):
        marker = "  <- diameter bound" if r == diameter else ""
        print(f"  round {r}: {d:.3e}{marker}")

    # corrections shrink and are tiny past the diameter bound
    deltas = res.round_deltas
    assert deltas[-1] < deltas[0]
    assert deltas[diameter - 1] < 0.2 * deltas[0]
    assert all(d < 5e-3 for d in deltas[diameter:])


def test_dse_accuracy_vs_centralized(dec118, mset118, pf118):
    cen = estimate_state(dec118.net, mset118)
    dse = DistributedStateEstimator(dec118, mset118).run()

    cen_err = cen.state_error(pf118.Vm, pf118.Va)
    dse_err = dse.state_error(pf118.Vm, pf118.Va)
    print("\naccuracy vs truth (RMSE):")
    print(f"  centralized : Vm {cen_err['vm_rmse']:.2e}  Va {cen_err['va_rmse']:.2e}")
    print(f"  DSE         : Vm {dse_err['vm_rmse']:.2e}  Va {dse_err['va_rmse']:.2e}")
    ratio = dse_err["vm_rmse"] / cen_err["vm_rmse"]
    print(f"  DSE/centralized Vm ratio: {ratio:.2f}")

    # DSE within a small factor of the centralized estimator
    assert ratio < 4.0
    # and absolutely within measurement accuracy
    assert dse_err["vm_rmse"] < 3e-3


def test_dse_step1_vs_final_boundary_error(dec118, mset118, pf118):
    """Step 2's purpose: boundary buses improve over the isolated Step-1
    solutions once pseudo measurements arrive."""
    dse = DistributedStateEstimator(dec118, mset118)
    res = dse.run()
    net = dec118.net

    vm1 = np.ones(net.n_bus)
    for s, rec in res.records.items():
        vm1[dec118.buses(s)] = rec.step1_result.Vm
    boundary = np.unique(
        np.concatenate([dec118.boundary_buses(s) for s in range(dec118.m)])
    )
    e1 = float(np.abs(vm1[boundary] - pf118.Vm[boundary]).mean())
    e2 = float(np.abs(res.Vm[boundary] - pf118.Vm[boundary]).mean())
    print(f"\nboundary-bus mean |Vm error|: step1 {e1:.2e} -> final {e2:.2e}")
    assert e2 <= e1
