"""PR-8 serving-capacity curve: direct service vs sharded router.

Offered-load sweep with the open-loop generator
(:mod:`repro.serving.loadgen`): seeded Poisson arrivals of values-only
IEEE-118 estimation frames against three serving configurations —

- ``direct``  — one :class:`~repro.serving.service.ScenarioService`;
- ``router1`` — a :class:`~repro.serving.shard.ShardRouter` over the
  *same single replica* (isolates the routing layer's overhead);
- ``router2`` — the router over two replicas (each replica's dispatcher
  thread drains its own batched LAPACK solves, which release the GIL, so
  on a multi-core host the shards genuinely run in parallel).

The offered rates are anchored to a measured closed-loop probe of the
single-service throughput (0.5×, 1×, 2×, 4×), so the sweep brackets the
saturation knee on any host.  Each point records achieved scenarios/s,
client-view p50/p99 latency and the typed shed split; a configuration's
**capacity** is the highest offered rate it sustained with p99 within the
SLO and shed ≤ 5%.

Run directly for a quick look::

    PYTHONPATH=src python benchmarks/bench_serving_capacity.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dse import decompose, dse_pmu_placement  # noqa: E402
from repro.grid import run_ac_power_flow  # noqa: E402
from repro.grid.cases import case118  # noqa: E402
from repro.measurements import full_placement, generate_measurements  # noqa: E402
from repro.serving import (  # noqa: E402
    LoadGenerator,
    ScenarioMix,
    ScenarioService,
    ShardRouter,
)

#: a configuration "sustains" a rate when p99 stays within this SLO and
#: the shed fraction stays at or below 5%
SLO_P99_S = 0.25
SHED_BUDGET = 0.05
RATE_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
WINDOW_S = 0.6


def _setup118():
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    return dec, ms


def _replica(dec, ms):
    # batched frame solves drain on the dispatcher thread; a serial
    # executor keeps the per-replica thread budget at exactly one
    return ScenarioService(
        dec, ms, executor="serial", max_batch=16, flush_latency=2e-3,
        batch_solve=True,
    )


def _probe_throughput(dec, ms, n: int = 32) -> float:
    """Closed-loop single-service frames/s — anchors the rate sweep."""
    with _replica(dec, ms) as svc:
        t0 = time.perf_counter()
        futures = [svc.submit_estimation() for _ in range(n)]
        for fut in futures:
            fut.result(timeout=120)
        return n / (time.perf_counter() - t0)


def _sweep(make_target, mix, rates, *, seed) -> list[dict]:
    rows = []
    for rate in rates:
        n = max(12, int(round(rate * WINDOW_S)))
        target = make_target()
        try:
            report = LoadGenerator(target, mix, seed=seed).run(
                rate=rate, n_requests=n, wait_timeout=300.0
            )
        finally:
            target.close()
        rows.append(report.to_dict())
    return rows


def _capacity(rows: list[dict]) -> float:
    """Highest offered rate sustained within the SLO and shed budget."""
    ok = [
        r["offered_rate"] for r in rows
        if r["latency_p99_s"] <= SLO_P99_S
        and r["shed_rate"] <= SHED_BUDGET
        and r["achieved_rate"] >= 0.8 * r["offered_rate"]
    ]
    return max(ok, default=0.0)


def measure_serving_capacity() -> dict:
    """The full capacity comparison (the ``BENCH_pr8.json`` payload)."""
    dec, ms = _setup118()
    mix = ScenarioMix(ms, frame_weight=1.0)
    thru0 = _probe_throughput(dec, ms)
    rates = tuple(round(m * thru0, 1) for m in RATE_MULTIPLIERS)

    configs = {
        "direct": lambda: _replica(dec, ms),
        "router1": lambda: ShardRouter(
            {"s0": _replica(dec, ms)}, grid="ieee118"
        ),
        "router2": lambda: ShardRouter(
            {"s0": _replica(dec, ms), "s1": _replica(dec, ms)},
            grid="ieee118",
        ),
    }
    out: dict = {
        "cores": os.cpu_count(),
        "case": "ieee118",
        "probe_throughput_per_s": thru0,
        "offered_rates_per_s": list(rates),
        "slo_p99_s": SLO_P99_S,
        "shed_budget": SHED_BUDGET,
        "configs": {},
    }
    for name, make in configs.items():
        rows = _sweep(make, mix, rates, seed=8)
        out["configs"][name] = {
            "rows": rows,
            "capacity_per_s": _capacity(rows),
        }

    # routing-layer overhead: the unsaturated (lowest-rate) point
    direct_p50 = out["configs"]["direct"]["rows"][0]["latency_p50_s"]
    router1_p50 = out["configs"]["router1"]["rows"][0]["latency_p50_s"]
    out["router1_overhead"] = {
        "direct_p50_s": direct_p50,
        "router1_p50_s": router1_p50,
        "overhead_frac": (router1_p50 - direct_p50) / direct_p50
        if direct_p50 > 0 else 0.0,
    }
    return out


def main() -> None:
    cap = measure_serving_capacity()
    print(f"probe throughput {cap['probe_throughput_per_s']:.1f} frames/s "
          f"({cap['cores']} cores)")
    for name, rec in cap["configs"].items():
        print(f"  {name:>8}: capacity {rec['capacity_per_s']:.1f}/s")
        for row in rec["rows"]:
            print(f"    offered {row['offered_rate']:7.1f}/s  "
                  f"achieved {row['achieved_rate']:7.1f}/s  "
                  f"p50 {row['latency_p50_s'] * 1e3:6.1f} ms  "
                  f"p99 {row['latency_p99_s'] * 1e3:6.1f} ms  "
                  f"shed {row['shed_rate'] * 100:4.1f}%")
    ov = cap["router1_overhead"]
    print(f"router layer p50 overhead {ov['overhead_frac'] * 100:+.1f}%")


if __name__ == "__main__":
    main()
