"""Fault-injection hook overhead on the live DSE frame loop.

The fault layer must be free when unused: every instrumented call site
(transport sends, client dials, mux forwards, pool submissions) guards
itself with a single ``faults.active() is None`` check, and an installed
injector whose plan has no rules resolves each event with one dict
lookup.  This benchmark measures the live IEEE-118 values-only frame
loop — site threads, the mux fast path, real wire bytes — in both
states: no injector installed vs an installed empty-plan injector.

The PR-5 acceptance gate pins the installed-but-idle overhead at ≤ 5% on
hosts with at least 2 cores; single-core hosts record the numbers
without evaluating the gate (timing noise under core contention swamps
a percent-level signal, the same policy as the PR-2/PR-3/PR-4 gates).
Estimator outputs must be bit-identical either way on every host.

Standalone::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import faults  # noqa: E402
from repro.core import LiveDseRuntime  # noqa: E402
from repro.dse import decompose, dse_pmu_placement  # noqa: E402
from repro.faults import FaultInjector, FaultPlan  # noqa: E402
from repro.grid import run_ac_power_flow  # noqa: E402
from repro.grid.cases import case118  # noqa: E402
from repro.measurements import full_placement, generate_measurements  # noqa: E402


def measure_fault_overhead(*, frames: int = 3, repeats: int = 3) -> dict:
    """Best-of-``repeats`` timing of ``frames`` live values-only DSE
    frames with and without an idle injector installed; returns timings,
    the relative overhead and the state parity check."""
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    ms = generate_measurements(net, plac, pf, rng=rng)
    z = ms.z.copy()

    live = LiveDseRuntime(dec, ms, fast=True)
    live.run(z=z)  # warm the site caches outside the timed region

    idle = FaultInjector(FaultPlan(seed=0))  # no rules: nothing can fire

    def one_repeat() -> float:
        t0 = time.perf_counter()
        for _ in range(frames):
            live.run(z=z)
        return time.perf_counter() - t0

    # Interleave the two states so clock / cache drift over the run
    # biases neither (same discipline as bench_obs_overhead).
    t_off = t_on = float("inf")
    try:
        for _ in range(repeats):
            faults.uninstall()
            t_off = min(t_off, one_repeat())
            faults.install(idle)
            t_on = min(t_on, one_repeat())

        faults.uninstall()
        res_off = live.run(z=z)
        faults.install(idle)
        res_on = live.run(z=z)
    finally:
        faults.uninstall()

    return {
        "case": "ieee118-live",
        "frames_per_repeat": frames,
        "repeats": repeats,
        "uninstalled_time_s": t_off,
        "installed_idle_time_s": t_on,
        "overhead_frac": t_on / t_off - 1.0,
        "faults_fired": idle.total_fired(),
        "bit_identical": bool(
            not res_on.errors
            and not res_off.errors
            and np.array_equal(res_on.Vm, res_off.Vm)
            and np.array_equal(res_on.Va, res_off.Va)
        ),
    }


def main() -> int:
    rec = measure_fault_overhead()
    print(
        f"uninstalled {rec['uninstalled_time_s'] * 1e3:8.1f} ms   "
        f"idle injector {rec['installed_idle_time_s'] * 1e3:8.1f} ms   "
        f"overhead {rec['overhead_frac'] * 100:+.2f}%"
    )
    print(
        f"bit-identical outputs: {rec['bit_identical']}   "
        f"faults fired: {rec['faults_fired']}"
    )
    return 0 if rec["bit_identical"] and rec["faults_fired"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
