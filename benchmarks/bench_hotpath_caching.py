"""A6 — ablation: hot-path caching, warm starts and the subsystem executor.

PR 1 rebuilt the estimation hot path around reusable structures: cached
Jacobian sparsity patterns (refill data only), a stateful gain solver that
keeps the fill-reducing LU ordering across iterations, reused DSE
subproblems/estimators across Step-2 rounds, warm starts between rounds,
and a pluggable executor for the per-subsystem fan-out.  This ablation
switches the knobs on one at a time on the IEEE-118 DSE (9 subsystems) and
checks that the fully optimised configuration (a) is at least 1.5× faster
than the seed-style cold path and (b) matches it to ≤ 1e-10.
"""

import time

import numpy as np

from repro.dse import DistributedStateEstimator
from repro.estimation.wls import WlsEstimator
from repro.parallel import SerialExecutor, ThreadPoolBackend


def _time_dse(dec, ms, *, repeats=3, **kwargs):
    """Best-of-N wall time of construct + run, plus the last result."""
    best = float("inf")
    res = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        dse = DistributedStateEstimator(dec, ms, **kwargs)
        res = dse.run()
        best = min(best, time.perf_counter() - t0)
    return best, res


def test_ablation_hotpath_dse(dec118, mset118):
    configs = [
        ("seed (cold, serial)",
         dict(reuse_structures=False, warm_start=False)),
        ("+ cached structures",
         dict(reuse_structures=True, warm_start=False)),
        ("+ warm starts",
         dict(reuse_structures=True, warm_start=True)),
    ]
    rows = []
    results = {}
    for name, kw in configs:
        t, res = _time_dse(dec118, mset118, executor=SerialExecutor(), **kw)
        rows.append((name, t))
        results[name] = res

    with ThreadPoolBackend(4) as pool:
        t, res = _time_dse(
            dec118, mset118, executor=pool,
            reuse_structures=True, warm_start=True,
        )
    rows.append(("+ thread-pool fan-out", t))
    results["+ thread-pool fan-out"] = res

    t_seed = rows[0][1]
    print("\nA6 — hot-path ablation (IEEE 118, 9 subsystems, best of 3)")
    print(f"{'configuration':>24} | {'time [ms]':>9} | {'speedup':>7}")
    for name, t in rows:
        print(f"{name:>24} | {t * 1e3:9.1f} | {t_seed / t:6.2f}x")

    ref = results["seed (cold, serial)"]
    for name, res in results.items():
        assert float(np.abs(res.Vm - ref.Vm).max()) < 1e-10, name
        assert float(np.abs(res.Va - ref.Va).max()) < 1e-10, name

    t_hot = dict(rows)["+ warm starts"]
    assert t_seed / t_hot >= 1.5, (
        f"cached+warm DSE only {t_seed / t_hot:.2f}x faster than seed"
    )


def test_ablation_hotpath_wls(net118, mset118):
    """Single-estimator view: structure cache + LU ordering reuse."""
    t0 = time.perf_counter()
    cold_est = WlsEstimator(net118, mset118, use_cache=False)
    cold_res = cold_est.estimate()
    t_cold = time.perf_counter() - t0

    est = WlsEstimator(net118, mset118, use_cache=True)
    t0 = time.perf_counter()
    first = est.estimate()
    t_first = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = est.estimate()  # pattern + ordering caches now warm
    t_second = time.perf_counter() - t0

    print("\nA6 — WLS estimator caching (IEEE 118, full telemetry)")
    print(f"  uncached estimate        : {t_cold * 1e3:8.1f} ms")
    print(f"  cached, first estimate   : {t_first * 1e3:8.1f} ms")
    print(f"  cached, repeat estimate  : {t_second * 1e3:8.1f} ms")

    assert float(np.abs(first.Vm - cold_res.Vm).max()) < 1e-10
    assert np.array_equal(first.Vm, second.Vm)
    assert np.array_equal(first.Va, second.Va)
