"""A6 — ablation: the parallel PCG kernel (section IV-C).

The HPC state estimator solves the gain system with a *parallel*
preconditioned CG.  We distribute the IEEE-118 gain system across
simulated MPI ranks and sweep rank count and placement: distributed solves
must agree with the serial solver exactly, colocated ranks (shared-memory
halo exchange) must beat WAN-spread ranks, and the latency-bound regime of
fine-grained CG must be visible — which is exactly why the paper
distributes at the *subsystem* level and keeps each PCG inside one cluster.
"""

import numpy as np
import pytest

from repro.cluster import pnnl_testbed, simulate_parallel_pcg
from repro.estimation import build_gain, pcg_solve
from repro.estimation.wls import WlsEstimator


@pytest.fixture(scope="module")
def gain118(net118, pf118, mset118):
    est = WlsEstimator(net118, mset118)
    H = est.model.jacobian(pf118.Vm, pf118.Va).tocsc()[:, est._keep]
    w = mset118.weights
    G = build_gain(H, w)
    rhs = H.T @ (w * (mset118.z - est.model.h(pf118.Vm, pf118.Va)))
    return G, rhs


def test_ablation_parallel_pcg(benchmark, gain118):
    G, rhs = gain118
    topo = pnnl_testbed()
    n = G.shape[0]
    serial = pcg_solve(G, rhs, preconditioner="jacobi", tol=1e-10)

    rows = []
    for P, placement in (
        (1, ["chinook"]),
        (3, ["chinook"] * 3),
        (3, ["nwiceb", "catamount", "chinook"]),
        (6, ["chinook"] * 6),
        (6, ["nwiceb", "catamount", "chinook"] * 2),
    ):
        blocks = np.array_split(np.arange(n), P)
        res = simulate_parallel_pcg(G, rhs, blocks, topo, placement, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, serial.x, atol=1e-7)
        spread = len(set(placement)) > 1
        rows.append((P, "spread" if spread else "colocated", res))

    print("\nA6 — parallel PCG on the IEEE-118 gain system "
          f"(n={n}, serial iterations {serial.iterations})")
    print(f"{'ranks':>6} | {'placement':>10} | {'iters':>5} | "
          f"{'sim time (ms)':>13} | {'comm (KB)':>9}")
    for P, kind, res in rows:
        print(f"{P:6d} | {kind:>10} | {res.iterations:5d} | "
              f"{res.sim_time * 1e3:13.3f} | "
              f"{res.bytes_communicated / 1024:9.1f}")

    by = {(P, kind): res for P, kind, res in rows}
    # colocated beats WAN-spread at the same rank count
    assert by[(3, "colocated")].sim_time < by[(3, "spread")].sim_time
    assert by[(6, "colocated")].sim_time < by[(6, "spread")].sim_time
    # fine-grained CG over the LAN is latency-bound: spreading is slower
    # than running on one cluster — the reason the architecture distributes
    # subsystems, not solver rows, across clusters
    assert by[(3, "spread")].sim_time > by[(1, "colocated")].sim_time

    blocks = np.array_split(np.arange(n), 3)
    benchmark(
        simulate_parallel_pcg, G, rhs, blocks, topo, ["chinook"] * 3, tol=1e-10
    )
