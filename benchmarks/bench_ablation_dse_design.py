"""A7 — ablation: DSE design choices DESIGN.md calls out.

Three knobs of the DSE algorithm are swept on the IEEE-118 setup:

- **update scope** — paper-faithful "exchange" (Step 2 only re-adopts
  boundary + sensitive buses) vs "all" (adopt the whole extended solve);
- **sensitivity threshold** — how many internal buses count as sensitive
  (drives the exchange-set sizes gs and hence Expression (5));
- **number of Step-2 rounds** — accuracy as rounds approach the
  decomposition-graph diameter.
"""

import numpy as np
import pytest

from repro.dse import DistributedStateEstimator, exchange_bus_sets


def test_ablation_update_scope(benchmark, dec118, mset118, pf118):
    res_exchange = benchmark.pedantic(
        lambda: DistributedStateEstimator(
            dec118, mset118, update_scope="exchange"
        ).run(),
        rounds=2, iterations=1,
    )
    res_all = DistributedStateEstimator(dec118, mset118, update_scope="all").run()

    e1 = res_exchange.state_error(pf118.Vm, pf118.Va)
    e2 = res_all.state_error(pf118.Vm, pf118.Va)
    print("\nA7 — update-scope ablation (IEEE 118)")
    print(f"  exchange (paper): Vm RMSE {e1['vm_rmse']:.3e}")
    print(f"  all (extension) : Vm RMSE {e2['vm_rmse']:.3e}")
    # both land within measurement accuracy; neither catastrophically worse
    assert e1["vm_rmse"] < 3e-3
    assert e2["vm_rmse"] < 3e-3


def test_ablation_sensitivity_threshold(dec118, mset118, pf118):
    print("\nA7 — sensitivity-threshold ablation")
    print(f"{'threshold':>9} | {'Σ gs':>5} | {'bytes/frame':>11} | {'Vm RMSE':>9}")
    rows = []
    for thr in (0.2, 0.5, 0.9):
        sets = exchange_bus_sets(dec118, threshold=thr)
        total_gs = sum(len(sets[s]) for s in range(dec118.m))
        dse = DistributedStateEstimator(dec118, mset118,
                                        sensitivity_threshold=thr)
        res = dse.run()
        err = res.state_error(pf118.Vm, pf118.Va)["vm_rmse"]
        rows.append((thr, total_gs, res.total_bytes_exchanged, err))
        print(f"{thr:9.1f} | {total_gs:5d} | {res.total_bytes_exchanged:11d} "
              f"| {err:.3e}")

    # lower threshold -> more sensitive buses -> more data exchanged
    assert rows[0][1] >= rows[-1][1]
    assert rows[0][2] >= rows[-1][2]
    # every setting estimates within measurement accuracy
    assert all(err < 3e-3 for *_, err in rows)


def test_ablation_rounds_vs_accuracy(dec118, mset118, pf118):
    diameter = dec118.diameter()
    print(f"\nA7 — Step-2 round count vs accuracy (diameter {diameter})")
    print(f"{'rounds':>6} | {'boundary Vm err':>15}")
    boundary = np.unique(
        np.concatenate([dec118.boundary_buses(s) for s in range(dec118.m)])
    )
    errs = []
    for rounds in (1, diameter, diameter + 2):
        res = DistributedStateEstimator(dec118, mset118).run(rounds=rounds)
        err = float(np.abs(res.Vm[boundary] - pf118.Vm[boundary]).mean())
        errs.append(err)
        print(f"{rounds:6d} | {err:15.3e}")
    # running to the diameter does not hurt vs one round, and the tail
    # rounds change little (the finite-convergence claim)
    assert errs[1] <= errs[0] * 1.2
    assert abs(errs[2] - errs[1]) < 0.5 * max(errs[0], 1e-12)
