"""Scale-out throughput: scenarios/sec across backend × workers × batch.

Measures the serving throughput (and latency percentiles) of the scale-out
stack on the paper's test system:

- **N-1 contingency sweeps** on IEEE-118 through
  :func:`repro.contingency.run_parallel` for every backend spec
  (``serial``, ``threads:N``, ``processes:N``) — the workload the HPC
  reference [2] distributes with counter-based dynamic balancing;
- **repeated DSE rounds** (values-only ``z`` frames over warm caches)
  through each backend — the real-time estimation serving loop;
- the **batched scenario service**: end-to-end submit→resolve latency as a
  function of ``max_batch``.

Run directly for a human-readable table::

    PYTHONPATH=src python benchmarks/bench_scaleout_throughput.py

or let ``record_bench.py`` call the ``bench_*`` functions and persist the
numbers to ``BENCH_pr2.json``.  Process backends only help on multi-core
hosts; the recorder enforces the ≥3× contingency-throughput gate only when
at least 4 cores are available.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.contingency import (  # noqa: E402
    ContingencyAnalyzer,
    enumerate_n1,
    run_parallel,
)
from repro.dse import (  # noqa: E402
    DistributedStateEstimator,
    decompose,
    dse_pmu_placement,
)
from repro.grid import run_ac_power_flow  # noqa: E402
from repro.grid.cases import case118  # noqa: E402
from repro.measurements import full_placement, generate_measurements  # noqa: E402
from repro.parallel import make_executor  # noqa: E402
from repro.serving import ScenarioService  # noqa: E402


def backend_specs(max_workers: int | None = None) -> list[str]:
    """The backend × worker grid for this host (serial, threads, processes)."""
    cores = os.cpu_count() or 1
    cap = min(max_workers or cores, cores)
    counts = sorted({2, 4, cap} & set(range(1, cap + 1))) or [1]
    specs = ["serial"]
    for n in counts:
        specs.append(f"threads:{n}")
    for n in counts:
        specs.append(f"processes:{n}")
    return specs


def _percentiles(samples: list[float]) -> dict:
    arr = np.asarray(samples)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p90_ms": float(np.percentile(arr, 90) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
    }


def bench_contingency_throughput(
    net, contingencies, *, specs: list[str], repeats: int = 2
) -> dict:
    """IEEE-118 N-1 sweep throughput (cases/sec) per backend spec.

    Each spec gets its own warm pool; the sweep runs ``repeats`` times and
    the best pass is recorded (first pass pays pool spawn + analyzer ship).
    """
    out = {}
    for spec in specs:
        analyzer = ContingencyAnalyzer(net, method="dc", rating_margin=1.3)
        executor = make_executor(spec)
        best = float("inf")
        try:
            for _ in range(repeats):
                t0 = time.perf_counter()
                run_parallel(
                    analyzer, contingencies, executor=executor, scheme="dynamic"
                )
                best = min(best, time.perf_counter() - t0)
            workers = executor.n_workers
        finally:
            executor.shutdown()
        out[spec] = {
            "n_cases": len(contingencies),
            "best_sweep_s": best,
            "cases_per_s": len(contingencies) / best,
            "workers": workers,
        }
    return out


def bench_dse_round_throughput(
    dec, mset, *, specs: list[str], frames: int = 5
) -> dict:
    """Repeated DSE frames (values-only ``z``) per backend: frames/sec and
    per-frame latency percentiles over warm caches."""
    rng = np.random.default_rng(42)
    zs = [
        mset.z + 0.01 * mset.sigma * rng.standard_normal(len(mset))
        for _ in range(frames)
    ]
    out = {}
    for spec in specs:
        executor = make_executor(spec)
        try:
            dse = DistributedStateEstimator(
                dec, mset, executor=executor, reuse_structures=True
            )
            dse.run()  # warm caches / worker contexts
            lat = []
            t0 = time.perf_counter()
            for z in zs:
                t1 = time.perf_counter()
                dse.run(z=z)
                lat.append(time.perf_counter() - t1)
            total = time.perf_counter() - t0
        finally:
            executor.shutdown()
        out[spec] = {
            "frames": frames,
            "frames_per_s": frames / total,
            **_percentiles(lat),
        }
    return out


def bench_serving_batches(
    dec, mset, contingencies, *, batch_sizes=(1, 8, 32), executor="threads:4"
) -> dict:
    """Scenario-service end-to-end latency/throughput vs ``max_batch``."""
    out = {}
    for max_batch in batch_sizes:
        with ScenarioService(
            dec,
            mset,
            executor=executor,
            max_batch=max_batch,
            flush_latency=2e-3,
        ) as svc:
            # warm the engine before timing
            svc.submit_estimation().result()
            t0 = time.perf_counter()
            futs = svc.submit_contingencies(contingencies)
            futs.append(svc.submit_estimation(z=mset.z))
            results = [f.result() for f in futs]
            total = time.perf_counter() - t0
            out[f"max_batch={max_batch}"] = {
                "n_requests": len(results),
                "requests_per_s": len(results) / total,
                "mean_batch_size": svc.stats.mean_batch_size,
                **_percentiles([r.latency for r in results]),
            }
    return out


def _setup():
    net = case118()
    pf = run_ac_power_flow(net)
    dec = decompose(net, 9, seed=0)
    rng = np.random.default_rng(0)
    plac = full_placement(net).merged_with(dse_pmu_placement(dec))
    mset = generate_measurements(net, plac, pf, rng=rng)
    cons, _ = enumerate_n1(net)
    return net, dec, mset, cons


def main() -> int:
    net, dec, mset, cons = _setup()
    specs = backend_specs()
    print(f"host cores: {os.cpu_count()}  backends: {specs}")

    print("\nIEEE-118 N-1 contingency sweep")
    for spec, rec in bench_contingency_throughput(net, cons, specs=specs).items():
        print(f"  {spec:>12}: {rec['cases_per_s']:8.1f} cases/s "
              f"({rec['best_sweep_s'] * 1e3:.1f} ms, {rec['workers']} workers)")

    print("\nrepeated DSE frames (values-only z, warm caches)")
    for spec, rec in bench_dse_round_throughput(dec, mset, specs=specs).items():
        print(f"  {spec:>12}: {rec['frames_per_s']:6.2f} frames/s  "
              f"p50 {rec['p50_ms']:.1f} ms  p99 {rec['p99_ms']:.1f} ms")

    print("\nscenario service (threads:4) vs max_batch")
    for key, rec in bench_serving_batches(dec, mset, cons[:64]).items():
        print(f"  {key:>14}: {rec['requests_per_s']:8.1f} req/s  "
              f"mean batch {rec['mean_batch_size']:.1f}  "
              f"p50 {rec['p50_ms']:.1f} ms  p99 {rec['p99_ms']:.1f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
