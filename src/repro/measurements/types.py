"""Measurement types and containers.

A measurement refers either to a bus (voltage magnitude, injections, PMU
phasor angle) or to a branch end (flows, current magnitude).  For vectorised
evaluation the :class:`MeasurementSet` stores measurements grouped by type as
index arrays, in a single canonical order that every consumer (h, Jacobian,
weights) shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["MeasType", "Measurement", "MeasurementSet", "DEFAULT_SIGMAS"]


class MeasType(Enum):
    """Supported measurement types.

    Bus types reference a bus index; branch types reference a branch index
    (flows at the *from* or *to* end).  ``PMU_VA`` is the synchrophasor
    voltage-angle measurement that distinguishes PMU-equipped buses.
    """

    V_MAG = "vm"  # bus voltage magnitude
    PMU_VA = "va"  # bus voltage angle (synchronized phasor)
    P_INJ = "pinj"  # bus real power injection
    Q_INJ = "qinj"  # bus reactive power injection
    P_FLOW_F = "pf"  # branch real flow, from end
    Q_FLOW_F = "qf"  # branch reactive flow, from end
    P_FLOW_T = "pt"  # branch real flow, to end
    Q_FLOW_T = "qt"  # branch reactive flow, to end
    I_MAG_F = "ifm"  # branch current magnitude, from end

    @property
    def is_bus(self) -> bool:
        """True for bus-referenced types."""
        return self in (MeasType.V_MAG, MeasType.PMU_VA, MeasType.P_INJ, MeasType.Q_INJ)

    @property
    def is_branch(self) -> bool:
        """True for branch-referenced types."""
        return not self.is_bus


#: Default measurement standard deviations (p.u. / radians), typical SCADA
#: and PMU accuracies used throughout the literature.
DEFAULT_SIGMAS: dict[MeasType, float] = {
    MeasType.V_MAG: 0.004,
    MeasType.PMU_VA: 0.002,
    MeasType.P_INJ: 0.010,
    MeasType.Q_INJ: 0.010,
    MeasType.P_FLOW_F: 0.008,
    MeasType.Q_FLOW_F: 0.008,
    MeasType.P_FLOW_T: 0.008,
    MeasType.Q_FLOW_T: 0.008,
    MeasType.I_MAG_F: 0.008,
}

#: Canonical type ordering inside a MeasurementSet.
_TYPE_ORDER: tuple[MeasType, ...] = (
    MeasType.V_MAG,
    MeasType.PMU_VA,
    MeasType.P_INJ,
    MeasType.Q_INJ,
    MeasType.P_FLOW_F,
    MeasType.Q_FLOW_F,
    MeasType.P_FLOW_T,
    MeasType.Q_FLOW_T,
    MeasType.I_MAG_F,
)


@dataclass(frozen=True)
class Measurement:
    """A single measurement record.

    ``element`` is a bus index for bus types and a branch index for branch
    types.  ``value`` is the (noisy) measured value in per-unit (radians for
    ``PMU_VA``); ``sigma`` its standard deviation.
    """

    mtype: MeasType
    element: int
    value: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.element < 0:
            raise ValueError("element index must be non-negative")


class MeasurementSet:
    """A batch of measurements in canonical order, stored struct-of-arrays.

    Canonical order: types in ``_TYPE_ORDER``; within a type, ascending
    element index with duplicates preserved in insertion order.  All exported
    arrays (``z``, ``sigma``, Jacobian rows, residuals) use this order.
    """

    def __init__(self, measurements: list[Measurement]):
        by_type: dict[MeasType, list[Measurement]] = {t: [] for t in _TYPE_ORDER}
        for m in measurements:
            by_type[m.mtype].append(m)
        for t in _TYPE_ORDER:
            by_type[t].sort(key=lambda m: m.element)

        self._ordered: list[Measurement] = []
        self._idx: dict[MeasType, np.ndarray] = {}
        self._rows: dict[MeasType, np.ndarray] = {}
        row = 0
        for t in _TYPE_ORDER:
            ms = by_type[t]
            self._ordered.extend(ms)
            self._idx[t] = np.array([m.element for m in ms], dtype=np.int64)
            self._rows[t] = np.arange(row, row + len(ms), dtype=np.int64)
            row += len(ms)
        self.z = np.array([m.value for m in self._ordered], dtype=float)
        self.sigma = np.array([m.sigma for m in self._ordered], dtype=float)
        self._columns: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self):
        return iter(self._ordered)

    def __getitem__(self, i: int) -> Measurement:
        return self._ordered[i]

    # -- typed access -------------------------------------------------------
    def elements(self, mtype: MeasType) -> np.ndarray:
        """Element indices of all measurements of ``mtype`` (canonical order)."""
        return self._idx[mtype]

    def rows(self, mtype: MeasType) -> np.ndarray:
        """Row positions of all measurements of ``mtype`` in the stacked vector."""
        return self._rows[mtype]

    def count(self, mtype: MeasType) -> int:
        """Number of measurements of a given type."""
        return len(self._idx[mtype])

    def column_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full-length per-row columns ``(type_pos, element, is_bus)``.

        ``type_pos[i]`` is the row's type position in ``_TYPE_ORDER``,
        ``element[i]`` its bus/branch index and ``is_bus[i]`` the type's
        referent kind — the struct-of-arrays view consumers use to process
        row subsets vectorised instead of via per-row ``Measurement``
        lookups.  Built once per set and cached (the set is immutable).
        """
        if self._columns is None:
            n = len(self)
            tpos = np.empty(n, dtype=np.int64)
            elem = np.empty(n, dtype=np.int64)
            isb = np.zeros(n, dtype=bool)
            for i, t in enumerate(_TYPE_ORDER):
                rows = self._rows[t]
                tpos[rows] = i
                elem[rows] = self._idx[t]
                if t.is_bus:
                    isb[rows] = True
            self._columns = (tpos, elem, isb)
        return self._columns

    @property
    def weights(self) -> np.ndarray:
        """WLS weights ``1/sigma^2``."""
        return 1.0 / (self.sigma * self.sigma)

    def with_values(self, z: np.ndarray) -> "MeasurementSet":
        """A copy of this set with replaced measured values (same order)."""
        if len(z) != len(self):
            raise ValueError("value vector length mismatch")
        ms = [
            Measurement(m.mtype, m.element, float(v), m.sigma)
            for m, v in zip(self._ordered, z)
        ]
        return MeasurementSet(ms)

    def subset(self, keep: np.ndarray) -> "MeasurementSet":
        """A new set containing the rows selected by boolean/typed index ``keep``."""
        keep = np.asarray(keep)
        if keep.dtype == bool:
            keep = np.flatnonzero(keep)
        return MeasurementSet([self._ordered[int(i)] for i in keep])

    def merged_with(self, other: "MeasurementSet") -> "MeasurementSet":
        """Union of two measurement sets (re-canonicalised)."""
        return MeasurementSet(list(self._ordered) + list(other._ordered))

    def merged_with_positions(
        self, other: "MeasurementSet"
    ) -> tuple["MeasurementSet", np.ndarray, np.ndarray]:
        """Like :meth:`merged_with`, also returning row positions.

        Returns ``(merged, rows_self, rows_other)`` where ``rows_self[i]``
        is the row of ``self[i]`` in the merged canonical order (same for
        ``rows_other``).  Lets callers that re-merge structurally identical
        sets every cycle (e.g. DSE pseudo measurements) compute the merged
        value vector by scatter instead of rebuilding the set.
        """
        merged = self.merged_with(other)
        pos = {id(m): i for i, m in enumerate(merged._ordered)}
        rows_self = np.array([pos[id(m)] for m in self._ordered], dtype=np.int64)
        rows_other = np.array([pos[id(m)] for m in other._ordered], dtype=np.int64)
        return merged, rows_self, rows_other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{t.value}={self.count(t)}" for t in _TYPE_ORDER if self.count(t)
        )
        return f"MeasurementSet({len(self)}: {parts})"
