"""PMU stream conditioning: aligning 30 Hz samples with SCADA scans.

A PMU produces ~120 samples within one 4-second SCADA scan.  Averaging the
samples of a quasi-steady window before handing them to the estimator cuts
the effective phasor noise by ``sqrt(N)`` — the data-conditioning step a
phasor data concentrator performs before the estimation layer sees the
stream.
"""

from __future__ import annotations

import numpy as np

from .pmu import PmuSample
from .types import Measurement, MeasurementSet

__all__ = ["average_pmu_window"]


def average_pmu_window(samples: list[PmuSample]) -> MeasurementSet:
    """Average a window of PMU samples into one conditioned set.

    All samples must share the same placement (same channels in the same
    order).  Values are averaged; sigmas shrink by ``sqrt(len(samples))``
    reflecting the variance reduction of the mean of i.i.d. noise.
    """
    if not samples:
        raise ValueError("empty sample window")
    first = samples[0].mset
    n = len(first)
    for s in samples[1:]:
        if len(s.mset) != n:
            raise ValueError("samples have differing channel counts")
        for a, b in zip(first, s.mset):
            if a.mtype != b.mtype or a.element != b.element:
                raise ValueError("samples have differing placements")

    z = np.mean([s.mset.z for s in samples], axis=0)
    shrink = 1.0 / np.sqrt(len(samples))
    out = [
        Measurement(m.mtype, m.element, float(v), m.sigma * shrink)
        for m, v in zip(first, z)
    ]
    return MeasurementSet(out)
