"""Measurement functions h(x) and their sparse Jacobians.

``MeasurementModel`` evaluates the nonlinear states-to-measurements function
``z = h(x) + e`` of the paper's estimation model and its Jacobian
``H = dh/dx`` for a fixed measurement set.  The state is polar voltage
``x = [Va; Vm]`` over all buses; Jacobian columns are ordered angles first,
magnitudes second (the estimator handles reference-angle elimination).

All evaluation is vectorised per measurement type: bus-power rows come from
row slices of ``dS/dV``, branch-flow rows from ``dSf/dV``/``dSt/dV``, exactly
the MATPOWER derivative formulation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..grid.network import Network
from ..grid.powerflow import dsbus_dv
from ..grid.ybus import build_yf_yt, build_ybus
from .types import MeasType, MeasurementSet

__all__ = ["MeasurementModel"]


def _dsbr_dv(
    ybr: sp.csr_matrix, term: np.ndarray, V: np.ndarray, nl: int, n: int
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Branch complex-power derivatives for one branch end.

    ``ybr`` is Yf or Yt; ``term`` the terminal bus per branch (f or t).
    Returns ``(dS_dVa, dS_dVm)``, each ``nl x n``.
    """
    ibr = ybr @ V
    vnorm = V / np.abs(V)
    il = np.arange(nl)
    c_vterm = sp.coo_matrix((V[term], (il, term)), shape=(nl, n)).tocsr()
    c_vnorm_term = sp.coo_matrix((vnorm[term], (il, term)), shape=(nl, n)).tocsr()
    diag_ibr_conj = sp.diags(np.conj(ibr))
    diag_vterm = sp.diags(V[term])

    ds_dva = 1j * (diag_ibr_conj @ c_vterm - diag_vterm @ (ybr @ sp.diags(V)).conj())
    ds_dvm = diag_vterm @ (ybr @ sp.diags(vnorm)).conj() + diag_ibr_conj @ c_vnorm_term
    return ds_dva.tocsr(), ds_dvm.tocsr()


class MeasurementModel:
    """Evaluator for h(x) and H(x) over a fixed measurement set.

    Parameters
    ----------
    net:
        The network the measurements refer to (element indices must be valid
        bus/branch indices of this network).
    mset:
        The measurement set; its canonical row order defines the row order of
        ``h`` and ``jacobian`` output.
    """

    def __init__(self, net: Network, mset: MeasurementSet):
        self.net = net
        self.mset = mset
        self.ybus = build_ybus(net)
        self.yf, self.yt = build_yf_yt(net)
        self.n_state = 2 * net.n_bus

        for t in MeasType:
            el = mset.elements(t)
            if not el.size:
                continue
            bound = net.n_bus if t.is_bus else net.n_branch
            if el.max() >= bound:
                raise ValueError(
                    f"{t.value} measurement references element {el.max()} "
                    f">= {bound}"
                )

    # ------------------------------------------------------------------
    def h(self, Vm: np.ndarray, Va: np.ndarray) -> np.ndarray:
        """Evaluate the measurement function at state (Vm, Va)."""
        net, ms = self.net, self.mset
        V = Vm * np.exp(1j * Va)
        out = np.empty(len(ms))

        need_sbus = ms.count(MeasType.P_INJ) or ms.count(MeasType.Q_INJ)
        if need_sbus:
            sbus = V * np.conj(self.ybus @ V)
        need_sf = (
            ms.count(MeasType.P_FLOW_F)
            or ms.count(MeasType.Q_FLOW_F)
            or ms.count(MeasType.I_MAG_F)
        )
        if need_sf:
            i_f = self.yf @ V
            sf = V[net.f] * np.conj(i_f)
        if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
            st = V[net.t] * np.conj(self.yt @ V)

        def put(t: MeasType, values: np.ndarray) -> None:
            rows = ms.rows(t)
            if rows.size:
                out[rows] = values[ms.elements(t)]

        put(MeasType.V_MAG, Vm)
        put(MeasType.PMU_VA, Va)
        if need_sbus:
            put(MeasType.P_INJ, sbus.real)
            put(MeasType.Q_INJ, sbus.imag)
        if need_sf:
            put(MeasType.P_FLOW_F, sf.real)
            put(MeasType.Q_FLOW_F, sf.imag)
            put(MeasType.I_MAG_F, np.abs(i_f))
        if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
            put(MeasType.P_FLOW_T, st.real)
            put(MeasType.Q_FLOW_T, st.imag)
        return out

    # ------------------------------------------------------------------
    def jacobian(self, Vm: np.ndarray, Va: np.ndarray) -> sp.csr_matrix:
        """Sparse Jacobian H = dh/d[Va; Vm] at state (Vm, Va).

        Shape ``(len(mset), 2*n_bus)``; rows in canonical measurement order,
        columns ``[Va_0..Va_{n-1}, Vm_0..Vm_{n-1}]``.
        """
        net, ms = self.net, self.mset
        n, nl = net.n_bus, net.n_branch
        V = Vm * np.exp(1j * Va)
        blocks: list[sp.spmatrix] = []

        def rows_for(el: np.ndarray, da: sp.spmatrix, dm: sp.spmatrix) -> sp.spmatrix:
            return sp.hstack([da.tocsr()[el], dm.tocsr()[el]], format="csr")

        # V_MAG: dVm/dVm = identity rows.
        el = ms.elements(MeasType.V_MAG)
        if el.size:
            data = np.ones(len(el))
            blocks.append(
                sp.coo_matrix(
                    (data, (np.arange(len(el)), n + el)), shape=(len(el), 2 * n)
                )
            )
        # PMU_VA: dVa/dVa = identity rows.
        el = ms.elements(MeasType.PMU_VA)
        if el.size:
            data = np.ones(len(el))
            blocks.append(
                sp.coo_matrix((data, (np.arange(len(el)), el)), shape=(len(el), 2 * n))
            )

        # Injections.
        need_inj = ms.count(MeasType.P_INJ) or ms.count(MeasType.Q_INJ)
        if need_inj:
            ds_dva, ds_dvm = dsbus_dv(self.ybus, V)
            el = ms.elements(MeasType.P_INJ)
            if el.size:
                blocks.append(rows_for(el, ds_dva.real, ds_dvm.real))
            el = ms.elements(MeasType.Q_INJ)
            if el.size:
                blocks.append(rows_for(el, ds_dva.imag, ds_dvm.imag))

        # From-side flows and current magnitude.
        need_f = (
            ms.count(MeasType.P_FLOW_F)
            or ms.count(MeasType.Q_FLOW_F)
            or ms.count(MeasType.I_MAG_F)
        )
        if need_f:
            dsf_dva, dsf_dvm = _dsbr_dv(self.yf, net.f, V, nl, n)
            el = ms.elements(MeasType.P_FLOW_F)
            if el.size:
                blocks.append(rows_for(el, dsf_dva.real, dsf_dvm.real))
            el = ms.elements(MeasType.Q_FLOW_F)
            if el.size:
                blocks.append(rows_for(el, dsf_dva.imag, dsf_dvm.imag))

        # To-side flows.
        if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
            dst_dva, dst_dvm = _dsbr_dv(self.yt, net.t, V, nl, n)
            el = ms.elements(MeasType.P_FLOW_T)
            if el.size:
                blocks.append(rows_for(el, dst_dva.real, dst_dvm.real))
            el = ms.elements(MeasType.Q_FLOW_T)
            if el.size:
                blocks.append(rows_for(el, dst_dva.imag, dst_dvm.imag))

        # Current magnitude (from side): d|I|/dx = Re(conj(I)/|I| dI/dx).
        el = ms.elements(MeasType.I_MAG_F)
        if el.size:
            i_f = self.yf @ V
            dif_dva = self.yf @ sp.diags(1j * V)
            dif_dvm = self.yf @ sp.diags(V / np.abs(V))
            mag = np.abs(i_f)
            # Guard dark branches: |I| ~ 0 has an undefined gradient; use 0.
            scale = np.where(mag > 1e-9, 1.0 / np.maximum(mag, 1e-9), 0.0)
            w = sp.diags(np.conj(i_f) * scale)
            da = (w @ dif_dva).real
            dm = (w @ dif_dvm).real
            blocks.append(rows_for(el, da, dm))

        if not blocks:
            return sp.csr_matrix((0, 2 * n))
        return sp.vstack(blocks, format="csr")

    # ------------------------------------------------------------------
    def residual(self, z: np.ndarray, Vm: np.ndarray, Va: np.ndarray) -> np.ndarray:
        """Measurement residual ``z - h(x)``."""
        return z - self.h(Vm, Va)
