"""Measurement functions h(x) and their sparse Jacobians.

``MeasurementModel`` evaluates the nonlinear states-to-measurements function
``z = h(x) + e`` of the paper's estimation model and its Jacobian
``H = dh/dx`` for a fixed measurement set.  The state is polar voltage
``x = [Va; Vm]`` over all buses; Jacobian columns are ordered angles first,
magnitudes second (the estimator handles reference-angle elimination).

All evaluation is vectorised per measurement type: bus-power rows come from
row slices of ``dS/dV``, branch-flow rows from ``dSf/dV``/``dSt/dV``, exactly
the MATPOWER derivative formulation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..grid.network import Network
from ..grid.powerflow import dsbus_dv
from ..grid.ybus import (
    BranchAdmittances,
    batch_branch_admittances,
    branch_admittances,
    build_yf_yt,
    build_ybus,
)
from .types import MeasType, MeasurementSet

__all__ = ["BatchOperators", "JacobianStructure", "MeasurementModel"]


class BatchOperators:
    """Per-scenario admittance values + current kernels for a scenario batch.

    Batched evaluation stacks K scenarios that share one network *pattern*
    but may differ in branch status.  The four branch admittance terms are
    held as ``(n_branch, Ka)`` columns with ``Ka == K`` when scenarios
    differ topologically and ``Ka == 1`` (a broadcast view of the base
    admittances) when they do not — the uniform case then reuses the
    model's exact sparse operators, keeping floating-point drift against
    the serial path to a minimum.
    """

    def __init__(
        self,
        model: "MeasurementModel",
        adm: BranchAdmittances,
        Ka: int,
        is_base: bool = False,
    ):
        self.model = model
        self.adm = adm
        self.Ka = Ka
        # True only for the broadcast base-topology instance; a batch
        # select()-ed down to one scenario still carries its own column.
        self.is_base = is_base
        self._stack: np.ndarray | None = None

    @classmethod
    def for_status(
        cls, model: "MeasurementModel", status: np.ndarray | None = None
    ) -> "BatchOperators":
        """Build operators for K status rows (``None`` = base topology)."""
        if status is None:
            a = branch_admittances(model.net)
            adm = BranchAdmittances(
                yff=a.yff[:, None], yft=a.yft[:, None],
                ytf=a.ytf[:, None], ytt=a.ytt[:, None],
            )
            return cls(model, adm, 1, is_base=True)
        adm = batch_branch_admittances(model.net, status)
        return cls(model, adm, adm.yff.shape[1])

    def select(self, idx: np.ndarray) -> "BatchOperators":
        """Operators restricted to the scenario columns ``idx``."""
        if self.is_base:
            return self
        a = self.adm
        return BatchOperators(
            self.model,
            BranchAdmittances(
                yff=a.yff[:, idx], yft=a.yft[:, idx],
                ytf=a.ytf[:, idx], ytt=a.ytt[:, idx],
            ),
            len(idx),
        )

    @property
    def adm_stack(self) -> np.ndarray:
        """``(4*n_branch, Ka)`` stack ``[yff; yft; ytf; ytt]`` consumed by
        the pattern mapping matrices."""
        if self._stack is None:
            a = self.adm
            self._stack = np.concatenate([a.yff, a.yft, a.ytf, a.ytt], axis=0)
        return self._stack

    def currents(self, V: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Branch and bus currents for bus voltages ``V`` of shape (n, K).

        Returns ``(If, It, Ibus)`` — from-/to-end branch currents (nl, K)
        and net bus current injections (n, K).
        """
        model, net = self.model, self.model.net
        if self.is_base:
            # Base topology: the exact sparse operators apply column-wise.
            return model.yf @ V, model.yt @ V, model.ybus @ V
        a = self.adm
        If = a.yff * V[net.f] + a.yft * V[net.t]
        It = a.ytf * V[net.f] + a.ytt * V[net.t]
        cfT, ctT = model._incidence()
        ysh = net.Gs + 1j * net.Bs
        Ibus = cfT @ If + ctT @ It + ysh[:, None] * V
        return If, It, Ibus


def _union_with_terminal(
    Y: sp.csr_matrix, term: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-sorted union of Y's sparsity pattern with entries ``(l, term[l])``.

    Returns ``(rows, cols, vals)`` with one record per distinct position;
    ``vals`` holds Y's entry there (0 where only the terminal contributes).
    """
    nl = Y.shape[0]
    rows = np.concatenate(
        [np.repeat(np.arange(nl), np.diff(Y.indptr)), np.arange(nl)]
    )
    cols = np.concatenate([Y.indices.astype(np.int64), term.astype(np.int64)])
    vals = np.concatenate([Y.data, np.zeros(nl, dtype=Y.data.dtype)])
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    first = np.ones(len(rows), dtype=bool)
    first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    grp = np.cumsum(first) - 1
    out_vals = np.zeros(int(grp[-1]) + 1 if len(grp) else 0, dtype=vals.dtype)
    np.add.at(out_vals, grp, vals)
    return rows[first], cols[first], out_vals


class JacobianStructure:
    """Precomputed sparsity pattern + fill recipe for the reduced Jacobian.

    The Jacobian's sparsity is fixed by the network topology and the
    measurement set; only its values depend on the state.  This class bakes
    the whole assembly — block stacking, canonical row order, reduced-column
    selection — into index arrays once, so each Gauss-Newton iteration only
    evaluates the per-entry derivative formulas (vectorised over the union
    patterns of Ybus/Yf/Yt) and scatters them into a CSC ``data`` array.

    Values match :meth:`MeasurementModel.jacobian` to floating-point
    round-off; the parity tests pin this down.
    """

    def __init__(self, model: "MeasurementModel", keep: np.ndarray | None = None):
        net, ms = model.net, model.mset
        n = net.n_bus
        self.model = model
        if keep is None:
            keep = np.arange(2 * n)
        keep = np.asarray(keep)
        if keep.dtype == bool:  # boolean mask → column indices
            keep = np.flatnonzero(keep)
        self.keep = np.asarray(keep, dtype=np.int64)
        self.n_rows = len(ms)
        self.n_cols = len(self.keep)

        col_lut = -np.ones(2 * n, dtype=np.int64)
        col_lut[self.keep] = np.arange(self.n_cols)

        # -- entry lists: (row, col, source id, gather index, part id) -----
        # parts: 0 = const, 1 = real, 2 = imag
        e_rows: list[np.ndarray] = []
        e_cols: list[np.ndarray] = []
        e_src: list[np.ndarray] = []
        e_gidx: list[np.ndarray] = []
        e_part: list[np.ndarray] = []
        e_cval: list[np.ndarray] = []
        src_names: list[str] = []

        def add_entries(rows, cols, src, gidx, part, cval=None):
            e_rows.append(rows.astype(np.int64))
            e_cols.append(cols.astype(np.int64))
            e_src.append(np.full(len(rows), src, dtype=np.int16))
            e_gidx.append(gidx.astype(np.int64))
            e_part.append(np.full(len(rows), part, dtype=np.int8))
            e_cval.append(
                np.zeros(len(rows)) if cval is None else np.asarray(cval, float)
            )

        def src_id(name: str) -> int:
            if name not in src_names:
                src_names.append(name)
            return src_names.index(name)

        def add_block(mrows, el, urows, ucols, src_va, src_vm, part):
            """Entries for measurements ``mrows`` over union pattern rows
            ``el`` (dVa columns ``ucols`` and dVm columns ``n + ucols``)."""
            ptr = np.searchsorted(urows, np.arange(int(el.max()) + 2))
            counts = ptr[el + 1] - ptr[el]
            rows = np.repeat(mrows, counts)
            gidx = (
                np.concatenate([np.arange(ptr[e], ptr[e + 1]) for e in el])
                if len(el)
                else np.zeros(0, np.int64)
            )
            cols = ucols[gidx]
            add_entries(rows, cols, src_id(src_va), gidx, part)
            add_entries(rows, cols + n, src_id(src_vm), gidx, part)

        # V_MAG / PMU_VA: constant identity entries.
        el = ms.elements(MeasType.V_MAG)
        if el.size:
            add_entries(
                ms.rows(MeasType.V_MAG), n + el, -1, np.zeros(len(el)), 0,
                cval=np.ones(len(el)),
            )
        el = ms.elements(MeasType.PMU_VA)
        if el.size:
            add_entries(
                ms.rows(MeasType.PMU_VA), el, -1, np.zeros(len(el)), 0,
                cval=np.ones(len(el)),
            )

        # Injections: union of Ybus pattern and the diagonal.
        self._need_inj = bool(
            ms.count(MeasType.P_INJ) or ms.count(MeasType.Q_INJ)
        )
        if self._need_inj:
            Yb = model.ybus.tocsr()
            ir, ic, iv = _union_with_terminal(Yb, np.arange(n))
            self._inj = (ir, ic, iv, ir == ic)
            el = ms.elements(MeasType.P_INJ)
            if el.size:
                add_block(ms.rows(MeasType.P_INJ), el, ir, ic,
                          "inj_dva", "inj_dvm", 1)
            el = ms.elements(MeasType.Q_INJ)
            if el.size:
                add_block(ms.rows(MeasType.Q_INJ), el, ir, ic,
                          "inj_dva", "inj_dvm", 2)

        # From-side flows: union of Yf pattern and the from-terminal column.
        self._need_f = bool(
            ms.count(MeasType.P_FLOW_F) or ms.count(MeasType.Q_FLOW_F)
        )
        if self._need_f:
            Yf = model.yf.tocsr()
            fr, fc, fv = _union_with_terminal(Yf, net.f)
            self._fside = (fr, fc, fv, fc == net.f[fr])
            el = ms.elements(MeasType.P_FLOW_F)
            if el.size:
                add_block(ms.rows(MeasType.P_FLOW_F), el, fr, fc,
                          "f_dva", "f_dvm", 1)
            el = ms.elements(MeasType.Q_FLOW_F)
            if el.size:
                add_block(ms.rows(MeasType.Q_FLOW_F), el, fr, fc,
                          "f_dva", "f_dvm", 2)

        # To-side flows.
        self._need_t = bool(
            ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T)
        )
        if self._need_t:
            Yt = model.yt.tocsr()
            tr, tc, tv = _union_with_terminal(Yt, net.t)
            self._tside = (tr, tc, tv, tc == net.t[tr])
            el = ms.elements(MeasType.P_FLOW_T)
            if el.size:
                add_block(ms.rows(MeasType.P_FLOW_T), el, tr, tc,
                          "t_dva", "t_dvm", 1)
            el = ms.elements(MeasType.Q_FLOW_T)
            if el.size:
                add_block(ms.rows(MeasType.Q_FLOW_T), el, tr, tc,
                          "t_dva", "t_dvm", 2)

        # Current magnitude (from side): plain Yf pattern, real-valued.
        self._need_imag = bool(ms.count(MeasType.I_MAG_F))
        if self._need_imag:
            Yf = model.yf.tocsr()
            nl = Yf.shape[0]
            mr = np.repeat(np.arange(nl), np.diff(Yf.indptr))
            self._imag = (mr, Yf.indices.astype(np.int64), Yf.data.copy())
            el = ms.elements(MeasType.I_MAG_F)
            add_block(ms.rows(MeasType.I_MAG_F), el, mr,
                      self._imag[1], "imag_da", "imag_dm", 1)

        # -- assemble the final CSC skeleton -------------------------------
        if e_rows:
            rows = np.concatenate(e_rows)
            cols = np.concatenate(e_cols)
            src = np.concatenate(e_src)
            gidx = np.concatenate(e_gidx)
            part = np.concatenate(e_part)
            cval = np.concatenate(e_cval)
        else:
            rows = cols = gidx = np.zeros(0, np.int64)
            src = np.zeros(0, np.int16)
            part = np.zeros(0, np.int8)
            cval = np.zeros(0)

        mask = col_lut[cols] >= 0
        rows, cols = rows[mask], col_lut[cols[mask]]
        src, gidx, part, cval = src[mask], gidx[mask], part[mask], cval[mask]
        n_entries = len(rows)

        skel = sp.coo_matrix(
            (np.arange(n_entries, dtype=float), (rows, cols)),
            shape=(self.n_rows, self.n_cols),
        ).tocsc()
        self._indices = skel.indices
        self._indptr = skel.indptr
        self._perm = skel.data.astype(np.int64)

        # constant entries prefilled; dynamic groups refill the rest
        self._template = cval
        self._groups: list[tuple[np.ndarray, str, int]] = []
        for s, name in enumerate(src_names):
            for p in (1, 2):
                pos = np.flatnonzero((src == s) & (part == p))
                if pos.size:
                    self._groups.append((pos, name, p))
        self._gidx = gidx

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored entries in the assembled reduced Jacobian."""
        return len(self._perm)

    # ------------------------------------------------------------------
    def fill(self, Vm: np.ndarray, Va: np.ndarray) -> sp.csc_matrix:
        """Evaluate the reduced Jacobian at (Vm, Va) on the cached pattern."""
        model = self.model
        V = Vm * np.exp(1j * Va)
        vnorm = V / np.abs(V)
        src: dict[str, np.ndarray] = {}

        if self._need_inj:
            ir, ic, iv, idg = self._inj
            Ib = model.ybus @ V
            src["inj_dva"] = 1j * V[ir] * np.conj(idg * Ib[ir] - iv * V[ic])
            src["inj_dvm"] = V[ir] * np.conj(iv) * np.conj(vnorm[ic]) + idg * (
                np.conj(Ib[ir]) * vnorm[ir]
            )
        if self._need_f:
            fr, fc, fv, ift = self._fside
            term = model.net.f
            ibr = model.yf @ V
            src["f_dva"] = 1j * (
                np.conj(ibr[fr]) * (ift * V[fc])
                - V[term[fr]] * np.conj(fv) * np.conj(V[fc])
            )
            src["f_dvm"] = V[term[fr]] * np.conj(fv) * np.conj(vnorm[fc]) + np.conj(
                ibr[fr]
            ) * (ift * vnorm[fc])
        if self._need_t:
            tr, tc, tv, itt = self._tside
            term = model.net.t
            ibr = model.yt @ V
            src["t_dva"] = 1j * (
                np.conj(ibr[tr]) * (itt * V[tc])
                - V[term[tr]] * np.conj(tv) * np.conj(V[tc])
            )
            src["t_dvm"] = V[term[tr]] * np.conj(tv) * np.conj(vnorm[tc]) + np.conj(
                ibr[tr]
            ) * (itt * vnorm[tc])
        if self._need_imag:
            mr, mc, mv = self._imag
            i_f = model.yf @ V
            mag = np.abs(i_f)
            scale = np.where(mag > 1e-9, 1.0 / np.maximum(mag, 1e-9), 0.0)
            w = np.conj(i_f) * scale
            src["imag_da"] = np.real(w[mr] * (mv * (1j * V[mc])))
            src["imag_dm"] = np.real(w[mr] * (mv * vnorm[mc]))

        vals = self._template.copy()
        for pos, name, p in self._groups:
            arr = src[name][self._gidx[pos]]
            vals[pos] = arr.real if p == 1 else arr.imag
        return sp.csc_matrix(
            (vals[self._perm], self._indices, self._indptr),
            shape=(self.n_rows, self.n_cols),
        )

    # ------------------------------------------------------------------
    # Batched (SIMD-over-scenarios) evaluation
    # ------------------------------------------------------------------
    def _ensure_batch_maps(self) -> None:
        """Sparse maps from per-scenario admittances to pattern values.

        The union patterns (``_inj``/``_fside``/``_tside``/``_imag``) store
        the *base* operator values; per-scenario values on the identical
        pattern are ``M @ [yff; yft; ytf; ytt] + const`` where ``M`` scatters
        each branch's four admittance terms to its pattern positions and
        ``const`` carries the (topology-independent) shunt diagonal.  Built
        once per structure; the searchsorted lookups rely on the patterns
        being row-major sorted, which ``_union_with_terminal`` guarantees.
        """
        if getattr(self, "_bmaps", None) is not None:
            return
        net = self.model.net
        n, nl = net.n_bus, net.n_branch
        il = np.arange(nl)
        maps: dict[str, tuple[sp.csr_matrix, np.ndarray]] = {}

        def mapping(rows, cols, contribs, const=None):
            keys = rows.astype(np.int64) * n + cols.astype(np.int64)
            ne = len(keys)
            mr: list[np.ndarray] = []
            mc: list[np.ndarray] = []
            for kr, kc, block in contribs:
                k = kr.astype(np.int64) * n + kc.astype(np.int64)
                pos = np.searchsorted(keys, k)
                pos_c = np.minimum(pos, max(ne - 1, 0))
                if ne == 0 or not (
                    np.all(pos < ne) and np.array_equal(keys[pos_c], k)
                ):
                    raise AssertionError(
                        "batch pattern map: branch entry missing from pattern"
                    )
                mr.append(pos)
                mc.append(block * nl + il)
            M = sp.coo_matrix(
                (
                    np.ones(sum(len(x) for x in mr)),
                    (np.concatenate(mr), np.concatenate(mc)),
                ),
                shape=(ne, 4 * nl),
            ).tocsr()
            c = np.zeros(ne, complex)
            if const is not None:
                b = np.arange(n, dtype=np.int64)
                c[np.searchsorted(keys, b * n + b)] = const
            return M, c

        f, t = net.f, net.t
        if self._need_inj:
            ir, ic, _, _ = self._inj
            maps["inj"] = mapping(
                ir, ic,
                [(f, f, 0), (f, t, 1), (t, f, 2), (t, t, 3)],
                const=net.Gs + 1j * net.Bs,
            )
        if self._need_f:
            fr, fc, _, _ = self._fside
            maps["f"] = mapping(fr, fc, [(il, f, 0), (il, t, 1)])
        if self._need_t:
            tr, tc, _, _ = self._tside
            maps["t"] = mapping(tr, tc, [(il, f, 2), (il, t, 3)])
        if self._need_imag:
            mr_, mc_, _ = self._imag
            maps["imag"] = mapping(mr_, mc_, [(il, f, 0), (il, t, 1)])
        self._bmaps = maps

    def fill_batch(
        self, Vm: np.ndarray, Va: np.ndarray, ops: "BatchOperators | None" = None
    ) -> sp.csc_matrix:
        """Block-diagonal batched Jacobian at K states on the cached pattern.

        ``Vm``/``Va`` are ``(K, n_bus)`` state stacks; ``ops`` carries the
        per-scenario admittances (base topology when omitted).  Returns the
        ``(K*n_rows, K*n_cols)`` block-diagonal CSC whose k-th block equals
        :meth:`fill` evaluated on scenario k — exactly for uniform
        topology, to floating-point round-off otherwise.
        """
        model = self.model
        if ops is None:
            ops = model.batch_operators()
        Vm = np.atleast_2d(Vm)
        Va = np.atleast_2d(Va)
        K = Vm.shape[0]
        V = (Vm * np.exp(1j * Va)).T  # (n, K)
        vnorm = V / np.abs(V)
        self._ensure_batch_maps()
        uniform = ops.is_base
        stack = None if uniform else ops.adm_stack
        src: dict[str, np.ndarray] = {}

        if self._need_inj or self._need_f or self._need_t or self._need_imag:
            If, It, Ibus = ops.currents(V)

        if self._need_inj:
            ir, ic, iv, idg = self._inj
            ivK = (
                iv[:, None]
                if uniform
                else self._bmaps["inj"][0] @ stack + self._bmaps["inj"][1][:, None]
            )
            dg = idg[:, None]
            src["inj_dva"] = 1j * V[ir] * np.conj(dg * Ibus[ir] - ivK * V[ic])
            src["inj_dvm"] = V[ir] * np.conj(ivK) * np.conj(vnorm[ic]) + dg * (
                np.conj(Ibus[ir]) * vnorm[ir]
            )
        if self._need_f:
            fr, fc, fv, ift = self._fside
            fvK = fv[:, None] if uniform else self._bmaps["f"][0] @ stack
            term = model.net.f
            iftc = ift[:, None]
            src["f_dva"] = 1j * (
                np.conj(If[fr]) * (iftc * V[fc])
                - V[term[fr]] * np.conj(fvK) * np.conj(V[fc])
            )
            src["f_dvm"] = V[term[fr]] * np.conj(fvK) * np.conj(vnorm[fc]) + np.conj(
                If[fr]
            ) * (iftc * vnorm[fc])
        if self._need_t:
            tr, tc, tv, itt = self._tside
            tvK = tv[:, None] if uniform else self._bmaps["t"][0] @ stack
            term = model.net.t
            ittc = itt[:, None]
            src["t_dva"] = 1j * (
                np.conj(It[tr]) * (ittc * V[tc])
                - V[term[tr]] * np.conj(tvK) * np.conj(V[tc])
            )
            src["t_dvm"] = V[term[tr]] * np.conj(tvK) * np.conj(vnorm[tc]) + np.conj(
                It[tr]
            ) * (ittc * vnorm[tc])
        if self._need_imag:
            mr, mc, mv = self._imag
            mvK = mv[:, None] if uniform else self._bmaps["imag"][0] @ stack
            mag = np.abs(If)
            scale = np.where(mag > 1e-9, 1.0 / np.maximum(mag, 1e-9), 0.0)
            w = np.conj(If) * scale
            src["imag_da"] = np.real(w[mr] * (mvK * (1j * V[mc])))
            src["imag_dm"] = np.real(w[mr] * (mvK * vnorm[mc]))

        vals = np.repeat(self._template[:, None], K, axis=1)
        for pos, name, p in self._groups:
            arr = src[name][self._gidx[pos]]
            vals[pos] = arr.real if p == 1 else arr.imag
        return self._block_csc(vals, K)

    def _block_csc(self, vals: np.ndarray, K: int) -> sp.csc_matrix:
        """Assemble (n_entries, K) values into the block-diagonal CSC."""
        nnz = len(self._perm)
        data = vals[self._perm].T.ravel()
        m, nc = self.n_rows, self.n_cols
        idx = self._indices.astype(np.int64)
        indices = (idx[None, :] + m * np.arange(K)[:, None]).ravel()
        ptr = self._indptr.astype(np.int64)
        indptr = np.append(
            (ptr[:-1][None, :] + nnz * np.arange(K)[:, None]).ravel(), nnz * K
        )
        return sp.csc_matrix((data, indices, indptr), shape=(K * m, K * nc))


def _dsbr_dv(
    ybr: sp.csr_matrix, term: np.ndarray, V: np.ndarray, nl: int, n: int
) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Branch complex-power derivatives for one branch end.

    ``ybr`` is Yf or Yt; ``term`` the terminal bus per branch (f or t).
    Returns ``(dS_dVa, dS_dVm)``, each ``nl x n``.
    """
    ibr = ybr @ V
    vnorm = V / np.abs(V)
    il = np.arange(nl)
    c_vterm = sp.coo_matrix((V[term], (il, term)), shape=(nl, n)).tocsr()
    c_vnorm_term = sp.coo_matrix((vnorm[term], (il, term)), shape=(nl, n)).tocsr()
    diag_ibr_conj = sp.diags(np.conj(ibr))
    diag_vterm = sp.diags(V[term])

    ds_dva = 1j * (diag_ibr_conj @ c_vterm - diag_vterm @ (ybr @ sp.diags(V)).conj())
    ds_dvm = diag_vterm @ (ybr @ sp.diags(vnorm)).conj() + diag_ibr_conj @ c_vnorm_term
    return ds_dva.tocsr(), ds_dvm.tocsr()


class MeasurementModel:
    """Evaluator for h(x) and H(x) over a fixed measurement set.

    Parameters
    ----------
    net:
        The network the measurements refer to (element indices must be valid
        bus/branch indices of this network).
    mset:
        The measurement set; its canonical row order defines the row order of
        ``h`` and ``jacobian`` output.
    """

    def __init__(self, net: Network, mset: MeasurementSet):
        self.net = net
        self.mset = mset
        self.ybus = build_ybus(net)
        self.yf, self.yt = build_yf_yt(net)
        self.n_state = 2 * net.n_bus
        self._jac_structs: dict[bytes | None, JacobianStructure] = {}
        self._incT: tuple[sp.csr_matrix, sp.csr_matrix] | None = None
        self._base_ops: BatchOperators | None = None

        for t in MeasType:
            el = mset.elements(t)
            if not el.size:
                continue
            bound = net.n_bus if t.is_bus else net.n_branch
            if el.max() >= bound:
                raise ValueError(
                    f"{t.value} measurement references element {el.max()} "
                    f">= {bound}"
                )

    # ------------------------------------------------------------------
    def h(self, Vm: np.ndarray, Va: np.ndarray) -> np.ndarray:
        """Evaluate the measurement function at state (Vm, Va)."""
        net, ms = self.net, self.mset
        V = Vm * np.exp(1j * Va)
        out = np.empty(len(ms))

        need_sbus = ms.count(MeasType.P_INJ) or ms.count(MeasType.Q_INJ)
        if need_sbus:
            sbus = V * np.conj(self.ybus @ V)
        need_sf = (
            ms.count(MeasType.P_FLOW_F)
            or ms.count(MeasType.Q_FLOW_F)
            or ms.count(MeasType.I_MAG_F)
        )
        if need_sf:
            i_f = self.yf @ V
            sf = V[net.f] * np.conj(i_f)
        if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
            st = V[net.t] * np.conj(self.yt @ V)

        def put(t: MeasType, values: np.ndarray) -> None:
            rows = ms.rows(t)
            if rows.size:
                out[rows] = values[ms.elements(t)]

        put(MeasType.V_MAG, Vm)
        put(MeasType.PMU_VA, Va)
        if need_sbus:
            put(MeasType.P_INJ, sbus.real)
            put(MeasType.Q_INJ, sbus.imag)
        if need_sf:
            put(MeasType.P_FLOW_F, sf.real)
            put(MeasType.Q_FLOW_F, sf.imag)
            put(MeasType.I_MAG_F, np.abs(i_f))
        if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
            put(MeasType.P_FLOW_T, st.real)
            put(MeasType.Q_FLOW_T, st.imag)
        return out

    # ------------------------------------------------------------------
    def jacobian(self, Vm: np.ndarray, Va: np.ndarray) -> sp.csr_matrix:
        """Sparse Jacobian H = dh/d[Va; Vm] at state (Vm, Va).

        Shape ``(len(mset), 2*n_bus)``; rows in canonical measurement order,
        columns ``[Va_0..Va_{n-1}, Vm_0..Vm_{n-1}]``.
        """
        net, ms = self.net, self.mset
        n, nl = net.n_bus, net.n_branch
        V = Vm * np.exp(1j * Va)
        blocks: list[sp.spmatrix] = []

        def rows_for(el: np.ndarray, da: sp.spmatrix, dm: sp.spmatrix) -> sp.spmatrix:
            return sp.hstack([da.tocsr()[el], dm.tocsr()[el]], format="csr")

        # V_MAG: dVm/dVm = identity rows.
        el = ms.elements(MeasType.V_MAG)
        if el.size:
            data = np.ones(len(el))
            blocks.append(
                sp.coo_matrix(
                    (data, (np.arange(len(el)), n + el)), shape=(len(el), 2 * n)
                )
            )
        # PMU_VA: dVa/dVa = identity rows.
        el = ms.elements(MeasType.PMU_VA)
        if el.size:
            data = np.ones(len(el))
            blocks.append(
                sp.coo_matrix((data, (np.arange(len(el)), el)), shape=(len(el), 2 * n))
            )

        # Injections.
        need_inj = ms.count(MeasType.P_INJ) or ms.count(MeasType.Q_INJ)
        if need_inj:
            ds_dva, ds_dvm = dsbus_dv(self.ybus, V)
            el = ms.elements(MeasType.P_INJ)
            if el.size:
                blocks.append(rows_for(el, ds_dva.real, ds_dvm.real))
            el = ms.elements(MeasType.Q_INJ)
            if el.size:
                blocks.append(rows_for(el, ds_dva.imag, ds_dvm.imag))

        # From-side flows and current magnitude.
        need_f = (
            ms.count(MeasType.P_FLOW_F)
            or ms.count(MeasType.Q_FLOW_F)
            or ms.count(MeasType.I_MAG_F)
        )
        if need_f:
            dsf_dva, dsf_dvm = _dsbr_dv(self.yf, net.f, V, nl, n)
            el = ms.elements(MeasType.P_FLOW_F)
            if el.size:
                blocks.append(rows_for(el, dsf_dva.real, dsf_dvm.real))
            el = ms.elements(MeasType.Q_FLOW_F)
            if el.size:
                blocks.append(rows_for(el, dsf_dva.imag, dsf_dvm.imag))

        # To-side flows.
        if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
            dst_dva, dst_dvm = _dsbr_dv(self.yt, net.t, V, nl, n)
            el = ms.elements(MeasType.P_FLOW_T)
            if el.size:
                blocks.append(rows_for(el, dst_dva.real, dst_dvm.real))
            el = ms.elements(MeasType.Q_FLOW_T)
            if el.size:
                blocks.append(rows_for(el, dst_dva.imag, dst_dvm.imag))

        # Current magnitude (from side): d|I|/dx = Re(conj(I)/|I| dI/dx).
        el = ms.elements(MeasType.I_MAG_F)
        if el.size:
            i_f = self.yf @ V
            dif_dva = self.yf @ sp.diags(1j * V)
            dif_dvm = self.yf @ sp.diags(V / np.abs(V))
            mag = np.abs(i_f)
            # Guard dark branches: |I| ~ 0 has an undefined gradient; use 0.
            scale = np.where(mag > 1e-9, 1.0 / np.maximum(mag, 1e-9), 0.0)
            w = sp.diags(np.conj(i_f) * scale)
            da = (w @ dif_dva).real
            dm = (w @ dif_dvm).real
            blocks.append(rows_for(el, da, dm))

        if not blocks:
            return sp.csr_matrix((0, 2 * n))
        return sp.vstack(blocks, format="csr")

    # ------------------------------------------------------------------
    def jacobian_structure(self, keep: np.ndarray | None = None) -> JacobianStructure:
        """The cached fill recipe for the (column-reduced) Jacobian.

        ``keep`` selects state columns (e.g. reference-angle elimination);
        structures are cached per distinct ``keep`` selection, so repeated
        Gauss-Newton iterations share one precomputed pattern.
        """
        if keep is not None:
            keep = np.asarray(keep)
            if keep.dtype == bool:
                keep = np.flatnonzero(keep)
        key = None if keep is None else np.asarray(keep, np.int64).tobytes()
        st = self._jac_structs.get(key)
        if st is None:
            st = JacobianStructure(self, keep)
            self._jac_structs[key] = st
        return st

    def jacobian_reduced(
        self, Vm: np.ndarray, Va: np.ndarray, keep: np.ndarray | None = None
    ) -> sp.csc_matrix:
        """Reduced Jacobian via the cached structure (fast path).

        Equivalent to ``jacobian(Vm, Va).tocsc()[:, keep]`` up to
        floating-point round-off, without re-deriving the sparsity pattern
        or re-slicing columns on every call.
        """
        return self.jacobian_structure(keep).fill(Vm, Va)

    # ------------------------------------------------------------------
    # Batched (SIMD-over-scenarios) evaluation
    # ------------------------------------------------------------------
    def _incidence(self) -> tuple[sp.csr_matrix, sp.csr_matrix]:
        """Transposed branch incidence one-hots ``(CfT, CtT)``, each
        ``n_bus x n_branch``, for accumulating branch currents to buses."""
        if self._incT is None:
            net = self.net
            nl, n = net.n_branch, net.n_bus
            il = np.arange(nl)
            ones = np.ones(nl)
            cfT = sp.coo_matrix((ones, (net.f, il)), shape=(n, nl)).tocsr()
            ctT = sp.coo_matrix((ones, (net.t, il)), shape=(n, nl)).tocsr()
            self._incT = (cfT, ctT)
        return self._incT

    def batch_operators(self, status: np.ndarray | None = None) -> BatchOperators:
        """Batch evaluation operators for K branch-status rows.

        ``status=None`` means every scenario shares the base topology; that
        (cached) instance broadcasts one admittance column over the batch.
        """
        if status is None:
            if self._base_ops is None:
                self._base_ops = BatchOperators.for_status(self)
            return self._base_ops
        return BatchOperators.for_status(self, status)

    def h_batch(
        self, Vm: np.ndarray, Va: np.ndarray, ops: BatchOperators | None = None
    ) -> np.ndarray:
        """Evaluate h(x) for K stacked states at once.

        ``Vm``/``Va`` are ``(K, n_bus)``; returns ``(K, len(mset))`` with
        row k equal to :meth:`h` on scenario k (exactly for uniform
        topology, to round-off otherwise).
        """
        net, ms = self.net, self.mset
        if ops is None:
            ops = self.batch_operators()
        Vm = np.atleast_2d(Vm)
        Va = np.atleast_2d(Va)
        K = Vm.shape[0]
        V = (Vm * np.exp(1j * Va)).T  # (n, K)
        out = np.empty((K, len(ms)))

        def put(t: MeasType, values: np.ndarray) -> None:
            """Scatter (n_el, K) values into the output rows for type t."""
            rows = ms.rows(t)
            if rows.size:
                out[:, rows] = values[ms.elements(t)].T

        put(MeasType.V_MAG, Vm.T)
        put(MeasType.PMU_VA, Va.T)

        need_flow = (
            ms.count(MeasType.P_INJ)
            or ms.count(MeasType.Q_INJ)
            or ms.count(MeasType.P_FLOW_F)
            or ms.count(MeasType.Q_FLOW_F)
            or ms.count(MeasType.I_MAG_F)
            or ms.count(MeasType.P_FLOW_T)
            or ms.count(MeasType.Q_FLOW_T)
        )
        if need_flow:
            If, It, Ibus = ops.currents(V)
            if ms.count(MeasType.P_INJ) or ms.count(MeasType.Q_INJ):
                sbus = V * np.conj(Ibus)
                put(MeasType.P_INJ, sbus.real)
                put(MeasType.Q_INJ, sbus.imag)
            if (
                ms.count(MeasType.P_FLOW_F)
                or ms.count(MeasType.Q_FLOW_F)
                or ms.count(MeasType.I_MAG_F)
            ):
                sf = V[net.f] * np.conj(If)
                put(MeasType.P_FLOW_F, sf.real)
                put(MeasType.Q_FLOW_F, sf.imag)
                put(MeasType.I_MAG_F, np.abs(If))
            if ms.count(MeasType.P_FLOW_T) or ms.count(MeasType.Q_FLOW_T):
                st = V[net.t] * np.conj(It)
                put(MeasType.P_FLOW_T, st.real)
                put(MeasType.Q_FLOW_T, st.imag)
        return out

    # ------------------------------------------------------------------
    def residual(self, z: np.ndarray, Vm: np.ndarray, Va: np.ndarray) -> np.ndarray:
        """Measurement residual ``z - h(x)``."""
        return z - self.h(Vm, Va)
