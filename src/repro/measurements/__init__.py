"""Measurement substrate: types, h(x)/H(x), generation, SCADA & PMU streams."""

from .failures import drop_region, drop_rtu, random_rtu_dropout
from .functions import MeasurementModel
from .fusion import average_pmu_window
from .generator import generate_measurements, inject_bad_data, true_values
from .placement import (
    full_placement,
    greedy_pmu_sites,
    pmu_placement,
    scada_placement,
)
from .pmu import PmuSample, PmuStream, pmu_storage_bytes
from .scada import NoiseProcess, ScadaSystem, TelemetryFrame
from .types import DEFAULT_SIGMAS, Measurement, MeasurementSet, MeasType

__all__ = [
    "MeasType",
    "Measurement",
    "MeasurementSet",
    "DEFAULT_SIGMAS",
    "MeasurementModel",
    "generate_measurements",
    "true_values",
    "inject_bad_data",
    "full_placement",
    "scada_placement",
    "pmu_placement",
    "greedy_pmu_sites",
    "ScadaSystem",
    "NoiseProcess",
    "TelemetryFrame",
    "PmuStream",
    "PmuSample",
    "pmu_storage_bytes",
    "drop_rtu",
    "drop_region",
    "random_rtu_dropout",
    "average_pmu_window",
]
