"""Telemetry failure injection: RTU and communication-link dropouts.

The related work the paper builds on (Bose et al.) evaluates hierarchical
estimators under "failure at the network connection" scenarios.  These
helpers produce those scenarios: dropping the channels of individual RTUs
(one RTU per bus: its voltage/injection channels plus the flow meters at
its ends) or of whole regions (a control-centre communication link).
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from .types import MeasType, MeasurementSet

__all__ = ["drop_rtu", "drop_region", "random_rtu_dropout"]


def _rows_touching_buses(
    net: Network, mset: MeasurementSet, buses: set[int]
) -> np.ndarray:
    """Row mask for channels metered at any of ``buses``.

    Bus channels belong to their bus; branch channels belong to the
    metered-end bus (from side for F-types, to side for T-types).
    """
    mask = np.zeros(len(mset), dtype=bool)
    for row, m in enumerate(mset):
        if m.mtype.is_bus:
            mask[row] = m.element in buses
        elif m.mtype in (MeasType.P_FLOW_F, MeasType.Q_FLOW_F, MeasType.I_MAG_F):
            mask[row] = int(net.f[m.element]) in buses
        else:
            mask[row] = int(net.t[m.element]) in buses
    return mask


def drop_rtu(
    net: Network, mset: MeasurementSet, buses
) -> tuple[MeasurementSet, np.ndarray]:
    """Remove all channels metered at the given buses (RTU outage).

    Returns ``(surviving measurements, dropped row indices)``.
    """
    buses = {int(b) for b in np.atleast_1d(buses)}
    for b in buses:
        if not 0 <= b < net.n_bus:
            raise ValueError(f"bus {b} out of range")
    lost = _rows_touching_buses(net, mset, buses)
    return mset.subset(~lost), np.flatnonzero(lost)


def drop_region(
    net: Network, mset: MeasurementSet, region_buses
) -> tuple[MeasurementSet, np.ndarray]:
    """Remove every channel of a region (communication-link failure).

    Identical mechanics to :func:`drop_rtu` but named for the scenario: the
    link between a balancing authority and its telemetry fails, taking the
    whole region's channels with it.
    """
    return drop_rtu(net, mset, region_buses)


def random_rtu_dropout(
    net: Network,
    mset: MeasurementSet,
    *,
    probability: float,
    rng: np.random.Generator | None = None,
    protect: np.ndarray | None = None,
) -> tuple[MeasurementSet, np.ndarray]:
    """Drop each bus's RTU independently with the given probability.

    ``protect`` lists bus indices that never drop (e.g. PMU anchor sites
    whose loss would unanchor a subsystem).  Returns the surviving set and
    the list of lost buses.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    rng = rng or np.random.default_rng()
    lost = rng.random(net.n_bus) < probability
    if protect is not None:
        lost[np.asarray(protect, dtype=np.int64)] = False
    lost_buses = np.flatnonzero(lost)
    surviving, _ = drop_rtu(net, mset, lost_buses) if lost_buses.size else (mset, None)
    return surviving, lost_buses
