"""SCADA scan-cycle simulation.

State estimation conventionally consumes SCADA snapshots every ~4 seconds
(paper, section I).  :class:`ScadaSystem` produces a sequence of
:class:`TelemetryFrame` objects: at each scan the system load drifts along a
mean-reverting random walk, the AC power flow is re-solved, and a noisy
measurement snapshot is sampled at the new operating point.

The per-frame ``noise_level`` follows an Ornstein-Uhlenbeck process around
1.0 — this is the time-varying measurement noise ``x = f(δt)`` that the
paper's mapping method estimates per time frame (section IV-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.network import Network
from ..grid.powerflow import PowerFlowResult, run_ac_power_flow
from .generator import generate_measurements
from .types import MeasurementSet

__all__ = ["TelemetryFrame", "NoiseProcess", "ScadaSystem"]


@dataclass
class TelemetryFrame:
    """One SCADA scan: timestamp, measurements, and generating conditions."""

    t: float
    mset: MeasurementSet
    noise_level: float
    pf: PowerFlowResult


class NoiseProcess:
    """Mean-reverting (Ornstein-Uhlenbeck) noise-level process.

    ``x_{k+1} = x_k + theta*(mean - x_k) + sigma*N(0,1)``, clipped at
    ``floor`` so the level stays positive.  The sequence is the "noise level
    x" whose Gaussian statistics the paper assumes when estimating iteration
    counts.
    """

    def __init__(
        self,
        mean: float = 1.0,
        theta: float = 0.3,
        sigma: float = 0.15,
        floor: float = 0.05,
    ):
        if not 0 < theta <= 1:
            raise ValueError("theta must be in (0, 1]")
        self.mean = mean
        self.theta = theta
        self.sigma = sigma
        self.floor = floor
        self._x = mean

    @property
    def level(self) -> float:
        """Current noise level."""
        return self._x

    def step(self, rng: np.random.Generator) -> float:
        """Advance one scan and return the new level."""
        self._x += self.theta * (self.mean - self._x) + self.sigma * rng.standard_normal()
        self._x = max(self._x, self.floor)
        return self._x


class ScadaSystem:
    """Generates SCADA telemetry frames for a network.

    Parameters
    ----------
    net:
        The monitored network (not mutated; loads are scaled on copies).
    placement:
        Which channels are metered.
    scan_period:
        Seconds between scans (default 4.0, the conventional SCADA cycle).
    load_walk_sigma:
        Per-scan relative load drift (mean-reverting to the base case).
    noise:
        Optional noise-level process; defaults to a nominal OU process.
    seed:
        RNG seed; frames are reproducible for a given configuration.
    """

    def __init__(
        self,
        net: Network,
        placement: MeasurementSet,
        *,
        scan_period: float = 4.0,
        load_walk_sigma: float = 0.01,
        noise: NoiseProcess | None = None,
        seed: int = 0,
    ):
        if scan_period <= 0:
            raise ValueError("scan_period must be positive")
        self.net = net
        self.placement = placement
        self.scan_period = scan_period
        self.load_walk_sigma = load_walk_sigma
        self.noise = noise or NoiseProcess()
        self._rng = np.random.default_rng(seed)
        self._scale = 1.0
        self._k = 0

    def next_frame(self) -> TelemetryFrame:
        """Produce the next scan: drift load, re-solve, sample measurements."""
        rng = self._rng
        # Mean-reverting multiplicative load drift.
        self._scale += 0.2 * (1.0 - self._scale) + self.load_walk_sigma * rng.standard_normal()
        self._scale = float(np.clip(self._scale, 0.7, 1.3))

        scaled = self.net.copy()
        scaled.Pd = self.net.Pd * self._scale
        scaled.Qd = self.net.Qd * self._scale
        pf = run_ac_power_flow(scaled)

        level = self.noise.step(rng)
        mset = generate_measurements(
            scaled, self.placement, pf, noise_level=level, rng=rng
        )
        frame = TelemetryFrame(
            t=self._k * self.scan_period, mset=mset, noise_level=level, pf=pf
        )
        self._k += 1
        return frame

    def frames(self, n: int) -> list[TelemetryFrame]:
        """Produce ``n`` consecutive scans."""
        return [self.next_frame() for _ in range(n)]
