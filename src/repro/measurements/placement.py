"""Metering placement plans.

A placement is a :class:`MeasurementSet` template with zero values — it fixes
*which* quantities are metered; the generator fills in values from a solved
operating point.  Three plans are provided:

- :func:`full_placement` — everything metered (maximum redundancy).
- :func:`scada_placement` — a realistic SCADA complement: injections at all
  buses, flows on a configurable fraction of branches, voltages at generator
  buses.  Always observable (injections alone observe a connected network).
- :func:`pmu_placement` — greedy PMU siting so every bus is adjacent to a
  PMU, plus the angle/voltage measurements those PMUs produce.
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from .types import DEFAULT_SIGMAS, Measurement, MeasType, MeasurementSet

__all__ = ["full_placement", "scada_placement", "pmu_placement", "greedy_pmu_sites"]


def _mk(mtype: MeasType, element: int, sigmas: dict | None) -> Measurement:
    table = sigmas or DEFAULT_SIGMAS
    return Measurement(mtype, int(element), 0.0, table[mtype])


def full_placement(net: Network, sigmas: dict | None = None) -> MeasurementSet:
    """Meter everything: V at all buses, P/Q injections at all buses, P/Q
    flows at both ends of all in-service branches."""
    ms: list[Measurement] = []
    for b in range(net.n_bus):
        ms.append(_mk(MeasType.V_MAG, b, sigmas))
        ms.append(_mk(MeasType.P_INJ, b, sigmas))
        ms.append(_mk(MeasType.Q_INJ, b, sigmas))
    for k in net.live_branches():
        ms.append(_mk(MeasType.P_FLOW_F, k, sigmas))
        ms.append(_mk(MeasType.Q_FLOW_F, k, sigmas))
        ms.append(_mk(MeasType.P_FLOW_T, k, sigmas))
        ms.append(_mk(MeasType.Q_FLOW_T, k, sigmas))
    return MeasurementSet(ms)


def scada_placement(
    net: Network,
    *,
    flow_fraction: float = 0.6,
    sigmas: dict | None = None,
    seed: int = 0,
) -> MeasurementSet:
    """A realistic SCADA metering complement.

    P/Q injections at every bus (boundary telemetry), P/Q from-side flows on
    a random ``flow_fraction`` of in-service branches, and voltage magnitude
    at generator buses.  Redundancy is roughly ``2 + 2*flow_fraction*nl/n``.
    """
    if not 0.0 <= flow_fraction <= 1.0:
        raise ValueError("flow_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    ms: list[Measurement] = []
    for b in range(net.n_bus):
        ms.append(_mk(MeasType.P_INJ, b, sigmas))
        ms.append(_mk(MeasType.Q_INJ, b, sigmas))
    gen_buses = np.unique(net.gen_bus[net.gen_status > 0])
    for b in gen_buses:
        ms.append(_mk(MeasType.V_MAG, b, sigmas))
    live = net.live_branches()
    n_flow = int(round(flow_fraction * len(live)))
    chosen = rng.choice(live, size=n_flow, replace=False) if n_flow else []
    for k in sorted(int(k) for k in np.atleast_1d(chosen)):
        ms.append(_mk(MeasType.P_FLOW_F, k, sigmas))
        ms.append(_mk(MeasType.Q_FLOW_F, k, sigmas))
    return MeasurementSet(ms)


def greedy_pmu_sites(net: Network) -> np.ndarray:
    """Greedy dominating-set PMU siting.

    Repeatedly picks the bus covering the most yet-uncovered buses (a bus is
    covered when it hosts a PMU or neighbours one).  Returns sorted bus
    indices.  Greedy gives the usual O(log n) approximation of the classic
    PMU placement problem, which is all the substrate needs.
    """
    n = net.n_bus
    pairs = net.adjacency_pairs()
    nbrs: list[set[int]] = [set() for _ in range(n)]
    for u, v in pairs:
        nbrs[u].add(int(v))
        nbrs[v].add(int(u))
    covered = np.zeros(n, dtype=bool)
    sites: list[int] = []
    while not covered.all():
        best, best_gain = -1, -1
        for b in range(n):
            gain = (not covered[b]) + sum(1 for w in nbrs[b] if not covered[w])
            if gain > best_gain:
                best, best_gain = b, gain
        sites.append(best)
        covered[best] = True
        for w in nbrs[best]:
            covered[w] = True
    return np.array(sorted(sites), dtype=np.int64)


def pmu_placement(
    net: Network,
    sites: np.ndarray | None = None,
    sigmas: dict | None = None,
) -> MeasurementSet:
    """Measurements produced by PMUs at ``sites`` (default: greedy siting).

    Each PMU measures its bus voltage phasor (magnitude + synchronized
    angle) and the from-side current magnitude of every incident in-service
    branch.
    """
    if sites is None:
        sites = greedy_pmu_sites(net)
    sites = np.asarray(sites, dtype=np.int64)
    ms: list[Measurement] = []
    site_set = set(sites.tolist())
    for b in sites:
        ms.append(_mk(MeasType.V_MAG, b, sigmas))
        ms.append(_mk(MeasType.PMU_VA, b, sigmas))
    for k in net.live_branches():
        if int(net.f[k]) in site_set:
            ms.append(_mk(MeasType.I_MAG_F, k, sigmas))
    return MeasurementSet(ms)
