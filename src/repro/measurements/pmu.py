"""PMU synchrophasor stream simulation.

PMUs sample 30 times per second with precise time synchronisation (paper,
section I).  Between SCADA scans the operating point is quasi-steady, so a
:class:`PmuStream` re-samples the same power-flow solution with fresh fast
noise at the PMU rate.  The module also provides the storage-feasibility
arithmetic the paper cites (~1.12 TB for 30 days of Western Interconnect
PMU data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.network import Network
from ..grid.powerflow import PowerFlowResult
from .generator import generate_measurements
from .placement import pmu_placement
from .types import MeasurementSet

__all__ = ["PmuSample", "PmuStream", "pmu_storage_bytes"]

#: Bytes per PMU per sample used in the feasibility estimate: a C37.118-style
#: frame with a handful of phasors, frequency and status.
_BYTES_PER_SAMPLE = 52


@dataclass
class PmuSample:
    """One synchronized sample across all PMU sites."""

    t: float
    mset: MeasurementSet


class PmuStream:
    """Generates synchronized PMU samples at a fixed rate.

    Parameters
    ----------
    net:
        The observed network.
    sites:
        PMU bus indices (default: greedy observability-complete siting).
    rate_hz:
        Sampling rate (default 30, the paper's figure).
    noise_level:
        Noise scale relative to nominal PMU accuracy.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        net: Network,
        sites: np.ndarray | None = None,
        *,
        rate_hz: float = 30.0,
        noise_level: float = 1.0,
        seed: int = 0,
    ):
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        self.net = net
        self.placement = pmu_placement(net, sites)
        self.rate_hz = rate_hz
        self.noise_level = noise_level
        self._rng = np.random.default_rng(seed)

    @property
    def n_sites(self) -> int:
        """Number of PMU voltage-angle channels (= PMU sites)."""
        from .types import MeasType

        return self.placement.count(MeasType.PMU_VA)

    def samples(self, pf: PowerFlowResult, t0: float, n: int) -> list[PmuSample]:
        """``n`` consecutive samples of the quasi-steady point ``pf``."""
        dt = 1.0 / self.rate_hz
        out = []
        for k in range(n):
            mset = generate_measurements(
                self.net,
                self.placement,
                pf,
                noise_level=self.noise_level,
                rng=self._rng,
            )
            out.append(PmuSample(t=t0 + k * dt, mset=mset))
        return out


def pmu_storage_bytes(
    n_pmus: int,
    days: float,
    *,
    rate_hz: float = 30.0,
    bytes_per_sample: int = _BYTES_PER_SAMPLE,
) -> float:
    """Raw storage for a PMU fleet over a period.

    With the paper's figures (~300 Western Interconnect PMUs, 30 days) this
    lands near the cited ~1.12 TB, which motivates distributing collection
    and estimation instead of centralising it.
    """
    if n_pmus < 0 or days < 0:
        raise ValueError("n_pmus and days must be non-negative")
    return n_pmus * days * 86400.0 * rate_hz * bytes_per_sample
