"""Noisy measurement generation from a solved operating point.

Given a placement (a zero-valued :class:`MeasurementSet`) and a power-flow
solution, :func:`generate_measurements` evaluates the true measurement values
h(x*) and adds zero-mean Gaussian noise scaled by each channel's sigma —
exactly the ``z = h(x) + e`` model of the paper (section II).  ``noise_level``
scales all sigmas jointly; it is the ``x`` that the paper's iteration-count
model ``Ni = g1*x + g2`` consumes.
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from ..grid.powerflow import PowerFlowResult
from .functions import MeasurementModel
from .types import Measurement, MeasurementSet

__all__ = ["generate_measurements", "true_values", "inject_bad_data"]


def true_values(
    net: Network, placement: MeasurementSet, pf: PowerFlowResult
) -> np.ndarray:
    """Exact h(x*) for every channel of ``placement`` at the solved point."""
    model = MeasurementModel(net, placement)
    return model.h(pf.Vm, pf.Va)


def generate_measurements(
    net: Network,
    placement: MeasurementSet,
    pf: PowerFlowResult,
    *,
    noise_level: float = 1.0,
    rng: np.random.Generator | None = None,
) -> MeasurementSet:
    """Sample noisy measurements ``z = h(x*) + noise_level * sigma * N(0,1)``.

    ``noise_level = 0`` returns exact values (useful for convergence tests);
    ``noise_level = 1`` is nominal meter accuracy.
    """
    if noise_level < 0:
        raise ValueError("noise_level must be non-negative")
    rng = rng or np.random.default_rng()
    h0 = true_values(net, placement, pf)
    noise = noise_level * placement.sigma * rng.standard_normal(len(placement))
    return placement.with_values(h0 + noise)


def inject_bad_data(
    mset: MeasurementSet,
    rows: np.ndarray,
    *,
    magnitude_sigmas: float = 20.0,
    rng: np.random.Generator | None = None,
) -> MeasurementSet:
    """Corrupt the given measurement rows with gross errors.

    Each selected row is shifted by ``±magnitude_sigmas`` times its sigma
    (random sign), the standard gross-error model for bad-data detection
    studies.
    """
    rng = rng or np.random.default_rng()
    z = mset.z.copy()
    rows = np.asarray(rows, dtype=np.int64)
    signs = rng.choice([-1.0, 1.0], size=len(rows))
    z[rows] += signs * magnitude_sigmas * mset.sigma[rows]
    return mset.with_values(z)
