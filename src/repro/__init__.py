"""repro — distributed power grid state estimation on (simulated) HPC clusters.

Reproduction of Liu, Jiang, Jin, Rice, Chen:
"Distributing Power Grid State Estimation on HPC Clusters — A System
Architecture Prototype" (IPDPS Workshops, 2012).

Subpackages
-----------
grid
    Power network model: buses, branches, admittance matrices, AC/DC power
    flow, IEEE test cases and a synthetic grid generator.
measurements
    Measurement model: h(x), sparse Jacobians, noisy measurement generation,
    SCADA scan cycles and PMU streams, observable metering placement.
estimation
    Weighted-least-squares state estimation with direct and preconditioned
    conjugate-gradient solvers, observability analysis, bad-data detection.
partition
    Multilevel k-way weighted graph partitioner (METIS stand-in) with
    adaptive repartitioning.
dse
    Distributed state estimation: decomposition into subsystems, boundary /
    sensitive bus identification, the two-step DSE algorithm and the
    hierarchical baseline.
cluster
    Simulated HPC clusters: discrete-event engine, topology and cost models,
    an MPI-like communicator, and a real thread-based executor.
middleware
    MeDICi-style pipeline middleware: URL endpoints, TCP / in-process
    transports, relay pipelines and the client API.
parallel
    Pluggable subsystem executors (serial / thread pool) shared by the DSE
    fan-out and the parallel contingency analyzer.
core
    The paper's contribution: graph-weight estimation, the mapping method
    that places subsystems onto clusters for DSE Step 1 / Step 2, and the
    end-to-end architecture and session runner.
"""

__version__ = "0.1.0"

__all__ = [
    "grid",
    "measurements",
    "estimation",
    "partition",
    "dse",
    "cluster",
    "middleware",
    "parallel",
    "core",
]
