"""Scenario serving: batched replicas, a consistent-hash shard router,
closed-loop pool autoscaling and an open-loop load-generation harness."""

from .autoscale import AutoscalePolicy, PoolAutoscaler
from .loadgen import LoadGenerator, LoadReport, ScenarioMix, poisson_arrivals
from .requests import (
    ContingencyRequest,
    EstimationRequest,
    ReplicaLost,
    ScenarioRequest,
    ScenarioResult,
    ServiceOverloaded,
    ServiceStats,
)
from .service import ScenarioService
from .shard import RouterStats, ShardRouter, request_key

__all__ = [
    "AutoscalePolicy",
    "ContingencyRequest",
    "EstimationRequest",
    "LoadGenerator",
    "LoadReport",
    "PoolAutoscaler",
    "ReplicaLost",
    "RouterStats",
    "ScenarioMix",
    "ScenarioRequest",
    "ScenarioResult",
    "ScenarioService",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardRouter",
    "poisson_arrivals",
    "request_key",
]
