"""Batched scenario serving: coalesce estimation / contingency requests
into batches and stream results back over a shared executor backend."""

from .requests import (
    ContingencyRequest,
    EstimationRequest,
    ScenarioRequest,
    ScenarioResult,
    ServiceOverloaded,
    ServiceStats,
)
from .service import ScenarioService

__all__ = [
    "ContingencyRequest",
    "EstimationRequest",
    "ScenarioRequest",
    "ScenarioResult",
    "ScenarioService",
    "ServiceOverloaded",
    "ServiceStats",
]
