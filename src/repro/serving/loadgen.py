"""Open-loop load generation against the serving tier.

Capacity is measured the way the serving literature measures it: an
**open-loop** arrival process (requests arrive on a schedule that does
not slow down when the system does — the "millions of users" shape)
offered at a controlled rate, with the client recording what actually
came back.  A closed loop would hide saturation: blocked callers stop
offering load exactly when the interesting regime starts.

``LoadGenerator`` drives any submit-compatible target — a
:class:`~repro.serving.service.ScenarioService` directly or a
:class:`~repro.serving.shard.ShardRouter` — with seeded Poisson arrivals
over a mixed workload (:class:`ScenarioMix`: values-only frames, what-if
scenario deltas, N-1 screenings), optionally under a PR-5
:class:`~repro.faults.plan.FaultPlan`.  Everything is deterministic per
seed: the arrival schedule, the request mix and (with a plan) the fault
sequence replay bit-for-bit.

The resulting :class:`LoadReport` is the row of a capacity curve:
offered rate, achieved scenarios/s, client-view p50/p99 latency and the
typed shed split — what ``benchmarks/bench_serving_capacity.py`` sweeps
into ``BENCH_pr8.json``.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field

import numpy as np

from .. import faults
from ..middleware.errors import DeadlineExceeded
from .requests import (
    ContingencyRequest,
    EstimationRequest,
    ReplicaLost,
    ServiceOverloaded,
)

__all__ = ["ScenarioMix", "LoadReport", "LoadGenerator", "poisson_arrivals"]


def poisson_arrivals(
    rate: float, n: int, *, seed: int = 0
) -> np.ndarray:
    """Arrival offsets (seconds from start) for ``n`` events of a Poisson
    process at ``rate`` events/s — i.i.d. exponential gaps, seeded."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


@dataclass(frozen=True)
class ScenarioMix:
    """A weighted workload mix over one monitored system.

    ``frames`` draw values-only estimation requests (fresh ``z`` =
    template values + seeded gaussian noise); ``scenarios`` draw one of
    the prepared deltas (requires replicas built with
    ``batch_solve=True``); ``contingencies`` draw one of the prepared
    N-1 cases.  Weights are relative; entries with no material (empty
    deltas/cases) are excluded automatically.
    """

    mset: object
    deltas: tuple = ()
    contingencies: tuple = ()
    frame_weight: float = 1.0
    scenario_weight: float = 0.0
    contingency_weight: float = 0.0
    noise: float = 0.002

    def _kinds(self) -> tuple[list[str], np.ndarray]:
        kinds, weights = [], []
        if self.frame_weight > 0:
            kinds.append("frame")
            weights.append(self.frame_weight)
        if self.scenario_weight > 0 and self.deltas:
            kinds.append("scenario")
            weights.append(self.scenario_weight)
        if self.contingency_weight > 0 and self.contingencies:
            kinds.append("contingency")
            weights.append(self.contingency_weight)
        if not kinds:
            raise ValueError("the mix has no drawable request kind")
        w = np.asarray(weights, dtype=float)
        return kinds, w / w.sum()

    def make(self, rng: np.random.Generator):
        """Draw one request (deterministic given the generator state)."""
        kinds, probs = self._kinds()
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "contingency":
            idx = int(rng.integers(len(self.contingencies)))
            return ContingencyRequest(self.contingencies[idx])
        if kind == "scenario":
            idx = int(rng.integers(len(self.deltas)))
            return EstimationRequest(delta=self.deltas[idx])
        z = self.mset.z + self.noise * self.mset.sigma * rng.standard_normal(
            len(self.mset)
        )
        return EstimationRequest(z=z)


@dataclass
class LoadReport:
    """One point of a capacity curve (client-side view)."""

    offered_rate: float
    n_offered: int
    n_completed: int = 0
    n_shed_queue_full: int = 0
    n_shed_deadline: int = 0
    n_shed_lost: int = 0
    n_failed: int = 0
    n_hung: int = 0
    duration_s: float = 0.0
    latencies_s: list = field(default_factory=list, repr=False)
    faults_fired: dict | None = None

    @property
    def achieved_rate(self) -> float:
        """Completed scenarios per second of offered-load wall time."""
        return self.n_completed / self.duration_s if self.duration_s else 0.0

    @property
    def shed_rate(self) -> float:
        shed = (self.n_shed_queue_full + self.n_shed_deadline
                + self.n_shed_lost)
        return shed / self.n_offered if self.n_offered else 0.0

    def latency_percentile(self, p: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, p))

    def to_dict(self) -> dict:
        return {
            "offered_rate": self.offered_rate,
            "n_offered": self.n_offered,
            "n_completed": self.n_completed,
            "n_shed_queue_full": self.n_shed_queue_full,
            "n_shed_deadline": self.n_shed_deadline,
            "n_shed_lost": self.n_shed_lost,
            "n_failed": self.n_failed,
            "n_hung": self.n_hung,
            "duration_s": self.duration_s,
            "achieved_rate": self.achieved_rate,
            "shed_rate": self.shed_rate,
            "latency_p50_s": self.latency_percentile(50),
            "latency_p99_s": self.latency_percentile(99),
        }


class LoadGenerator:
    """Offers seeded open-loop load to a submit-compatible target.

    ``target`` needs only ``submit(request) -> Future``; both
    :class:`~repro.serving.service.ScenarioService` and
    :class:`~repro.serving.shard.ShardRouter` qualify.
    """

    def __init__(self, target, mix: ScenarioMix, *, seed: int = 0):
        self.target = target
        self.mix = mix
        self.seed = int(seed)

    def run(
        self,
        *,
        rate: float,
        n_requests: int | None = None,
        duration: float | None = None,
        fault_plan=None,
        wait_timeout: float = 60.0,
    ) -> LoadReport:
        """Offer one load point and wait for every outcome.

        Exactly one of ``n_requests`` / ``duration`` sizes the run
        (``duration`` seconds at ``rate`` ≈ ``rate * duration`` events).
        With ``fault_plan`` set, the run executes under an installed
        :class:`~repro.faults.injector.FaultInjector` and the report
        carries the fired-fault summary (deterministic per plan seed).
        Every offered request must resolve within ``wait_timeout`` of the
        last arrival or it is counted ``n_hung`` — the invariant chaos
        tests pin to zero.
        """
        if (n_requests is None) == (duration is None):
            raise ValueError("size the run with n_requests XOR duration")
        if n_requests is None:
            n_requests = max(1, int(round(rate * duration)))
        arrivals = poisson_arrivals(rate, n_requests, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        requests = [self.mix.make(rng) for _ in range(n_requests)]

        report = LoadReport(offered_rate=float(rate), n_offered=n_requests)
        done_at: dict[int, float] = {}
        sent_at: dict[int, float] = {}

        def _offer():
            futures = []
            t0 = time.perf_counter()
            for i, (offset, req) in enumerate(zip(arrivals, requests)):
                delay = t0 + offset - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                sent_at[i] = time.perf_counter()
                fut = self.target.submit(req)
                fut.add_done_callback(
                    lambda f, i=i: done_at.setdefault(i, time.perf_counter())
                )
                futures.append(fut)
            return t0, futures

        if fault_plan is not None:
            with faults.injection(fault_plan) as inj:
                t0, futures = _offer()
                self._await(futures, report, wait_timeout)
                report.faults_fired = {
                    repr(k): v for k, v in inj.fired_summary().items()
                }
        else:
            t0, futures = _offer()
            self._await(futures, report, wait_timeout)

        for i, fut in enumerate(futures):
            if fut.done() and not fut.exception() and i in done_at:
                report.latencies_s.append(done_at[i] - sent_at[i])
        end = max(done_at.values(), default=time.perf_counter())
        report.duration_s = max(end - t0, arrivals[-1])
        return report

    @staticmethod
    def _await(futures, report: LoadReport, wait_timeout: float) -> None:
        deadline = time.perf_counter() + wait_timeout
        for fut in futures:
            remaining = deadline - time.perf_counter()
            try:
                fut.result(timeout=max(0.0, remaining))
            except ServiceOverloaded:
                report.n_shed_queue_full += 1
            except ReplicaLost:
                report.n_shed_lost += 1
            except DeadlineExceeded:
                report.n_shed_deadline += 1
            except (TimeoutError, FuturesTimeout):
                report.n_hung += 1
            except BaseException:
                report.n_failed += 1
            else:
                report.n_completed += 1
