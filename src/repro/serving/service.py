"""Batched scenario-serving engine over the executor backends.

``ScenarioService`` is the serving shape the scale-out papers converge on
(batch many independent area solves into one warm engine): callers submit
estimation frames and contingency cases from any thread; a dispatcher
coalesces them into batches — bounded by ``max_batch`` and a flush-latency
window — and fans each batch out across the shared executor with dynamic
balancing.  Results stream back through futures as they resolve.

Two estimation engines are supported:

- ``engine="dse"`` — the in-process
  :class:`~repro.dse.algorithm.DistributedStateEstimator` (warm caches,
  any executor backend including process pools);
- ``engine="live"`` — the thread-per-site
  :class:`~repro.core.runtime.LiveDseRuntime`, serving frames over live
  middleware pipelines (values-only frames through the same warm caches).

Contingency batches go through
:func:`repro.contingency.parallel.run_parallel`, sharing the service's
executor — with a process pool, the analyzer ships to each worker once and
every case is a compact payload.

``batch_solve=True`` swaps the drain path from fan-out to SIMD: one flush
becomes *one batched solve* instead of N executor tasks.  Estimation
frames in a flush are grouped by tolerance and pushed through a single
:class:`~repro.estimation.batch.BatchEstimator` over the base network
(block-diagonal normal equations, per-scenario convergence masks);
contingency cases drain through
:meth:`~repro.contingency.analysis.ContingencyAnalyzer.analyze_batch`
(one compensation-based DC solve for the whole list).  Estimation results
are then central WLS :class:`~repro.estimation.results.EstimationResult`
values rather than DSE frames — same state to round-off, no per-area
telemetry — and ``rounds`` is ignored (there is no coordination loop).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, as_completed
from typing import Iterable, Iterator

from .. import obs
from ..contingency.analysis import ContingencyAnalyzer
from ..contingency.parallel import run_parallel
from ..contingency.screening import Contingency
from ..dse.algorithm import DistributedStateEstimator
from ..dse.decomposition import Decomposition
from ..measurements.types import MeasurementSet
from ..middleware.errors import DeadlineExceeded
from ..parallel import SubsystemExecutor, make_executor
from .requests import (
    ContingencyRequest,
    EstimationRequest,
    ReplicaLost,
    ScenarioResult,
    ServiceOverloaded,
    ServiceStats,
)

__all__ = ["ScenarioService"]

_SHUTDOWN = object()


class ScenarioService:
    """Accepts many estimation / contingency requests and serves them in
    coalesced batches over a shared executor.

    Parameters
    ----------
    dec, mset:
        The decomposition and the template measurement snapshot (fixes the
        placement; estimation requests carry values-only ``z`` frames over
        it).
    executor:
        Any :func:`repro.parallel.make_executor` spec; spec-created
        executors are owned (and shut down) by the service, instances are
        shared with the caller.
    engine:
        ``"dse"`` (in-process estimator) or ``"live"`` (thread-per-site
        middleware runtime) for estimation requests.
    analyzer:
        Contingency analyzer; built from ``dec.net`` with
        ``contingency_method`` when omitted.
    max_batch:
        Largest batch one dispatch may coalesce.
    flush_latency:
        Seconds the dispatcher waits for the batch to fill before flushing
        a partial one (the latency the first request in a batch is willing
        to trade for throughput).
    solver, sensitivity_threshold, rounds, tol:
        Estimation defaults, forwarded to the engine.
    fast:
        Forwarded to the live engine: multiplexed fast-path fabric
        (default) vs legacy per-pair pipelines.
    batch_solve:
        Drain flushes through the SIMD path: estimation frames through one
        :class:`~repro.estimation.batch.BatchEstimator` (grouped by
        ``tol``; values are central-WLS ``EstimationResult``\\ s and
        ``rounds`` is ignored), contingency cases through
        ``analyzer.analyze_batch``.  Required for requests carrying a
        scenario ``delta``.
    request_timeout:
        Per-request deadline in seconds, measured from ``submit``.  A
        request still queued when its deadline passes is shed at dispatch
        time: its future fails with
        :class:`~repro.middleware.errors.DeadlineExceeded` and the solve is
        skipped.  ``None`` (default) disables deadlines.
    max_queue:
        Admission bound on the backlog.  ``submit`` sheds new requests with
        :class:`~repro.serving.requests.ServiceOverloaded` (the returned
        future is already failed) once this many are queued.  ``None``
        (default) accepts unboundedly.
    """

    def __init__(
        self,
        dec: Decomposition,
        mset: MeasurementSet,
        *,
        executor: "SubsystemExecutor | str | int | None" = None,
        engine: str = "dse",
        analyzer: ContingencyAnalyzer | None = None,
        contingency_method: str = "dc",
        max_batch: int = 32,
        flush_latency: float = 2e-3,
        solver: str = "lu",
        sensitivity_threshold: float = 0.5,
        rounds: int | None = None,
        tol: float = 1e-8,
        use_tcp: bool = False,
        fast: bool = True,
        batch_solve: bool = False,
        request_timeout: float | None = None,
        max_queue: int | None = None,
    ):
        if engine not in ("dse", "live"):
            raise ValueError("engine must be 'dse' or 'live'")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_latency < 0:
            raise ValueError("flush_latency must be >= 0")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None)")
        self._own_executor = not isinstance(executor, SubsystemExecutor)
        self.executor = make_executor(executor)
        self.engine = engine
        self.max_batch = int(max_batch)
        self.flush_latency = float(flush_latency)
        self.request_timeout = request_timeout
        self.max_queue = max_queue
        self.rounds = rounds
        self.tol = tol
        self.batch_solve = bool(batch_solve)
        self._solver = solver
        self._dec = dec
        self._mset = mset
        self._batch_estimator = None  # lazily built on first batched flush

        if engine == "dse":
            self._dse = DistributedStateEstimator(
                dec,
                mset,
                solver=solver,
                sensitivity_threshold=sensitivity_threshold,
                executor=self.executor,
            )
            self._runtime = None
        else:
            from ..core.runtime import LiveDseRuntime

            self._dse = None
            self._runtime = LiveDseRuntime(
                dec,
                mset,
                solver=solver,
                sensitivity_threshold=sensitivity_threshold,
                use_cache=True,
                use_tcp=use_tcp,
                fast=fast,
            )
        self.analyzer = analyzer or ContingencyAnalyzer(
            dec.net, method=contingency_method
        )

        self.stats = ServiceStats()  # internally locked; see requests.py
        self._queue: queue.Queue = queue.Queue()
        self._dispatcher: threading.Thread | None = None
        self._dispatch_lock = threading.Lock()
        self._closed = False
        self._abort_exc: Exception | None = None
        self._health_watch = None
        if obs.health_enabled():
            mon = obs.health()
            name = f"svc-{id(self):x}"
            mon.watch_service(name, self.stats)
            # gated on queue depth: an idle dispatcher is not a stall
            self._health_watch = mon.watch(
                f"serving.dispatch:{name}", source="serving.dispatch",
                gate=self._queue.qsize,
            )

    # -- submission ---------------------------------------------------------
    def submit(self, request) -> Future:
        """Enqueue a request; returns a future resolving to a
        :class:`~repro.serving.requests.ScenarioResult`."""
        if not isinstance(request, (EstimationRequest, ContingencyRequest)):
            raise TypeError(
                "submit expects an EstimationRequest or ContingencyRequest, "
                f"got {type(request).__name__}"
            )
        if self._closed:
            raise RuntimeError("ScenarioService is closed")
        if (
            isinstance(request, EstimationRequest)
            and request.delta is not None
            and not self.batch_solve
        ):
            raise ValueError(
                "scenario deltas need a batched drain path; build the "
                "service with batch_solve=True"
            )
        self._ensure_dispatcher()
        fut: Future = Future()
        if self.max_queue is not None and self._queue.qsize() >= self.max_queue:
            self._shed(fut, ServiceOverloaded(
                f"backlog at max_queue={self.max_queue}; request shed"
            ), cause="queue_full")
            return fut
        self._queue.put((request, fut, time.perf_counter()))
        return fut

    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched (the backpressure /
        autoscaling signal; approximate by nature)."""
        return self._queue.qsize()

    def submit_estimation(
        self,
        z=None,
        *,
        rounds: int | None = None,
        tol: float | None = None,
        delta=None,
    ) -> Future:
        return self.submit(
            EstimationRequest(
                z=z,
                rounds=rounds if rounds is not None else self.rounds,
                tol=tol if tol is not None else self.tol,
                delta=delta,
            )
        )

    def submit_contingency(self, contingency: Contingency) -> Future:
        return self.submit(ContingencyRequest(contingency))

    def submit_contingencies(self, contingencies: Iterable[Contingency]) -> list[Future]:
        return [self.submit_contingency(c) for c in contingencies]

    # -- bulk / streaming ---------------------------------------------------
    def run(self, requests: Iterable) -> list[ScenarioResult]:
        """Submit every request and wait; results in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    def stream(self, requests: Iterable) -> Iterator[ScenarioResult]:
        """Submit every request, yielding results in completion order."""
        futures = [self.submit(r) for r in requests]
        for fut in as_completed(futures):
            yield fut.result()

    # -- dispatcher ---------------------------------------------------------
    def _ensure_dispatcher(self) -> None:
        with self._dispatch_lock:
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="scenario-dispatch",
                    daemon=True,
                )
                self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            deadline = time.perf_counter() + self.flush_latency
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)
            self._execute_batch(batch)
            if stop:
                return

    def _shed(self, fut: Future, exc: Exception, *, cause: str) -> None:
        self.stats.record_shed(cause)
        if obs.enabled():
            obs.metrics().counter("serving.shed", cause=cause).inc()
        if obs.health_enabled():
            obs.health().note_shed("serving", cause)
        if not fut.done():
            fut.set_exception(exc)

    def _execute_batch(self, batch: list) -> None:
        if self._health_watch is not None:
            obs.health().beat(self._health_watch)
        abort = self._abort_exc
        if abort is not None:
            # replica lost: nothing executes any more; fail fast so a
            # front-end router can re-hash every queued request
            for it in batch:
                self._shed(it[1], abort, cause="replica_lost")
            return
        if self.request_timeout is not None:
            now = time.perf_counter()
            fresh = []
            for it in batch:
                age = now - it[2]
                if age > self.request_timeout:
                    self._shed(it[1], DeadlineExceeded(
                        f"request spent {age:.3f}s queued, past its "
                        f"{self.request_timeout:.3f}s deadline"
                    ), cause="deadline")
                else:
                    fresh.append(it)
            batch = fresh
            if not batch:
                return
        size = len(batch)
        cons = [it for it in batch if isinstance(it[0], ContingencyRequest)]
        ests = [it for it in batch if isinstance(it[0], EstimationRequest)]

        with obs.span(
            "serving.batch", size=size,
            estimations=len(ests), contingencies=len(cons),
        ):
            if cons:
                try:
                    report = run_parallel(
                        self.analyzer,
                        [it[0].contingency for it in cons],
                        executor=self.executor,
                        scheme="dynamic",
                        batch=self.batch_solve,
                    )
                    for it, res in zip(cons, report.results):
                        self._resolve(it, res, size)
                except BaseException as exc:
                    for _, fut, _ in cons:
                        if not fut.done():
                            fut.set_exception(exc)

            if ests and self.batch_solve:
                self._execute_estimations_batched(ests, size)
            else:
                for it in ests:
                    req = it[0]
                    try:
                        value = self._run_estimation(req)
                    except BaseException as exc:
                        it[1].set_exception(exc)
                    else:
                        self._resolve(it, value, size)

        self.stats.record_batch(size)
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("serving.batches_total").inc()
            reg.histogram("serving.batch_size").observe(size)

    def _run_estimation(self, req: EstimationRequest):
        if self._dse is not None:
            return self._dse.run(rounds=req.rounds, tol=req.tol, z=req.z)
        return self._runtime.run(rounds=req.rounds, tol=req.tol, z=req.z)

    def _batched_estimator(self):
        """The service's SIMD estimation engine (built on first use)."""
        if self._batch_estimator is None:
            from ..estimation.batch import BatchEstimator

            self._batch_estimator = BatchEstimator(
                self._dec.net,
                self._mset,
                solver=self._solver,
                max_batch=self.max_batch,
            )
        return self._batch_estimator

    def _execute_estimations_batched(self, ests: list, size: int) -> None:
        """Drain a flush's estimation frames as one batched solve per tol.

        Frames sharing a tolerance stack into one
        :meth:`~repro.estimation.batch.BatchEstimator.estimate_batch`
        call; each future resolves to its scenario's
        :class:`~repro.estimation.results.EstimationResult`.  A solve
        failure (e.g. a delta that islands the network) fails every
        future in that tolerance group — the block solve is shared.
        """
        from ..estimation.batch import BatchScenario

        groups: dict[float, list] = {}
        for it in ests:
            groups.setdefault(float(it[0].tol), []).append(it)
        est = self._batched_estimator()
        for tol, group in groups.items():
            scenarios = [
                BatchScenario(delta=it[0].delta, z=it[0].z) for it in group
            ]
            try:
                batch = est.estimate_batch(scenarios, tol=tol)
            except BaseException as exc:
                for _, fut, _ in group:
                    if not fut.done():
                        fut.set_exception(exc)
            else:
                for it, res in zip(group, batch.results):
                    self._resolve(it, res, size)

    def _resolve(self, item, value, batch_size: int) -> None:
        request, fut, t_submit = item
        latency = time.perf_counter() - t_submit
        self.stats.record_request(latency)
        if obs.enabled():
            reg = obs.metrics()
            reg.counter("serving.requests_total").inc()
            reg.histogram("serving.latency.seconds").observe(latency)
        fut.set_result(
            ScenarioResult(
                request=request,
                value=value,
                latency=latency,
                batch_size=batch_size,
            )
        )

    # -- lifecycle ----------------------------------------------------------
    def abort(self, exc: Exception | None = None) -> None:
        """Hard replica loss: stop executing and fail every request still
        queued with a typed :class:`~repro.serving.requests.ReplicaLost`.

        This is the crash-shaped sibling of :meth:`close` (which drains).
        A front-end shard router observes the typed failures and re-hashes
        the lost requests onto surviving replicas — the contract chaos
        tests assert is "completed or typed error, never silently lost".
        """
        if self._closed:
            return
        self._closed = True
        self._abort_exc = exc or ReplicaLost("replica aborted")
        with self._dispatch_lock:
            dispatcher = self._dispatcher
        if dispatcher is not None:
            self._queue.put(_SHUTDOWN)
            dispatcher.join()
        if self._own_executor:
            self.executor.shutdown()
        self._disarm_health()

    def close(self) -> None:
        """Drain the dispatcher and release owned resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._dispatch_lock:
            dispatcher = self._dispatcher
        if dispatcher is not None:
            self._queue.put(_SHUTDOWN)
            dispatcher.join()
        if self._own_executor:
            self.executor.shutdown()
        self._disarm_health()

    def _disarm_health(self) -> None:
        watch, self._health_watch = self._health_watch, None
        if watch is not None:
            obs.health().disarm(watch)
            obs.health().slo.untrack_source(self.stats)

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioService(engine={self.engine!r}, "
            f"executor={self.executor!r}, max_batch={self.max_batch}, "
            f"flush_latency={self.flush_latency})"
        )
