"""Request / result / statistics containers for the scenario service.

A *scenario* is one unit of serving work against the monitored system:

- :class:`EstimationRequest` — run a full two-step DSE frame, optionally
  with fresh measured values (``z``, canonical order of the service's
  template measurement set);
- :class:`ContingencyRequest` — screen a single branch outage against the
  service's analyzer.

Results stream back as :class:`ScenarioResult` records carrying the solved
value plus serving metadata (queue-to-resolution latency, the size of the
batch the request was coalesced into).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..contingency.screening import Contingency
from ..grid.delta import NetworkDelta
from ..obs.metrics import Histogram

__all__ = [
    "EstimationRequest",
    "ContingencyRequest",
    "ScenarioRequest",
    "ScenarioResult",
    "ServiceStats",
    "ServiceOverloaded",
    "ReplicaLost",
]


class ServiceOverloaded(RuntimeError):
    """The service shed the request at admission: its queue is at
    ``max_queue`` and accepting more would only grow latency unboundedly."""


class ReplicaLost(RuntimeError):
    """The replica serving the request died (aborted service, crashed
    worker pool) before the request resolved.  The shard router treats
    this as an infrastructure failure and re-hashes the request to the
    next replica on the ring; callers only ever see it when no replica
    is left to inherit the key."""


@dataclass(frozen=True)
class EstimationRequest:
    """One DSE estimation frame.

    ``z`` optionally carries fresh measured values over the service's
    template placement (values-only frame — the warm cached structures are
    reused); ``None`` re-estimates the template snapshot.

    ``delta`` optionally makes the frame a *what-if scenario*: a
    copy-on-write :class:`~repro.grid.delta.NetworkDelta` against the
    service's base network (branch flips, injection overrides, warm
    starts).  Scenario frames require a service built with
    ``batch_solve=True`` — they are solved through the batched estimator,
    never through the per-frame DSE engines.
    """

    z: np.ndarray | None = None
    rounds: int | None = None
    tol: float = 1e-8
    delta: NetworkDelta | None = None


@dataclass(frozen=True)
class ContingencyRequest:
    """One N-1 branch-outage screening case."""

    contingency: Contingency


#: Anything the service accepts through ``submit``.
ScenarioRequest = EstimationRequest | ContingencyRequest


@dataclass
class ScenarioResult:
    """A served scenario: the solved value plus serving metadata."""

    request: "ScenarioRequest"
    value: object
    latency: float
    batch_size: int
    #: name of the replica that served the request (set by ``ShardRouter``;
    #: ``None`` when the request went to a service directly)
    shard: str | None = None


@dataclass
class ServiceStats:
    """Aggregate serving statistics (updated as batches resolve).

    Internally thread-safe: results resolve on the dispatcher thread while
    callers read from theirs, so every mutation goes through
    :meth:`record_request` / :meth:`record_batch` under the stats' own
    lock, and the derived readers snapshot under it.

    Latency is tracked twice on purpose: the exact sample list feeds
    :meth:`latency_percentile` (small closed workloads, tests), and a
    streaming-quantile :class:`~repro.obs.metrics.Histogram` — the same
    geometric-bucket structure ``obsreport`` renders — feeds :attr:`p50`
    / :attr:`p99`, so a capacity run of millions of requests reads its
    quantiles from the one bounded source of truth."""

    n_requests: int = 0
    n_batches: int = 0
    #: requests shed before execution (queue overload or deadline expiry)
    n_shed: int = 0
    #: shed counts split by cause (``queue_full`` / ``deadline`` / ...)
    shed_causes: dict = field(default_factory=dict)
    batch_sizes: list[int] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    #: streaming request-latency quantiles (seconds); bounded memory
    latency_hist: Histogram = field(
        default_factory=lambda: Histogram("serving.latency.seconds"),
        repr=False, compare=False,
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_request(self, latency: float) -> None:
        with self._lock:
            self.n_requests += 1
            self.latencies.append(float(latency))
        self.latency_hist.observe(latency)  # own lock; keep them disjoint

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.n_batches += 1
            self.batch_sizes.append(int(size))

    def record_shed(self, cause: str = "other") -> None:
        with self._lock:
            self.n_shed += 1
            self.shed_causes[cause] = self.shed_causes.get(cause, 0) + 1

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            sizes = list(self.batch_sizes)
        return float(np.mean(sizes)) if sizes else 0.0

    def latency_percentile(self, p: float) -> float:
        """Exact latency percentile in seconds (``p`` in [0, 100]) over
        the retained sample list."""
        with self._lock:
            lat = list(self.latencies)
        if not lat:
            return 0.0
        return float(np.percentile(lat, p))

    @property
    def p50(self) -> float:
        """Streaming p50 request latency in seconds."""
        return self.latency_hist.quantile(0.50)

    @property
    def p99(self) -> float:
        """Streaming p99 request latency in seconds."""
        return self.latency_hist.quantile(0.99)

    @property
    def throughput_window(self) -> float:
        """Scenarios per second over the sum of recorded latencies' span —
        callers timing a closed workload should prefer wall-clock timing;
        this is a rough live indicator."""
        with self._lock:
            total = sum(self.latencies)
            n = self.n_requests
        return n / total if total > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the shape the capacity bench records)."""
        with self._lock:
            n_requests = self.n_requests
            n_batches = self.n_batches
            n_shed = self.n_shed
            shed_causes = dict(self.shed_causes)
        return {
            "n_requests": n_requests,
            "n_batches": n_batches,
            "n_shed": n_shed,
            "shed_causes": shed_causes,
            "mean_batch_size": self.mean_batch_size,
            "latency_p50_s": self.p50,
            "latency_p99_s": self.p99,
        }
