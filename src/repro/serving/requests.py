"""Request / result / statistics containers for the scenario service.

A *scenario* is one unit of serving work against the monitored system:

- :class:`EstimationRequest` — run a full two-step DSE frame, optionally
  with fresh measured values (``z``, canonical order of the service's
  template measurement set);
- :class:`ContingencyRequest` — screen a single branch outage against the
  service's analyzer.

Results stream back as :class:`ScenarioResult` records carrying the solved
value plus serving metadata (queue-to-resolution latency, the size of the
batch the request was coalesced into).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contingency.screening import Contingency

__all__ = [
    "EstimationRequest",
    "ContingencyRequest",
    "ScenarioRequest",
    "ScenarioResult",
    "ServiceStats",
]


@dataclass(frozen=True)
class EstimationRequest:
    """One DSE estimation frame.

    ``z`` optionally carries fresh measured values over the service's
    template placement (values-only frame — the warm cached structures are
    reused); ``None`` re-estimates the template snapshot.
    """

    z: np.ndarray | None = None
    rounds: int | None = None
    tol: float = 1e-8


@dataclass(frozen=True)
class ContingencyRequest:
    """One N-1 branch-outage screening case."""

    contingency: Contingency


#: Anything the service accepts through ``submit``.
ScenarioRequest = EstimationRequest | ContingencyRequest


@dataclass
class ScenarioResult:
    """A served scenario: the solved value plus serving metadata."""

    request: "ScenarioRequest"
    value: object
    latency: float
    batch_size: int


@dataclass
class ServiceStats:
    """Aggregate serving statistics (updated as batches resolve)."""

    n_requests: int = 0
    n_batches: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def latency_percentile(self, p: float) -> float:
        """Latency percentile in seconds (``p`` in [0, 100])."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, p))

    @property
    def throughput_window(self) -> float:
        """Scenarios per second over the sum of recorded latencies' span —
        callers timing a closed workload should prefer wall-clock timing;
        this is a rough live indicator."""
        total = sum(self.latencies)
        return self.n_requests / total if total > 0 else 0.0
