"""Request / result / statistics containers for the scenario service.

A *scenario* is one unit of serving work against the monitored system:

- :class:`EstimationRequest` — run a full two-step DSE frame, optionally
  with fresh measured values (``z``, canonical order of the service's
  template measurement set);
- :class:`ContingencyRequest` — screen a single branch outage against the
  service's analyzer.

Results stream back as :class:`ScenarioResult` records carrying the solved
value plus serving metadata (queue-to-resolution latency, the size of the
batch the request was coalesced into).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..contingency.screening import Contingency
from ..grid.delta import NetworkDelta

__all__ = [
    "EstimationRequest",
    "ContingencyRequest",
    "ScenarioRequest",
    "ScenarioResult",
    "ServiceStats",
    "ServiceOverloaded",
]


class ServiceOverloaded(RuntimeError):
    """The service shed the request at admission: its queue is at
    ``max_queue`` and accepting more would only grow latency unboundedly."""


@dataclass(frozen=True)
class EstimationRequest:
    """One DSE estimation frame.

    ``z`` optionally carries fresh measured values over the service's
    template placement (values-only frame — the warm cached structures are
    reused); ``None`` re-estimates the template snapshot.

    ``delta`` optionally makes the frame a *what-if scenario*: a
    copy-on-write :class:`~repro.grid.delta.NetworkDelta` against the
    service's base network (branch flips, injection overrides, warm
    starts).  Scenario frames require a service built with
    ``batch_solve=True`` — they are solved through the batched estimator,
    never through the per-frame DSE engines.
    """

    z: np.ndarray | None = None
    rounds: int | None = None
    tol: float = 1e-8
    delta: NetworkDelta | None = None


@dataclass(frozen=True)
class ContingencyRequest:
    """One N-1 branch-outage screening case."""

    contingency: Contingency


#: Anything the service accepts through ``submit``.
ScenarioRequest = EstimationRequest | ContingencyRequest


@dataclass
class ScenarioResult:
    """A served scenario: the solved value plus serving metadata."""

    request: "ScenarioRequest"
    value: object
    latency: float
    batch_size: int


@dataclass
class ServiceStats:
    """Aggregate serving statistics (updated as batches resolve).

    Internally thread-safe: results resolve on the dispatcher thread while
    callers read from theirs, so every mutation goes through
    :meth:`record_request` / :meth:`record_batch` under the stats' own
    lock, and the derived readers snapshot under it."""

    n_requests: int = 0
    n_batches: int = 0
    #: requests shed before execution (queue overload or deadline expiry)
    n_shed: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_request(self, latency: float) -> None:
        with self._lock:
            self.n_requests += 1
            self.latencies.append(float(latency))

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.n_batches += 1
            self.batch_sizes.append(int(size))

    def record_shed(self) -> None:
        with self._lock:
            self.n_shed += 1

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            sizes = list(self.batch_sizes)
        return float(np.mean(sizes)) if sizes else 0.0

    def latency_percentile(self, p: float) -> float:
        """Latency percentile in seconds (``p`` in [0, 100])."""
        with self._lock:
            lat = list(self.latencies)
        if not lat:
            return 0.0
        return float(np.percentile(lat, p))

    @property
    def throughput_window(self) -> float:
        """Scenarios per second over the sum of recorded latencies' span —
        callers timing a closed workload should prefer wall-clock timing;
        this is a rough live indicator."""
        with self._lock:
            total = sum(self.latencies)
            n = self.n_requests
        return n / total if total > 0 else 0.0
