"""Closed-loop autoscaling of each shard's warm worker pool.

The :class:`PoolAutoscaler` watches the same signals the ``obs`` layer
exports — per-shard queue depth and streaming p99 request latency — and
grows or shrinks each replica's executor through the PR-8
``SubsystemExecutor.resize`` hook.  A resized
:class:`~repro.parallel.ProcessPoolBackend` comes back *warm*: its
registered worker contexts rebuild in the fresh workers, so scaling costs
one warmup, not a cold cache.

Control-loop discipline (the part naive autoscalers get wrong):

- **hysteresis** — a scale decision must hold for ``hysteresis``
  consecutive evaluation ticks before it acts, so a single queued burst
  does not thrash the pool;
- **cooldown** — after acting on a shard, that shard is frozen for
  ``cooldown`` seconds, giving the resized pool time to show up in the
  signals before the next decision;
- **bounded** — worker counts are clamped to ``[min_workers,
  max_workers]`` and every step moves by exactly one worker.

**Off by default.**  ``PoolAutoscaler(enabled=False)`` (the default) is
inert: ``evaluate`` returns no decisions, ``step`` applies nothing,
``start`` does not spawn the loop thread — a router built without (or
with a disabled) autoscaler behaves bit-for-bit like one that never
heard of autoscaling.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .. import obs

__all__ = ["AutoscalePolicy", "PoolAutoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and pacing for the scaling loop.

    Scale **up** when a shard's queue depth reaches ``scale_up_depth``
    (or its streaming p99 exceeds ``scale_up_p99``, when set); scale
    **down** when depth falls to ``scale_down_depth`` or below.  Depth is
    the primary signal — the streaming p99 is cumulative over the run, so
    it only ever gates scale-up.
    """

    min_workers: int = 1
    max_workers: int = 4
    scale_up_depth: int = 8
    scale_down_depth: int = 0
    scale_up_p99: float | None = None
    hysteresis: int = 2
    cooldown: float = 2.0
    interval: float = 0.25

    def __post_init__(self):
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.scale_up_depth <= self.scale_down_depth:
            raise ValueError("scale_up_depth must exceed scale_down_depth")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.cooldown < 0 or self.interval <= 0:
            raise ValueError("cooldown must be >= 0 and interval > 0")


class PoolAutoscaler:
    """Grows/shrinks shard executors from queue-depth/latency signals.

    Parameters
    ----------
    policy:
        Thresholds and pacing (:class:`AutoscalePolicy`).
    enabled:
        Master switch, **False by default**.  Disabled, every entry point
        is a no-op — the documented bitwise-inert contract.
    clock:
        Injectable monotonic clock (tests drive cooldowns without
        sleeping).
    """

    def __init__(
        self,
        policy: AutoscalePolicy | None = None,
        *,
        enabled: bool = False,
        clock=time.monotonic,
    ):
        self.policy = policy or AutoscalePolicy()
        self.enabled = bool(enabled)
        self._clock = clock
        self._router = None
        self._streak: dict[str, int] = {}       # signed consecutive votes
        self._last_action: dict[str, float] = {}
        self.resizes: list[tuple[str, int, int]] = []  # (shard, old, new)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- wiring --------------------------------------------------------
    def attach(self, router) -> None:
        """Bind to a :class:`~repro.serving.shard.ShardRouter` (or any
        object with ``live_items()``)."""
        self._router = router

    # -- decisions -----------------------------------------------------
    def _vote(self, svc) -> int:
        """+1 (scale up), -1 (scale down) or 0 for one shard's signals."""
        depth = svc.queue_depth()
        if depth >= self.policy.scale_up_depth:
            return 1
        if (
            self.policy.scale_up_p99 is not None
            and svc.stats.p99 > self.policy.scale_up_p99
        ):
            return 1
        if obs.health_enabled() and obs.health().slo.hint_for(svc.stats) > 0:
            # a latency / shed-budget SLO burning on this replica outvotes
            # a shallow queue: budget burn is the earlier overload signal
            return 1
        if depth <= self.policy.scale_down_depth:
            return -1
        return 0

    def evaluate(self, now: float | None = None) -> dict[str, int]:
        """Desired worker counts for shards whose vote has persisted
        through hysteresis and cooldown.  Pure observation — nothing is
        resized; returns ``{}`` when disabled or unattached."""
        if not self.enabled or self._router is None:
            return {}
        now = self._clock() if now is None else now
        decisions: dict[str, int] = {}
        for name, svc in self._router.live_items():
            vote = self._vote(svc)
            streak = self._streak.get(name, 0)
            streak = streak + vote if vote and streak * vote >= 0 else vote
            self._streak[name] = streak
            if abs(streak) < self.policy.hysteresis:
                continue
            if now - self._last_action.get(name, -1e18) < self.policy.cooldown:
                continue
            current = svc.executor.n_workers
            target = current + (1 if streak > 0 else -1)
            target = max(self.policy.min_workers,
                         min(self.policy.max_workers, target))
            if target != current:
                decisions[name] = target
        return decisions

    def step(self, now: float | None = None) -> dict[str, int]:
        """One control tick: evaluate, then apply each decision through
        ``executor.resize``.  Returns the resizes actually applied."""
        now = self._clock() if now is None else now
        applied: dict[str, int] = {}
        for name, target in self.evaluate(now).items():
            svc = dict(self._router.live_items()).get(name)
            if svc is None:
                continue
            old = svc.executor.n_workers
            if not svc.executor.resize(target):
                continue  # backend cannot resize (serial): leave it be
            applied[name] = target
            self.resizes.append((name, old, target))
            self._last_action[name] = now
            self._streak[name] = 0
            if obs.enabled():
                reg = obs.metrics()
                reg.gauge("serving.autoscale.workers", shard=name).set(target)
                reg.counter(
                    "serving.autoscale.resizes_total",
                    direction="up" if target > old else "down",
                ).inc()
        return applied

    # -- background loop -----------------------------------------------
    def start(self) -> None:
        """Spawn the evaluation loop (no-op when disabled)."""
        if not self.enabled or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="pool-autoscaler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.policy.interval):
            try:
                self.step()
            except Exception:  # pragma: no cover - keep the loop alive
                pass

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PoolAutoscaler(enabled={self.enabled}, policy={self.policy}, "
            f"resizes={len(self.resizes)})"
        )
