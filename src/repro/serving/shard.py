"""Front-end shard router: one serving tier over N service replicas.

The repo's serving story used to stop at one :class:`ScenarioService`
per process.  ``ShardRouter`` is the horizontal layer on top: it spreads
``EstimationRequest`` / ``ContingencyRequest`` traffic across N replicas
by consistent hashing on a ``(grid, region/delta)`` key, so repeated
traffic for one scenario region keeps landing on the replica whose warm
caches already hold it, and membership changes move only ``~1/N`` of the
keyspace (:class:`~repro.middleware.hashring.ConsistentHashRing` — the
same ring the mux fabric's ``send_keyed`` uses, so a co-located fabric
and router agree on every key).

Backpressure and failure are *typed*, never silent:

- a replica at ``max_queue`` fails admission with ``ServiceOverloaded``;
  the router spills the request to the next shard in the key's ring
  preference order, and only when **every** live shard refused does the
  caller see ``ServiceOverloaded``;
- a request that goes stale fails with ``DeadlineExceeded`` (never
  retried — its deadline has passed no matter where it runs);
- a replica that dies mid-request (crashed worker pool, aborted
  service) fails with an infrastructure error; the router marks the
  shard lost, removes it from the ring and **re-hashes** the request to
  the surviving replicas — accepted requests are re-routed, not lost.

Re-dispatch is bounded by a PR-5 :class:`~repro.middleware.errors.
RetryPolicy` (deterministic backoff; zero-delay by default so the
resolving dispatcher thread never sleeps).

Graceful membership: :meth:`remove_shard` takes a shard out of rotation
and *drains* it (queued work completes, then the service closes);
:meth:`kill_shard` is the crash-shaped variant used by chaos tests —
queued requests fail typed and immediately re-hash.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Iterator, Mapping

from .. import obs
from ..middleware.errors import (
    ClientClosed,
    ConnectFailed,
    DeadlineExceeded,
    RetryPolicy,
    SendFailed,
)
from ..middleware.hashring import ConsistentHashRing
from ..parallel import WorkerCrash
from .requests import (
    ContingencyRequest,
    EstimationRequest,
    ReplicaLost,
    ServiceOverloaded,
)
from .service import ScenarioService

__all__ = ["ShardRouter", "RouterStats", "request_key"]

#: failures that mean "the replica is gone", not "the request is bad" —
#: these mark the shard lost and re-hash the request
_INFRA_ERRORS = (
    ReplicaLost,
    WorkerCrash,
    BrokenProcessPool,
    ClientClosed,
    ConnectFailed,
    SendFailed,
    ConnectionError,
)


def request_key(request, *, grid: str = "") -> tuple:
    """The canonical consistent-hash key for a request.

    Scenario frames hash by their delta's *region* — the set of touched
    branch/bus indices (or the delta's label when one is set) — so the
    same what-if scenario always lands on the same replica's warm caches.
    Contingency screenings hash by outaged branch.  Plain values-only
    frames have no region; they return ``None`` and the router spreads
    them round-robin over the ring instead.
    """
    if isinstance(request, EstimationRequest) and request.delta is not None:
        d = request.delta
        region = d.label or (
            tuple(d.br_idx.tolist()),
            tuple(d.pd_idx.tolist()),
            tuple(d.qd_idx.tolist()),
        )
        return (grid, "scenario", region)
    if isinstance(request, ContingencyRequest):
        return (grid, "n-1", request.contingency.branch)
    return None


class RouterStats:
    """Thread-safe routing counters (the router-side view; per-request
    latency lives in each replica's :class:`ServiceStats`)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.routed: dict[str, int] = {}
        self.completed = 0
        self.rehashed = 0      # re-dispatches after a replica loss
        self.spilled = 0       # re-dispatches after an overloaded shard
        self.shed = 0          # requests that failed typed at the caller
        self.replicas_lost = 0
        self.restored = 0      # replicas re-admitted after a loss

    def _bump(self, attr: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + n)

    def record_routed(self, shard: str) -> None:
        with self._lock:
            self.routed[shard] = self.routed.get(shard, 0) + 1

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "routed": dict(self.routed),
                "completed": self.completed,
                "rehashed": self.rehashed,
                "spilled": self.spilled,
                "shed": self.shed,
                "replicas_lost": self.replicas_lost,
                "restored": self.restored,
            }


class ShardRouter:
    """Routes scenario requests across named :class:`ScenarioService`
    replicas via consistent hashing, with typed backpressure, overload
    spillover and crash re-hashing.

    Parameters
    ----------
    shards:
        ``name -> ScenarioService`` mapping.  The services are owned by
        the router: :meth:`close` drains and closes all of them.
    grid:
        Label mixed into every hash key (requests for different grids
        sharing a ring must not collide).
    vnodes:
        Virtual nodes per shard on the ring.
    retry:
        PR-5 retry policy bounding re-dispatches per request.
        ``max_attempts`` counts dispatch attempts (first try included);
        ``None`` allows one attempt per shard with zero backoff.
    autoscaler:
        Optional :class:`~repro.serving.autoscale.PoolAutoscaler`; the
        router attaches and starts it (it only acts when *enabled* —
        the default policy is off, and off is bitwise-inert).
    """

    def __init__(
        self,
        shards: Mapping[str, ScenarioService],
        *,
        grid: str = "",
        vnodes: int = 64,
        retry: RetryPolicy | None = None,
        autoscaler=None,
    ):
        if not shards:
            raise ValueError("at least one shard is required")
        self._shards: dict[str, ScenarioService] = dict(shards)
        self.grid = grid
        self._ring = ConsistentHashRing(self._shards, vnodes=vnodes)
        self.retry = retry or RetryPolicy(
            max_attempts=max(2, len(self._shards)),
            base_delay=0.0, max_delay=0.0, jitter=0.0,
        )
        self._dead: set[str] = set()
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._closed = False
        self.stats = RouterStats()
        if obs.health_enabled():
            obs.health().watch_router(
                f"router-{grid or 'default'}", self.stats
            )
        self.autoscaler = autoscaler
        if autoscaler is not None:
            autoscaler.attach(self)
            autoscaler.start()

    # -- membership ----------------------------------------------------
    @property
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def live_shards(self) -> list[str]:
        with self._lock:
            return sorted(set(self._shards) - self._dead)

    def live_items(self) -> list[tuple[str, ScenarioService]]:
        return [(name, self._shards[name]) for name in self.live_shards()]

    def add_shard(self, name: str, service: ScenarioService) -> None:
        """Join a replica: it inherits ``~1/N`` of the keyspace."""
        with self._lock:
            if name in self._shards and name not in self._dead:
                raise ValueError(f"shard {name!r} already present")
            self._shards[name] = service
            self._dead.discard(name)
        self._ring.add(name)

    def restore_shard(self, name: str, service: ScenarioService) -> None:
        """Re-admit a previously lost/killed replica under its old name
        with a fresh service: it takes back its keyspace slice, and the
        health plane records the recovery (counterpart of the
        ``shard.lost`` event :meth:`_mark_lost` emits)."""
        self.add_shard(name, service)
        self.stats._bump("restored")
        if obs.enabled():
            obs.metrics().counter(
                "router.shards_restored_total", shard=name
            ).inc()
        if obs.health_enabled():
            obs.health().site_recovered(name, origin="serving")

    def remove_shard(self, name: str, *, drain: bool = True) -> None:
        """Take a replica out of rotation.

        ``drain=True`` (graceful): new traffic re-hashes to the ring
        successors immediately, queued work completes, then the service
        closes.  ``drain=False`` (crash-shaped): queued requests fail
        typed and the router re-hashes them — see :meth:`kill_shard`.
        """
        with self._lock:
            svc = self._shards.get(name)
            if svc is None or name in self._dead:
                return
            self._dead.add(name)
        self._ring.remove(name)
        if drain:
            svc.close()
        else:
            svc.abort()

    def kill_shard(self, name: str) -> None:
        """Simulate a hard replica loss (chaos hook): queued requests on
        the shard fail with ``ReplicaLost`` and immediately re-hash."""
        self.remove_shard(name, drain=False)

    def _mark_lost(self, name: str, exc: Exception) -> bool:
        """Replica died underneath us; pull it from the ring once."""
        with self._lock:
            if name in self._dead:
                return False
            self._dead.add(name)
        self._ring.remove(name)
        self.stats._bump("replicas_lost")
        if obs.enabled():
            obs.metrics().counter(
                "router.replicas_lost_total", shard=name
            ).inc()
        if obs.health_enabled():
            # synchronous on the loss path: the shard.lost event (and any
            # blackbox it triggers) lands before the rehash re-dispatches
            # this replica's requests
            obs.health().shard_lost(name, exc)
        return True

    # -- submission ----------------------------------------------------
    def key_for(self, request) -> tuple:
        """The routing key the router will use for ``request`` (keyless
        frames draw a fresh spreading key per call)."""
        key = request_key(request, grid=self.grid)
        if key is None:
            key = (self.grid, "frame", next(self._seq))
        return key

    def shard_for(self, request, *, key=None) -> str:
        """The shard a request would route to right now."""
        key = self.key_for(request) if key is None else key
        for name in self._ring.preference(key):
            if name not in self._dead:
                return name
        raise ReplicaLost("no live shard on the ring")

    def submit(self, request, *, key=None) -> Future:
        """Route and enqueue a request; the returned future resolves to
        the replica's :class:`~repro.serving.requests.ScenarioResult`
        (annotated with the serving shard) or fails with a typed error."""
        if self._closed:
            raise RuntimeError("ShardRouter is closed")
        if not isinstance(request, (EstimationRequest, ContingencyRequest)):
            raise TypeError(
                "submit expects an EstimationRequest or ContingencyRequest, "
                f"got {type(request).__name__}"
            )
        key = self.key_for(request) if key is None else key
        caller: Future = Future()
        self._dispatch(request, caller, key, tried=set(), attempt=1)
        return caller

    def submit_estimation(
        self, z=None, *, rounds=None, tol=None, delta=None, key=None
    ) -> Future:
        req = EstimationRequest(
            z=z, rounds=rounds, tol=tol if tol is not None else 1e-8,
            delta=delta,
        )
        return self.submit(req, key=key)

    def submit_contingency(self, contingency) -> Future:
        return self.submit(ContingencyRequest(contingency))

    def run(self, requests: Iterable) -> list:
        """Submit every request and wait; results in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    def stream(self, requests: Iterable) -> Iterator:
        """Submit every request, yielding results in completion order."""
        futures = [self.submit(r) for r in requests]
        for fut in as_completed(futures):
            yield fut.result()

    # -- dispatch machinery --------------------------------------------
    def _next_target(self, key, tried: set) -> str | None:
        try:
            order = self._ring.preference(key)
        except LookupError:
            return None
        with self._lock:
            for name in order:
                if name not in tried and name not in self._dead:
                    return name
        return None

    def _dispatch(
        self, request, caller: Future, key, tried: set, attempt: int,
        last_exc: Exception | None = None,
    ) -> None:
        while True:
            target = self._next_target(key, tried)
            if target is None:
                if isinstance(last_exc, _INFRA_ERRORS):
                    self._fail(caller, ReplicaLost(
                        "no live shard left to inherit the request "
                        f"(tried {sorted(tried) or 'none'})"
                    ))
                else:
                    self._fail(caller, ServiceOverloaded(
                        "every live shard refused the request "
                        f"(tried {sorted(tried) or 'none'})"
                    ))
                return
            svc = self._shards[target]
            try:
                inner = svc.submit(request)
            except TypeError:
                raise
            except RuntimeError as exc:  # service closed under us
                if self._mark_lost(target, exc):
                    pass
                tried.add(target)
                continue
            self.stats.record_routed(target)
            if obs.enabled():
                obs.metrics().counter(
                    "router.requests_total", shard=target
                ).inc()
            inner.add_done_callback(
                lambda fut, t=target: self._on_inner(
                    fut, request, caller, key, tried, attempt, t
                )
            )
            return

    def _on_inner(
        self, fut: Future, request, caller: Future, key, tried: set,
        attempt: int, target: str,
    ) -> None:
        exc = fut.exception()
        if exc is None:
            result = fut.result()
            result.shard = target
            self.stats._bump("completed")
            if not caller.done():
                caller.set_result(result)
            return
        if isinstance(exc, ServiceOverloaded):
            # backpressure: spill to the next shard in ring order; the
            # caller only sees ServiceOverloaded when all shards refuse
            tried.add(target)
            if attempt >= self.retry.max_attempts:
                self._fail(caller, exc)
                return
            self.stats._bump("spilled")
            if obs.enabled():
                obs.metrics().counter("router.spill_total").inc()
            self._dispatch(request, caller, key, tried, attempt + 1, exc)
            return
        if isinstance(exc, DeadlineExceeded):
            # the deadline has passed wherever it would run: typed, final
            self._fail(caller, exc)
            return
        if isinstance(exc, _INFRA_ERRORS):
            # the replica is gone — re-hash onto the survivors
            self._mark_lost(target, exc)
            tried.add(target)
            if attempt >= self.retry.max_attempts:
                self._fail(caller, ReplicaLost(
                    f"shard {target!r} lost and the retry budget "
                    f"({self.retry.max_attempts} attempts) is spent"
                ))
                return
            self.stats._bump("rehashed")
            if obs.enabled():
                obs.metrics().counter("router.rehash_total").inc()
            try:
                self.retry.sleep(attempt)
            except DeadlineExceeded as dexc:  # pragma: no cover - no deadline set
                self._fail(caller, dexc)
                return
            self._dispatch(request, caller, key, tried, attempt + 1, exc)
            return
        # application-level failure (bad delta, solver error): propagate
        self._fail(caller, exc)

    def _fail(self, caller: Future, exc: Exception) -> None:
        self.stats._bump("shed")
        if obs.enabled():
            obs.metrics().counter(
                "router.shed_total", error=type(exc).__name__
            ).inc()
        if not caller.done():
            caller.set_exception(exc)

    # -- introspection -------------------------------------------------
    def queue_depths(self) -> dict[str, int]:
        """Pending request count per live shard (autoscaling signal)."""
        return {name: svc.queue_depth() for name, svc in self.live_items()}

    def stats_snapshot(self) -> dict:
        """Router counters plus each live shard's ``ServiceStats``."""
        return {
            "router": self.stats.to_dict(),
            "shards": {
                name: svc.stats.to_dict() for name, svc in self.live_items()
            },
        }

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop the autoscaler, then drain and close every replica."""
        if self._closed:
            return
        self._closed = True
        if self.autoscaler is not None:
            self.autoscaler.stop()
        for svc in self._shards.values():
            svc.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter(shards={self.shard_names}, "
            f"live={self.live_shards()}, grid={self.grid!r})"
        )
