"""CLI: N-1 contingency analysis from an estimated state.

Example::

    python -m repro.tools.contingency --case case118 --margin 1.5 --workers 4
    python -m repro.tools.contingency --case case118 --executor processes:4
    python -m repro.tools.contingency --case case118 --batch
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..contingency import ContingencyAnalyzer, enumerate_n1, run_parallel
from ..estimation import estimate_state
from ..grid.powerflow import run_ac_power_flow
from ..measurements import full_placement, generate_measurements
from .common import CASE_CHOICES, load_case

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.contingency",
        description="Estimation-fed N-1 contingency screening.",
    )
    p.add_argument("--case", default="case118", help=f"test case ({CASE_CHOICES})")
    p.add_argument("--margin", type=float, default=1.5,
                   help="rating margin over base-case flows")
    p.add_argument("--method", default="dc", choices=["dc", "ac"])
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--executor", default=None,
                   help="executor spec (serial | threads[:N] | processes[:N]); "
                        "overrides --workers with its own pool")
    p.add_argument("--scheme", default="dynamic", choices=["static", "dynamic"])
    p.add_argument("--batch", action="store_true",
                   help="drain the list through one batched (compensation) "
                        "solve instead of the executor fan-out (dc only)")
    p.add_argument("--top", type=int, default=5, help="worst cases to print")
    p.add_argument("--seed", type=int, default=0)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    net = load_case(args.case)
    pf = run_ac_power_flow(net, flat_start=True)

    rng = np.random.default_rng(args.seed)
    mset = generate_measurements(net, full_placement(net), pf, rng=rng)
    estimate = estimate_state(net, mset)
    print(f"{net.name}: estimated state in {estimate.iterations} WLS iterations")

    safe, islanding = enumerate_n1(net)
    print(f"N-1: {len(safe)} analysable, {len(islanding)} islanding "
          f"({', '.join(c.label for c in islanding) or 'none'})")

    analyzer = ContingencyAnalyzer.from_estimate(
        net, estimate, method=args.method, rating_margin=args.margin
    )
    report = run_parallel(
        analyzer,
        safe,
        executor=args.executor,
        n_workers=args.workers,
        scheme=args.scheme,
        batch=args.batch,
    )
    if args.batch:
        backend = "one batched solve"
    else:
        backend = args.executor or f"{args.workers} threads"
    insecure = [r for r in report.results if not r.secure]
    print(f"screened in {report.makespan * 1e3:.1f} ms on {backend} "
          f"({report.scheme}); insecure: {len(insecure)}/{len(safe)}")

    worst = sorted(report.results, key=lambda r: -r.max_loading)[: args.top]
    print(f"\nworst {len(worst)} cases:")
    for r in worst:
        flags = "" if r.secure else f"  ({len(r.violations)} violations)"
        print(f"  outage {r.contingency.label:>9}: max loading "
              f"{r.max_loading:5.2f}x{flags}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
