"""obstop — terminal health dashboard for a live registry or a blackbox.

Renders the cluster's vital signs from the health plane's metric
streams: throughput counters (with per-second rates when watching live),
latency histograms (n / p50 / p99), SLO burn-rate gauges, and the tail
of recent health events.  Works against two sources:

- **a file** — any repro-obs-v1 JSONL dump, including the flight
  recorder's blackbox artifacts (``--watch`` re-reads it periodically,
  so a long-running soak writing dumps gets a poor-man's live view);
- **a live registry** — :class:`Dashboard` wraps a
  :class:`~repro.obs.metrics.MetricsRegistry` (e.g. a
  :class:`~repro.obs.aggregate.TelemetryAggregator`'s cluster registry)
  and an optional :class:`~repro.obs.health.HealthMonitor` for the event
  tail; each :meth:`Dashboard.tick` renders one frame with rates
  computed against the previous tick.

Usage::

    python -m repro.tools.obstop blackbox.jsonl
    python -m repro.tools.obstop session.jsonl --watch 2
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs.export import load_jsonl

__all__ = ["render_dashboard", "Dashboard", "build_parser", "main"]

#: counter prefixes surfaced in the throughput section (others fold into
#: the "other counters" line-count only)
_RATE_PREFIXES = (
    "serving.", "router.", "live.", "dse.", "session.", "mux.", "health.",
    "executor.", "sim.", "mw.",
)


def _metric_kind(snap: dict) -> str:
    return snap.get("metric_kind", snap.get("kind", "?"))


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_event(ev: dict) -> str:
    detail = ev.get("detail") or {}
    extras = ", ".join(
        f"{k}={v}" for k, v in sorted(detail.items()) if v not in ("", None)
    )
    t = ev.get("t", 0.0)
    stamp = time.strftime("%H:%M:%S", time.localtime(t)) if t else "--:--:--"
    line = (
        f"  {stamp}  [{ev.get('severity', '?'):>8}] "
        f"{ev.get('event', '?'):<16} {ev.get('source', '')}"
    )
    return line + (f"  ({extras})" if extras else "")


def render_dashboard(
    metrics: list[dict],
    events: list[dict] | None = None,
    meta: dict | None = None,
    *,
    rates: dict | None = None,
    max_events: int = 8,
) -> str:
    """One dashboard frame from metric snapshots + health events.

    ``metrics`` accepts registry ``collect()`` snapshots or JSONL metric
    records; ``rates`` maps ``(name, labels-string)`` to a per-second
    rate (supplied by :class:`Dashboard` when watching live).
    """
    counters, gauges, hists = [], [], []
    for snap in metrics:
        kind = _metric_kind(snap)
        if kind == "counter":
            counters.append(snap)
        elif kind == "gauge":
            gauges.append(snap)
        elif kind == "histogram":
            hists.append(snap)

    lines: list[str] = []
    title = "obstop"
    if meta:
        if meta.get("trigger"):
            title += f" — blackbox [{meta['trigger']}]"
        elif meta.get("blackbox"):
            title += " — blackbox"
    lines.append(f"== {title} ==")
    if meta and meta.get("fired_summary"):
        lines.append(f"faults fired: {meta['fired_summary']}")
    lines.append("")

    shown = [c for c in counters if c["name"].startswith(_RATE_PREFIXES)]
    if shown:
        lines.append("-- throughput --")
        for snap in shown:
            key = (snap["name"], _label_str(snap.get("labels") or {}))
            rate = (rates or {}).get(key)
            tail = f"  {rate:10.1f}/s" if rate is not None else ""
            lines.append(
                f"  {snap['name'] + key[1]:<52} {snap['value']:>12.6g}{tail}"
            )
        hidden = len(counters) - len(shown)
        if hidden:
            lines.append(f"  (+{hidden} other counters)")
        lines.append("")

    if hists:
        lines.append("-- latency / distributions --")
        lines.append(f"  {'metric':<52} {'n':>8} {'p50':>11} {'p99':>11}")
        for snap in hists:
            name = snap["name"] + _label_str(snap.get("labels") or {})
            lines.append(
                f"  {name:<52} {snap['count']:>8} "
                f"{snap['p50']:>11.3e} {snap['p99']:>11.3e}"
            )
        lines.append("")

    burn = [g for g in gauges if g["name"].startswith("health.slo.")]
    other_gauges = [g for g in gauges if not g["name"].startswith("health.slo.")]
    if burn:
        lines.append("-- slo burn --")
        for snap in burn:
            name = snap["name"] + _label_str(snap.get("labels") or {})
            flag = ""
            if snap["name"] == "health.slo.burning" and snap["value"] >= 1.0:
                flag = "  ** BURNING **"
            lines.append(f"  {name:<52} {snap['value']:>12.4g}{flag}")
        lines.append("")
    if other_gauges:
        lines.append("-- gauges --")
        for snap in other_gauges:
            name = snap["name"] + _label_str(snap.get("labels") or {})
            lines.append(f"  {name:<52} {snap['value']:>12.6g}")
        lines.append("")

    events = list(events or [])
    lines.append(f"-- recent health events ({len(events)} total) --")
    if events:
        for ev in events[-max_events:]:
            lines.append(_fmt_event(ev))
    else:
        lines.append("  (none)")
    return "\n".join(lines)


class Dashboard:
    """Live dashboard over a registry (and optional health monitor).

    Each :meth:`tick` snapshots the registry, computes per-second counter
    rates against the previous tick, and returns the rendered frame.
    """

    def __init__(self, registry, monitor=None, *, clock=time.monotonic):
        self.registry = registry
        self.monitor = monitor
        self._clock = clock
        self._prev: dict | None = None
        self._prev_t: float | None = None

    def tick(self, now: float | None = None) -> str:
        now = self._clock() if now is None else now
        metrics = self.registry.collect()
        rates: dict = {}
        if self._prev is not None and self._prev_t is not None:
            dt = now - self._prev_t
            if dt > 0:
                for snap in metrics:
                    if snap.get("kind") != "counter":
                        continue
                    key = (snap["name"], _label_str(snap.get("labels") or {}))
                    prev = self._prev.get(key)
                    if prev is not None:
                        rates[key] = (snap["value"] - prev) / dt
        self._prev = {
            (s["name"], _label_str(s.get("labels") or {})): s["value"]
            for s in metrics
            if s.get("kind") == "counter"
        }
        self._prev_t = now
        events = None
        if self.monitor is not None:
            events = [ev.to_dict() for ev in self.monitor.recorder.events()]
        return render_dashboard(metrics, events, rates=rates)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="obstop",
        description="terminal health dashboard over a repro-obs-v1 JSONL "
        "dump (blackbox or session export)",
    )
    p.add_argument("path", help="JSONL file to render")
    p.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-read and re-render every SECONDS (ctrl-c to stop)",
    )
    p.add_argument(
        "--max-events", type=int, default=8,
        help="health events to show in the tail (default 8)",
    )
    return p


def _render_file(path: str, max_events: int) -> str:
    data = load_jsonl(path)
    metrics = data["metrics"]
    if not metrics and data["snapshots"]:
        # blackbox with ring snapshots only: render the newest one
        metrics = data["snapshots"][-1].get("metrics", [])
    return render_dashboard(
        metrics, data["events"], data["meta"], max_events=max_events
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.watch is None:
        print(_render_file(args.path, args.max_events))
        return 0
    try:
        while True:
            frame = _render_file(args.path, args.max_events)
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.watch)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
