"""Shared helpers for the CLI tools."""

from __future__ import annotations

from ..grid.cases import case4, case14, case118, synthetic_grid
from ..grid.network import Network

__all__ = ["load_case", "CASE_CHOICES"]

CASE_CHOICES = "case4 | case14 | case118 | synthetic:<areas>x<buses>[:seed]"

_BUILTIN = {"case4": case4, "case14": case14, "case118": case118}


def load_case(spec: str) -> Network:
    """Resolve a ``--case`` specification to a network.

    ``case4`` / ``case14`` / ``case118`` load the bundled systems;
    ``synthetic:9x13`` or ``synthetic:37x40:7`` builds a synthetic grid
    with the given area count, buses per area and optional seed.
    """
    if spec in _BUILTIN:
        return _BUILTIN[spec]()
    if spec.startswith("synthetic:"):
        body = spec.split(":", 1)[1]
        parts = body.split(":")
        try:
            areas_s, buses_s = parts[0].split("x")
            seed = int(parts[1]) if len(parts) > 1 else 0
            return synthetic_grid(
                n_areas=int(areas_s), buses_per_area=int(buses_s), seed=seed
            )
        except (ValueError, IndexError) as exc:
            raise ValueError(f"bad synthetic case spec {spec!r}") from exc
    raise ValueError(f"unknown case {spec!r}; choices: {CASE_CHOICES}")
