"""CLI: multi-frame DSE session on the architecture prototype.

Example::

    python -m repro.tools.run_session --case case118 --subsystems 9 --frames 3
    python -m repro.tools.run_session --case synthetic:12x20 --fabric --tcp
"""

from __future__ import annotations

import argparse
import sys

from ..core import ArchitecturePrototype, DseSession
from ..dse import dse_pmu_placement
from ..grid.powerflow import run_ac_power_flow
from ..measurements import ScadaSystem, full_placement
from .common import CASE_CHOICES, load_case

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.run_session",
        description="Process SCADA frames through the distributed "
                    "state-estimation architecture.",
    )
    p.add_argument("--case", default="case118", help=f"test case ({CASE_CHOICES})")
    p.add_argument("--subsystems", type=int, default=9)
    p.add_argument("--frames", type=int, default=3, help="SCADA frames to run")
    p.add_argument("--scan-period", type=float, default=4.0)
    p.add_argument("--solver", default="lu", choices=["lu", "pcg", "lsqr"])
    p.add_argument("--fabric", action="store_true",
                   help="move pseudo measurements through live middleware")
    p.add_argument("--tcp", action="store_true",
                   help="use real localhost TCP pipelines (implies --fabric)")
    p.add_argument("--live", action="store_true",
                   help="run each frame on the live multi-threaded runtime "
                        "(concurrent estimator sites over middleware)")
    p.add_argument("--csv", help="write the per-frame table to this CSV file")
    p.add_argument("--obs", metavar="PATH",
                   help="record traces/metrics and dump the session as "
                        "JSONL to PATH (render with repro.tools.obsreport)")
    p.add_argument("--seed", type=int, default=0)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    net = load_case(args.case)
    if args.obs:
        from .. import obs

        obs.configure(enabled=True, reset=True)
    run_ac_power_flow(net, flat_start=True)  # fail fast on unsolvable cases

    with ArchitecturePrototype.assemble(
        net,
        m_subsystems=args.subsystems,
        seed=args.seed,
        with_fabric=args.fabric or args.tcp,
        fabric_tcp=args.tcp,
    ) as arch:
        placement = full_placement(net).merged_with(dse_pmu_placement(arch.dec))
        scada = ScadaSystem(net, placement, scan_period=args.scan_period,
                            seed=args.seed)
        session = DseSession(arch, solver=args.solver)

        print(f"{net.name}: {arch.dec.m} subsystems on "
              f"{arch.topology.n_clusters} clusters; "
              f"{args.frames} frames at {args.scan_period}s\n")
        print(f"{'t(s)':>6} | {'x':>6} | {'Ni':>5} | {'imb1':>5} | {'imb2':>5} "
              f"| {'migr':>4} | {'sim total (ms)':>14} | {'Vm RMSE':>9}")
        for frame in scada.frames(args.frames):
            rep = session.process_frame(
                frame.mset, t=frame.t, truth=(frame.pf.Vm, frame.pf.Va)
            )
            print(f"{rep.t:6.1f} | {rep.noise_level:6.3f} | "
                  f"{rep.expected_iterations:5.1f} | {rep.imbalance_step1:5.3f} "
                  f"| {rep.imbalance_step2:5.3f} | {rep.migrated_weight:4d} | "
                  f"{rep.timings.total * 1e3:14.2f} | "
                  f"{rep.vm_rmse_vs_truth:.3e}")
            if args.live:
                from ..core import LiveDseRuntime

                live = LiveDseRuntime(
                    arch.dec, frame.mset, use_tcp=args.tcp,
                    solver=args.solver,
                ).run()
                err = live.state_error(frame.pf.Vm, frame.pf.Va)
                print(f"       live runtime: wall "
                      f"{live.wall_time * 1e3:.1f} ms, Vm RMSE "
                      f"{err['vm_rmse']:.3e}, errors: {len(live.errors)}")
        if args.csv:
            from ..reporting import write_frames_csv

            write_frames_csv(session.reports, args.csv)
            print(f"\nwrote {args.csv}")
        if args.obs:
            from .. import obs

            n = obs.export_jsonl(
                args.obs,
                tracer=obs.tracer(),
                registry=obs.metrics(),
                frames=session.reports,
                meta={"case": args.case, "frames": args.frames},
            )
            obs.configure(enabled=False, reset=True)
            print(f"\nwrote {args.obs} ({n} records) — render with "
                  f"python -m repro.tools.obsreport {args.obs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
