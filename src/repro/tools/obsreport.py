"""CLI: render a recorded observability dump (JSONL) for the console.

Example::

    python -m repro.tools.run_session --case case14 --frames 2 --obs out.jsonl
    python -m repro.tools.obsreport out.jsonl
    python -m repro.tools.obsreport out.jsonl --prometheus
    python -m repro.tools.obsreport out.jsonl --traces --max-depth 3
"""

from __future__ import annotations

import argparse
import sys

from ..obs import load_jsonl, render_flame, render_metrics_table
from ..obs.metrics import MetricsRegistry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.obsreport",
        description="Render a repro.obs JSONL session dump: trace flame "
                    "summaries, metric tables, frame reports.",
    )
    p.add_argument("path", help="JSONL file written by repro.obs.export_jsonl")
    p.add_argument("--traces", action="store_true",
                   help="only the trace flame summaries")
    p.add_argument("--metrics", action="store_true",
                   help="only the metrics table")
    p.add_argument("--frames", action="store_true",
                   help="only the per-frame session records")
    p.add_argument("--prometheus", action="store_true",
                   help="re-render the recorded metrics in Prometheus "
                        "text-exposition format")
    p.add_argument("--max-depth", type=int, default=None,
                   help="truncate flame trees below this depth")
    return p


def _rebuild_registry(metric_records: list[dict]) -> MetricsRegistry:
    """Registry holding the dumped counter/gauge values (histograms cannot
    be rebuilt exactly from a snapshot, so their quantiles are re-rendered
    from the recorded snapshot fields instead)."""
    reg = MetricsRegistry()
    for rec in metric_records:
        labels = rec.get("labels") or {}
        if rec.get("metric_kind") == "counter":
            reg.counter(rec["name"], **labels).inc(rec["value"])
        elif rec.get("metric_kind") == "gauge":
            reg.gauge(rec["name"], **labels).set(rec["value"])
    return reg


def _render_prometheus_records(metric_records: list[dict]) -> str:
    # one renderer for live registries and recorded dumps: escaping and
    # histogram _sum/_count handling cannot drift between the two paths
    from ..obs.export import render_prometheus_snapshots

    return render_prometheus_snapshots(metric_records)


def _frame_table(frames: list[dict]) -> str:
    lines = [
        f"{'t(s)':>8} {'noise':>7} {'rounds':>6} {'bytes':>8} "
        f"{'wall (ms)':>10} {'sim total (ms)':>14}"
    ]
    for fr in frames:
        sim_total = (fr.get("timings") or {}).get("total", 0.0)
        lines.append(
            f"{fr.get('t', 0.0):8.1f} {fr.get('noise_level', 0.0):7.3f} "
            f"{fr.get('rounds', 0):6d} {fr.get('bytes_exchanged', 0):8d} "
            f"{fr.get('wall_time', 0.0) * 1e3:10.2f} {sim_total * 1e3:14.3f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    dump = load_jsonl(args.path)

    if args.prometheus:
        sys.stdout.write(_render_prometheus_records(dump["metrics"]))
        return 0

    sections = {
        "traces": args.traces,
        "metrics": args.metrics,
        "frames": args.frames,
    }
    show_all = not any(sections.values())

    meta = dump["meta"]
    print(f"{args.path}: {len(dump['spans'])} spans, "
          f"{len(dump['metrics'])} metrics, {len(dump['frames'])} frames"
          + (f", {meta['spans_dropped']} spans dropped"
             if meta.get("spans_dropped") else ""))

    if (show_all or sections["traces"]) and dump["spans"]:
        print("\n== traces ==")
        print(render_flame(dump["spans"], max_depth=args.max_depth))
    if (show_all or sections["metrics"]) and dump["metrics"]:
        print("== metrics ==")
        print(render_metrics_table(dump["metrics"]))
    if (show_all or sections["frames"]) and dump["frames"]:
        print("\n== frames ==")
        print(_frame_table(dump["frames"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
