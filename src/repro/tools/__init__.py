"""Command-line tools.

- ``python -m repro.tools.estimate`` — one-shot state estimation on a case.
- ``python -m repro.tools.decompose`` — decomposition + cluster-mapping report.
- ``python -m repro.tools.run_session`` — multi-frame DSE session on the
  architecture prototype (``--obs PATH`` records traces + metrics).
- ``python -m repro.tools.obsreport`` — render a recorded observability
  dump (flame summaries, metric tables, Prometheus text).

All tools share the ``--case`` option: ``case4``, ``case14``, ``case118``
or ``synthetic:<areas>x<buses>[:seed]``.
"""

from .common import load_case

__all__ = ["load_case"]
