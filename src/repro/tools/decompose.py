"""CLI: decomposition and cluster-mapping report for a case.

Example::

    python -m repro.tools.decompose --case case118 --subsystems 9 --clusters 3
"""

from __future__ import annotations

import argparse
import sys

from ..cluster.topology import ClusterSpec, ClusterTopology, pnnl_testbed
from ..core import ClusterMapper
from ..dse import decompose, exchange_bus_sets
from .common import CASE_CHOICES, load_case

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.decompose",
        description="Decompose a case into subsystems and map them onto "
                    "HPC clusters (the paper's mapping method).",
    )
    p.add_argument("--case", default="case118", help=f"test case ({CASE_CHOICES})")
    p.add_argument("--subsystems", type=int, default=9, help="subsystem count")
    p.add_argument("--clusters", type=int, default=3,
                   help="cluster count (3 = the paper's testbed)")
    p.add_argument("--noise", type=float, default=1.0,
                   help="noise level for the vertex weights")
    p.add_argument("--seed", type=int, default=0)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    net = load_case(args.case)
    dec = decompose(net, args.subsystems, seed=args.seed)

    print(f"{net.name}: {net.n_bus} buses -> {dec.m} subsystems "
          f"(sizes {dec.sizes().tolist()})")
    print(f"tie lines: {len(dec.tie_lines)}; quotient diameter: "
          f"{dec.diameter()}")
    sets = exchange_bus_sets(dec)
    print("exchange-set sizes (boundary + sensitive internal): "
          f"{[len(sets[s]) for s in range(dec.m)]}")

    if args.clusters == 3:
        topo = pnnl_testbed()
    else:
        topo = ClusterTopology(
            clusters=[ClusterSpec(name=f"cluster{i}") for i in range(args.clusters)]
        )
    mapper = ClusterMapper(topo, seed=args.seed)
    m1 = mapper.map_step1(dec, args.noise)
    print(f"\nStep-1 mapping (imbalance {m1.imbalance:.3f}):")
    for cluster, subs in m1.as_dict().items():
        print(f"  {cluster:10s}: {[s + 1 for s in subs]}")

    m2, moved = mapper.remap_step2(dec, args.noise, m1, sets)
    print(f"Step-2 mapping (imbalance {m2.imbalance:.3f}, edge-cut "
          f"{m2.edge_cut}, migrated weight {moved}):")
    for cluster, subs in m2.as_dict().items():
        print(f"  {cluster:10s}: {[s + 1 for s in subs]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
