"""CLI: one-shot state estimation on a bundled or synthetic case.

Example::

    python -m repro.tools.estimate --case case118 --noise 1.0 --solver pcg
    python -m repro.tools.estimate --case synthetic:6x15 --robust --bad-rows 3
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..estimation import (
    chi_square_test,
    constrained_estimate,
    estimate_state,
    huber_estimate,
    identify_bad_data,
)
from ..grid.powerflow import run_ac_power_flow
from ..measurements import full_placement, generate_measurements, inject_bad_data
from .common import CASE_CHOICES, load_case

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.estimate",
        description="Run WLS state estimation on a test case.",
    )
    p.add_argument("--case", default="case14", help=f"test case ({CASE_CHOICES})")
    p.add_argument("--noise", type=float, default=1.0,
                   help="noise level relative to nominal meter accuracy")
    p.add_argument("--seed", type=int, default=0, help="measurement RNG seed")
    p.add_argument("--solver", default="lu", choices=["lu", "pcg", "lsqr"],
                   help="normal-equation solver")
    p.add_argument("--robust", action="store_true",
                   help="use the Huber M-estimator instead of plain WLS")
    p.add_argument("--constrained", action="store_true",
                   help="enforce zero-injection equality constraints")
    p.add_argument("--bad-rows", type=int, default=0,
                   help="inject N gross errors and run identification")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    net = load_case(args.case)
    pf = run_ac_power_flow(net, flat_start=True)
    rng = np.random.default_rng(args.seed)
    mset = generate_measurements(
        net, full_placement(net), pf, noise_level=args.noise, rng=rng
    )
    print(f"{net.name}: {net.n_bus} buses, {len(mset)} measurements, "
          f"noise level {args.noise}")

    if args.bad_rows:
        rows = rng.choice(len(mset), size=args.bad_rows, replace=False)
        mset = inject_bad_data(mset, rows, rng=rng)
        print(f"injected gross errors at rows {sorted(rows.tolist())}")

    if args.robust:
        result = huber_estimate(net, mset)
        kind = "Huber"
    elif args.constrained:
        result = constrained_estimate(net, mset)
        kind = "constrained WLS"
    else:
        result = estimate_state(net, mset, solver=args.solver)
        kind = f"WLS ({args.solver})"

    err = result.state_error(pf.Vm, pf.Va)
    print(f"{kind}: converged={result.converged} iterations={result.iterations}")
    print(f"objective J = {result.objective:.2f} (dof {result.dof}); "
          f"chi-square passes: {chi_square_test(result)}")
    print(f"Vm RMSE {err['vm_rmse']:.3e} p.u.; "
          f"Va RMSE {np.rad2deg(err['va_rmse']):.4f} deg")

    if args.bad_rows and not args.robust:
        report = identify_bad_data(net, mset)
        print(f"bad-data identification removed rows "
              f"{sorted(report.removed_rows)}; passes: "
              f"{report.passes_chi_square}")
    return 0 if result.converged else 1


if __name__ == "__main__":
    sys.exit(main())
