"""CLI: inspect and convert MATPOWER case files.

Examples::

    python -m repro.tools.casefile --case case118 --info
    python -m repro.tools.casefile --case case14 --out /tmp/case14.m
    python -m repro.tools.casefile --in /tmp/case14.m --info --solve
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..grid import (
    PowerFlowError,
    is_single_island,
    load_matpower,
    run_ac_power_flow,
    save_matpower,
)
from .common import CASE_CHOICES, load_case

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.casefile",
        description="Inspect, validate and convert power system case data.",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--case", help=f"bundled/synthetic case ({CASE_CHOICES})")
    src.add_argument("--in", dest="infile", help="MATPOWER .m file to load")
    p.add_argument("--info", action="store_true", help="print a case summary")
    p.add_argument("--solve", action="store_true", help="run the AC power flow")
    p.add_argument("--out", help="write the case as a MATPOWER .m file")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    net = load_case(args.case) if args.case else load_matpower(args.infile)

    if args.info or not (args.solve or args.out):
        areas = np.unique(net.area)
        print(f"{net.name}: {net.n_bus} buses, {net.n_branch} branches "
              f"({int(net.br_status.sum())} in service), {net.n_gen} "
              f"generators, {len(areas)} area(s)")
        print(f"total load: {net.Pd.sum() * net.base_mva:.1f} MW / "
              f"{net.Qd.sum() * net.base_mva:.1f} MVAr; "
              f"single island: {is_single_island(net)}")

    if args.solve:
        try:
            pf = run_ac_power_flow(net, flat_start=True)
        except PowerFlowError as exc:
            print(f"power flow FAILED: {exc}")
            return 1
        print(f"power flow converged in {pf.iterations} iterations; "
              f"Vm in [{pf.Vm.min():.4f}, {pf.Vm.max():.4f}] p.u.; "
              f"losses {(pf.Pf + pf.Pt).sum() * net.base_mva:.2f} MW")

    if args.out:
        save_matpower(net, args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
