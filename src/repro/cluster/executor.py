"""Task executors: simulated clusters and a real thread pool.

:class:`SimExecutor` replays a computation/communication plan on a
:class:`~repro.cluster.topology.ClusterTopology` in virtual time — compute
phases schedule tasks onto cluster cores (LPT greedy), exchange phases move
messages over the links (optionally through the middleware relay).

:class:`ThreadExecutor` runs real callables on a thread pool and reports
wall-clock per task — the "local fabric" used when measuring this machine
instead of the simulated testbed.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from .costmodel import MiddlewareCostModel
from .topology import ClusterTopology

__all__ = [
    "TaskSpec",
    "MessageSpec",
    "PhaseTiming",
    "ExchangeTiming",
    "SimExecutor",
    "ThreadExecutor",
]


@dataclass(frozen=True)
class TaskSpec:
    """A compute task pinned to a cluster."""

    name: str
    cluster: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class MessageSpec:
    """A message between clusters."""

    src: str
    dst: str
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass
class PhaseTiming:
    """Timing of one compute phase."""

    makespan: float
    per_cluster: dict[str, float]
    task_finish: dict[str, float] = field(default_factory=dict)


@dataclass
class ExchangeTiming:
    """Timing of one exchange phase."""

    makespan: float
    per_pair: dict[tuple[str, str], float]
    total_bytes: float


class SimExecutor:
    """Deterministic analytic executor over a cluster topology."""

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        middleware: MiddlewareCostModel | None = None,
    ):
        self.topology = topology
        self.middleware = middleware or MiddlewareCostModel()

    # ------------------------------------------------------------------
    def run_phase(self, tasks: list[TaskSpec]) -> PhaseTiming:
        """Schedule tasks onto cluster cores (longest-processing-time greedy).

        Tasks on the same cluster share its cores; different clusters run
        fully in parallel.  Returns per-cluster makespans and per-task
        finish times.
        """
        by_cluster: dict[str, list[TaskSpec]] = {}
        for t in tasks:
            self.topology.cluster(t.cluster)  # validate name
            by_cluster.setdefault(t.cluster, []).append(t)

        per_cluster: dict[str, float] = {}
        finish: dict[str, float] = {}
        for cname, ts in by_cluster.items():
            cores = self.topology.cluster(cname).total_cores
            loads = [0.0] * min(cores, max(len(ts), 1))
            for t in sorted(ts, key=lambda t: -t.duration):
                i = loads.index(min(loads))
                loads[i] += t.duration
                finish[t.name] = loads[i]
            per_cluster[cname] = max(loads) if loads else 0.0
        makespan = max(per_cluster.values(), default=0.0)
        return PhaseTiming(makespan=makespan, per_cluster=per_cluster,
                           task_finish=finish)

    # ------------------------------------------------------------------
    def run_exchange(
        self, messages: list[MessageSpec], *, use_middleware: bool = True
    ) -> ExchangeTiming:
        """Move messages between clusters.

        Messages sharing an (unordered) cluster pair serialise on that link;
        distinct pairs proceed in parallel.  ``use_middleware`` charges the
        relay cost on top of the wire time (the architecture's data path).
        """
        per_pair: dict[tuple[str, str], float] = {}
        total = 0.0
        for m in messages:
            link = self.topology.link(m.src, m.dst)
            if use_middleware:
                dt = self.middleware.relayed_time(m.nbytes, link)
            else:
                dt = self.middleware.direct_time(m.nbytes, link)
            key = (m.src, m.dst) if m.src <= m.dst else (m.dst, m.src)
            per_pair[key] = per_pair.get(key, 0.0) + dt
            total += m.nbytes
        makespan = max(per_pair.values(), default=0.0)
        return ExchangeTiming(makespan=makespan, per_pair=per_pair,
                              total_bytes=total)


class ThreadExecutor:
    """Real thread-pool execution with per-task wall times."""

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn, items) -> tuple[list, list[float], float]:
        """Run ``fn(item)`` for each item; returns (results, task_times,
        wall_time)."""
        results: list = [None] * len(items)
        times: list[float] = [0.0] * len(items)

        def wrapped(i_item):
            i, item = i_item
            t0 = time.perf_counter()
            out = fn(item)
            return i, out, time.perf_counter() - t0

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            for i, out, dt in pool.map(wrapped, list(enumerate(items))):
                results[i] = out
                times[i] = dt
        wall = time.perf_counter() - t0
        return results, times, wall
