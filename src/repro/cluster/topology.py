"""Cluster and network topology model.

Describes the execution environment of the paper's testbed: a handful of
HPC clusters (the paper names Nwiceb, Catamount and Chinook) with per-node
compute rates, joined by network links with bandwidth and latency.  The
paper's measured figures calibrate the defaults: a ~0.4 GB/s middleware
relay rate and LAN-class links between the workstation and the clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClusterSpec", "LinkSpec", "ClusterTopology", "pnnl_testbed"]


@dataclass(frozen=True)
class ClusterSpec:
    """One HPC cluster (a balancing-authority control-centre platform)."""

    name: str
    nodes: int = 4
    cores_per_node: int = 8
    core_gflops: float = 10.0

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("cluster must have at least one node and core")
        if self.core_gflops <= 0:
            raise ValueError("core_gflops must be positive")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


@dataclass(frozen=True)
class LinkSpec:
    """A network link: latency (s) + bandwidth (bytes/s)."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("invalid link parameters")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth


@dataclass
class ClusterTopology:
    """A set of clusters and the links between them.

    ``links[(a, b)]`` is symmetric (stored once per unordered pair);
    ``loopback`` covers intra-cluster messaging.
    """

    clusters: list[ClusterSpec]
    links: dict[tuple[str, str], LinkSpec] = field(default_factory=dict)
    loopback: LinkSpec = field(
        default_factory=lambda: LinkSpec(latency=5e-6, bandwidth=4e9)
    )
    default_link: LinkSpec = field(
        default_factory=lambda: LinkSpec(latency=2e-4, bandwidth=1.0e9)
    )

    def __post_init__(self) -> None:
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate cluster names")
        self._by_name = {c.name: c for c in self.clusters}

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster(self, name: str) -> ClusterSpec:
        return self._by_name[name]

    def link(self, a: str, b: str) -> LinkSpec:
        """The link between clusters ``a`` and ``b`` (loopback if equal)."""
        if a == b:
            return self.loopback
        key = (a, b) if (a, b) in self.links else (b, a)
        return self.links.get(key, self.default_link)

    def add_link(self, a: str, b: str, link: LinkSpec) -> None:
        """Set the link between two clusters (replaces either orientation)."""
        if a not in self._by_name or b not in self._by_name:
            raise KeyError("unknown cluster name")
        # keep one entry per unordered pair
        self.links.pop((b, a), None)
        self.links[(a, b)] = link


def pnnl_testbed() -> ClusterTopology:
    """The paper's three-cluster laboratory testbed analogue.

    Nwiceb, Catamount and Chinook joined by a 1 Gb/s-class LAN (the measured
    TCP rates in Table IV correspond to ~115 MB/s payload throughput).
    """
    clusters = [
        ClusterSpec(name="nwiceb", nodes=4, cores_per_node=8, core_gflops=9.0),
        ClusterSpec(name="catamount", nodes=8, cores_per_node=4, core_gflops=8.0),
        ClusterSpec(name="chinook", nodes=16, cores_per_node=8, core_gflops=11.0),
    ]
    topo = ClusterTopology(clusters=clusters)
    lan = LinkSpec(latency=2e-4, bandwidth=115e6)
    for a in ("nwiceb", "catamount", "chinook"):
        for b in ("nwiceb", "catamount", "chinook"):
            if a < b:
                topo.add_link(a, b, lan)
    return topo
