"""Rank-distributed preconditioned conjugate gradient over simulated MPI.

The paper's HPC state estimator (after Chen et al. [2]) solves the gain
system with a *parallel* PCG.  This module reproduces that kernel on the
cluster substrate: the matrix is split into row blocks, one simulated MPI
rank per block; each CG iteration performs

- a local sparse matvec on the owned rows (compute, charged to the rank's
  cluster core),
- an allgather of the updated solution segment (the halo exchange),
- two allreduce-style scalar reductions for the CG coefficients.

The numerics are genuinely computed per-rank (each rank only touches its
rows), so the distributed result is checked bit-for-bit against a serial
solve, while the discrete-event engine produces the parallel timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .simevent import SimEngine, Timeout
from .simmpi import SimComm
from .topology import ClusterTopology

__all__ = ["ParallelPcgResult", "simulate_parallel_pcg"]

#: seconds of simulated compute per local nonzero per iteration
_DEFAULT_FLOP_TIME = 4e-9


@dataclass
class ParallelPcgResult:
    """Distributed solve outcome with its simulated execution profile."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    sim_time: float
    bytes_communicated: float
    messages: int
    n_ranks: int


def simulate_parallel_pcg(
    A: sp.spmatrix,
    b: np.ndarray,
    blocks: list[np.ndarray],
    topology: ClusterTopology,
    placement: list[str],
    *,
    tol: float = 1e-10,
    max_iter: int | None = None,
    flop_time: float = _DEFAULT_FLOP_TIME,
) -> ParallelPcgResult:
    """Run Jacobi-PCG with one simulated rank per row block.

    Parameters
    ----------
    A, b:
        The SPD system (global).
    blocks:
        Row-index arrays, one per rank; must partition ``range(n)``.
    topology, placement:
        Cluster model and per-rank cluster names (``len == len(blocks)``).
    tol:
        Relative-residual convergence tolerance.
    flop_time:
        Simulated seconds per local nonzero per matvec.
    """
    n = A.shape[0]
    seen = np.concatenate(blocks) if blocks else np.array([], dtype=np.int64)
    if len(seen) != n or len(np.unique(seen)) != n:
        raise ValueError("blocks must partition range(n)")
    if len(placement) != len(blocks):
        raise ValueError("placement length must match block count")
    if max_iter is None:
        max_iter = 10 * n

    A = A.tocsr()
    P = len(blocks)
    diag = A.diagonal()
    if np.any(diag <= 0):
        raise ValueError("matrix has non-positive diagonal; not SPD")

    local_A = [A[blk] for blk in blocks]
    local_b = [b[blk] for blk in blocks]
    local_minv = [1.0 / diag[blk] for blk in blocks]
    local_nnz = [m.nnz for m in local_A]

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return ParallelPcgResult(
            x=np.zeros(n), converged=True, iterations=0, residual_norm=0.0,
            sim_time=0.0, bytes_communicated=0.0, messages=0, n_ranks=P,
        )

    engine = SimEngine()
    comm = SimComm(engine, topology, placement)

    # Shared solve state, assembled from per-rank segments each iteration.
    state = {
        "x": np.zeros(n),
        "p": None,
        "r": [local_b[r].copy() for r in range(P)],
        "z": None,
        "rz": 0.0,
        "iterations": 0,
        "converged": False,
        "residual": 1.0,
    }

    def rank_proc(rank: int):
        blk = blocks[rank]
        Ar = local_A[rank]
        minv = local_minv[rank]
        seg_bytes = len(blk) * 8.0

        # z0 = M^-1 r0 ; p0 = z0 (assembled via allgather of segments)
        z_loc = minv * state["r"][rank]
        rz_loc = float(state["r"][rank] @ z_loc)
        # scalar reduction for rz (8 bytes per rank)
        parts = yield from comm.allgather((rank, rz_loc, z_loc), nbytes=seg_bytes + 8,
                                          rank=rank)
        if rank == 0:
            z = np.empty(n)
            rz = 0.0
            for rr, rzl, zl in parts:
                z[blocks[rr]] = zl
                rz += rzl
            state["z"] = z
            state["p"] = z.copy()
            state["rz"] = rz
        yield from comm.barrier(rank=rank)

        for k in range(1, max_iter + 1):
            # local matvec on owned rows: q_loc = A[blk, :] @ p (global p)
            yield Timeout(local_nnz[rank] * flop_time)
            q_loc = Ar @ state["p"]
            pq_loc = float(state["p"][blk] @ q_loc)
            parts = yield from comm.allgather((rank, pq_loc, q_loc),
                                              nbytes=seg_bytes + 8, rank=rank)
            if rank == 0:
                q = np.empty(n)
                pq = 0.0
                for rr, pql, ql in parts:
                    q[blocks[rr]] = ql
                    pq += pql
                alpha = state["rz"] / pq
                state["x"] += alpha * state["p"]
                for rr in range(P):
                    state["r"][rr] = state["r"][rr] - alpha * q[blocks[rr]]
                rnorm = float(
                    np.sqrt(sum(float(s @ s) for s in state["r"]))
                )
                state["residual"] = rnorm / bnorm
                state["iterations"] = k
                if state["residual"] < tol:
                    state["converged"] = True
            yield from comm.barrier(rank=rank)
            if state["converged"]:
                return

            z_loc = minv * state["r"][rank]
            rz_loc = float(state["r"][rank] @ z_loc)
            parts = yield from comm.allgather((rank, rz_loc, z_loc),
                                              nbytes=seg_bytes + 8, rank=rank)
            if rank == 0:
                z = np.empty(n)
                rz_new = 0.0
                for rr, rzl, zl in parts:
                    z[blocks[rr]] = zl
                    rz_new += rzl
                beta = rz_new / state["rz"]
                state["p"] = z + beta * state["p"]
                state["rz"] = rz_new
            yield from comm.barrier(rank=rank)

    for r in range(P):
        engine.process(rank_proc(r), name=f"pcg-rank{r}")
    sim_time = engine.run()

    return ParallelPcgResult(
        x=state["x"].copy(),
        converged=state["converged"],
        iterations=state["iterations"],
        residual_norm=state["residual"],
        sim_time=sim_time,
        bytes_communicated=comm.stats_bytes,
        messages=comm.stats_messages,
        n_ranks=P,
    )
