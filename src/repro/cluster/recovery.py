"""Self-healing DSE: checkpointed subsystem state, leases, and failover.

The paper's architecture assumes every subsystem node survives the whole
estimation run; on a long-lived cluster a killed site would otherwise
degrade Step 2 forever — neighbours keep substituting prior boundary
values and nobody ever re-hosts the lost subsystem.  This module closes
the detect → recover loop between the PR 5 fault injector and the PR 9
health plane:

- :class:`SubsystemCheckpoint` — a compact, O(state) snapshot of one
  subsystem's Step-2 state (own-bus voltages, the extended warm start,
  the condensation linearisation point, epoch and round counters) with a
  versioned ``to_payload`` wire form.  The live runtime replicates it
  every round to the subsystem's hash-ring successor over the mux fabric
  as a ``FLAG_CHECKPOINT`` frame (mirroring the PR 9 telemetry plane).
- :class:`MembershipView` — round-based leases: a site's lease is
  renewed by the heartbeats and checkpoints it pushes *through the
  fabric* (so an in-process zombie cannot self-beat), and expires after
  ``lease_rounds`` rounds of silence.  Loss bumps a monotonic cluster
  epoch.
- :class:`RecoveryCoordinator` — the shared failover brain: ingests
  replicas, scans leases once per round (first barrier arrival wins, the
  scan is deterministic), promotes a lost site's subsystems onto the
  successor that holds their replica, rebinds ownership so publication
  sets follow the subsystem, and fences the zombie at the mux hub so a
  stale site can never corrupt a post-failover round.

Leases are counted in Step-2 *rounds*, not wall-clock seconds: the live
runtime is barrier-lockstep, so round arithmetic keeps detection and
promotion bit-for-bit replayable under the deterministic fault injector.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..middleware.hashring import ConsistentHashRing, EmptyRing
from ..middleware.message import FrameError

__all__ = [
    "SubsystemCheckpoint",
    "MembershipView",
    "RecoveryConfig",
    "RecoveryCoordinator",
    "CKPT_VERSION",
    "HEARTBEAT_SUBSYSTEM",
    "heartbeat_payload",
]

#: checkpoint payload header: version, flags, subsystem id, hosting site
#: id, cluster epoch, round (signed: -1 marks the pre-round bootstrap
#: seed), own-bus count, extended-bus count
_CKPT_HEADER = struct.Struct(">BBHHQqII")
CKPT_VERSION = 1
#: the payload carries the extended warm-start state (Step-2 ``prev2``)
_CKPT_HAS_WARM = 0x01
#: the payload carries the condensation linearisation point (``lin0``)
_CKPT_HAS_LIN = 0x02

_F8 = np.dtype(">f8")
_I8 = np.dtype(">i8")

#: sentinel ``subsystem`` id marking a header-only heartbeat frame — it
#: renews the sender's lease but carries (and replaces) no replica.
HEARTBEAT_SUBSYSTEM = 0xFFFF


def heartbeat_payload(site: int, epoch: int, rnd: int) -> bytes:
    """Header-only lease beat for ``site`` covering round ``rnd``.

    Checkpoints only reach one destination (the hash-ring successor), so
    a lease that rode exclusively on them would starve the moment that
    successor died — every site therefore also beats *all* peers each
    round with this header-only frame.  A partitioned zombie cannot deliver
    it, which is exactly what makes the lease an end-to-end liveness
    proof.
    """
    return _CKPT_HEADER.pack(
        CKPT_VERSION, 0, HEARTBEAT_SUBSYSTEM, site, epoch, rnd, 0, 0
    )


@dataclass
class SubsystemCheckpoint:
    """One subsystem's recoverable Step-2 state at the end of a round.

    ``own_ids``/``own_vm``/``own_va`` are the subsystem's own buses and
    their current voltage estimate; ``warm_vm``/``warm_va`` (optional)
    are the extended-network warm start the next round would have used;
    ``lin_vm``/``lin_va`` (optional) is the frozen condensation
    linearisation point.  Float64 state round-trips the wire bit-exactly,
    so a promoted replica's ``lin_point`` still hits the donor's
    factorisation cache — failover does not re-condense.
    """

    subsystem: int
    site: int
    epoch: int
    round: int
    own_ids: np.ndarray
    own_vm: np.ndarray
    own_va: np.ndarray
    warm_vm: np.ndarray | None = None
    warm_va: np.ndarray | None = None
    lin_vm: np.ndarray | None = None
    lin_va: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        n_own = len(self.own_ids)
        n_ext = 0 if self.warm_vm is None else len(self.warm_vm)
        n_lin = 0 if self.lin_vm is None else len(self.lin_vm)
        return _CKPT_HEADER.size + n_own * 24 + (n_ext + n_lin) * 16

    def to_payload(self) -> bytes:
        """Serialise to the compact wire form (single allocation)."""
        flags = 0
        n_ext = 0
        if self.warm_vm is not None:
            flags |= _CKPT_HAS_WARM
            n_ext = len(self.warm_vm)
        if self.lin_vm is not None:
            flags |= _CKPT_HAS_LIN
            if n_ext and len(self.lin_vm) != n_ext:
                raise FrameError("warm/lin extended lengths disagree")
            n_ext = len(self.lin_vm)
        n_own = len(self.own_ids)
        buf = bytearray(self.nbytes)
        _CKPT_HEADER.pack_into(
            buf, 0, CKPT_VERSION, flags, self.subsystem, self.site,
            self.epoch, self.round, n_own, n_ext,
        )
        off = _CKPT_HEADER.size
        for arr, dt in ((self.own_ids, _I8), (self.own_vm, _F8), (self.own_va, _F8)):
            block = np.frombuffer(buf, dtype=dt, count=n_own, offset=off)
            block[:] = arr
            off += n_own * 8
        if flags & _CKPT_HAS_WARM:
            for arr in (self.warm_vm, self.warm_va):
                block = np.frombuffer(buf, dtype=_F8, count=n_ext, offset=off)
                block[:] = arr
                off += n_ext * 8
        if flags & _CKPT_HAS_LIN:
            for arr in (self.lin_vm, self.lin_va):
                block = np.frombuffer(buf, dtype=_F8, count=n_ext, offset=off)
                block[:] = arr
                off += n_ext * 8
        return bytes(buf)

    @classmethod
    def from_payload(cls, buf) -> "SubsystemCheckpoint":
        if len(buf) < _CKPT_HEADER.size:
            raise FrameError("short checkpoint payload")
        (version, flags, subsystem, site, epoch, rnd, n_own, n_ext) = (
            _CKPT_HEADER.unpack_from(buf, 0)
        )
        if version != CKPT_VERSION:
            raise FrameError(f"unsupported checkpoint version {version}")
        need = _CKPT_HEADER.size + n_own * 24
        if flags & _CKPT_HAS_WARM:
            need += n_ext * 16
        if flags & _CKPT_HAS_LIN:
            need += n_ext * 16
        if len(buf) != need:
            raise FrameError(
                f"checkpoint length mismatch: {len(buf)} != {need}"
            )
        off = _CKPT_HEADER.size

        def take(dt, n):
            # native-endian copies: downstream math never touches the wire
            nonlocal off
            out = np.frombuffer(buf, dtype=dt, count=n, offset=off).astype(
                np.int64 if dt is _I8 else np.float64
            )
            off += n * 8
            return out

        own_ids = take(_I8, n_own)
        own_vm = take(_F8, n_own)
        own_va = take(_F8, n_own)
        warm_vm = warm_va = lin_vm = lin_va = None
        if flags & _CKPT_HAS_WARM:
            warm_vm = take(_F8, n_ext)
            warm_va = take(_F8, n_ext)
        if flags & _CKPT_HAS_LIN:
            lin_vm = take(_F8, n_ext)
            lin_va = take(_F8, n_ext)
        return cls(
            subsystem=int(subsystem), site=int(site), epoch=int(epoch),
            round=int(rnd), own_ids=own_ids, own_vm=own_vm, own_va=own_va,
            warm_vm=warm_vm, warm_va=warm_va, lin_vm=lin_vm, lin_va=lin_va,
        )


@dataclass(frozen=True)
class RecoveryConfig:
    """Tuning for the self-healing layer (off unless passed to the
    runtime).

    ``lease_rounds`` — rounds of checkpoint silence before a site is
    declared lost (round-based, so replays are deterministic).
    ``checkpoint_every`` — replicate every k-th round (1 = every round;
    the pre-round bootstrap seed always happens).
    """

    lease_rounds: int = 2
    checkpoint_every: int = 1
    vnodes: int = 64

    def __post_init__(self):
        if self.lease_rounds < 1:
            raise ValueError("lease_rounds must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


class MembershipView:
    """Round-based lease table with a monotonic cluster epoch.

    Not thread-safe on its own — the :class:`RecoveryCoordinator` owns
    the lock; the epoch fence only does atomic dict reads.
    """

    def __init__(self, sites):
        self._last: dict[str, int] = {s: -1 for s in sites}
        self._lost: dict[str, int] = {}  # site -> epoch at loss
        self.epoch = 0

    def beat(self, site: str, rnd: int) -> None:
        """Renew ``site``'s lease from a checkpoint covering round
        ``rnd`` (monotonic: stale replicas never rewind a lease)."""
        if site in self._last and rnd > self._last[site]:
            self._last[site] = rnd

    def expired(self, rnd: int, lease_rounds: int) -> list[str]:
        """Sites whose lease has lapsed as of round ``rnd``."""
        return sorted(
            s for s, last in self._last.items()
            if s not in self._lost and rnd - last > lease_rounds
        )

    def declare_lost(self, site: str) -> int:
        """Mark ``site`` lost; bumps and returns the cluster epoch."""
        if site not in self._lost:
            self.epoch += 1
            self._lost[site] = self.epoch
        return self.epoch

    def is_lost(self, site: str) -> bool:
        return site in self._lost

    def live(self) -> list[str]:
        return sorted(s for s in self._last if s not in self._lost)

    def last_seen(self, site: str) -> int:
        return self._last.get(site, -1)


@dataclass
class _Promotion:
    """A promotion the successor site picks up at its next round start."""

    checkpoint: SubsystemCheckpoint
    round: int  # round the promotion was decided


class RecoveryCoordinator:
    """Shared failover brain for one live DSE run.

    ``sites`` maps site name → wire id; ``hosted`` maps site name → the
    subsystem ids it initially hosts.  All mutation happens under one
    lock; the per-round lease scan runs exactly once (first
    :meth:`begin_round` caller wins) and depends only on round
    arithmetic, never on thread arrival order — so a seeded chaos run
    replays bit-for-bit.
    """

    def __init__(self, sites: dict[str, int], hosted: dict[str, list[int]],
                 *, config: RecoveryConfig | None = None):
        self.config = config or RecoveryConfig()
        self._ids = dict(sites)
        self._names = {i: n for n, i in sites.items()}
        self.ring = ConsistentHashRing(sorted(sites), vnodes=self.config.vnodes)
        self.membership = MembershipView(sorted(sites))
        self._site_of: dict[int, str] = {}
        for site, subs in hosted.items():
            for sub in subs:
                self._site_of[sub] = site
        self._replicas: dict[str, dict[int, SubsystemCheckpoint]] = {
            s: {} for s in sites
        }
        self._pending: dict[str, list[_Promotion]] = {}
        self._lock = threading.Lock()
        self._scanned_round = -1
        #: subsystem id -> round it was promoted (recovered)
        self.recovered: dict[int, int] = {}
        #: site names declared lost, in declaration order
        self.lost_sites: list[str] = []
        #: subsystems whose site died with no surviving replica
        self.unrecoverable: list[int] = []

    # -- read side -----------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.membership.epoch

    def site_of(self, sub: int) -> str:
        """The site currently hosting ``sub`` (rebound on promotion)."""
        return self._site_of[sub]

    def owns(self, site: str, sub: int) -> bool:
        return self._site_of.get(sub) == site

    def is_lost(self, site: str) -> bool:
        return self.membership.is_lost(site)

    def successor(self, sub: int) -> str | None:
        """The live replica target for ``sub``: the first hash-ring
        preference that is not its current host (``None`` when the ring
        has no other site)."""
        host = self._site_of.get(sub)
        try:
            candidates = self.ring.preference(("ckpt", sub))
        except EmptyRing:
            return None
        for cand in candidates:
            if cand != host:
                return cand
        return None

    def fence(self, src_id: int, epoch: int) -> bool:
        """Mux-hub epoch fence: frames from a declared-lost site are
        rejected regardless of the epoch they claim (a zombie cannot
        learn the new epoch — and must not be able to fake it)."""
        name = self._names.get(src_id)
        if name is None:
            return True
        if self.membership.is_lost(name):
            return False
        return epoch >= 0

    # -- write side ----------------------------------------------------
    def ingest(self, dst_site: str, payload) -> None:
        """Checkpoint-sink callback for ``dst_site``: store the replica
        and renew the sender's lease.  Only checkpoints that traversed
        the fabric land here, so the lease proves liveness end-to-end."""
        try:
            ckpt = (payload if isinstance(payload, SubsystemCheckpoint)
                    else SubsystemCheckpoint.from_payload(payload))
        except FrameError:
            return
        sender = self._names.get(ckpt.site)
        heartbeat = ckpt.subsystem == HEARTBEAT_SUBSYSTEM
        with self._lock:
            if sender is not None and self.membership.is_lost(sender):
                return  # belt and braces: the hub fence already drops these
            if not heartbeat:
                self._replicas.setdefault(dst_site, {})[ckpt.subsystem] = ckpt
            if sender is not None:
                self.membership.beat(sender, ckpt.round)
        if not heartbeat and obs.enabled():
            obs.metrics().counter("recovery.replicas_stored_total").inc()

    def begin_round(self, site: str, rnd: int) -> list[SubsystemCheckpoint]:
        """Round-start hook, called by every site right after the
        barrier.  The first caller for ``rnd`` runs the lease scan; the
        return value is the list of checkpoints newly promoted *onto*
        ``site`` (empty for everyone else)."""
        with self._lock:
            if rnd > self._scanned_round:
                self._scanned_round = rnd
                self._scan(rnd)
            out = self._pending.pop(site, [])
        return [p.checkpoint for p in out]

    def _scan(self, rnd: int) -> None:
        # grace: nothing can have checkpointed before the bootstrap seed
        for site in self.membership.expired(rnd, self.config.lease_rounds):
            self.membership.declare_lost(site)
            self.lost_sites.append(site)
            try:
                self.ring.remove(site)
            except Exception:  # pragma: no cover - single-site ring
                pass
            if obs.enabled():
                m = obs.metrics()
                m.counter("membership.leases_expired_total").inc()
                m.gauge("membership.epoch").set(self.membership.epoch)
                m.gauge("membership.live_sites").set(len(self.membership.live()))
            if obs.health_enabled():
                obs.health().site_lost(
                    site, round=rnd, epoch=self.membership.epoch,
                    last_seen=self.membership.last_seen(site),
                )
            for sub, owner in sorted(self._site_of.items()):
                if owner != site:
                    continue
                promoted = False
                try:
                    candidates = self.ring.preference(("ckpt", sub))
                except EmptyRing:
                    candidates = []  # every site is gone
                for cand in candidates:
                    if self.membership.is_lost(cand):
                        continue
                    ckpt = self._replicas.get(cand, {}).get(sub)
                    if ckpt is None:
                        continue
                    self._site_of[sub] = cand
                    self.recovered[sub] = rnd
                    self._pending.setdefault(cand, []).append(
                        _Promotion(checkpoint=ckpt, round=rnd)
                    )
                    promoted = True
                    if obs.enabled():
                        m = obs.metrics()
                        m.counter("recovery.promotions_total").inc()
                        m.histogram("recovery.rounds_to_recover").observe(
                            max(0, rnd - ckpt.round)
                        )
                    break
                if not promoted:
                    self.unrecoverable.append(sub)

    def snapshot(self) -> dict:
        """Diagnostic view (tests, demos, flight-recorder meta)."""
        with self._lock:
            return {
                "epoch": self.membership.epoch,
                "live": self.membership.live(),
                "lost": list(self.lost_sites),
                "recovered": dict(self.recovered),
                "unrecoverable": list(self.unrecoverable),
                "site_of": dict(self._site_of),
            }
