"""Deterministic discrete-event simulation engine.

A minimal process-oriented simulator: processes are Python generators that
yield *requests* (timeouts, events); the engine advances virtual time and
resumes them.  All ordering is deterministic — ties in time break by
scheduling sequence — so simulated experiments are exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

__all__ = ["SimEngine", "SimEvent", "Timeout", "Process"]


@dataclass(order=True)
class _ScheduledItem:
    time: float
    seq: int
    action: Callable = field(compare=False)


class SimEvent:
    """A one-shot event processes can wait on.

    ``succeed(value)`` wakes all waiters at the current simulation time and
    hands them ``value``.
    """

    def __init__(self, engine: "SimEngine"):
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.engine._schedule(0.0, proc._resume, self.value)
        self._waiters.clear()


@dataclass
class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    delay: float


class Process:
    """A running simulation process wrapping a generator.

    The generator may yield:

    - :class:`Timeout` — resume after the delay;
    - :class:`SimEvent` — resume when the event triggers (receiving its
      value);
    - ``None`` — resume immediately (a cooperative yield).

    When the generator returns, :attr:`done` becomes True and
    :attr:`result` holds its return value; processes waiting on
    :attr:`exit_event` resume.
    """

    def __init__(self, engine: "SimEngine", gen: Generator, name: str = "proc"):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.exit_event = SimEvent(engine)
        engine._schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.exit_event.succeed(stop.value)
            return
        if isinstance(request, Timeout):
            if request.delay < 0:
                raise ValueError(f"negative timeout in {self.name}")
            self.engine._schedule(request.delay, self._resume, None)
        elif isinstance(request, SimEvent):
            if request.triggered:
                self.engine._schedule(0.0, self._resume, request.value)
            else:
                request._waiters.append(self)
        elif request is None:
            self.engine._schedule(0.0, self._resume, None)
        else:
            raise TypeError(
                f"process {self.name} yielded unsupported {request!r}"
            )


class SimEngine:
    """The event loop: schedules actions in virtual time and runs to idle."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[_ScheduledItem] = []
        self._seq = 0

    def _schedule(self, delay: float, action: Callable, *args) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue,
            _ScheduledItem(self.now + delay, self._seq, lambda: action(*args)),
        )

    def schedule(self, delay: float, action: Callable, *args) -> None:
        """Run ``action(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._schedule(delay, action, *args)

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name)

    def event(self) -> SimEvent:
        """Create a fresh event."""
        return SimEvent(self)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulation time.
        """
        while self._queue:
            item = self._queue[0]
            if until is not None and item.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = item.time
            item.action()
        return self.now
