"""MPI-like message passing over the discrete-event engine.

``SimComm`` gives simulated processes the familiar rank-addressed
``send``/``recv`` plus the collectives the state-estimation code paths need
(``bcast``, ``gather``, ``allgather``, ``barrier``).  Message timing comes
from the cluster topology: rank placement decides whether a transfer rides
the loopback or an inter-cluster link.

Processes are generators; communication calls are sub-generators driven with
``yield from``:

    def worker(comm, rank):
        yield from comm.send(1, payload, nbytes=1024)
        msg = yield from comm.recv(0)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from .. import faults
from .simevent import SimEngine, SimEvent, Timeout
from .topology import ClusterTopology

__all__ = ["SimMessage", "SimComm", "SimLinkDown"]


class SimLinkDown(RuntimeError):
    """A send was attempted over a failed inter-cluster link."""


@dataclass
class SimMessage:
    """An in-flight message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: float
    sent_at: float
    arrives_at: float


class SimComm:
    """A communicator over ``size`` ranks placed onto clusters.

    Parameters
    ----------
    engine:
        The event engine.
    topology:
        Cluster/link model used for transfer times.
    placement:
        ``placement[rank]`` = cluster name for each rank.
    """

    def __init__(
        self, engine: SimEngine, topology: ClusterTopology, placement: list[str]
    ):
        self.engine = engine
        self.topology = topology
        self.placement = list(placement)
        for name in self.placement:
            topology.cluster(name)  # raises on unknown names
        self.size = len(placement)
        # mailbox[(dst, src, tag)] -> deque of messages
        self._mail: dict[tuple[int, int, int], deque[SimMessage]] = {}
        self._waiting: dict[tuple[int, int, int], deque[SimEvent]] = {}
        self.stats_bytes = 0.0
        self.stats_messages = 0
        #: inter-cluster links administratively failed via :meth:`fail_link`
        self._failed_links: set[frozenset[str]] = set()
        self.dropped_messages = 0

    # ------------------------------------------------------------------
    def fail_link(self, a: str, b: str) -> None:
        """Fail the (symmetric) inter-cluster link between clusters ``a``
        and ``b``: every later :meth:`send` crossing it raises
        :class:`SimLinkDown` until :meth:`restore_link`.  Loopback
        (``a == b``) cannot fail."""
        self.topology.cluster(a)  # raises KeyError on unknown clusters
        self.topology.cluster(b)
        if a == b:
            raise ValueError("cannot fail a cluster's loopback")
        self._failed_links.add(frozenset((a, b)))

    def restore_link(self, a: str, b: str) -> None:
        """Bring a failed link back (idempotent)."""
        self._failed_links.discard(frozenset((a, b)))

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Wire time for ``nbytes`` between two ranks' clusters."""
        link = self.topology.link(self.placement[src], self.placement[dst])
        return link.transfer_time(nbytes)

    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, *, nbytes: float, src: int | None = None,
             tag: int = 0, extra_delay: float = 0.0):
        """Non-blocking-ish send: the sender pays a small injection
        overhead; the message arrives after the link transfer time plus
        ``extra_delay`` (e.g. a middleware relay charge)."""
        if src is None:
            raise ValueError("src rank required (pass src=<rank>)")
        self._check_rank(dst)
        self._check_rank(src)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")
        csrc, cdst = self.placement[src], self.placement[dst]
        if csrc != cdst:
            if self._failed_links and frozenset((csrc, cdst)) in self._failed_links:
                raise SimLinkDown(f"link {csrc} <-> {cdst} is down")
            inj = faults.active()
            if inj is not None:
                d = inj.decide("simmpi.link", (csrc, cdst))
                if d:
                    if d.action == "fail":
                        raise SimLinkDown(
                            f"fault injection: link {csrc} <-> {cdst} failed"
                        )
                    if d.action == "drop":
                        # message silently lost on the wire; the sender
                        # still pays its injection overhead
                        self.dropped_messages += 1
                        yield Timeout(1e-6)
                        return
                    if d.action == "delay":
                        extra_delay += d.delay
        now = self.engine.now
        arrival = now + self.transfer_time(src, dst, nbytes) + extra_delay
        msg = SimMessage(src=src, dst=dst, tag=tag, payload=payload,
                         nbytes=nbytes, sent_at=now, arrives_at=arrival)
        self.stats_bytes += nbytes
        self.stats_messages += 1
        key = (dst, src, tag)
        waiters = self._waiting.get(key)
        if waiters:
            ev = waiters.popleft()
            self.engine.schedule(arrival - now, ev.succeed, msg)
        else:
            self._mail.setdefault(key, deque()).append(msg)
        # Sender-side injection overhead: copy into the NIC at link bandwidth
        # is hidden; charge a fixed per-message cost.
        yield Timeout(1e-6)

    def recv(self, src: int, *, dst: int | None = None, tag: int = 0):
        """Blocking receive from ``src``; returns the message payload."""
        if dst is None:
            raise ValueError("dst rank required (pass dst=<rank>)")
        self._check_rank(src)
        self._check_rank(dst)
        key = (dst, src, tag)
        box = self._mail.get(key)
        if box:
            msg = box.popleft()
            wait = max(0.0, msg.arrives_at - self.engine.now)
            if wait:
                yield Timeout(wait)
            return msg.payload
        ev = self.engine.event()
        self._waiting.setdefault(key, deque()).append(ev)
        msg = yield ev
        return msg.payload

    # ------------------------------------------------------------------
    def bcast(self, root: int, payload: Any, *, nbytes: float, rank: int):
        """Broadcast from ``root``; call from every rank."""
        if rank == root:
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(dst, payload, nbytes=nbytes, src=root,
                                         tag=-1)
            return payload
        return (yield from self.recv(root, dst=rank, tag=-1))

    def gather(self, root: int, payload: Any, *, nbytes: float, rank: int):
        """Gather to ``root``; returns the list at root, None elsewhere."""
        if rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = yield from self.recv(src, dst=root, tag=-2)
            return out
        yield from self.send(root, payload, nbytes=nbytes, src=rank, tag=-2)
        return None

    def allgather(self, payload: Any, *, nbytes: float, rank: int):
        """Gather to rank 0 then broadcast (simple two-phase allgather)."""
        gathered = yield from self.gather(0, payload, nbytes=nbytes, rank=rank)
        total = nbytes * self.size
        return (yield from self.bcast(0, gathered, nbytes=total, rank=rank))

    def barrier(self, *, rank: int):
        """Synchronise all ranks (token gather + broadcast)."""
        yield from self.allgather(None, nbytes=1.0, rank=rank)
