"""Compute and communication cost models.

Deterministic analytic costs used by the simulated executor:

- :class:`WlsCostModel` — time for a subsystem's WLS estimation as a
  function of bus count and Gauss-Newton iterations, the quantity the
  paper's vertex weight ``Wv = Nb × Ni`` abstracts.  Constants can be
  calibrated against the real estimator with :func:`calibrate_wls_cost`.
- :class:`MiddlewareCostModel` — transfer times with and without the
  MeDICi-style relay, reproducing the paper's observation that relay
  overhead is linear in data size with a ~0.4 GB/s relay rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .topology import LinkSpec

__all__ = ["WlsCostModel", "MiddlewareCostModel", "calibrate_wls_cost"]


@dataclass(frozen=True)
class WlsCostModel:
    """``t = iterations * (setup + per_bus * n_bus^exponent) / speed``.

    ``speed`` rescales for cluster core performance (1.0 = the calibration
    machine).  The default constants are calibrated on this repository's
    estimator (see ``calibrate_wls_cost``): per-iteration cost is dominated
    by the sparse Jacobian build + gain factorisation, close to linear in
    subsystem size at control-centre scales.
    """

    setup: float = 8e-4
    per_bus: float = 6e-5
    exponent: float = 1.1

    def iteration_time(self, n_bus: int, *, speed: float = 1.0) -> float:
        """Cost of one Gauss-Newton iteration (seconds)."""
        if n_bus < 0:
            raise ValueError("n_bus must be non-negative")
        if speed <= 0:
            raise ValueError("speed must be positive")
        return (self.setup + self.per_bus * n_bus**self.exponent) / speed

    def estimation_time(
        self, n_bus: int, iterations: float, *, speed: float = 1.0
    ) -> float:
        """Cost of a full estimation: ``iterations`` Gauss-Newton steps."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return iterations * self.iteration_time(n_bus, speed=speed)


@dataclass(frozen=True)
class MiddlewareCostModel:
    """Direct vs. through-middleware transfer times.

    Direct transfer rides the link.  The relayed transfer adds a
    store-and-forward hop through the middleware at ``relay_rate`` bytes/s
    plus a fixed pipeline cost — matching Tables III/IV where the absolute
    overhead grows linearly with data size and the relay rate is ~0.4 GB/s.
    """

    relay_rate: float = 0.4e9
    pipeline_overhead: float = 2e-3

    def direct_time(self, nbytes: float, link: LinkSpec) -> float:
        """Raw TCP-socket transfer time (the paper's T1/T3 columns)."""
        return link.transfer_time(nbytes)

    def relayed_time(self, nbytes: float, link: LinkSpec) -> float:
        """Through-middleware transfer time (the paper's T2/T4 columns).

        The payload crosses the wire and is additionally copied through the
        middleware relay.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (
            link.transfer_time(nbytes)
            + self.pipeline_overhead
            + nbytes / self.relay_rate
        )

    def overhead(self, nbytes: float, link: LinkSpec) -> float:
        """Absolute middleware overhead (T2-T1 / T4-T3 columns; Fig. 8)."""
        return self.relayed_time(nbytes, link) - self.direct_time(nbytes, link)


def calibrate_wls_cost(
    sizes=(10, 20, 40, 80),
    *,
    repeats: int = 3,
    seed: int = 0,
) -> WlsCostModel:
    """Fit :class:`WlsCostModel` constants against the real estimator.

    Runs the actual WLS estimator on synthetic grids of the given sizes and
    regresses per-iteration time on bus count (fixed exponent).  Returns a
    fitted model for *this* machine.
    """
    from ..estimation.wls import WlsEstimator
    from ..grid.cases import synthetic_grid
    from ..grid.powerflow import run_ac_power_flow
    from ..measurements.generator import generate_measurements
    from ..measurements.placement import full_placement

    xs, ys = [], []
    for n in sizes:
        net = synthetic_grid(n_areas=1, buses_per_area=int(n), seed=seed)
        pf = run_ac_power_flow(net, flat_start=True)
        rng = np.random.default_rng(seed)
        ms = generate_measurements(net, full_placement(net), pf, rng=rng)
        est = WlsEstimator(net, ms)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = est.estimate()
            dt = (time.perf_counter() - t0) / max(res.iterations, 1)
            best = min(best, dt)
        xs.append(float(n))
        ys.append(best)

    exponent = 1.1
    A = np.column_stack([np.ones(len(xs)), np.asarray(xs) ** exponent])
    coef, *_ = np.linalg.lstsq(A, np.asarray(ys), rcond=None)
    setup = max(float(coef[0]), 1e-6)
    per_bus = max(float(coef[1]), 1e-9)
    return WlsCostModel(setup=setup, per_bus=per_bus, exponent=exponent)
