"""Simulated HPC cluster substrate: event engine, topology, MPI, executors."""

from .costmodel import MiddlewareCostModel, WlsCostModel, calibrate_wls_cost
from .parallel_pcg import ParallelPcgResult, simulate_parallel_pcg
from .executor import (
    ExchangeTiming,
    MessageSpec,
    PhaseTiming,
    SimExecutor,
    TaskSpec,
    ThreadExecutor,
)
from .recovery import (
    MembershipView,
    RecoveryConfig,
    RecoveryCoordinator,
    SubsystemCheckpoint,
)
from .simevent import Process, SimEngine, SimEvent, Timeout
from .simmpi import SimComm, SimMessage
from .topology import ClusterSpec, ClusterTopology, LinkSpec, pnnl_testbed

__all__ = [
    "SimEngine",
    "SimEvent",
    "Timeout",
    "Process",
    "SimComm",
    "SimMessage",
    "ClusterSpec",
    "ClusterTopology",
    "LinkSpec",
    "pnnl_testbed",
    "WlsCostModel",
    "MiddlewareCostModel",
    "calibrate_wls_cost",
    "ParallelPcgResult",
    "simulate_parallel_pcg",
    "TaskSpec",
    "MessageSpec",
    "PhaseTiming",
    "ExchangeTiming",
    "SimExecutor",
    "ThreadExecutor",
    "SubsystemCheckpoint",
    "MembershipView",
    "RecoveryConfig",
    "RecoveryCoordinator",
]
