"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a list of :class:`FaultRule` records: each rule
names an injection *layer* (a call site in the middleware, executor or
cluster-sim code), a *match* over that layer's keys (a site name, a
``(src, dst)`` pair, a worker task index — empty matches everything), an
*action* and a firing window.  Rules are plain data — picklable,
comparable, printable — so a chaos test can log the exact plan it ran
and a failing seed is an exact regression.

Determinism
-----------
Nothing in a plan draws from a shared RNG at injection time.  Every
probabilistic decision is a pure function of ``(plan.seed, layer, key,
sequence-number)`` (see :mod:`repro.faults.injector`), and sequence
numbers are counted per ``(layer, key)`` — a stream of events that is
sequential by construction (one site's sends, one pair's forwards, one
task list's indices).  Thread interleaving *across* keys therefore cannot
change any decision: the same seed replays the same faults.

Layers
------
``transport.send``
    A framed connection's send path; key = the destination URL.
``client.dial``
    ``MWClient`` dialling a destination; key = the destination URL.
``mux.forward``
    The mux hub forwarding one frame; key = ``(src_id, dst_id)``.
``worker``
    A process-pool task; key = the task's submission index.
``simmpi.link``
    A simulated inter-cluster transfer; key = ``(src_cluster, dst_cluster)``.

Actions
-------
``drop``        silently discard the frame / message
``delay``       sleep ``rule.delay`` seconds, then proceed
``duplicate``   deliver the frame twice
``corrupt``     truncate the payload (framing stays valid; the
                application-level decode fails loudly)
``disconnect``  hard-fail the connection (``ConnectionResetError``)
``fail``        raise the layer's typed error (dial refused, link down)
``kill``        terminate the worker process mid-task
``hang``        stall the worker for ``rule.delay`` seconds
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["FaultRule", "FaultPlan", "LAYERS", "ACTIONS"]

LAYERS = (
    "transport.send",
    "client.dial",
    "mux.forward",
    "worker",
    "simmpi.link",
)

ACTIONS = (
    "drop",
    "delay",
    "duplicate",
    "corrupt",
    "disconnect",
    "fail",
    "kill",
    "hang",
)

#: actions that make sense per layer (validated when a rule is added)
_LAYER_ACTIONS = {
    "transport.send": {"drop", "delay", "duplicate", "corrupt", "disconnect"},
    "client.dial": {"fail", "delay"},
    "mux.forward": {"drop", "delay", "duplicate", "corrupt", "disconnect"},
    "worker": {"kill", "hang"},
    "simmpi.link": {"drop", "fail", "delay"},
}


@dataclass(frozen=True)
class FaultRule:
    """One fault to inject.

    Parameters
    ----------
    layer, action:
        Injection point and what to do there (see the module docstring).
    match:
        Key filter.  Keys are layer-specific: a string (URL / site name),
        an int (worker task index) or a tuple (``(src, dst)`` pair).  A
        value of ``None`` in the tuple position acts as a wildcard; an
        empty dict matches every key.  Recognised fields: ``key`` (exact
        or wildcard-tuple match).
    probability:
        Chance each matching event fires the rule (deterministic draw —
        see :class:`~repro.faults.injector.FaultInjector`).
    delay:
        Seconds for ``delay`` / ``hang`` actions.
    after:
        Skip the first ``after`` matching events at each key.
    count:
        Fire at most ``count`` times *per key* (``None`` = unlimited).
    """

    layer: str
    action: str
    match: dict = field(default_factory=dict)
    probability: float = 1.0
    delay: float = 0.0
    after: int = 0
    count: int | None = None

    def __post_init__(self):
        if self.layer not in LAYERS:
            raise ValueError(f"unknown fault layer {self.layer!r}; one of {LAYERS}")
        if self.action not in _LAYER_ACTIONS[self.layer]:
            raise ValueError(
                f"action {self.action!r} is not valid for layer {self.layer!r} "
                f"(valid: {sorted(_LAYER_ACTIONS[self.layer])})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None)")

    # ------------------------------------------------------------------
    def matches(self, key) -> bool:
        """Whether this rule applies to an event at ``key``."""
        want = self.match.get("key")
        if want is None:
            return True
        if isinstance(want, tuple) and isinstance(key, tuple):
            if len(want) != len(key):
                return False
            return all(w is None or w == k for w, k in zip(want, key))
        return want == key


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded collection of fault rules.

    ``seed`` anchors every probabilistic decision; two injectors built
    from equal plans replay the same faults against the same workload.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return replace(self, rules=self.rules + (rule,))

    def add(self, layer: str, action: str, **kwargs) -> "FaultPlan":
        """Convenience: ``plan.add("mux.forward", "drop", key=(1, 2))``.

        ``key`` lands in the rule's ``match``; everything else is passed
        through to :class:`FaultRule`.
        """
        match = {}
        if "key" in kwargs:
            match["key"] = kwargs.pop("key")
        return self.with_rule(
            FaultRule(layer=layer, action=action, match=match, **kwargs)
        )

    def for_layer(self, layer: str) -> tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.layer == layer)

    @property
    def layers(self) -> frozenset:
        return frozenset(r.layer for r in self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        layers=("transport.send", "mux.forward"),
        n_rules: int = 3,
        max_probability: float = 0.3,
        max_delay: float = 0.005,
        allow_disconnect: bool = True,
    ) -> "FaultPlan":
        """Generate a random (but fully seed-determined) chaos plan.

        Used by the chaos-fuzz tests: every run logs its seed, and
        re-running with that seed rebuilds the exact plan.  Actions are
        drawn from the layer's valid set (``kill``/``hang`` excluded from
        transport layers by construction; ``disconnect`` optionally).
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        rules: list[FaultRule] = []
        for _ in range(n_rules):
            layer = str(rng.choice(list(layers)))
            actions = sorted(_LAYER_ACTIONS[layer])
            if not allow_disconnect and "disconnect" in actions:
                actions.remove("disconnect")
            action = str(rng.choice(actions))
            rules.append(
                FaultRule(
                    layer=layer,
                    action=action,
                    probability=float(rng.uniform(0.02, max_probability)),
                    delay=float(rng.uniform(0.0, max_delay))
                    if action in ("delay", "hang")
                    else 0.0,
                )
            )
        return cls(seed=seed, rules=tuple(rules))
