"""Deterministic fault injection at runtime.

A :class:`FaultInjector` is consulted from the instrumented call sites
(transport sends, client dials, mux forwards, pool task submission,
simulated link transfers).  Each call site asks :meth:`decide` with its
layer and key; the injector returns the :class:`Decision` to apply —
``NO_FAULT`` almost always — and the call site acts on it.

Determinism: the ``(layer, key)`` pair indexes a private event counter,
and each probabilistic draw is ``blake2b(seed, layer, key, seq)`` mapped
to ``[0, 1)``.  Counters advance only on matching events, events at one
key are sequential by construction (one connection's sends, one pair's
forwards), so the same seed over the same workload fires the same
faults — regardless of thread scheduling across keys.

The injector is installed process-wide with :func:`repro.faults.install`
(or the :func:`repro.faults.injection` context manager); when nothing is
installed the instrumented sites cost one ``is None`` check.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass

from .plan import FaultPlan, FaultRule

__all__ = ["Decision", "NO_FAULT", "FaultInjector"]


@dataclass(frozen=True)
class Decision:
    """What an instrumented call site should do for one event."""

    action: str | None = None  # None = proceed normally
    delay: float = 0.0
    rule: FaultRule | None = None

    def __bool__(self) -> bool:
        return self.action is not None


#: the universal fast path: proceed normally
NO_FAULT = Decision()

_U64 = struct.Struct(">Q")
_DENOM = float(1 << 64)


def _draw(seed: int, layer: str, key, seq: int, rule_idx: int) -> float:
    """Pure uniform [0, 1) draw for one (event, rule) pair."""
    h = hashlib.blake2b(digest_size=8)
    h.update(_U64.pack(seed & 0xFFFFFFFFFFFFFFFF))
    h.update(layer.encode())
    h.update(repr(key).encode())
    h.update(_U64.pack(seq))
    h.update(_U64.pack(rule_idx))
    return _U64.unpack(h.digest())[0] / _DENOM


class FaultInjector:
    """Evaluates a :class:`~repro.faults.plan.FaultPlan` against events.

    Thread-safe; cheap when a layer has no rules (one dict lookup).  The
    injector records every fired fault in :attr:`fired` — ``(layer, key,
    action)`` counts — so a chaos test can assert exactly which faults a
    seed produced, and the observability layer (when enabled) mirrors
    them as ``faults.injected_total`` counters.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        # rules pre-bucketed by layer, with their global index (the index
        # feeds the deterministic draw so stacked rules draw independently)
        self._by_layer: dict[str, list[tuple[int, FaultRule]]] = {}
        for idx, rule in enumerate(plan.rules):
            self._by_layer.setdefault(rule.layer, []).append((idx, rule))
        self._lock = threading.Lock()
        self._seq: dict[tuple, int] = {}
        self._fires: dict[tuple, int] = {}  # (layer, key, rule_idx) -> fires
        self.fired: dict[tuple, int] = {}  # (layer, key, action) -> count

    # ------------------------------------------------------------------
    def decide(self, layer: str, key) -> Decision:
        """The decision for one event at ``(layer, key)``.

        Rules are evaluated in plan order; the first that matches, is
        inside its firing window and wins its probability draw fires.
        """
        rules = self._by_layer.get(layer)
        if not rules:
            return NO_FAULT
        with self._lock:
            ckey = (layer, key)
            seq = self._seq.get(ckey, 0)
            self._seq[ckey] = seq + 1
            for idx, rule in rules:
                if not rule.matches(key):
                    continue
                if seq < rule.after:
                    continue
                fkey = (layer, key, idx)
                if rule.count is not None and self._fires.get(fkey, 0) >= rule.count:
                    continue
                if rule.probability < 1.0:
                    if _draw(self.plan.seed, layer, key, seq, idx) >= rule.probability:
                        continue
                self._fires[fkey] = self._fires.get(fkey, 0) + 1
                akey = (layer, key, rule.action)
                self.fired[akey] = self.fired.get(akey, 0) + 1
                self._record(layer, rule.action)
                return Decision(action=rule.action, delay=rule.delay, rule=rule)
        return NO_FAULT

    @staticmethod
    def _record(layer: str, action: str) -> None:
        from .. import obs

        if obs.enabled():
            obs.metrics().counter(
                "faults.injected_total", layer=layer, action=action
            ).inc()

    # ------------------------------------------------------------------
    def total_fired(self, layer: str | None = None) -> int:
        with self._lock:
            return sum(
                n for (lyr, _key, _act), n in self.fired.items()
                if layer is None or lyr == layer
            )

    def fired_summary(self) -> dict[tuple, int]:
        """Snapshot of ``(layer, key, action) -> count`` (stable, for
        replay assertions)."""
        with self._lock:
            return dict(self.fired)

    def reset(self) -> None:
        """Forget all counters: the next run replays the plan from the
        start (the mechanism behind exact chaos regressions)."""
        with self._lock:
            self._seq.clear()
            self._fires.clear()
            self.fired.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(seed={self.plan.seed}, rules={len(self.plan)}, "
            f"fired={self.total_fired()})"
        )
