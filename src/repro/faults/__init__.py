"""repro.faults — system-wide deterministic fault injection.

The fault-tolerance layer has two halves; this package is the first:
a seeded, replayable chaos harness for the distributed estimation stack.
The second half — the mechanisms that survive the chaos (typed
middleware errors with retry/backoff, receive deadlines and degraded
Step-2 rounds, supervised process pools, serving deadlines) — lives in
the subsystems themselves and is exercised by the plans built here.

Usage::

    from repro import faults

    plan = (faults.FaultPlan(seed=7)
            .add("mux.forward", "drop", key=(1, 2), probability=0.5)
            .add("worker", "kill", key=3, count=1))
    with faults.injection(plan) as inj:
        ...run the workload...
    print(inj.fired_summary())     # exactly reproducible per seed

Everything is **off by default**: with no injector installed every
instrumented call site costs a single ``is None`` check (gated ≤ 5% on
the live IEEE-118 frame by ``benchmarks/bench_fault_overhead.py``), and
outputs are bit-identical to an uninstrumented build.

Injection layers, actions and the determinism contract are documented in
:mod:`repro.faults.plan` / :mod:`repro.faults.injector`, and the operator
view (taxonomy, knobs, chaos-test recipe) in ``docs/faults.md``.
"""

from __future__ import annotations

import contextlib

from .injector import Decision, FaultInjector, NO_FAULT
from .plan import ACTIONS, LAYERS, FaultPlan, FaultRule

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "Decision",
    "NO_FAULT",
    "LAYERS",
    "ACTIONS",
    "install",
    "uninstall",
    "active",
    "injection",
]

#: the process-wide injector; ``None`` keeps every call site on its fast
#: path (module attribute read + identity check, nothing else)
_ACTIVE: FaultInjector | None = None


def install(target: "FaultInjector | FaultPlan") -> FaultInjector:
    """Install a fault injector (or a plan, wrapped on the fly) process-
    wide; returns the injector.  Replaces any previous one."""
    global _ACTIVE
    if isinstance(target, FaultPlan):
        target = FaultInjector(target)
    _ACTIVE = target
    return target


def uninstall() -> None:
    """Remove the installed injector (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    """The installed injector, or ``None`` — the hot-path guard every
    instrumented site calls."""
    return _ACTIVE


@contextlib.contextmanager
def injection(target: "FaultInjector | FaultPlan"):
    """Scoped installation::

        with faults.injection(plan) as inj:
            ...chaos...

    Restores the previously installed injector (usually ``None``) on
    exit, even when the workload raises.
    """
    global _ACTIVE
    prev = _ACTIVE
    inj = install(target)
    try:
        yield inj
    finally:
        _ACTIVE = prev
