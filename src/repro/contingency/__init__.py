"""Contingency analysis: N-1 screening and parallel execution.

The downstream application motivating real-time state estimation (paper,
section I), including the counter-based dynamic load balancing of the
paper's HPC reference (Chen et al. [2]).
"""

from .analysis import ContingencyAnalyzer, ContingencyResult, Violation
from .parallel import (
    ParallelAnalysisReport,
    run_parallel,
    run_parallel_threads,
    simulate_parallel_analysis,
)
from .screening import Contingency, apply_outage, enumerate_n1

__all__ = [
    "Contingency",
    "enumerate_n1",
    "apply_outage",
    "ContingencyAnalyzer",
    "ContingencyResult",
    "Violation",
    "ParallelAnalysisReport",
    "run_parallel",
    "run_parallel_threads",
    "simulate_parallel_analysis",
]
