"""Post-contingency power flow analysis and violation screening.

Each contingency is evaluated by re-solving the power flow with the branch
out and comparing post-contingency branch loadings against ratings.  The
bundled IEEE cases carry no thermal ratings, so ratings default to a margin
above the base-case flow (`rating_margin`), which is the standard trick for
screening studies on rating-free test systems.

``analyze_from_estimate`` ties the module to the paper's pipeline: the
*estimated* state (not raw telemetry) seeds the loading baseline, which is
exactly why state estimation must finish in real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..estimation.results import EstimationResult
from ..grid.delta import NetworkDelta
from ..grid.network import Network
from ..grid.powerflow import (
    DcCompensationSolver,
    PowerFlowError,
    run_ac_power_flow,
    run_dc_power_flow,
)
from .screening import Contingency, apply_outage, outage_delta

__all__ = ["Violation", "ContingencyResult", "ContingencyAnalyzer"]


@dataclass(frozen=True)
class Violation:
    """A post-contingency branch overload."""

    branch: int
    flow: float
    rating: float

    @property
    def loading(self) -> float:
        """Loading as a fraction of the rating (> 1 means overload)."""
        return abs(self.flow) / self.rating


@dataclass
class ContingencyResult:
    """Outcome of analysing one contingency."""

    contingency: Contingency
    converged: bool
    violations: list[Violation] = field(default_factory=list)
    max_loading: float = 0.0
    iterations: int = 0

    @property
    def secure(self) -> bool:
        """True when the outage causes no overloads and the PF converged."""
        return self.converged and not self.violations


class ContingencyAnalyzer:
    """N-1 analysis against ratings derived from a base operating point.

    Parameters
    ----------
    net:
        The monitored network.
    ratings:
        Per-branch MVA-class ratings in per-unit; derived from the base
        case when omitted.
    rating_margin:
        Ratings default to ``max(rating_floor, margin * |base flow|)``.
    method:
        ``"dc"`` (fast screening) or ``"ac"`` (full Newton re-solve).
    """

    def __init__(
        self,
        net: Network,
        *,
        ratings: np.ndarray | None = None,
        rating_margin: float = 1.3,
        rating_floor: float = 0.2,
        method: str = "dc",
    ):
        if method not in ("dc", "ac"):
            raise ValueError("method must be 'dc' or 'ac'")
        self.net = net
        self.method = method
        base = run_dc_power_flow(net) if method == "dc" else run_ac_power_flow(net)
        self.base = base
        if ratings is None:
            ratings = np.maximum(rating_floor, rating_margin * np.abs(base.Pf))
        self.ratings = np.asarray(ratings, dtype=float)
        if len(self.ratings) != net.n_branch:
            raise ValueError("ratings length mismatch")

    # ------------------------------------------------------------------
    def _screen(
        self, contingency: Contingency, pf, live: np.ndarray
    ) -> ContingencyResult:
        """Screen one solved post-contingency flow state for overloads."""
        signed = pf.Pf[live]
        flows = np.abs(signed)
        rate = self.ratings[live]
        # Single fancy-index pass over the overloaded rows; ``tolist``
        # yields python scalars directly instead of per-element casts.
        over = np.flatnonzero(flows > rate)
        violations = [
            Violation(branch=b, flow=f, rating=r)
            for b, f, r in zip(
                live[over].tolist(), signed[over].tolist(), rate[over].tolist()
            )
        ]
        max_loading = float((flows / rate).max()) if len(live) else 0.0
        return ContingencyResult(
            contingency=contingency,
            converged=True,
            violations=violations,
            max_loading=max_loading,
            iterations=pf.iterations,
        )

    def analyze(self, contingency: Contingency) -> ContingencyResult:
        """Re-solve with the branch out and screen for overloads."""
        outaged = apply_outage(self.net, contingency)
        try:
            if self.method == "dc":
                pf = run_dc_power_flow(outaged)
            else:
                pf = run_ac_power_flow(outaged)
        except PowerFlowError:
            return ContingencyResult(contingency=contingency, converged=False)
        return self._screen(contingency, pf, outaged.live_branches())

    # ------------------------------------------------------------------
    def analyze_batch(
        self, contingencies: list[Contingency]
    ) -> list[ContingencyResult]:
        """Analyse a whole contingency list with one batched solve.

        With ``method="dc"`` the sweep runs through a cached
        :class:`~repro.grid.powerflow.DcCompensationSolver`: the base
        susceptance matrix is factored once (and reused across calls on
        this analyzer) and every outage is a rank-1 compensation against
        that factorization — one batched solve instead of N matrix
        rebuilds.  Results match :meth:`analyze` per contingency to
        floating-point round-off; a flow sitting *exactly* on its rating
        can therefore flip in or out of the violation list (the screening
        comparison is strict).  Outages the compensation flags as singular
        (islanding) come back ``converged=False``.  ``"ac"`` has no
        batched kernel and falls back to the per-contingency loop.
        """
        if self.method != "dc":
            return [self.analyze(c) for c in contingencies]
        solver = getattr(self, "_dc_solver", None)
        if solver is None:
            solver = self._dc_solver = DcCompensationSolver(self.net)
        deltas = [outage_delta(c) for c in contingencies]
        flows = solver.solve(deltas)
        out: list[ContingencyResult] = []
        for c, d, pf in zip(contingencies, deltas, flows):
            if not pf.converged:
                out.append(ContingencyResult(contingency=c, converged=False))
                continue
            live = np.flatnonzero(d.branch_status_of(self.net) > 0)
            out.append(self._screen(c, pf, live))
        return out

    def analyze_all(
        self,
        contingencies: list[Contingency],
        *,
        executor=None,
        batch: bool = False,
    ) -> list[ContingencyResult]:
        """Analyse a contingency list through the shared fan-out path.

        ``executor`` takes any :func:`repro.parallel.make_executor` spec
        (``None``/``"serial"``, ``"threads[:N]"``, ``"processes[:N]"``, an
        int worker count, or an executor instance); the default runs
        serially.  Serial and parallel execution share one code path
        (:func:`repro.contingency.parallel.run_parallel`), so results are
        identical across backends.  ``batch=True`` drains the whole list
        through :meth:`analyze_batch` (one batched solve, no executor
        fan-out).
        """
        from ..parallel import make_executor
        from .parallel import run_parallel

        report = run_parallel(
            self,
            contingencies,
            executor=make_executor(executor) if not batch else None,
            scheme="dynamic",
            batch=batch,
        )
        return report.results

    # ------------------------------------------------------------------
    @classmethod
    def from_estimate(
        cls,
        net: Network,
        estimate: EstimationResult,
        **kwargs,
    ) -> "ContingencyAnalyzer":
        """Build the analyzer around an *estimated* operating point.

        The estimated voltages seed the stored profile, so the base-case
        flows (and hence derived ratings) reflect what the estimator — not
        an oracle — believes the system is doing.  The seeded network is a
        copy-on-write fork of ``net`` (only the voltage-profile columns are
        new arrays).
        """
        seeded = net.fork(
            NetworkDelta.v0_seed(Vm=estimate.Vm, Va=estimate.Va, label="estimate")
        )
        return cls(seeded, **kwargs)
