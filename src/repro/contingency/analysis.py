"""Post-contingency power flow analysis and violation screening.

Each contingency is evaluated by re-solving the power flow with the branch
out and comparing post-contingency branch loadings against ratings.  The
bundled IEEE cases carry no thermal ratings, so ratings default to a margin
above the base-case flow (`rating_margin`), which is the standard trick for
screening studies on rating-free test systems.

``analyze_from_estimate`` ties the module to the paper's pipeline: the
*estimated* state (not raw telemetry) seeds the loading baseline, which is
exactly why state estimation must finish in real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..estimation.results import EstimationResult
from ..grid.network import Network
from ..grid.powerflow import PowerFlowError, run_ac_power_flow, run_dc_power_flow
from .screening import Contingency, apply_outage

__all__ = ["Violation", "ContingencyResult", "ContingencyAnalyzer"]


@dataclass(frozen=True)
class Violation:
    """A post-contingency branch overload."""

    branch: int
    flow: float
    rating: float

    @property
    def loading(self) -> float:
        """Loading as a fraction of the rating (> 1 means overload)."""
        return abs(self.flow) / self.rating


@dataclass
class ContingencyResult:
    """Outcome of analysing one contingency."""

    contingency: Contingency
    converged: bool
    violations: list[Violation] = field(default_factory=list)
    max_loading: float = 0.0
    iterations: int = 0

    @property
    def secure(self) -> bool:
        """True when the outage causes no overloads and the PF converged."""
        return self.converged and not self.violations


class ContingencyAnalyzer:
    """N-1 analysis against ratings derived from a base operating point.

    Parameters
    ----------
    net:
        The monitored network.
    ratings:
        Per-branch MVA-class ratings in per-unit; derived from the base
        case when omitted.
    rating_margin:
        Ratings default to ``max(rating_floor, margin * |base flow|)``.
    method:
        ``"dc"`` (fast screening) or ``"ac"`` (full Newton re-solve).
    """

    def __init__(
        self,
        net: Network,
        *,
        ratings: np.ndarray | None = None,
        rating_margin: float = 1.3,
        rating_floor: float = 0.2,
        method: str = "dc",
    ):
        if method not in ("dc", "ac"):
            raise ValueError("method must be 'dc' or 'ac'")
        self.net = net
        self.method = method
        base = run_dc_power_flow(net) if method == "dc" else run_ac_power_flow(net)
        self.base = base
        if ratings is None:
            ratings = np.maximum(rating_floor, rating_margin * np.abs(base.Pf))
        self.ratings = np.asarray(ratings, dtype=float)
        if len(self.ratings) != net.n_branch:
            raise ValueError("ratings length mismatch")

    # ------------------------------------------------------------------
    def analyze(self, contingency: Contingency) -> ContingencyResult:
        """Re-solve with the branch out and screen for overloads."""
        outaged = apply_outage(self.net, contingency)
        try:
            if self.method == "dc":
                pf = run_dc_power_flow(outaged)
            else:
                pf = run_ac_power_flow(outaged)
        except PowerFlowError:
            return ContingencyResult(contingency=contingency, converged=False)

        live = outaged.live_branches()
        signed = pf.Pf[live]
        flows = np.abs(signed)
        rate = self.ratings[live]
        # Single fancy-index pass over the overloaded rows; ``tolist``
        # yields python scalars directly instead of per-element casts.
        over = np.flatnonzero(flows > rate)
        violations = [
            Violation(branch=b, flow=f, rating=r)
            for b, f, r in zip(
                live[over].tolist(), signed[over].tolist(), rate[over].tolist()
            )
        ]
        max_loading = float((flows / rate).max()) if len(live) else 0.0
        return ContingencyResult(
            contingency=contingency,
            converged=True,
            violations=violations,
            max_loading=max_loading,
            iterations=pf.iterations,
        )

    def analyze_all(
        self,
        contingencies: list[Contingency],
        *,
        executor=None,
    ) -> list[ContingencyResult]:
        """Analyse a contingency list through the shared fan-out path.

        ``executor`` takes any :func:`repro.parallel.make_executor` spec
        (``None``/``"serial"``, ``"threads[:N]"``, ``"processes[:N]"``, an
        int worker count, or an executor instance); the default runs
        serially.  Serial and parallel execution share one code path
        (:func:`repro.contingency.parallel.run_parallel`), so results are
        identical across backends.
        """
        from ..parallel import make_executor
        from .parallel import run_parallel

        report = run_parallel(
            self, contingencies, executor=make_executor(executor), scheme="dynamic"
        )
        return report.results

    # ------------------------------------------------------------------
    @classmethod
    def from_estimate(
        cls,
        net: Network,
        estimate: EstimationResult,
        **kwargs,
    ) -> "ContingencyAnalyzer":
        """Build the analyzer around an *estimated* operating point.

        The estimated voltages seed the stored profile, so the base-case
        flows (and hence derived ratings) reflect what the estimator — not
        an oracle — believes the system is doing.
        """
        seeded = net.copy()
        seeded.Vm0 = estimate.Vm.copy()
        seeded.Va0 = estimate.Va.copy()
        return cls(seeded, **kwargs)
