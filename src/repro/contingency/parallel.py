"""Parallel contingency analysis with counter-based dynamic load balancing.

The paper's HPC lineage (its reference [2], Chen, Huang &
Chavarría-Miranda) evaluates *counter-based dynamic load balancing* for
massive contingency analysis: instead of pre-assigning an equal share of
contingencies to each processor (static), every processor atomically
increments a shared counter to grab the next case when it becomes free, so
variable per-case solve times cannot starve or overload anyone.

Both schemes are provided on two fabrics:

- real threads (:func:`run_parallel_threads`) with a lock-protected counter;
- the simulated testbed (:func:`simulate_parallel_analysis`), where per-case
  durations are replayed on cluster cores in virtual time, letting the
  static/dynamic makespan gap be measured deterministically.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..cluster.simevent import SimEngine, Timeout
from ..cluster.topology import ClusterTopology
from ..parallel import (
    SubsystemExecutor,
    ThreadPoolBackend,
    chunked,
    make_executor,
    worker_context,
)
from .analysis import ContingencyAnalyzer, ContingencyResult
from .screening import Contingency

__all__ = [
    "ParallelAnalysisReport",
    "run_parallel",
    "run_parallel_threads",
    "simulate_parallel_analysis",
]


@dataclass
class ParallelAnalysisReport:
    """Results plus the load-balance profile of a parallel run."""

    results: list[ContingencyResult]
    per_worker_cases: list[int]
    per_worker_busy: list[float]
    makespan: float
    scheme: str

    @property
    def imbalance(self) -> float:
        """max busy time / mean busy time (1.0 = perfectly balanced)."""
        busy = np.asarray(self.per_worker_busy)
        if busy.size == 0 or busy.mean() == 0:
            return 1.0
        return float(busy.max() / busy.mean())


# ---------------------------------------------------------------------------
# Process-pool worker side: the analyzer (network, ratings, base flows) is
# shipped once per worker by the pool initializer; tasks then carry only the
# contingency record (an outage index + label) — compact task framing.
# ---------------------------------------------------------------------------

_ANALYZER_TOKENS = itertools.count()


def _analyzer_state(payload):
    return payload


def _analyze_task(args):
    key, i, contingency = args
    analyzer = worker_context(key)
    t0 = time.perf_counter()
    res = analyzer.analyze(contingency)
    return i, res, time.perf_counter() - t0


def _analyze_chunk_task(args):
    key, jobs = args
    analyzer = worker_context(key)
    out = []
    for i, contingency in jobs:
        t0 = time.perf_counter()
        res = analyzer.analyze(contingency)
        out.append((i, res, time.perf_counter() - t0))
    return out


def _analyzer_token(analyzer: ContingencyAnalyzer) -> str:
    """Stable per-analyzer context key (stamped on first parallel use)."""
    token = getattr(analyzer, "_pool_token", None)
    if token is None:
        token = f"contingency:{next(_ANALYZER_TOKENS)}"
        analyzer._pool_token = token
    return token


def run_parallel(
    analyzer: ContingencyAnalyzer,
    contingencies: list[Contingency],
    *,
    executor: "SubsystemExecutor | str | int | None" = None,
    n_workers: int = 4,
    scheme: str = "dynamic",
    batch: bool = False,
) -> ParallelAnalysisReport:
    """Analyse contingencies through any executor backend.

    ``scheme="static"`` pre-splits the list into equal round-robin chunks,
    one per worker; ``scheme="dynamic"`` submits every case individually to
    the pool's shared work queue (the counter-based scheme: a free worker
    grabs the next case).  ``executor`` accepts any
    :func:`repro.parallel.make_executor` spec or an existing executor (to
    share a pool with the DSE session or the scenario service); when
    omitted, a :class:`ThreadPoolBackend` with ``n_workers`` threads is
    created for the call.  With a
    :class:`~repro.parallel.ProcessPoolBackend`, the analyzer ships to each
    worker once (pool initializer) and every task carries only the
    contingency record, so the workers stay warm across sweeps.

    ``batch=True`` skips the executor fan-out entirely and drains the list
    through :meth:`ContingencyAnalyzer.analyze_batch` — one batched
    (compensation-based) solve on the calling thread.  The report then
    carries ``scheme="batch"`` with a single synthetic worker.
    """
    if batch:
        t0 = time.perf_counter()
        results_b = analyzer.analyze_batch(contingencies)
        makespan = time.perf_counter() - t0
        return ParallelAnalysisReport(
            results=results_b,
            per_worker_cases=[len(results_b)],
            per_worker_busy=[makespan],
            makespan=makespan,
            scheme="batch",
        )
    if scheme not in ("static", "dynamic"):
        raise ValueError("scheme must be 'static' or 'dynamic'")
    own_pool = executor is None or isinstance(executor, (str, int))
    if executor is None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        executor = ThreadPoolBackend(n_workers)
    else:
        executor = make_executor(executor)
        n_workers = executor.n_workers

    n = len(contingencies)
    results: list[ContingencyResult | None] = [None] * n

    t0 = time.perf_counter()
    try:
        if getattr(executor, "distributed", False):
            cases, busy = _run_process_pool(
                analyzer, contingencies, executor, scheme, results
            )
        else:
            cases, busy = _run_shared_memory(
                analyzer, contingencies, executor, scheme, results
            )
    finally:
        if own_pool:
            executor.shutdown()
    makespan = time.perf_counter() - t0

    return ParallelAnalysisReport(
        results=[r for r in results if r is not None],
        per_worker_cases=cases,
        per_worker_busy=busy,
        makespan=makespan,
        scheme=scheme,
    )


def _run_shared_memory(analyzer, contingencies, executor, scheme, results):
    """Thread/serial fabric: closures write results in place; the pool's
    shared queue provides the counter-based dynamic balancing."""
    n = len(contingencies)
    n_workers = executor.n_workers
    cases = [0] * n_workers
    busy = [0.0] * n_workers
    lock = threading.Lock()

    def run_case(i: int) -> None:
        w = executor.worker_index()
        t0 = time.perf_counter()
        results[i] = analyzer.analyze(contingencies[i])
        dt = time.perf_counter() - t0
        with lock:
            busy[w] += dt
            cases[w] += 1

    def run_chunk(job: tuple[int, list[int]]) -> None:
        w, idxs = job
        for i in idxs:
            t0 = time.perf_counter()
            results[i] = analyzer.analyze(contingencies[i])
            dt = time.perf_counter() - t0
            with lock:
                busy[w] += dt
                cases[w] += 1

    if scheme == "dynamic":
        executor.map(run_case, range(n))
    else:
        executor.map(run_chunk, list(enumerate(chunked(range(n), n_workers))))
    return cases, busy


def _run_process_pool(analyzer, contingencies, executor, scheme, results):
    """Process fabric: warm analyzer per worker, compact per-case payloads,
    pid-densified per-worker accounting."""
    n = len(contingencies)
    n_workers = executor.n_workers
    cases = [0] * n_workers
    busy = [0.0] * n_workers
    key = _analyzer_token(analyzer)
    executor.initialize(key, _analyzer_state, analyzer)

    if scheme == "dynamic":
        items = [(key, i, c) for i, c in enumerate(contingencies)]
        outs, pids = executor.map_with_pids(_analyze_task, items)
        flat = [(out, pid) for out, pid in zip(outs, pids)]
    else:
        jobs = chunked(list(enumerate(contingencies)), n_workers)
        outs, pids = executor.map_with_pids(
            _analyze_chunk_task, [(key, chunk) for chunk in jobs]
        )
        flat = [(rec, pid) for out, pid in zip(outs, pids) for rec in out]

    widx: dict[int, int] = {}
    for (i, res, dt), pid in flat:
        w = widx.setdefault(pid, len(widx) % n_workers)
        results[i] = res
        busy[w] += dt
        cases[w] += 1
    return cases, busy


def run_parallel_threads(
    analyzer: ContingencyAnalyzer,
    contingencies: list[Contingency],
    *,
    n_workers: int = 4,
    scheme: str = "dynamic",
    executor: SubsystemExecutor | None = None,
) -> ParallelAnalysisReport:
    """Back-compat wrapper over :func:`run_parallel` (thread default)."""
    return run_parallel(
        analyzer,
        contingencies,
        executor=executor,
        n_workers=n_workers,
        scheme=scheme,
    )


def simulate_parallel_analysis(
    durations: np.ndarray,
    topology: ClusterTopology,
    *,
    scheme: str = "dynamic",
    counter_overhead: float = 2e-5,
) -> ParallelAnalysisReport:
    """Replay per-case durations on the simulated testbed cores.

    Workers are the topology's cores (one simulated process per core).
    ``counter_overhead`` charges the shared-counter access in the dynamic
    scheme (Chen et al. report it is negligible against the solve times).
    """
    if scheme not in ("static", "dynamic"):
        raise ValueError("scheme must be 'static' or 'dynamic'")
    durations = np.asarray(durations, dtype=float)
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    n = len(durations)
    n_workers = sum(c.total_cores for c in topology.clusters)

    engine = SimEngine()
    cases = [0] * n_workers
    busy = [0.0] * n_workers
    counter = {"next": 0}

    def dynamic_worker(w: int):
        while True:
            i = counter["next"]
            if i >= n:
                return
            counter["next"] = i + 1
            yield Timeout(counter_overhead + durations[i])
            busy[w] += durations[i]
            cases[w] += 1

    def static_worker(w: int):
        for i in range(w, n, n_workers):
            yield Timeout(durations[i])
            busy[w] += durations[i]
            cases[w] += 1

    gen = dynamic_worker if scheme == "dynamic" else static_worker
    for w in range(n_workers):
        engine.process(gen(w), name=f"worker{w}")
    makespan = engine.run()

    return ParallelAnalysisReport(
        results=[],
        per_worker_cases=cases,
        per_worker_busy=busy,
        makespan=makespan,
        scheme=scheme,
    )
