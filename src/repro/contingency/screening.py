"""Contingency definition and N-1 enumeration.

State estimation exists to feed operational tools; the first of them in the
paper's list is contingency analysis.  A contingency here is a single
branch outage (N-1); enumeration skips outages that would island the
network (they need special handling, reported separately).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.delta import NetworkDelta
from ..grid.network import Network

__all__ = ["Contingency", "enumerate_n1", "apply_outage", "outage_delta"]


@dataclass(frozen=True)
class Contingency:
    """A single-branch outage."""

    branch: int
    label: str

    def __post_init__(self) -> None:
        if self.branch < 0:
            raise ValueError("branch index must be non-negative")


def enumerate_n1(net: Network) -> tuple[list[Contingency], list[Contingency]]:
    """All single-branch outages, split into (safe, islanding).

    A "safe" outage leaves the network connected; an "islanding" outage
    disconnects it (radial branches).  Parallel circuits are safe by
    construction since the twin stays in service.
    """
    live = net.live_branches()
    pairs = net.adjacency_pairs()
    all_buses = np.arange(net.n_bus)

    # Count live branches per unordered pair to spot parallel circuits.
    key = {}
    for k in live:
        a, b = int(net.f[k]), int(net.t[k])
        key[(min(a, b), max(a, b))] = key.get((min(a, b), max(a, b)), 0) + 1

    # Bridges of the pair graph: removal disconnects.
    bridges = _bridges(net.n_bus, pairs)

    safe: list[Contingency] = []
    islanding: list[Contingency] = []
    for k in live:
        a, b = int(net.f[k]), int(net.t[k])
        pair = (min(a, b), max(a, b))
        c = Contingency(
            branch=int(k),
            label=f"{net.bus_ids[a]}-{net.bus_ids[b]}",
        )
        if key[pair] > 1 or pair not in bridges:
            safe.append(c)
        else:
            islanding.append(c)
    return safe, islanding


def outage_delta(contingency: Contingency) -> NetworkDelta:
    """The contingency as a compact copy-on-write scenario delta."""
    return NetworkDelta.branch_outage(contingency.branch, label=contingency.label)


def apply_outage(net: Network, contingency: Contingency) -> Network:
    """Copy-on-write fork of ``net`` with the contingency branch out.

    The fork shares every untouched array with the base (O(1) per
    scenario, not O(network)); treat it as read-only like all power-flow
    and estimation consumers already do.
    """
    if contingency.branch >= net.n_branch:
        raise ValueError(f"branch {contingency.branch} out of range")
    return net.fork(outage_delta(contingency))


def _bridges(n: int, pairs: np.ndarray) -> set[tuple[int, int]]:
    """Bridge edges of the (pair-collapsed) graph via Tarjan's low-link."""
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for idx, (u, v) in enumerate(pairs):
        adj[int(u)].append((int(v), idx))
        adj[int(v)].append((int(u), idx))

    visited = [False] * n
    disc = [0] * n
    low = [0] * n
    bridges: set[tuple[int, int]] = set()
    timer = [0]

    for root in range(n):
        if visited[root]:
            continue
        # iterative DFS
        parent_edge = {root: -1}
        visited[root] = True
        disc[root] = low[root] = timer[0]
        timer[0] += 1
        dfs = [(root, iter(adj[root]))]
        while dfs:
            v, it = dfs[-1]
            advanced = False
            for u, eidx in it:
                if eidx == parent_edge.get(v, -1):
                    continue
                if not visited[u]:
                    visited[u] = True
                    disc[u] = low[u] = timer[0]
                    timer[0] += 1
                    parent_edge[u] = eidx
                    dfs.append((u, iter(adj[u])))
                    advanced = True
                    break
                low[v] = min(low[v], disc[u])
            if not advanced:
                dfs.pop()
                if dfs:
                    p = dfs[-1][0]
                    low[p] = min(low[p], low[v])
                    if low[v] > disc[p]:
                        bridges.add((min(p, v), max(p, v)))
    return bridges
