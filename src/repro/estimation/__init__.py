"""State estimation: WLS core, solvers, observability, bad data, linear models."""

from .baddata import (
    BadDataReport,
    chi_square_test,
    identify_bad_data,
    normalized_residuals,
)
from .batch import BatchEstimationResult, BatchEstimator, BatchScenario
from .hybrid import hybrid_estimate
from .outputs import EstimatedOutputs, area_interchange, derive_outputs
from .tracking import TrackedFrame, TrackingEstimator
from .decoupled import fast_decoupled_estimate
from .covariance import StateCovariance, state_covariance
from .constrained import constrained_estimate, zero_injection_buses
from .linear import dc_estimate, pmu_linear_estimate
from .robust import huber_estimate
from .observability import angle_jacobian, is_observable, observable_islands
from .pcg import (
    BlockJacobiPreconditioner,
    IChol0Preconditioner,
    PcgResult,
    ichol0,
    jacobi_preconditioner,
    pcg_solve,
)
from .results import EstimationResult
from .solvers import (
    BatchGainSolver,
    GainSolveError,
    GainSolver,
    SchurGainSolver,
    build_gain,
    solve_normal_equations,
)
from .wls import EstimationError, WlsEstimator, estimate_state

__all__ = [
    "WlsEstimator",
    "estimate_state",
    "BatchEstimator",
    "BatchEstimationResult",
    "BatchScenario",
    "BatchGainSolver",
    "EstimationError",
    "EstimationResult",
    "GainSolveError",
    "GainSolver",
    "SchurGainSolver",
    "build_gain",
    "solve_normal_equations",
    "PcgResult",
    "pcg_solve",
    "ichol0",
    "jacobi_preconditioner",
    "IChol0Preconditioner",
    "BlockJacobiPreconditioner",
    "chi_square_test",
    "normalized_residuals",
    "identify_bad_data",
    "BadDataReport",
    "is_observable",
    "observable_islands",
    "angle_jacobian",
    "dc_estimate",
    "pmu_linear_estimate",
    "huber_estimate",
    "constrained_estimate",
    "zero_injection_buses",
    "StateCovariance",
    "state_covariance",
    "fast_decoupled_estimate",
    "TrackingEstimator",
    "TrackedFrame",
    "hybrid_estimate",
    "EstimatedOutputs",
    "derive_outputs",
    "area_interchange",
]
