"""Tracking (forecasting-aided) state estimation across scan cycles.

Control centres re-estimate every SCADA scan; warm-starting each solve from
a prediction of the state cuts Gauss-Newton iterations — the mechanism
behind the paper's empirical iteration model ``Ni = g1·x + g2``: the
noisier the frame, the further the solution moves from the prediction and
the more iterations the solver spends.

The tracker uses exponential smoothing of the state trajectory
(Holt-style level+trend on every state variable) for the prediction, and
flags *anomalies* — frames whose innovation is far beyond the measurement
noise — which indicate sudden topology/load events rather than noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.network import Network
from ..measurements.types import MeasurementSet
from .results import EstimationResult
from .wls import WlsEstimator

__all__ = ["TrackedFrame", "TrackingEstimator"]


@dataclass
class TrackedFrame:
    """Per-scan tracking record."""

    result: EstimationResult
    innovation_rms: float
    anomaly: bool
    predicted_Vm: np.ndarray
    predicted_Va: np.ndarray


class TrackingEstimator:
    """Warm-started WLS estimation over a sequence of scans.

    Parameters
    ----------
    net:
        The estimated network (fixed topology between ``reset`` calls).
    alpha, beta:
        Holt smoothing constants for level and trend (``beta=0`` disables
        the trend term, giving persistence forecasting).
    anomaly_threshold:
        Innovation RMS (in sigmas) above which a frame is flagged.
    """

    def __init__(
        self,
        net: Network,
        *,
        alpha: float = 0.7,
        beta: float = 0.3,
        anomaly_threshold: float = 5.0,
        solver: str = "lu",
    ):
        if not 0 < alpha <= 1 or not 0 <= beta <= 1:
            raise ValueError("alpha in (0,1], beta in [0,1] required")
        self.net = net
        self.alpha = alpha
        self.beta = beta
        self.anomaly_threshold = anomaly_threshold
        self.solver = solver
        self.reset()

    def reset(self) -> None:
        """Forget the trajectory (e.g. after a topology change)."""
        self._level_vm: np.ndarray | None = None
        self._level_va: np.ndarray | None = None
        self._trend_vm: np.ndarray | None = None
        self._trend_va: np.ndarray | None = None
        self.frames: list[TrackedFrame] = []

    # ------------------------------------------------------------------
    def predict(self) -> tuple[np.ndarray, np.ndarray]:
        """State prediction for the next scan (flat start when cold)."""
        n = self.net.n_bus
        if self._level_vm is None:
            return np.ones(n), np.zeros(n)
        return (
            self._level_vm + self._trend_vm,
            self._level_va + self._trend_va,
        )

    def step(self, mset: MeasurementSet, **estimate_kwargs) -> TrackedFrame:
        """Process one scan: predict, measure innovation, estimate, smooth."""
        from ..measurements.functions import MeasurementModel

        vm_pred, va_pred = self.predict()
        model = MeasurementModel(self.net, mset)
        innov = (mset.z - model.h(vm_pred, va_pred)) / mset.sigma
        innovation_rms = float(np.sqrt(np.mean(innov * innov))) if len(innov) else 0.0
        anomaly = self._level_vm is not None and (
            innovation_rms > self.anomaly_threshold
        )

        est = WlsEstimator(self.net, mset, solver=self.solver)
        result = est.estimate(x0=(vm_pred.copy(), va_pred.copy()), **estimate_kwargs)

        # Holt smoothing update.
        if self._level_vm is None or anomaly:
            # cold start / post-event: re-anchor the trajectory
            self._level_vm = result.Vm.copy()
            self._level_va = result.Va.copy()
            self._trend_vm = np.zeros_like(result.Vm)
            self._trend_va = np.zeros_like(result.Va)
        else:
            new_level_vm = self.alpha * result.Vm + (1 - self.alpha) * (
                self._level_vm + self._trend_vm
            )
            new_level_va = self.alpha * result.Va + (1 - self.alpha) * (
                self._level_va + self._trend_va
            )
            self._trend_vm = (
                self.beta * (new_level_vm - self._level_vm)
                + (1 - self.beta) * self._trend_vm
            )
            self._trend_va = (
                self.beta * (new_level_va - self._level_va)
                + (1 - self.beta) * self._trend_va
            )
            self._level_vm = new_level_vm
            self._level_va = new_level_va

        frame = TrackedFrame(
            result=result,
            innovation_rms=innovation_rms,
            anomaly=bool(anomaly),
            predicted_Vm=vm_pred,
            predicted_Va=va_pred,
        )
        self.frames.append(frame)
        return frame
