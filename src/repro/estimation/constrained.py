"""Equality-constrained WLS: exact zero-injection constraints.

Buses with neither load nor generation (switching stations, transformer
taps) have exactly zero injection.  Modelling that as a high-weight
measurement ill-conditions the gain matrix; the proper treatment is an
equality constraint solved through the KKT (Hachtel) system each
Gauss-Newton step:

    [ HᵀWH   Cᵀ ] [dx]   [ HᵀW r ]
    [  C     0  ] [λ ] = [ -c(x) ]

where ``c(x)`` stacks the P and Q injections of the zero-injection buses.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import DEFAULT_SIGMAS, Measurement, MeasType, MeasurementSet
from .results import EstimationResult
from .wls import EstimationError

__all__ = ["zero_injection_buses", "constrained_estimate"]


def zero_injection_buses(net: Network) -> np.ndarray:
    """Buses with no load, no shunt and no in-service generation."""
    has_gen = np.zeros(net.n_bus, dtype=bool)
    if net.n_gen:
        on = net.gen_status > 0
        has_gen[net.gen_bus[on]] = True
    passive = (
        (net.Pd == 0) & (net.Qd == 0) & (net.Gs == 0) & (net.Bs == 0) & ~has_gen
    )
    return np.flatnonzero(passive)


def constrained_estimate(
    net: Network,
    mset: MeasurementSet,
    zi_buses: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    max_iter: int = 25,
    reference_bus: int | None = None,
) -> EstimationResult:
    """WLS estimation with hard zero-injection constraints.

    Parameters
    ----------
    zi_buses:
        Zero-injection bus indices; detected from the case data when
        omitted.  Their P/Q injections are enforced exactly (to solver
        precision) rather than weighted.
    """
    if zi_buses is None:
        zi_buses = zero_injection_buses(net)
    zi_buses = np.asarray(zi_buses, dtype=np.int64)

    model = MeasurementModel(net, mset)
    # Constraint evaluator: P and Q injections at the zi buses.
    cset = MeasurementSet(
        [Measurement(MeasType.P_INJ, int(b), 0.0, DEFAULT_SIGMAS[MeasType.P_INJ])
         for b in zi_buses]
        + [Measurement(MeasType.Q_INJ, int(b), 0.0, DEFAULT_SIGMAS[MeasType.Q_INJ])
           for b in zi_buses]
    )
    cmodel = MeasurementModel(net, cset)

    n = net.n_bus
    has_pmu = mset.count(MeasType.PMU_VA) > 0
    if reference_bus is None:
        slacks = net.slack_buses
        reference_bus = int(slacks[0]) if len(slacks) else 0
    keep = (
        np.arange(2 * n) if has_pmu else np.delete(np.arange(2 * n), reference_bus)
    )
    nc = len(cset)
    if len(mset) + nc < len(keep):
        raise EstimationError("underdetermined constrained estimation")

    Vm = np.ones(n)
    Va = np.zeros(n)
    w = mset.weights
    step_norms: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        r = mset.z - model.h(Vm, Va)
        c = cmodel.h(Vm, Va)  # target is zero
        H = model.jacobian(Vm, Va).tocsc()[:, keep]
        C = cmodel.jacobian(Vm, Va).tocsc()[:, keep]

        G = (H.T @ H.multiply(w[:, None])).tocsc()
        kkt = sp.bmat(
            [[G, C.T], [C, None]], format="csc"
        )
        rhs = np.concatenate([H.T @ (w * r), -c])
        try:
            sol = spla.spsolve(kkt, rhs)
        except RuntimeError as exc:
            raise EstimationError(f"KKT solve failed: {exc}") from exc
        if not np.all(np.isfinite(sol)):
            raise EstimationError("KKT solve produced non-finite step")
        dx = sol[: len(keep)]

        full = np.zeros(2 * n)
        full[keep] = dx
        Va += full[:n]
        Vm += full[n:]
        step = float(np.max(np.abs(dx))) if len(dx) else 0.0
        step_norms.append(step)
        if step < tol:
            converged = True
            break

    r = mset.z - model.h(Vm, Va)
    return EstimationResult(
        converged=converged,
        iterations=it,
        Vm=Vm,
        Va=Va,
        residuals=r,
        objective=float(r @ (w * r)),
        dof=len(mset) + nc - len(keep),
        step_norms=step_norms,
    )
