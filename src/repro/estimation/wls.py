"""Weighted-least-squares state estimation (Gauss-Newton).

The estimator solves ``min_x (z - h(x))ᵀ W (z - h(x))`` over the polar state
``x = [Va; Vm]`` by iterating the normal equations (Abur & Expósito, ch. 2;
the paper's section IV-C).  The angle reference is handled by eliminating
the slack bus angle column unless the measurement set contains synchronized
PMU angles, in which case the state is fully determined and no column is
dropped.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet
from .results import EstimationResult
from .solvers import GainSolver

__all__ = ["EstimationError", "WlsEstimator", "estimate_state"]


class EstimationError(RuntimeError):
    """Raised when the estimator cannot produce a solution."""


class WlsEstimator:
    """Gauss-Newton WLS estimator over a fixed network + measurement set.

    Parameters
    ----------
    net:
        The (sub)network being estimated.
    mset:
        Measurements; must make the network observable.
    solver:
        Normal-equation strategy: ``"lu"`` (default), ``"pcg"`` or
        ``"lsqr"``.
    reference_bus:
        Bus index whose angle is fixed when no PMU angles are present
        (default: the network's first slack bus).
    pcg_preconditioner:
        Preconditioner for ``solver="pcg"``.
    use_cache:
        When true (default), iterations refill the precomputed Jacobian
        sparsity pattern instead of re-deriving it, and the normal-equation
        solver reuses its symbolic analysis across iterations.  The slow
        path (``False``) is the uncached reference implementation; both
        agree to floating-point round-off.
    """

    def __init__(
        self,
        net: Network,
        mset: MeasurementSet,
        *,
        solver: str = "lu",
        reference_bus: int | None = None,
        pcg_preconditioner="jacobi",
        use_cache: bool = True,
    ):
        self.net = net
        self.mset = mset
        self.model = MeasurementModel(net, mset)
        self.solver = solver
        self.pcg_preconditioner = pcg_preconditioner
        self.use_cache = use_cache
        self.has_pmu_angles = mset.count(MeasType.PMU_VA) > 0
        if reference_bus is None:
            slacks = net.slack_buses
            reference_bus = int(slacks[0]) if len(slacks) else 0
        self.reference_bus = int(reference_bus)

        n = net.n_bus
        if self.has_pmu_angles:
            self._keep = np.arange(2 * n)
        else:
            self._keep = np.delete(np.arange(2 * n), self.reference_bus)
        self._gain_solver = GainSolver(
            solver, pcg_preconditioner=pcg_preconditioner
        )

    @property
    def n_states(self) -> int:
        """Number of free state variables."""
        return len(self._keep)

    def _jacobian_at(self, Vm: np.ndarray, Va: np.ndarray):
        if self.use_cache:
            return self.model.jacobian_reduced(Vm, Va, self._keep)
        return self.model.jacobian(Vm, Va).tocsc()[:, self._keep]

    def estimate(
        self,
        *,
        x0: tuple[np.ndarray, np.ndarray] | None = None,
        tol: float = 1e-8,
        max_iter: int = 25,
        reference_angle: float = 0.0,
        z: np.ndarray | None = None,
    ) -> EstimationResult:
        """Run Gauss-Newton from ``x0`` (default flat start).

        ``z`` optionally overrides the measured values of the estimator's
        measurement set (same canonical order, e.g. a fresh telemetry scan
        or updated pseudo measurements over an unchanged structure).

        Returns an :class:`EstimationResult`; raises
        :class:`EstimationError` on a failed normal-equation solve (e.g.
        unobservable network).
        """
        t_start = time.perf_counter() if obs.enabled() else 0.0
        net, model, ms = self.net, self.model, self.mset
        n = net.n_bus
        if len(ms) < self.n_states:
            raise EstimationError(
                f"underdetermined: {len(ms)} measurements for "
                f"{self.n_states} states"
            )
        if z is None:
            z = ms.z
        elif len(z) != len(ms):
            raise ValueError("z override length mismatch")

        if x0 is None:
            Vm = np.ones(n)
            Va = np.full(n, reference_angle)
        else:
            Vm, Va = x0[0].copy(), x0[1].copy()
        if not self.has_pmu_angles:
            Va[self.reference_bus] = reference_angle

        w = ms.weights
        solver = (
            self._gain_solver
            if self.use_cache
            else GainSolver(self.solver, pcg_preconditioner=self.pcg_preconditioner)
        )
        step_norms: list[float] = []
        converged = False
        it = 0
        # The residual is evaluated once per state: initially, and after
        # every update — the final iteration's post-update evaluation is
        # reused for the reported residuals/objective instead of being
        # recomputed after the loop.
        r = z - model.h(Vm, Va)
        for it in range(1, max_iter + 1):
            H = self._jacobian_at(Vm, Va)
            try:
                dx = solver.solve(H, w, r)
            except Exception as exc:
                raise EstimationError(f"normal-equation solve failed: {exc}") from exc

            full_dx = np.zeros(2 * n)
            full_dx[self._keep] = dx
            Va += full_dx[:n]
            Vm += full_dx[n:]
            r = z - model.h(Vm, Va)
            step = float(np.max(np.abs(dx))) if len(dx) else 0.0
            step_norms.append(step)
            if step < tol:
                converged = True
                break

        objective = float(r @ (w * r))
        if obs.enabled():
            reg = obs.metrics()
            reg.histogram("wls.estimate.seconds", solver=self.solver).observe(
                time.perf_counter() - t_start
            )
            reg.counter("wls.iterations_total", solver=self.solver).inc(it)
        return EstimationResult(
            converged=converged,
            iterations=it,
            Vm=Vm,
            Va=Va,
            residuals=r,
            objective=objective,
            dof=len(ms) - self.n_states,
            step_norms=step_norms,
        )


def estimate_state(
    net: Network,
    mset: MeasurementSet,
    *,
    solver: str = "lu",
    **kwargs,
) -> EstimationResult:
    """One-call WLS estimation (constructs a :class:`WlsEstimator`)."""
    est = WlsEstimator(net, mset, solver=solver)
    return est.estimate(**kwargs)
