"""Weighted-least-squares state estimation (Gauss-Newton).

The estimator solves ``min_x (z - h(x))ᵀ W (z - h(x))`` over the polar state
``x = [Va; Vm]`` by iterating the normal equations (Abur & Expósito, ch. 2;
the paper's section IV-C).  The angle reference is handled by eliminating
the slack bus angle column unless the measurement set contains synchronized
PMU angles, in which case the state is fully determined and no column is
dropped.
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet
from .results import EstimationResult
from .solvers import solve_normal_equations

__all__ = ["EstimationError", "WlsEstimator", "estimate_state"]


class EstimationError(RuntimeError):
    """Raised when the estimator cannot produce a solution."""


class WlsEstimator:
    """Gauss-Newton WLS estimator over a fixed network + measurement set.

    Parameters
    ----------
    net:
        The (sub)network being estimated.
    mset:
        Measurements; must make the network observable.
    solver:
        Normal-equation strategy: ``"lu"`` (default), ``"pcg"`` or
        ``"lsqr"``.
    reference_bus:
        Bus index whose angle is fixed when no PMU angles are present
        (default: the network's first slack bus).
    pcg_preconditioner:
        Preconditioner for ``solver="pcg"``.
    """

    def __init__(
        self,
        net: Network,
        mset: MeasurementSet,
        *,
        solver: str = "lu",
        reference_bus: int | None = None,
        pcg_preconditioner="jacobi",
    ):
        self.net = net
        self.mset = mset
        self.model = MeasurementModel(net, mset)
        self.solver = solver
        self.pcg_preconditioner = pcg_preconditioner
        self.has_pmu_angles = mset.count(MeasType.PMU_VA) > 0
        if reference_bus is None:
            slacks = net.slack_buses
            reference_bus = int(slacks[0]) if len(slacks) else 0
        self.reference_bus = int(reference_bus)

        n = net.n_bus
        if self.has_pmu_angles:
            self._keep = np.arange(2 * n)
        else:
            self._keep = np.delete(np.arange(2 * n), self.reference_bus)

    @property
    def n_states(self) -> int:
        """Number of free state variables."""
        return len(self._keep)

    def estimate(
        self,
        *,
        x0: tuple[np.ndarray, np.ndarray] | None = None,
        tol: float = 1e-8,
        max_iter: int = 25,
        reference_angle: float = 0.0,
    ) -> EstimationResult:
        """Run Gauss-Newton from ``x0`` (default flat start).

        Returns an :class:`EstimationResult`; raises
        :class:`EstimationError` on a failed normal-equation solve (e.g.
        unobservable network).
        """
        net, model, ms = self.net, self.model, self.mset
        n = net.n_bus
        if len(ms) < self.n_states:
            raise EstimationError(
                f"underdetermined: {len(ms)} measurements for "
                f"{self.n_states} states"
            )

        if x0 is None:
            Vm = np.ones(n)
            Va = np.full(n, reference_angle)
        else:
            Vm, Va = x0[0].copy(), x0[1].copy()
        if not self.has_pmu_angles:
            Va[self.reference_bus] = reference_angle

        w = ms.weights
        step_norms: list[float] = []
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            r = ms.z - model.h(Vm, Va)
            H = model.jacobian(Vm, Va).tocsc()[:, self._keep]
            try:
                dx = solve_normal_equations(
                    H,
                    w,
                    r,
                    method=self.solver,
                    pcg_preconditioner=self.pcg_preconditioner,
                )
            except Exception as exc:
                raise EstimationError(f"normal-equation solve failed: {exc}") from exc

            full_dx = np.zeros(2 * n)
            full_dx[self._keep] = dx
            Va += full_dx[:n]
            Vm += full_dx[n:]
            step = float(np.max(np.abs(dx))) if len(dx) else 0.0
            step_norms.append(step)
            if step < tol:
                converged = True
                break

        r = ms.z - model.h(Vm, Va)
        objective = float(r @ (w * r))
        return EstimationResult(
            converged=converged,
            iterations=it,
            Vm=Vm,
            Va=Va,
            residuals=r,
            objective=objective,
            dof=len(ms) - self.n_states,
            step_norms=step_norms,
        )


def estimate_state(
    net: Network,
    mset: MeasurementSet,
    *,
    solver: str = "lu",
    **kwargs,
) -> EstimationResult:
    """One-call WLS estimation (constructs a :class:`WlsEstimator`)."""
    est = WlsEstimator(net, mset, solver=solver)
    return est.estimate(**kwargs)
