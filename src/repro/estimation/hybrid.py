"""Hybrid SCADA + PMU state estimation.

The standard two-stage scheme for mixing slow SCADA scans with fast
synchrophasors without re-deriving the nonlinear estimator:

1. the conventional WLS runs on the SCADA channels;
2. the PMU phasors — *linear* in the rectangular state — are fused with
   the stage-1 estimate by a linear WLS in rectangular coordinates, using
   the stage-1 covariance as the prior weight.

With PMUs at a subset of buses the fusion tightens exactly those
neighbourhoods, which is the incremental-deployment story of the paper's
introduction (137 → 300+ PMUs in the Western Interconnect).
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from ..measurements.types import MeasType, MeasurementSet
from .covariance import state_covariance
from .results import EstimationResult
from .wls import EstimationError, WlsEstimator

__all__ = ["hybrid_estimate"]


def hybrid_estimate(
    net: Network,
    scada: MeasurementSet,
    pmu: MeasurementSet,
    *,
    solver: str = "lu",
) -> EstimationResult:
    """Two-stage hybrid estimation.

    Parameters
    ----------
    scada:
        Conventional channels for the stage-1 WLS (must be observable).
    pmu:
        Phasor channels (``V_MAG`` + ``PMU_VA`` pairs at PMU buses);
        current channels are ignored by the fusion stage.

    Returns the fused estimate; ``residuals``/``objective``/``dof`` refer
    to the combined measurement set.
    """
    est1 = WlsEstimator(net, scada, solver=solver)
    stage1 = est1.estimate()
    cov1 = state_covariance(est1, stage1)

    vm_rows = pmu.rows(MeasType.V_MAG)
    va_rows = pmu.rows(MeasType.PMU_VA)
    if not len(vm_rows) or not len(va_rows):
        raise EstimationError("pmu set needs V_MAG and PMU_VA channels")

    n = net.n_bus
    # Fusion in polar coordinates per bus: combine the stage-1 estimate
    # (prior) with the PMU phasor (observation) by inverse-variance
    # weighting; both are direct observations of Vm_i / Va_i.
    Vm = stage1.Vm.copy()
    Va = stage1.Va.copy()

    # Stage-1 angles are relative to the SCADA reference; PMU angles are
    # absolute.  Estimate the offset from the PMU buses first.
    va_el = pmu.elements(MeasType.PMU_VA)
    z_va = pmu.z[va_rows]
    offset = float(np.mean(z_va - Va[va_el]))
    Va = Va + offset

    def fuse(rows, els, prior, prior_std):
        z = pmu.z[rows]
        sig = pmu.sigma[rows]
        w_obs = 1.0 / (sig * sig)
        w_pri = np.zeros_like(w_obs)
        nonzero = prior_std[els] > 1e-12
        w_pri[nonzero] = 1.0 / (prior_std[els][nonzero] ** 2)
        fused = (w_pri * prior[els] + w_obs * z) / (w_pri + w_obs)
        prior[els] = fused

    fuse(vm_rows, pmu.elements(MeasType.V_MAG), Vm, cov1.vm_std)
    fuse(va_rows, va_el, Va, cov1.va_std)

    combined = scada.merged_with(pmu)
    from ..measurements.functions import MeasurementModel

    model = MeasurementModel(net, combined)
    r = combined.z - model.h(Vm, Va)
    w = combined.weights
    n_states = 2 * n  # PMU angles pin the absolute reference
    return EstimationResult(
        converged=stage1.converged,
        iterations=stage1.iterations,
        Vm=Vm,
        Va=Va,
        residuals=r,
        objective=float(r @ (w * r)),
        dof=len(combined) - n_states,
        step_norms=list(stage1.step_norms),
    )
