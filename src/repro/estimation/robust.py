"""Robust state estimation: the Huber M-estimator via IRLS.

The WLS estimator is optimal for Gaussian noise but a single gross error
drags the whole solution (hence the bad-data post-processing).  The Huber
M-estimator bounds each measurement's influence instead: residuals beyond
``gamma`` standard deviations get down-weighted by ``gamma/|r_N|``.
Solved by iteratively reweighted least squares around the Gauss-Newton
loop — a robustness extension of the paper's estimation layer.
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet
from .results import EstimationResult
from .solvers import solve_normal_equations
from .wls import EstimationError

__all__ = ["huber_estimate"]


def huber_estimate(
    net: Network,
    mset: MeasurementSet,
    *,
    gamma: float = 1.5,
    tol: float = 1e-8,
    max_iter: int = 50,
    solver: str = "lu",
    reference_bus: int | None = None,
) -> EstimationResult:
    """Huber M-estimation of the state.

    Parameters
    ----------
    gamma:
        Huber threshold in standardized-residual units (1.5 is the usual
        95%-efficiency choice).
    tol, max_iter:
        Convergence controls on the combined IRLS/Gauss-Newton loop.

    Returns an :class:`EstimationResult`; ``objective`` is the final
    *weighted* quadratic objective under the converged robust weights.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    model = MeasurementModel(net, mset)
    n = net.n_bus
    has_pmu = mset.count(MeasType.PMU_VA) > 0
    if reference_bus is None:
        slacks = net.slack_buses
        reference_bus = int(slacks[0]) if len(slacks) else 0
    keep = (
        np.arange(2 * n)
        if has_pmu
        else np.delete(np.arange(2 * n), reference_bus)
    )
    if len(mset) < len(keep):
        raise EstimationError("underdetermined robust estimation")

    Vm = np.ones(n)
    Va = np.zeros(n)
    base_w = mset.weights
    w = base_w.copy()
    step_norms: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        r = mset.z - model.h(Vm, Va)
        # Huber reweighting on standardized residuals.
        rn = np.abs(r) / mset.sigma
        scale = np.where(rn > gamma, gamma / np.maximum(rn, 1e-12), 1.0)
        w = base_w * scale

        H = model.jacobian(Vm, Va).tocsc()[:, keep]
        try:
            dx = solve_normal_equations(H, w, r, method=solver)
        except Exception as exc:
            raise EstimationError(f"robust solve failed: {exc}") from exc
        full = np.zeros(2 * n)
        full[keep] = dx
        Va += full[:n]
        Vm += full[n:]
        step = float(np.max(np.abs(dx))) if len(dx) else 0.0
        step_norms.append(step)
        if step < tol:
            converged = True
            break

    r = mset.z - model.h(Vm, Va)
    return EstimationResult(
        converged=converged,
        iterations=it,
        Vm=Vm,
        Va=Va,
        residuals=r,
        objective=float(r @ (w * r)),
        dof=len(mset) - len(keep),
        step_norms=step_norms,
    )
