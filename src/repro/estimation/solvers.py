"""Normal-equation solvers for the Gauss-Newton WLS step.

Each Gauss-Newton iteration solves ``(Hᵀ W H) dx = Hᵀ W r`` with the gain
matrix ``G = Hᵀ W H`` symmetric positive definite for observable systems.
Three interchangeable strategies are provided:

- ``"lu"`` — sparse LU of the gain matrix (the reference direct method).
- ``"pcg"`` — preconditioned conjugate gradient (the paper's HPC solver).
- ``"lsqr"`` — orthogonal factorisation of the weighted Jacobian, avoiding
  the squared condition number of the normal equations.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .pcg import pcg_solve

__all__ = ["GainSolveError", "build_gain", "solve_normal_equations"]


class GainSolveError(RuntimeError):
    """Raised when a normal-equation solve fails (singular / not SPD)."""


def build_gain(H: sp.spmatrix, weights: np.ndarray) -> sp.csc_matrix:
    """Gain matrix ``G = Hᵀ W H`` (CSC)."""
    Hw = H.multiply(weights[:, None]).tocsc()
    return (H.T @ Hw).tocsc()


def solve_normal_equations(
    H: sp.spmatrix,
    weights: np.ndarray,
    r: np.ndarray,
    *,
    method: str = "lu",
    pcg_preconditioner="jacobi",
    pcg_tol: float = 1e-12,
) -> np.ndarray:
    """Solve ``(Hᵀ W H) dx = Hᵀ W r`` for the Gauss-Newton step.

    Parameters
    ----------
    H:
        Reduced measurement Jacobian (reference column removed).
    weights:
        Per-measurement WLS weights ``1/sigma²``.
    r:
        Measurement residual vector.
    method:
        ``"lu"``, ``"pcg"`` or ``"lsqr"``.
    pcg_preconditioner, pcg_tol:
        Passed to :func:`repro.estimation.pcg.pcg_solve` for ``"pcg"``.
    """
    rhs = H.T @ (weights * r)
    if method == "lu":
        G = build_gain(H, weights)
        try:
            lu = spla.splu(G)
        except RuntimeError as exc:
            raise GainSolveError(f"gain matrix is singular: {exc}") from exc
        dx = lu.solve(rhs)
        if not np.all(np.isfinite(dx)):
            raise GainSolveError("gain solve produced non-finite step")
        return dx
    if method == "pcg":
        G = build_gain(H, weights)
        res = pcg_solve(G, rhs, preconditioner=pcg_preconditioner, tol=pcg_tol)
        if not res.converged:
            raise GainSolveError(
                f"PCG did not converge (rel. residual {res.residual_norm:.2e})"
            )
        return res.x
    if method == "lsqr":
        sw = np.sqrt(weights)
        Hs = H.multiply(sw[:, None]).tocsr()
        out = spla.lsqr(Hs, sw * r, atol=1e-14, btol=1e-14)
        dx = out[0]
        if not np.all(np.isfinite(dx)):
            raise GainSolveError("lsqr produced non-finite step")
        return dx
    raise ValueError(f"unknown method {method!r}")
