"""Normal-equation solvers for the Gauss-Newton WLS step.

Each Gauss-Newton iteration solves ``(Hᵀ W H) dx = Hᵀ W r`` with the gain
matrix ``G = Hᵀ W H`` symmetric positive definite for observable systems.
Three interchangeable strategies are provided:

- ``"lu"`` — sparse LU of the gain matrix (the reference direct method).
- ``"pcg"`` — preconditioned conjugate gradient (the paper's HPC solver).
- ``"lsqr"`` — orthogonal factorisation of the weighted Jacobian, avoiding
  the squared condition number of the normal equations.

Two entry points share one implementation: :func:`solve_normal_equations`
is the stateless one-shot call; :class:`GainSolver` keeps state across
repeated solves with the *same sparsity pattern* (the Gauss-Newton loop),
reusing the weighted-Jacobian workspace and — for ``"lu"`` — the
fill-reducing column ordering computed by the first symbolic analysis, so
later iterations skip the ordering phase and only refactor numerics.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .pcg import pcg_solve

__all__ = [
    "BatchGainSolver",
    "GainSolveError",
    "GainSolver",
    "SchurGainSolver",
    "build_gain",
    "solve_normal_equations",
]


class GainSolveError(RuntimeError):
    """Raised when a normal-equation solve fails (singular / not SPD)."""


def _weighted_copy(H: sp.csc_matrix, scale: np.ndarray) -> sp.csc_matrix:
    """``diag(scale) @ H`` built by scaling the CSC data in place of a
    generic sparse multiply (no COO round-trip, pattern shared with H)."""
    return sp.csc_matrix(
        (H.data * scale[H.indices], H.indices, H.indptr),
        shape=H.shape,
    )


def build_gain(H: sp.spmatrix, weights: np.ndarray) -> sp.csc_matrix:
    """Gain matrix ``G = Hᵀ W H`` (CSC)."""
    Hc = H.tocsc()
    Hw = _weighted_copy(Hc, weights)
    return (Hc.T @ Hw).tocsc()


class GainSolver:
    """Stateful normal-equation solver for repeated same-pattern solves.

    Parameters mirror :func:`solve_normal_equations`.  The solver is safe
    to reuse across Gauss-Newton iterations and across estimate() calls of
    the same estimator; if the Jacobian pattern changes between calls the
    cached structure is discarded and rebuilt transparently.
    """

    def __init__(
        self,
        method: str = "lu",
        *,
        pcg_preconditioner="jacobi",
        pcg_tol: float = 1e-12,
    ):
        self.method = method
        self.pcg_preconditioner = pcg_preconditioner
        self.pcg_tol = pcg_tol
        self._perm_c: np.ndarray | None = None
        self._pattern: tuple | None = None

    # ------------------------------------------------------------------
    def _pattern_matches(self, G: sp.csc_matrix) -> bool:
        pat = self._pattern
        return (
            pat is not None
            and pat[0] == G.shape
            and pat[1] == G.nnz
            and np.array_equal(pat[2], G.indptr)
            and np.array_equal(pat[3], G.indices)
        )

    def _solve_lu(self, G: sp.csc_matrix, rhs: np.ndarray) -> np.ndarray:
        try:
            if self._perm_c is None or not self._pattern_matches(G):
                # Analysis phase: compute the fill-reducing ordering once
                # for this pattern.  The factorization is then *redone*
                # below through the same NATURAL-order path warm solves
                # take, so cold and warm solves perform bit-identical
                # floating-point arithmetic — the property that pins
                # serial, thread-pool and process-pool results to each
                # other no matter which worker's solver is warm.
                self._perm_c = spla.splu(G).perm_c.copy()
                self._pattern = (G.shape, G.nnz, G.indptr.copy(), G.indices.copy())
            # Apply the cached ordering up front and run SuperLU with
            # NATURAL column order, skipping the ordering phase.
            perm = self._perm_c
            lu = spla.splu(G[:, perm], permc_spec="NATURAL")
        except RuntimeError as exc:
            raise GainSolveError(f"gain matrix is singular: {exc}") from exc
        y = lu.solve(rhs)
        dx = np.empty_like(y)
        dx[perm] = y
        return dx

    # ------------------------------------------------------------------
    def solve(
        self, H: sp.spmatrix, weights: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        """Solve ``(Hᵀ W H) dx = Hᵀ W r`` for the Gauss-Newton step."""
        if self.method not in ("lu", "pcg", "lsqr"):
            raise ValueError(f"unknown method {self.method!r}")
        Hc = H.tocsc()
        if self.method == "lsqr":
            sw = np.sqrt(weights)
            Hs = _weighted_copy(Hc, sw)
            out = spla.lsqr(Hs, sw * r, atol=1e-14, btol=1e-14)
            dx = out[0]
            if not np.all(np.isfinite(dx)):
                raise GainSolveError("lsqr produced non-finite step")
            return dx

        # "lu" and "pcg" both need the weighted Jacobian and the gain
        # matrix; Hw is shared between the RHS and the gain product.
        Hw = _weighted_copy(Hc, weights)
        rhs = Hw.T @ r
        G = (Hc.T @ Hw).tocsc()
        if self.method == "lu":
            dx = self._solve_lu(G, rhs)
            if not np.all(np.isfinite(dx)):
                raise GainSolveError("gain solve produced non-finite step")
            return dx
        res = pcg_solve(
            G, rhs, preconditioner=self.pcg_preconditioner, tol=self.pcg_tol
        )
        if not res.converged:
            raise GainSolveError(
                f"PCG did not converge (rel. residual {res.residual_norm:.2e})"
            )
        return res.x


class BatchGainSolver:
    """Normal-equation solver for a block-diagonal batched Jacobian.

    The batched Gauss-Newton iteration stacks K same-pattern scenario
    Jacobians into one block-diagonal ``(K*m, K*ns)`` matrix, so the gain
    matrix ``G = Hᵀ W H`` is block-diagonal too and one sparse LU
    factorizes the entire batch — the block structure confines fill-in to
    the diagonal blocks, making the batch factorization cost K independent
    factorizations minus K-1 analysis phases.

    Every scenario shares one sparsity pattern, so the fill-reducing column
    ordering is computed for the *first block only* and tiled across the
    batch; like :class:`GainSolver` the factorization then always runs
    through the NATURAL-order path, keeping cold and warm solves
    bit-identical.  The cached ordering survives changes of K (the active
    set shrinks as scenarios converge).
    """

    def __init__(self) -> None:
        self._perm_c: np.ndarray | None = None
        self._pattern: tuple | None = None

    def _block_perm(self, G: sp.csc_matrix, ns: int, K: int) -> np.ndarray:
        G0 = G[:ns, :ns].tocsc()
        pat = self._pattern
        if (
            pat is None
            or pat[0] != G0.nnz
            or not np.array_equal(pat[1], G0.indptr)
            or not np.array_equal(pat[2], G0.indices)
        ):
            self._perm_c = spla.splu(G0).perm_c.copy()
            self._pattern = (G0.nnz, G0.indptr.copy(), G0.indices.copy())
        return (
            self._perm_c[None, :] + ns * np.arange(K, dtype=np.int64)[:, None]
        ).ravel()

    def solve(
        self, H: sp.csc_matrix, weights: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        """Solve ``(Hᵀ W H) dx = Hᵀ W r`` for all K scenarios at once.

        ``H`` is the block-diagonal batched Jacobian with K blocks of shape
        ``(m, ns)``, ``weights`` the shared per-measurement weights (length
        m, tiled over the batch) and ``r`` the stacked residuals ``(K, m)``.
        Returns the stacked steps ``(K, ns)``.
        """
        K, m = r.shape
        ns = H.shape[1] // K
        if H.shape != (K * m, K * ns):
            raise ValueError(f"H shape {H.shape} does not tile ({K}, {m})")
        w_big = np.tile(weights, K)
        Hw = _weighted_copy(H, w_big)
        rhs = Hw.T @ r.ravel()
        G = (H.T @ Hw).tocsc()
        try:
            permf = self._block_perm(G, ns, K)
            lu = spla.splu(G[:, permf], permc_spec="NATURAL")
        except RuntimeError as exc:
            raise GainSolveError(f"batched gain matrix is singular: {exc}") from exc
        y = lu.solve(rhs)
        dx = np.empty_like(y)
        dx[permf] = y
        if not np.all(np.isfinite(dx)):
            raise GainSolveError("batched gain solve produced non-finite step")
        return dx.reshape(K, ns)


class SchurGainSolver:
    """Schur-complement gain solver: eliminate interior states once, then
    every solve costs one interior backsolve plus one dense boundary solve.

    Splitting the reduced state into interior ``I`` and boundary ``B``
    blocks, :meth:`factor` condenses the gain matrix ``G = Hᵀ W H``:

    .. code-block:: text

        G_II = L U                sparse LU (cached fill-reducing ordering)
        W    = G_II⁻¹ G_IB        dense |I| × |B| back-substitution operator
        S    = G_BB − G_IBᵀ W     dense Schur complement (SPD → Cholesky)

    and :meth:`solve` maps any right-hand side to the full step:

    .. code-block:: text

        u    = G_II⁻¹ rhs_I
        dx_B = S⁻¹ (rhs_B − G_IBᵀ u)      boundary-sized system
        dx_I = u − W dx_B                 local back-substitution

    Like :class:`GainSolver`, the sparse factorization caches the
    fill-reducing column ordering on first use and always refactors
    through the NATURAL-order path, so cold and warm factorizations
    perform bit-identical floating-point arithmetic — the property that
    pins serial, thread-pool and process-pool DSE results to each other.
    """

    def __init__(self, boundary: np.ndarray, n_states: int):
        boundary = np.unique(np.asarray(boundary, dtype=np.int64))
        if len(boundary) and (boundary[0] < 0 or boundary[-1] >= n_states):
            raise ValueError("boundary state index out of range")
        self.boundary = boundary
        self.n_states = int(n_states)
        mask = np.ones(self.n_states, dtype=bool)
        mask[boundary] = False
        self.interior = np.flatnonzero(mask)
        self._perm_c: np.ndarray | None = None
        self._pattern: tuple | None = None
        self._lu = None
        self._S: tuple | None = None
        self._W: np.ndarray | None = None
        self._G_IB: sp.csc_matrix | None = None
        self._factored = False

    @property
    def n_boundary(self) -> int:
        return len(self.boundary)

    @property
    def n_interior(self) -> int:
        return len(self.interior)

    @property
    def factored(self) -> bool:
        return self._factored

    # ------------------------------------------------------------------
    def factor(self, H: sp.spmatrix, weights: np.ndarray) -> None:
        """Condense ``G = Hᵀ W H`` onto the boundary block."""
        G = build_gain(H, weights)
        if G.shape[0] != self.n_states:
            raise ValueError(
                f"gain matrix order {G.shape[0]} != n_states {self.n_states}"
            )
        idx = np.concatenate([self.interior, self.boundary])
        Gp = G[idx][:, idx].tocsc()
        ni, nb = self.n_interior, self.n_boundary

        if ni:
            G_II = Gp[:ni, :ni].tocsc()
            try:
                if self._perm_c is None or not self._ii_pattern_matches(G_II):
                    self._perm_c = spla.splu(G_II).perm_c.copy()
                    self._pattern = (
                        G_II.nnz, G_II.indptr.copy(), G_II.indices.copy()
                    )
                self._lu = spla.splu(
                    G_II[:, self._perm_c], permc_spec="NATURAL"
                )
            except RuntimeError as exc:
                raise GainSolveError(
                    f"interior gain block is singular: {exc}"
                ) from exc
        else:
            self._lu = None

        if nb:
            self._G_IB = Gp[:ni, ni:].tocsc()
            S = Gp[ni:, ni:].toarray()
            if ni:
                self._W = self._solve_interior(self._G_IB.toarray())
                S = S - self._G_IB.T @ self._W
            else:
                self._W = np.zeros((0, nb))
            try:
                self._S = sla.cho_factor(S, lower=True)
            except (np.linalg.LinAlgError, ValueError) as exc:
                raise GainSolveError(
                    f"Schur complement is not positive definite: {exc}"
                ) from exc
        else:
            self._G_IB = None
            self._W = None
            self._S = None
        self._factored = True

    def _ii_pattern_matches(self, G_II: sp.csc_matrix) -> bool:
        pat = self._pattern
        return (
            pat is not None
            and pat[0] == G_II.nnz
            and np.array_equal(pat[1], G_II.indptr)
            and np.array_equal(pat[2], G_II.indices)
        )

    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        """``G_II⁻¹ b`` through the column-permuted NATURAL factorization
        (``b`` may be a matrix of stacked right-hand sides)."""
        y = self._lu.solve(b)
        x = np.empty_like(y)
        x[self._perm_c] = y
        return x

    # ------------------------------------------------------------------
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Map a full-order right-hand side to the full step ``dx``."""
        if not self._factored:
            raise GainSolveError("SchurGainSolver.solve before factor()")
        if not np.all(np.isfinite(rhs)):
            raise GainSolveError("non-finite right-hand side")
        dx = np.empty(self.n_states)
        u = (
            self._solve_interior(rhs[self.interior])
            if self.n_interior
            else np.zeros(0)
        )
        if self.n_boundary:
            rhs_b = rhs[self.boundary]
            if self.n_interior:
                rhs_b = rhs_b - self._G_IB.T @ u
            if not np.all(np.isfinite(rhs_b)):
                raise GainSolveError("non-finite condensed right-hand side")
            dx_b = sla.cho_solve(self._S, rhs_b)
            dx[self.boundary] = dx_b
            if self.n_interior:
                u = u - self._W @ dx_b
        dx[self.interior] = u
        if not np.all(np.isfinite(dx)):
            raise GainSolveError("condensed solve produced non-finite step")
        return dx


def solve_normal_equations(
    H: sp.spmatrix,
    weights: np.ndarray,
    r: np.ndarray,
    *,
    method: str = "lu",
    pcg_preconditioner="jacobi",
    pcg_tol: float = 1e-12,
) -> np.ndarray:
    """Solve ``(Hᵀ W H) dx = Hᵀ W r`` for the Gauss-Newton step (one-shot).

    Parameters
    ----------
    H:
        Reduced measurement Jacobian (reference column removed).
    weights:
        Per-measurement WLS weights ``1/sigma²``.
    r:
        Measurement residual vector.
    method:
        ``"lu"``, ``"pcg"`` or ``"lsqr"``.
    pcg_preconditioner, pcg_tol:
        Passed to :func:`repro.estimation.pcg.pcg_solve` for ``"pcg"``.
    """
    return GainSolver(
        method, pcg_preconditioner=pcg_preconditioner, pcg_tol=pcg_tol
    ).solve(H, weights, r)
