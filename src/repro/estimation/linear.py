"""Linear estimators: DC WLS and the PMU-only linear estimator.

The DC estimator solves the linearised ``z_P = H θ + e`` model in one shot —
the ``z = Hx + e`` approximation the paper quotes in section II.  The
PMU-only estimator exploits that phasor measurements are linear in the
rectangular state, giving a non-iterative solution for PMU-observable
networks.
"""

from __future__ import annotations

import numpy as np

from ..grid.network import Network
from ..measurements.types import MeasType, MeasurementSet
from .results import EstimationResult
from .solvers import solve_normal_equations
from .wls import EstimationError

__all__ = ["dc_estimate", "pmu_linear_estimate"]


def dc_estimate(
    net: Network,
    mset: MeasurementSet,
    *,
    reference_bus: int | None = None,
) -> EstimationResult:
    """One-shot DC WLS estimate of the bus angles.

    Uses only the real-power and PMU-angle channels of ``mset``; magnitudes
    are fixed at 1 p.u.  The angle reference is the slack bus unless PMU
    angles pin the absolute reference.
    """
    from .observability import angle_jacobian  # local import avoids a cycle

    keep_types = (
        MeasType.P_INJ,
        MeasType.P_FLOW_F,
        MeasType.P_FLOW_T,
        MeasType.PMU_VA,
    )
    rows = np.concatenate([mset.rows(t) for t in keep_types])
    if not rows.size:
        raise EstimationError("no real-power or angle measurements")
    sub = mset.subset(rows.astype(int))

    n = net.n_bus
    Ha = angle_jacobian(net, sub)
    import scipy.sparse as sp

    H = sp.csr_matrix(Ha)
    has_pmu = sub.count(MeasType.PMU_VA) > 0
    if reference_bus is None:
        slacks = net.slack_buses
        reference_bus = int(slacks[0]) if len(slacks) else 0
    keep = np.arange(n) if has_pmu else np.delete(np.arange(n), reference_bus)
    Hr = H[:, keep]

    w = sub.weights
    if len(sub) < len(keep):
        raise EstimationError("underdetermined DC estimation")
    try:
        theta_r = solve_normal_equations(Hr, w, sub.z, method="lu")
    except Exception as exc:
        raise EstimationError(f"DC gain solve failed: {exc}") from exc

    theta = np.zeros(n)
    theta[keep] = theta_r
    r = sub.z - H @ theta
    return EstimationResult(
        converged=True,
        iterations=1,
        Vm=np.ones(n),
        Va=theta,
        residuals=r,
        objective=float(r @ (w * r)),
        dof=len(sub) - len(keep),
    )


def pmu_linear_estimate(
    net: Network,
    mset: MeasurementSet,
) -> EstimationResult:
    """Direct linear estimate from PMU voltage phasors.

    Requires a V_MAG + PMU_VA pair at every bus (e.g. the dense PMU
    deployments motivating the paper's real-time constraints); simply reads
    the phasor channels through their WLS weights.
    """
    n = net.n_bus
    vm_el = mset.elements(MeasType.V_MAG)
    va_el = mset.elements(MeasType.PMU_VA)
    if not (set(range(n)) <= set(vm_el.tolist()) and set(range(n)) <= set(va_el.tolist())):
        raise EstimationError("pmu_linear_estimate needs phasors at every bus")

    Vm = np.zeros(n)
    Va = np.zeros(n)
    wsum_m = np.zeros(n)
    wsum_a = np.zeros(n)
    w = mset.weights
    for t, acc, wacc in ((MeasType.V_MAG, Vm, wsum_m), (MeasType.PMU_VA, Va, wsum_a)):
        rows = mset.rows(t)
        els = mset.elements(t)
        np.add.at(acc, els, w[rows] * mset.z[rows])
        np.add.at(wacc, els, w[rows])
    Vm /= wsum_m
    Va /= wsum_a

    from ..measurements.functions import MeasurementModel

    r = mset.z - MeasurementModel(net, mset).h(Vm, Va)
    return EstimationResult(
        converged=True,
        iterations=1,
        Vm=Vm,
        Va=Va,
        residuals=r,
        objective=float(r @ (w * r)),
        dof=len(mset) - 2 * n,
    )
