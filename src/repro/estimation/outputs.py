"""Operational outputs derived from a state estimate.

Section I of the paper: the estimated state feeds "contingency analysis,
optimal power flow, economic dispatch, and automatic generation control".
Those tools do not consume ``(Vm, Va)`` — they consume the derived network
quantities: bus injections, branch flows, losses, and (for balancing
authorities) the inter-area interchange schedule.  This module computes the
full product set from any :class:`EstimationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.network import Network
from ..grid.ybus import build_yf_yt, build_ybus
from .results import EstimationResult

__all__ = ["EstimatedOutputs", "derive_outputs", "area_interchange"]


@dataclass
class EstimatedOutputs:
    """Derived quantities at the estimated operating point (all p.u.).

    ``Pf``/``Qf``/``Pt``/``Qt`` are zero for out-of-service branches.
    """

    P: np.ndarray
    Q: np.ndarray
    Pf: np.ndarray
    Qf: np.ndarray
    Pt: np.ndarray
    Qt: np.ndarray
    branch_loss_p: np.ndarray
    total_loss_p: float

    @property
    def total_generation_p(self) -> float:
        """Total positive injection (≈ generation) in p.u."""
        return float(self.P[self.P > 0].sum())

    @property
    def total_load_p(self) -> float:
        """Total negative injection (≈ load) in p.u."""
        return float(-self.P[self.P < 0].sum())


def derive_outputs(net: Network, estimate: EstimationResult) -> EstimatedOutputs:
    """Compute injections, flows and losses at the estimated state."""
    V = estimate.Vm * np.exp(1j * estimate.Va)
    ybus = build_ybus(net)
    s_bus = V * np.conj(ybus @ V)

    yf, yt = build_yf_yt(net)
    sf = V[net.f] * np.conj(yf @ V)
    st = V[net.t] * np.conj(yt @ V)
    live = net.br_status > 0
    sf = np.where(live, sf, 0.0)
    st = np.where(live, st, 0.0)

    loss = sf.real + st.real
    return EstimatedOutputs(
        P=s_bus.real,
        Q=s_bus.imag,
        Pf=sf.real,
        Qf=sf.imag,
        Pt=st.real,
        Qt=st.imag,
        branch_loss_p=loss,
        total_loss_p=float(loss.sum()),
    )


def area_interchange(
    net: Network,
    estimate: EstimationResult,
    labels: np.ndarray | None = None,
) -> dict[int, float]:
    """Net scheduled export per area from the estimated tie flows (p.u.).

    ``labels`` maps each bus to an area (default: the case's area column).
    Positive values export power.  Exports sum to the total tie losses'
    negative (power leaving one area either arrives at another or is lost
    on the tie), so ``sum ≈ tie losses ≥ 0``.
    """
    if labels is None:
        labels = net.area
    labels = np.asarray(labels)
    if len(labels) != net.n_bus:
        raise ValueError("labels length mismatch")

    out = derive_outputs(net, estimate)
    areas, inv = np.unique(labels, return_inverse=True)
    totals = np.zeros(len(areas))
    live = net.live_branches()
    a_from, a_to = inv[net.f[live]], inv[net.t[live]]
    tie = a_from != a_to
    np.add.at(totals, a_from[tie], out.Pf[live][tie])
    np.add.at(totals, a_to[tie], out.Pt[live][tie])
    return {int(a): float(v) for a, v in zip(areas, totals)}
