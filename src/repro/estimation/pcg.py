"""Preconditioned conjugate gradient for SPD gain systems.

The paper's HPC state estimator (section IV-C, following Chen et al.) solves
the normal-equation system ``A x = b`` — ``A`` the symmetric positive
definite gain matrix — with a parallel preconditioned conjugate gradient.
This module implements CG from scratch with three preconditioners:

- Jacobi (diagonal) — trivially parallel, the weakest.
- IC(0) — zero-fill incomplete Cholesky, the classic serial preconditioner.
- Block-Jacobi — exact dense factorisation of diagonal blocks; blocks are
  independent, which is what makes the scheme "parallel" on a cluster and is
  the natural match for a subsystem decomposition.

All operate on ``scipy.sparse`` matrices and return dense solution vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp

__all__ = [
    "PcgResult",
    "jacobi_preconditioner",
    "ichol0",
    "IChol0Preconditioner",
    "BlockJacobiPreconditioner",
    "pcg_solve",
]


@dataclass
class PcgResult:
    """Solution and convergence record of a PCG run."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list[float]


def jacobi_preconditioner(A: sp.spmatrix):
    """M^{-1} v for the diagonal (Jacobi) preconditioner."""
    d = A.diagonal().copy()
    if np.any(d <= 0):
        raise ValueError("matrix has non-positive diagonal; not SPD")
    inv = 1.0 / d

    def apply(v: np.ndarray) -> np.ndarray:
        return inv * v

    return apply


def ichol0(A: sp.spmatrix) -> sp.csc_matrix:
    """Zero-fill incomplete Cholesky factor L with A ≈ L Lᵀ.

    Operates on the lower triangle of ``A`` keeping its sparsity pattern
    (IC(0)).  Raises ``ValueError`` when a pivot goes non-positive (matrix
    not SPD enough for IC(0); callers can fall back to Jacobi).
    """
    L = sp.tril(A, format="csc").astype(float)
    n = L.shape[0]
    indptr, indices, data = L.indptr, L.indices, L.data

    for j in range(n):
        start, end = indptr[j], indptr[j + 1]
        if start == end or indices[start] != j:
            raise ValueError(f"zero diagonal at {j}")
        if data[start] <= 0:
            raise ValueError(f"non-positive pivot at {j}")
        data[start] = np.sqrt(data[start])
        if end > start + 1:
            data[start + 1 : end] /= data[start]
        # Update subsequent columns k that have an entry in row pattern.
        col_rows = indices[start + 1 : end]
        col_vals = data[start + 1 : end]
        for idx, k in enumerate(col_rows):
            ks, ke = indptr[k], indptr[k + 1]
            rows_k = indices[ks:ke]
            # a_ik -= L_ij * L_kj for i in pattern of column k
            common, ia, ib = np.intersect1d(
                rows_k, col_rows[idx:], assume_unique=True, return_indices=True
            )
            if common.size:
                data[ks:ke][ia] -= col_vals[idx:][ib] * col_vals[idx]
    return sp.csc_matrix((data, indices, indptr), shape=L.shape)


class IChol0Preconditioner:
    """Applies M^{-1} = (L Lᵀ)^{-1} via two sparse triangular solves.

    IC(0) can break down (non-positive pivot) on matrices that are SPD but
    far from diagonally dominant; the standard remedy is a shifted
    factorisation of ``A + alpha*diag(A)`` with increasing ``alpha``.
    """

    def __init__(self, A: sp.spmatrix, *, max_shift: float = 1.0):
        alpha = 0.0
        diag = sp.diags(A.diagonal())
        while True:
            try:
                self.L = ichol0(A if alpha == 0.0 else (A + alpha * diag).tocsc())
                break
            except ValueError:
                alpha = max(4 * alpha, 1e-3)
                if alpha > max_shift:
                    raise
        self.shift = alpha
        self.Lt = self.L.T.tocsc()

    def __call__(self, v: np.ndarray) -> np.ndarray:
        y = sp.linalg.spsolve_triangular(self.L, v, lower=True)
        return sp.linalg.spsolve_triangular(self.Lt, y, lower=False)


class BlockJacobiPreconditioner:
    """Exact dense factorisation of diagonal blocks.

    ``blocks`` is a list of index arrays partitioning ``range(n)``.  Each
    block's submatrix is Cholesky-factorised once; application is a set of
    independent triangular solves — embarrassingly parallel across blocks,
    mirroring per-cluster work in the paper's architecture.
    """

    def __init__(self, A: sp.spmatrix, blocks: list[np.ndarray]):
        n = A.shape[0]
        seen = np.concatenate([np.asarray(b) for b in blocks]) if blocks else np.array([])
        if len(seen) != n or len(np.unique(seen)) != n:
            raise ValueError("blocks must partition range(n)")
        A = A.tocsc()
        self.blocks = [np.asarray(b, dtype=np.int64) for b in blocks]
        self.factors = []
        for b in self.blocks:
            sub = A[np.ix_(b, b)].toarray()
            self.factors.append(la.cho_factor(sub))

    def __call__(self, v: np.ndarray) -> np.ndarray:
        out = np.empty_like(v)
        for b, f in zip(self.blocks, self.factors):
            out[b] = la.cho_solve(f, v[b])
        return out


def pcg_solve(
    A: sp.spmatrix,
    b: np.ndarray,
    *,
    preconditioner="jacobi",
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int | None = None,
) -> PcgResult:
    """Solve SPD ``A x = b`` by preconditioned conjugate gradient.

    ``preconditioner`` may be ``"jacobi"``, ``"ichol"``, ``"none"``, or any
    callable ``v -> M^{-1} v``.  Convergence is on the relative residual
    ``||b - A x|| / ||b||``.
    """
    n = A.shape[0]
    if max_iter is None:
        max_iter = 10 * n
    if callable(preconditioner):
        M = preconditioner
    elif preconditioner == "jacobi":
        M = jacobi_preconditioner(A)
    elif preconditioner == "ichol":
        M = IChol0Preconditioner(A)
    elif preconditioner == "none":
        M = lambda v: v  # noqa: E731
    else:
        raise ValueError(f"unknown preconditioner {preconditioner!r}")

    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    r = b - A @ x
    bnorm = np.linalg.norm(b)
    if bnorm == 0:
        return PcgResult(x=np.zeros(n), converged=True, iterations=0,
                         residual_norm=0.0, residual_history=[0.0])

    z = M(r)
    p = z.copy()
    rz = r @ z
    history = [float(np.linalg.norm(r) / bnorm)]
    for k in range(1, max_iter + 1):
        Ap = A @ p
        pAp = p @ Ap
        if pAp <= 0:
            # Not SPD along p — bail out with current iterate.
            return PcgResult(x=x, converged=False, iterations=k - 1,
                             residual_norm=history[-1], residual_history=history)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        rel = float(np.linalg.norm(r) / bnorm)
        history.append(rel)
        if rel < tol:
            return PcgResult(x=x, converged=True, iterations=k,
                             residual_norm=rel, residual_history=history)
        z = M(r)
        rz_new = r @ z
        p = z + (rz_new / rz) * p
        rz = rz_new
    return PcgResult(x=x, converged=False, iterations=max_iter,
                     residual_norm=history[-1], residual_history=history)
