"""Estimation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EstimationResult"]


@dataclass
class EstimationResult:
    """Outcome of a WLS state estimation.

    Attributes
    ----------
    converged:
        Whether the Gauss-Newton iteration met its tolerance.
    iterations:
        Gauss-Newton iterations performed.
    Vm, Va:
        Estimated bus voltage magnitudes (p.u.) and angles (radians).
    residuals:
        Final measurement residuals ``z - h(x̂)`` in canonical order.
    objective:
        Weighted least-squares objective ``J(x̂) = rᵀ W r``.
    dof:
        Degrees of freedom ``m - n_states`` (redundancy of the fit).
    step_norms:
        Max-norm of the state update per iteration (convergence record).
    """

    converged: bool
    iterations: int
    Vm: np.ndarray
    Va: np.ndarray
    residuals: np.ndarray
    objective: float
    dof: int
    step_norms: list[float] = field(default_factory=list)

    @property
    def V(self) -> np.ndarray:
        """Complex estimated voltages."""
        return self.Vm * np.exp(1j * self.Va)

    def state_error(self, Vm_true: np.ndarray, Va_true: np.ndarray) -> dict:
        """Accuracy metrics against a known true state.

        Angles are compared after removing any common reference shift, since
        a SCADA-only estimate is only determined up to the slack reference.
        """
        dva = self.Va - Va_true
        dva -= dva.mean()
        return {
            "vm_rmse": float(np.sqrt(np.mean((self.Vm - Vm_true) ** 2))),
            "va_rmse": float(np.sqrt(np.mean(dva**2))),
            "vm_max": float(np.max(np.abs(self.Vm - Vm_true))),
            "va_max": float(np.max(np.abs(dva))),
        }
