"""Estimation uncertainty: state covariance and confidence intervals.

For WLS with Gaussian noise, the state estimate is asymptotically
distributed as ``x̂ ~ N(x*, G⁻¹)`` with gain ``G = Hᵀ W H`` evaluated at
the solution.  The diagonal of ``G⁻¹`` gives per-state variances — the
error bars operators need before trusting an estimate, and the quantities
pseudo-measurement sigmas should reflect when neighbours exchange their
boundary solutions in DSE Step 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla
from scipy.stats import norm

from .results import EstimationResult
from .solvers import build_gain
from .wls import WlsEstimator

__all__ = ["StateCovariance", "state_covariance"]


@dataclass
class StateCovariance:
    """Per-bus standard deviations of the estimated state.

    ``va_std``/``vm_std`` are aligned with bus indices; the reference bus
    (fixed angle) carries zero angle deviation when no PMU anchors exist.
    """

    vm_std: np.ndarray
    va_std: np.ndarray
    reference_bus: int | None

    def confidence_interval(
        self, result: EstimationResult, *, level: float = 0.95
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(Vm_lo, Vm_hi, Va_lo, Va_hi) at the given confidence level."""
        if not 0 < level < 1:
            raise ValueError("level must be in (0, 1)")
        z = norm.ppf(0.5 + level / 2)
        return (
            result.Vm - z * self.vm_std,
            result.Vm + z * self.vm_std,
            result.Va - z * self.va_std,
            result.Va + z * self.va_std,
        )


def state_covariance(
    estimator: WlsEstimator, result: EstimationResult
) -> StateCovariance:
    """Diagonal of ``G⁻¹`` at the solution, mapped back to bus order.

    Computed column-block-wise through the sparse LU of the gain matrix
    (no dense inverse is formed).
    """
    n = estimator.net.n_bus
    H = estimator.model.jacobian(result.Vm, result.Va).tocsc()[:, estimator._keep]
    G = build_gain(H, estimator.mset.weights)
    lu = spla.splu(G.tocsc())

    k = G.shape[0]
    diag = np.empty(k)
    block = 256
    for lo in range(0, k, block):
        hi = min(lo + block, k)
        rhs = np.zeros((k, hi - lo))
        rhs[np.arange(lo, hi), np.arange(hi - lo)] = 1.0
        S = lu.solve(rhs)
        diag[lo:hi] = S[lo:hi, :].diagonal()

    var = np.zeros(2 * n)
    var[estimator._keep] = np.maximum(diag, 0.0)
    return StateCovariance(
        vm_std=np.sqrt(var[n:]),
        va_std=np.sqrt(var[:n]),
        reference_bus=None if estimator.has_pmu_angles else estimator.reference_bus,
    )
