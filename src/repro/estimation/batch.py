"""Batched (SIMD-over-scenarios) WLS state estimation.

``BatchEstimator`` runs Gauss-Newton over K scenarios *simultaneously*:
all scenarios share one network pattern and one measurement structure, so
their states stack into ``(K, n)`` arrays, h(x)/H(x) evaluate as batched
array kernels over one cached :class:`~repro.measurements.functions.JacobianStructure`,
and each iteration performs a single block-diagonal normal-equation solve
for the whole batch (:class:`~repro.estimation.solvers.BatchGainSolver`).

Iteration semantics mirror :class:`~repro.estimation.wls.WlsEstimator`
per scenario: each scenario tracks its own residual, step norm, iteration
count and convergence flag, and drops out of the active set the moment its
step falls below tolerance (a convergence *mask* — early finishers stop
contributing work while slow scenarios iterate on).  A batch of one is
delegated to the serial estimator outright, so K=1 results are bitwise
identical to ``WlsEstimator``; for K>1 the only differences are
floating-point round-off from the batched kernels.

Scenarios are cheap: a :class:`~repro.grid.delta.NetworkDelta` (branch
flips, measurement-vector overrides, warm starts) against one shared base
— never a network copy per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.delta import NetworkDelta
from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet
from .results import EstimationResult
from .solvers import BatchGainSolver
from .wls import EstimationError, WlsEstimator

__all__ = ["BatchEstimationResult", "BatchEstimator", "BatchScenario"]


@dataclass(frozen=True)
class BatchScenario:
    """One scenario of a batched estimation.

    Attributes
    ----------
    delta:
        Copy-on-write difference against the estimator's base network
        (``None`` = the base itself).  Only branch-status flips affect the
        estimation model; injection overrides matter to power-flow-based
        consumers sharing the same delta.
    z:
        Optional measurement-vector override (canonical order of the
        estimator's measurement set), e.g. a fresh telemetry scan.
    x0:
        Optional ``(Vm, Va)`` warm start; flat start when omitted.
    label:
        Human-readable scenario tag.
    """

    delta: NetworkDelta | None = None
    z: np.ndarray | None = None
    x0: tuple[np.ndarray, np.ndarray] | None = None
    label: str = ""


@dataclass
class BatchEstimationResult:
    """Results of one batched estimation, per scenario and stacked.

    ``results[k]`` is a full :class:`EstimationResult` for scenario k
    (identical fields to the serial estimator); the stacked ``Vm``/``Va``
    ``(K, n)`` views and the ``converged``/``iterations`` vectors serve
    batch-level consumers.
    """

    results: list[EstimationResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, k: int) -> EstimationResult:
        return self.results[k]

    @property
    def Vm(self) -> np.ndarray:
        return np.stack([r.Vm for r in self.results])

    @property
    def Va(self) -> np.ndarray:
        return np.stack([r.Va for r in self.results])

    @property
    def converged(self) -> np.ndarray:
        return np.array([r.converged for r in self.results])

    @property
    def iterations(self) -> np.ndarray:
        return np.array([r.iterations for r in self.results])


class BatchEstimator:
    """Gauss-Newton WLS over K scenarios sharing one base network + mset.

    Parameters
    ----------
    net, mset:
        Base network and measurement set (as for ``WlsEstimator``).
    solver:
        ``"lu"`` (default) runs the batched block-diagonal solve.  Any
        other ``WlsEstimator`` solver string is accepted but falls back to
        per-scenario serial estimation (the batched normal-equation kernel
        is LU-only).
    reference_bus:
        Angle reference when no PMU angles are present (default: first
        slack bus).
    max_batch:
        Upper bound on scenarios per block solve; larger batches are
        chunked to bound the block-matrix working set.
    """

    def __init__(
        self,
        net: Network,
        mset: MeasurementSet,
        *,
        solver: str = "lu",
        reference_bus: int | None = None,
        max_batch: int = 64,
    ):
        self.net = net
        self.mset = mset
        self.solver = solver
        self.model = MeasurementModel(net, mset)
        self.max_batch = int(max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.has_pmu_angles = mset.count(MeasType.PMU_VA) > 0
        if reference_bus is None:
            slacks = net.slack_buses
            reference_bus = int(slacks[0]) if len(slacks) else 0
        self.reference_bus = int(reference_bus)

        n = net.n_bus
        if self.has_pmu_angles:
            self._keep = np.arange(2 * n)
        else:
            self._keep = np.delete(np.arange(2 * n), self.reference_bus)
        self._bsolver = BatchGainSolver()
        self._wls_base: WlsEstimator | None = None

    @property
    def n_states(self) -> int:
        """Number of free state variables per scenario."""
        return len(self._keep)

    # ------------------------------------------------------------------
    def _serial_for(self, delta: NetworkDelta | None) -> WlsEstimator:
        """A serial estimator on the (forked) scenario network."""
        if delta is None or delta.is_empty:
            if self._wls_base is None:
                self._wls_base = WlsEstimator(
                    self.net, self.mset,
                    solver=self.solver, reference_bus=self.reference_bus,
                )
            return self._wls_base
        return WlsEstimator(
            self.net.fork(delta), self.mset,
            solver=self.solver, reference_bus=self.reference_bus,
        )

    @staticmethod
    def _as_scenario(sc) -> BatchScenario:
        if sc is None:
            return BatchScenario()
        if isinstance(sc, BatchScenario):
            return sc
        if isinstance(sc, NetworkDelta):
            return BatchScenario(delta=sc, label=sc.label)
        raise TypeError(f"cannot interpret {type(sc).__name__} as a scenario")

    # ------------------------------------------------------------------
    def estimate(self, scenario=None, **kwargs) -> EstimationResult:
        """Single-scenario convenience wrapper (serial path)."""
        return self.estimate_batch([scenario], **kwargs).results[0]

    def estimate_batch(
        self,
        scenarios,
        *,
        tol: float = 1e-8,
        max_iter: int = 25,
        reference_angle: float = 0.0,
    ) -> BatchEstimationResult:
        """Estimate every scenario; one block solve per iteration per chunk.

        Accepts :class:`BatchScenario` items, bare ``NetworkDelta`` items,
        or ``None`` (the base case).  Raises :class:`EstimationError` on an
        underdetermined set or a failed normal-equation solve, like the
        serial estimator.
        """
        scs = [self._as_scenario(s) for s in scenarios]
        if len(self.mset) < self.n_states:
            raise EstimationError(
                f"underdetermined: {len(self.mset)} measurements for "
                f"{self.n_states} states"
            )
        out = BatchEstimationResult()
        for lo in range(0, len(scs), self.max_batch):
            chunk = scs[lo : lo + self.max_batch]
            if len(chunk) == 1 or self.solver != "lu":
                for sc in chunk:
                    est = self._serial_for(sc.delta)
                    out.results.append(
                        est.estimate(
                            x0=sc.x0, tol=tol, max_iter=max_iter,
                            reference_angle=reference_angle, z=sc.z,
                        )
                    )
            else:
                out.results.extend(
                    self._estimate_chunk(chunk, tol, max_iter, reference_angle)
                )
        return out

    # ------------------------------------------------------------------
    def _estimate_chunk(
        self,
        scs: list[BatchScenario],
        tol: float,
        max_iter: int,
        reference_angle: float,
    ) -> list[EstimationResult]:
        net, model, ms = self.net, self.model, self.mset
        n, m = net.n_bus, len(ms)
        K = len(scs)

        z = np.empty((K, m))
        for k, sc in enumerate(scs):
            if sc.z is None:
                z[k] = ms.z
            elif len(sc.z) != m:
                raise ValueError("z override length mismatch")
            else:
                z[k] = sc.z

        # Per-scenario admittances only when some delta flips a branch;
        # otherwise one broadcast column serves the whole batch.
        if any(sc.delta is not None and sc.delta.touches_topology for sc in scs):
            status = np.repeat(net.br_status[None, :].astype(float), K, axis=0)
            for k, sc in enumerate(scs):
                if sc.delta is not None and len(sc.delta.br_idx):
                    status[k, sc.delta.br_idx] = sc.delta.br_val
            ops = model.batch_operators(status)
        else:
            ops = model.batch_operators()

        Vm = np.ones((K, n))
        Va = np.full((K, n), reference_angle)
        for k, sc in enumerate(scs):
            if sc.x0 is not None:
                Vm[k] = sc.x0[0]
                Va[k] = sc.x0[1]
        if not self.has_pmu_angles:
            Va[:, self.reference_bus] = reference_angle

        w = ms.weights
        structure = model.jacobian_structure(self._keep)
        ns = self.n_states

        iterations = np.zeros(K, dtype=np.int64)
        converged = np.zeros(K, dtype=bool)
        step_norms: list[list[float]] = [[] for _ in range(K)]
        active = np.arange(K)

        r = z - model.h_batch(Vm, Va, ops)
        it = 0
        while len(active) and it < max_iter:
            it += 1
            sel = ops.select(active)
            H = structure.fill_batch(Vm[active], Va[active], sel)
            try:
                dx = self._bsolver.solve(H, w, r[active])
            except Exception as exc:
                raise EstimationError(
                    f"normal-equation solve failed: {exc}"
                ) from exc

            full_dx = np.zeros((len(active), 2 * n))
            full_dx[:, self._keep] = dx
            Va[active] += full_dx[:, :n]
            Vm[active] += full_dx[:, n:]
            r[active] = z[active] - model.h_batch(Vm[active], Va[active], sel)
            steps = (
                np.max(np.abs(dx), axis=1) if ns else np.zeros(len(active))
            )
            iterations[active] = it
            for j, k in enumerate(active):
                step_norms[k].append(float(steps[j]))
            done = steps < tol
            converged[active[done]] = True
            active = active[~done]

        return [
            EstimationResult(
                converged=bool(converged[k]),
                iterations=int(iterations[k]),
                Vm=Vm[k],
                Va=Va[k],
                residuals=r[k],
                objective=float(r[k] @ (w * r[k])),
                dof=m - ns,
                step_norms=step_norms[k],
            )
            for k in range(K)
        ]
