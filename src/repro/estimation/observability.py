"""Observability analysis.

Numerical observability in the Monticelli-Wu sense, on the decoupled
(DC-like) model: the network is observable when the angle-part Jacobian of
the real-power measurements has full rank over the angle states (minus the
reference).  :func:`observable_islands` recovers the maximal observable
islands from the null space of that Jacobian — buses whose angle difference
is fixed by the measurements end up in the same island.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as la

from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet

__all__ = ["angle_jacobian", "is_observable", "observable_islands"]


def angle_jacobian(net: Network, mset: MeasurementSet) -> np.ndarray:
    """Dense angle-part Jacobian of the P/angle measurements at flat start.

    Rows: P injections, P flows (both ends) and PMU angles; columns: bus
    angles.  This is the linearised DC observability model.
    """
    keep_types = (
        MeasType.P_INJ,
        MeasType.P_FLOW_F,
        MeasType.P_FLOW_T,
        MeasType.PMU_VA,
    )
    rows = np.concatenate([mset.rows(t) for t in keep_types]) if len(mset) else np.array([], int)
    model = MeasurementModel(net, mset)
    n = net.n_bus
    Vm = np.ones(n)
    Va = np.zeros(n)
    H = model.jacobian(Vm, Va).tocsr()
    return H[rows.astype(int)][:, :n].toarray()


def is_observable(net: Network, mset: MeasurementSet, *, tol: float = 1e-8) -> bool:
    """True when the measurement set observes the whole network.

    Checks that the angle Jacobian has rank ``n-1`` (rank ``n`` with PMU
    angles) over the bus angles.
    """
    Ha = angle_jacobian(net, mset)
    if Ha.size == 0:
        return net.n_bus == 1
    need = net.n_bus - (0 if mset.count(MeasType.PMU_VA) else 1)
    return np.linalg.matrix_rank(Ha, tol=tol) >= need


def observable_islands(
    net: Network, mset: MeasurementSet, *, tol: float = 1e-8
) -> list[np.ndarray]:
    """Maximal observable islands as arrays of bus indices.

    Buses are grouped by their rows in an orthonormal basis of the angle
    Jacobian's null space (plus the constant vector): two buses whose null
    space rows coincide have a measurement-determined angle difference.
    For a fully observable network this returns a single island.
    """
    n = net.n_bus
    Ha = angle_jacobian(net, mset)
    if Ha.size == 0:
        return [np.array([b]) for b in range(n)]

    ns = la.null_space(Ha, rcond=tol)
    if mset.count(MeasType.PMU_VA) == 0:
        # Without an absolute angle reference the constant vector is always
        # in the null space; it does not separate buses, so ignore it by
        # projecting it out.
        ones = np.ones((n, 1)) / np.sqrt(n)
        if ns.size:
            ns = ns - ones @ (ones.T @ ns)
        # Re-orthonormalise the remainder.
        if ns.size:
            q, r = np.linalg.qr(ns)
            keep = np.abs(np.diag(r)) > tol
            ns = q[:, keep]

    if ns.size == 0:
        return [np.arange(n)]

    # Two buses are in the same island iff their null-space rows agree.
    rows = np.round(ns / tol) * tol  # quantise against fp jitter
    # Use row bytes as grouping key.
    groups: dict[bytes, list[int]] = {}
    for b in range(n):
        groups.setdefault(rows[b].tobytes(), []).append(b)
    islands = [np.array(sorted(v)) for v in groups.values()]
    islands.sort(key=lambda a: int(a[0]))
    return islands
