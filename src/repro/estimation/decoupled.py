"""Fast-decoupled state estimation.

The classic speed-oriented WLS variant: under the usual transmission-system
assumptions (high X/R, small angles, near-nominal voltage) the P/θ and
Q-V/|V| problems decouple and their gain matrices are *constant*, so both
are factorised once and each iteration costs only two triangular solves —
the trick that made real-time estimation feasible on 1980s control-centre
hardware and still the fastest per-cycle option for the paper's 10 ms –
1 s target window.

Active channels: P injections / P flows update angles; Q injections /
Q flows / voltage magnitudes update magnitudes.  PMU angle channels join
the active half.  Current-magnitude channels are not supported (they
couple both halves) — use the full Newton estimator for those.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasType, MeasurementSet
from .results import EstimationResult
from .solvers import build_gain
from .wls import EstimationError

__all__ = ["fast_decoupled_estimate"]

_P_TYPES = (MeasType.P_INJ, MeasType.P_FLOW_F, MeasType.P_FLOW_T, MeasType.PMU_VA)
_Q_TYPES = (MeasType.Q_INJ, MeasType.Q_FLOW_F, MeasType.Q_FLOW_T, MeasType.V_MAG)


def fast_decoupled_estimate(
    net: Network,
    mset: MeasurementSet,
    *,
    tol: float = 1e-8,
    max_iter: int = 60,
    reference_bus: int | None = None,
) -> EstimationResult:
    """Fast-decoupled WLS estimation.

    Raises :class:`EstimationError` when the set contains current-magnitude
    channels or lacks observability in either half.
    """
    if mset.count(MeasType.I_MAG_F):
        raise EstimationError(
            "fast-decoupled estimation does not support current magnitudes"
        )
    p_rows = np.concatenate([mset.rows(t) for t in _P_TYPES])
    q_rows = np.concatenate([mset.rows(t) for t in _Q_TYPES])
    if not p_rows.size or not q_rows.size:
        raise EstimationError("need both active and reactive measurements")
    p_rows = np.sort(p_rows).astype(int)
    q_rows = np.sort(q_rows).astype(int)

    n = net.n_bus
    model = MeasurementModel(net, mset)
    has_pmu = mset.count(MeasType.PMU_VA) > 0
    if reference_bus is None:
        slacks = net.slack_buses
        reference_bus = int(slacks[0]) if len(slacks) else 0
    keep_a = np.arange(n) if has_pmu else np.delete(np.arange(n), reference_bus)
    keep_m = np.arange(n)

    if len(p_rows) < len(keep_a) or len(q_rows) < n:
        raise EstimationError("underdetermined decoupled estimation")

    # Constant gain matrices from the flat-start Jacobian.
    Vm = np.ones(n)
    Va = np.zeros(n)
    H0 = model.jacobian(Vm, Va).tocsc()
    Hp = H0[p_rows][:, keep_a]
    Hq = H0[q_rows][:, n + keep_m]
    wp = mset.weights[p_rows]
    wq = mset.weights[q_rows]
    try:
        lu_p = spla.splu(build_gain(Hp, wp))
        lu_q = spla.splu(build_gain(Hq, wq))
    except RuntimeError as exc:
        raise EstimationError(f"decoupled gain factorisation failed: {exc}") from exc

    zp = mset.z[p_rows]
    zq = mset.z[q_rows]
    step_norms: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        h = model.h(Vm, Va)
        da = lu_p.solve(Hp.T @ (wp * (zp - h[p_rows])))
        Va[keep_a] += da

        h = model.h(Vm, Va)
        dm = lu_q.solve(Hq.T @ (wq * (zq - h[q_rows])))
        Vm[keep_m] += dm

        step = max(
            float(np.max(np.abs(da))) if da.size else 0.0,
            float(np.max(np.abs(dm))) if dm.size else 0.0,
        )
        step_norms.append(step)
        if step < tol:
            converged = True
            break

    r = mset.z - model.h(Vm, Va)
    w = mset.weights
    n_states = len(keep_a) + n
    return EstimationResult(
        converged=converged,
        iterations=it,
        Vm=Vm,
        Va=Va,
        residuals=r,
        objective=float(r @ (w * r)),
        dof=len(mset) - n_states,
        step_norms=step_norms,
    )
