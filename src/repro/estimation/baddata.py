"""Bad-data detection and identification.

Standard WLS post-processing (Abur & Expósito, ch. 5):

- :func:`chi_square_test` — global detection: the WLS objective follows a
  chi-square distribution with ``m - n`` degrees of freedom under the
  Gaussian hypothesis.
- :func:`normalized_residuals` — per-measurement normalized residuals using
  the residual covariance ``Ω = R - H G⁻¹ Hᵀ``.
- :func:`identify_bad_data` — the largest-normalized-residual loop: remove
  the worst measurement, re-estimate, repeat until the test passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.stats import chi2

from ..grid.network import Network
from ..measurements.types import MeasurementSet
from .results import EstimationResult
from .solvers import build_gain
from .wls import WlsEstimator

__all__ = [
    "chi_square_test",
    "normalized_residuals",
    "BadDataReport",
    "identify_bad_data",
]


def chi_square_test(result: EstimationResult, *, alpha: float = 0.01) -> bool:
    """True when the estimate passes the global chi-square test.

    ``alpha`` is the false-alarm probability; the test passes when the WLS
    objective is below the (1 - alpha) quantile of chi2(dof).
    """
    if result.dof <= 0:
        return True  # no redundancy, nothing to test
    threshold = chi2.ppf(1.0 - alpha, df=result.dof)
    return result.objective <= threshold


def normalized_residuals(
    estimator: WlsEstimator, result: EstimationResult
) -> np.ndarray:
    """Normalized residuals ``|r_i| / sqrt(Ω_ii)``.

    ``Ω = R - H G⁻¹ Hᵀ`` is the residual covariance; its diagonal is
    computed column-block-wise through the sparse gain factorisation, so
    only ``m`` solves of the factored system are needed (no dense m×m
    matrix is formed).
    """
    ms = estimator.mset
    Vm, Va = result.Vm, result.Va
    H = estimator.model.jacobian(Vm, Va).tocsc()[:, estimator._keep]
    w = ms.weights
    G = build_gain(H, w)
    lu = spla.splu(G.tocsc())

    # diag(H G^-1 Ht) = sum over columns of (H G^-1 Ht) ∘ I; compute via
    # S = G^-1 Ht (n x m) in blocks, then diag = sum(H ∘ Sᵀ, axis=1).
    Ht = H.T.tocsc()
    m = H.shape[0]
    diag_hght = np.empty(m)
    block = 256
    Hcsr = H.tocsr()
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        rhs = Ht[:, lo:hi].toarray()
        S = lu.solve(rhs)
        seg = Hcsr[lo:hi].multiply(S.T[: hi - lo])
        diag_hght[lo:hi] = np.asarray(seg.sum(axis=1)).ravel()

    Rdiag = ms.sigma**2
    omega = Rdiag - diag_hght
    # Leverage points can drive Ω_ii to ~0; floor it to keep ratios finite.
    omega = np.maximum(omega, 1e-12)
    return np.abs(result.residuals) / np.sqrt(omega)


@dataclass
class BadDataReport:
    """Outcome of the identification loop."""

    clean: MeasurementSet
    removed_rows: list[int]
    result: EstimationResult
    passes_chi_square: bool


def identify_bad_data(
    net: Network,
    mset: MeasurementSet,
    *,
    alpha: float = 0.01,
    nr_threshold: float = 3.0,
    max_removals: int = 20,
    solver: str = "lu",
) -> BadDataReport:
    """Largest-normalized-residual identification loop.

    Estimates, tests, removes the measurement with the largest normalized
    residual above ``nr_threshold``, and repeats.  Row indices in
    ``removed_rows`` refer to the *original* measurement set.
    """
    current = mset
    # Track original row identity through removals.
    orig_rows = list(range(len(mset)))
    removed: list[int] = []

    for _ in range(max_removals + 1):
        est = WlsEstimator(net, current, solver=solver)
        result = est.estimate()
        if chi_square_test(result, alpha=alpha):
            return BadDataReport(
                clean=current, removed_rows=removed, result=result,
                passes_chi_square=True,
            )
        rn = normalized_residuals(est, result)
        worst = int(np.argmax(rn))
        if rn[worst] < nr_threshold or len(removed) >= max_removals:
            return BadDataReport(
                clean=current, removed_rows=removed, result=result,
                passes_chi_square=False,
            )
        removed.append(orig_rows[worst])
        keep = np.ones(len(current), dtype=bool)
        keep[worst] = False
        orig_rows = [r for k, r in zip(keep, orig_rows) if k]
        current = current.subset(keep)

    raise AssertionError("unreachable")  # pragma: no cover
