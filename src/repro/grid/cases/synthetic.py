"""Synthetic grid generator.

Builds parametric multi-area transmission systems for scaling studies — in
particular the WECC-scale extension the paper names as ongoing work (37
balancing authorities).  Each area is a random connected mesh; areas are
joined by tie lines along a random connected area graph, mirroring the
balancing-authority structure that distributed state estimation assumes.

Generation is sized to cover the load with margin in every area so the AC
power flow converges from a flat start for any seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network import Network

__all__ = ["SyntheticGridSpec", "synthetic_grid"]


@dataclass(frozen=True)
class SyntheticGridSpec:
    """Parameters of a synthetic multi-area grid.

    Attributes
    ----------
    n_areas:
        Number of areas (balancing authorities).
    buses_per_area:
        Buses in each area.
    mesh_degree:
        Average number of extra intra-area edges per bus beyond the spanning
        tree (0 gives a radial area).
    ties_per_border:
        Tie lines per adjacent area pair.
    area_degree:
        Average extra adjacencies per area beyond the area spanning tree.
    load_mw:
        Mean bus load in MW (half the buses carry load).
    seed:
        RNG seed; the same spec + seed always yields the same grid.
    """

    n_areas: int = 9
    buses_per_area: int = 13
    mesh_degree: float = 0.8
    ties_per_border: int = 2
    area_degree: float = 0.4
    load_mw: float = 40.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_areas < 1:
            raise ValueError("n_areas must be >= 1")
        if self.buses_per_area < 2:
            raise ValueError("buses_per_area must be >= 2")


def synthetic_grid(spec: SyntheticGridSpec | None = None, **kwargs) -> Network:
    """Generate a synthetic grid.

    Either pass a :class:`SyntheticGridSpec` or the spec's fields as keyword
    arguments.  Returns a connected :class:`Network` whose AC power flow
    converges from a flat start.
    """
    if spec is None:
        spec = SyntheticGridSpec(**kwargs)
    elif kwargs:
        raise TypeError("pass either a spec or keyword arguments, not both")

    rng = np.random.default_rng(spec.seed)
    n = spec.n_areas * spec.buses_per_area
    bus_area = np.repeat(np.arange(spec.n_areas), spec.buses_per_area)

    edges: list[tuple[int, int]] = []
    # Intra-area: random spanning tree + extra mesh edges.
    for a in range(spec.n_areas):
        lo = a * spec.buses_per_area
        members = np.arange(lo, lo + spec.buses_per_area)
        order = rng.permutation(members)
        for k in range(1, len(order)):
            attach = order[rng.integers(0, k)]
            edges.append((int(order[k]), int(attach)))
        n_extra = int(round(spec.mesh_degree * spec.buses_per_area))
        for _ in range(n_extra):
            u, v = rng.choice(members, size=2, replace=False)
            edges.append((int(u), int(v)))

    # Area graph: spanning tree + extra adjacencies; tie lines per border.
    borders: list[tuple[int, int]] = []
    area_order = rng.permutation(spec.n_areas)
    for k in range(1, spec.n_areas):
        attach = area_order[rng.integers(0, k)]
        borders.append((int(area_order[k]), int(attach)))
    for _ in range(int(round(spec.area_degree * spec.n_areas))):
        if spec.n_areas < 2:
            break
        a, b = rng.choice(spec.n_areas, size=2, replace=False)
        if (a, b) not in borders and (b, a) not in borders:
            borders.append((int(a), int(b)))
    for a, b in borders:
        for _ in range(spec.ties_per_border):
            u = int(rng.integers(a * spec.buses_per_area, (a + 1) * spec.buses_per_area))
            v = int(rng.integers(b * spec.buses_per_area, (b + 1) * spec.buses_per_area))
            edges.append((u, v))

    # Deduplicate (keep first occurrence) and drop accidental self-loops.
    seen: set[tuple[int, int]] = set()
    uniq: list[tuple[int, int]] = []
    for u, v in edges:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            uniq.append((u, v))

    # Loads: roughly half the buses carry load.
    Pd = np.zeros(n)
    Qd = np.zeros(n)
    load_buses = rng.random(n) < 0.5
    load_buses[0] = False  # keep the slack bus clean for readability
    Pd[load_buses] = rng.uniform(0.4, 1.6, load_buses.sum()) * spec.load_mw
    Qd[load_buses] = Pd[load_buses] * rng.uniform(0.2, 0.5, load_buses.sum())

    # Generators: one or two PV buses per area sized to cover area load + margin.
    gen_rows = []
    bus_type = np.ones(n, dtype=int)
    slack_bus = 0
    bus_type[slack_bus] = 3
    total_load = Pd.sum()
    for a in range(spec.n_areas):
        lo = a * spec.buses_per_area
        members = np.arange(lo, lo + spec.buses_per_area)
        area_load = Pd[members].sum()
        n_units = 2 if spec.buses_per_area >= 8 else 1
        gen_buses = rng.choice(members, size=n_units, replace=False)
        for gb in gen_buses:
            if gb == slack_bus:
                continue
            bus_type[gb] = 2
            # Slight over-generation per area: the slack then only absorbs
            # losses plus a small residual, instead of serving a system-wide
            # deficit through its handful of incident lines.
            pg = area_load / n_units * rng.uniform(1.0, 1.1)
            vg = rng.uniform(1.0, 1.04)
            qlim = max(50.0, 0.8 * pg)
            gen_rows.append([gb + 1, pg, 0.0, qlim, -qlim, vg, 100, 1, pg * 2 + 50, 0])
    # The slack unit balances losses and the small area residuals.
    gen_rows.append(
        [slack_bus + 1, 0.0, 0.0, total_load, -total_load, 1.02, 100, 1,
         2 * total_load + 100, 0]
    )

    bus_rows = [
        [i + 1, int(bus_type[i]), Pd[i], Qd[i], 0.0, 0.0, int(bus_area[i]) + 1,
         1.0, 0.0, 138.0, 1, 1.06, 0.94]
        for i in range(n)
    ]

    # Impedances shrink with area size so long random chains stay stiff
    # enough for the power flow to converge at any scale.
    x_scale = min(1.0, 13.0 / spec.buses_per_area)
    branch_rows = []
    for u, v in uniq:
        tie = bus_area[u] != bus_area[v]
        x = rng.uniform(0.02, 0.06) if tie else rng.uniform(0.02, 0.10) * x_scale
        r = x * rng.uniform(0.15, 0.35)
        b = x * rng.uniform(0.1, 0.3)
        branch_rows.append([u + 1, v + 1, r, x, b, 0, 0, 0, 0, 0, 1, -360, 360])

    case = {
        "name": f"synthetic[{spec.n_areas}x{spec.buses_per_area},seed={spec.seed}]",
        "baseMVA": 100.0,
        "bus": bus_rows,
        "gen": gen_rows,
        "branch": branch_rows,
    }
    return Network.from_case(case)
