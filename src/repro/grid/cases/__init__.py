"""Bundled test systems.

- :func:`case4` — a 4-bus didactic system used by unit tests.
- :func:`case14` — the IEEE 14-bus test case (the paper's per-subsystem size).
- :func:`case118` — the IEEE 118-bus test case, the paper's test system.
- :func:`synthetic_grid` — parametric synthetic grids up to WECC scale.

Each ``caseNN`` function returns a :class:`repro.grid.network.Network`; the
raw MATPOWER-style dictionaries are available via ``caseNN_dict``.
"""

from .case4 import case4, case4_dict
from .case14 import case14, case14_dict
from .case118 import case118, case118_dict
from .synthetic import SyntheticGridSpec, synthetic_grid

__all__ = [
    "case4",
    "case4_dict",
    "case14",
    "case14_dict",
    "case118",
    "case118_dict",
    "SyntheticGridSpec",
    "synthetic_grid",
]
