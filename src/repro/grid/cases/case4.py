"""A 4-bus didactic test system.

Small enough that power-flow and estimation results can be checked by hand;
used heavily by the unit tests.  One slack, one PV and two PQ buses in a
ring with one diagonal.
"""

from __future__ import annotations

from ..network import Network

__all__ = ["case4", "case4_dict"]


def case4_dict() -> dict:
    """MATPOWER-style dictionary for the 4-bus system."""
    return {
        "name": "case4",
        "baseMVA": 100.0,
        # BUS_I TYPE PD  QD  GS BS AREA VM    VA  KV  ZONE VMAX VMIN
        "bus": [
            [1, 3, 0.0, 0.0, 0, 0, 1, 1.02, 0.0, 138, 1, 1.06, 0.94],
            [2, 2, 30.0, 10.0, 0, 0, 1, 1.01, 0.0, 138, 1, 1.06, 0.94],
            [3, 1, 80.0, 30.0, 0, 0, 1, 1.00, 0.0, 138, 1, 1.06, 0.94],
            [4, 1, 50.0, 20.0, 0, 0, 2, 1.00, 0.0, 138, 1, 1.06, 0.94],
        ],
        # GEN_BUS PG   QG  QMAX QMIN VG    MBASE STATUS PMAX PMIN
        "gen": [
            [1, 0.0, 0.0, 150, -150, 1.02, 100, 1, 300, 0],
            [2, 80.0, 0.0, 100, -100, 1.01, 100, 1, 200, 0],
        ],
        # F T  R      X     B      RATEA RATEB RATEC TAP SHIFT STATUS ANGMIN ANGMAX
        "branch": [
            [1, 2, 0.01, 0.05, 0.02, 250, 250, 250, 0, 0, 1, -360, 360],
            [1, 3, 0.02, 0.08, 0.02, 250, 250, 250, 0, 0, 1, -360, 360],
            [2, 3, 0.02, 0.06, 0.02, 250, 250, 250, 0, 0, 1, -360, 360],
            [2, 4, 0.03, 0.10, 0.03, 250, 250, 250, 0, 0, 1, -360, 360],
            [3, 4, 0.02, 0.07, 0.02, 250, 250, 250, 0, 0, 1, -360, 360],
        ],
    }


def case4() -> Network:
    """The 4-bus system as a :class:`Network`."""
    return Network.from_case(case4_dict())
