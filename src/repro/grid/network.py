"""Power network data model.

The model is a struct-of-arrays representation of a transmission network in
per-unit: bus, branch and generator tables stored as NumPy arrays so that
admittance construction, power flow and measurement evaluation are fully
vectorised.  External bus numbers (the identifiers used in published test
cases, e.g. "bus 117" in the IEEE 118 system) are mapped to contiguous
internal indices ``0..n_bus-1``; all array columns use internal indices.

The :func:`Network.from_case` constructor accepts a MATPOWER-style case
dictionary, which is the format used by the bundled IEEE cases in
:mod:`repro.grid.cases`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BusType",
    "Network",
    "NetworkError",
]


class NetworkError(ValueError):
    """Raised for structurally invalid network data."""


class BusType:
    """Bus type codes (MATPOWER convention)."""

    PQ = 1
    PV = 2
    SLACK = 3
    ISOLATED = 4


# Column layouts of MATPOWER-style case dicts.
_BUS_COLS = 13  # BUS_I, TYPE, PD, QD, GS, BS, AREA, VM, VA, BASE_KV, ZONE, VMAX, VMIN
_GEN_COLS = 10  # GEN_BUS, PG, QG, QMAX, QMIN, VG, MBASE, STATUS, PMAX, PMIN
_BRANCH_COLS = 13  # F_BUS, T_BUS, R, X, B, RATE_A..C, TAP, SHIFT, STATUS, ANGMIN, ANGMAX


@dataclass
class Network:
    """A transmission network in per-unit struct-of-arrays form.

    Attributes
    ----------
    base_mva:
        System MVA base.
    bus_ids:
        External bus numbers, shape ``(n_bus,)``.
    bus_type:
        :class:`BusType` codes per bus.
    Pd, Qd:
        Real/reactive load in per-unit on ``base_mva``.
    Gs, Bs:
        Shunt conductance/susceptance in per-unit.
    area:
        Area number per bus (1-based, as in the case data).
    Vm0, Va0:
        Initial voltage magnitude (p.u.) and angle (radians).
    base_kv:
        Bus voltage base in kV.
    f, t:
        Branch terminal buses as internal indices.
    r, x, b:
        Branch series resistance/reactance and total line-charging
        susceptance (p.u.).
    tap:
        Off-nominal tap ratio (1.0 for lines).
    shift:
        Phase-shift angle in radians.
    br_status:
        1 for in-service branches, 0 otherwise.
    gen_bus:
        Internal bus index of each generator.
    Pg, Qg:
        Generator injections in per-unit.
    Vg:
        Generator voltage setpoint (p.u.).
    gen_status:
        1 for in-service units.
    name:
        Human-readable case name.
    """

    base_mva: float
    bus_ids: np.ndarray
    bus_type: np.ndarray
    Pd: np.ndarray
    Qd: np.ndarray
    Gs: np.ndarray
    Bs: np.ndarray
    area: np.ndarray
    Vm0: np.ndarray
    Va0: np.ndarray
    base_kv: np.ndarray
    f: np.ndarray
    t: np.ndarray
    r: np.ndarray
    x: np.ndarray
    b: np.ndarray
    tap: np.ndarray
    shift: np.ndarray
    br_status: np.ndarray
    gen_bus: np.ndarray
    Pg: np.ndarray
    Qg: np.ndarray
    Vg: np.ndarray
    gen_status: np.ndarray
    name: str = "network"
    _id_to_idx: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_case(cls, case: dict) -> "Network":
        """Build a network from a MATPOWER-style case dictionary.

        The dictionary must contain ``baseMVA`` (float), ``bus``, ``gen`` and
        ``branch`` (2-D array-likes with the standard MATPOWER columns).
        Loads, shunts and generation are converted to per-unit; angles to
        radians; bus numbers to internal indices.
        """
        bus = np.asarray(case["bus"], dtype=float)
        gen = np.asarray(case["gen"], dtype=float)
        branch = np.asarray(case["branch"], dtype=float)
        base_mva = float(case["baseMVA"])
        name = str(case.get("name", "network"))

        if bus.ndim != 2 or bus.shape[1] < _BUS_COLS:
            raise NetworkError(
                f"bus table must have >= {_BUS_COLS} columns, got {bus.shape}"
            )
        if gen.size and (gen.ndim != 2 or gen.shape[1] < _GEN_COLS):
            raise NetworkError(
                f"gen table must have >= {_GEN_COLS} columns, got {gen.shape}"
            )
        if branch.ndim != 2 or branch.shape[1] < _BRANCH_COLS:
            raise NetworkError(
                f"branch table must have >= {_BRANCH_COLS} columns, got {branch.shape}"
            )
        if base_mva <= 0:
            raise NetworkError("baseMVA must be positive")

        bus_ids = bus[:, 0].astype(np.int64)
        if len(np.unique(bus_ids)) != len(bus_ids):
            raise NetworkError("duplicate bus numbers in bus table")
        id_to_idx = {int(i): k for k, i in enumerate(bus_ids)}

        def _lookup(ids: np.ndarray, what: str) -> np.ndarray:
            try:
                return np.array([id_to_idx[int(i)] for i in ids], dtype=np.int64)
            except KeyError as exc:  # pragma: no cover - message path
                raise NetworkError(f"{what} references unknown bus {exc}") from exc

        tap = branch[:, 8].copy()
        tap[tap == 0.0] = 1.0  # MATPOWER encodes nominal taps as 0

        if gen.size:
            gen_bus = _lookup(gen[:, 0], "generator")
            Pg = gen[:, 1] / base_mva
            Qg = gen[:, 2] / base_mva
            Vg = gen[:, 5].copy()
            gen_status = (gen[:, 7] > 0).astype(np.int8)
        else:
            gen_bus = np.zeros(0, dtype=np.int64)
            Pg = Qg = Vg = np.zeros(0)
            gen_status = np.zeros(0, dtype=np.int8)

        net = cls(
            base_mva=base_mva,
            bus_ids=bus_ids,
            bus_type=bus[:, 1].astype(np.int8),
            Pd=bus[:, 2] / base_mva,
            Qd=bus[:, 3] / base_mva,
            Gs=bus[:, 4] / base_mva,
            Bs=bus[:, 5] / base_mva,
            area=bus[:, 6].astype(np.int64),
            Vm0=bus[:, 7].copy(),
            Va0=np.deg2rad(bus[:, 8]),
            base_kv=bus[:, 9].copy(),
            f=_lookup(branch[:, 0], "branch from"),
            t=_lookup(branch[:, 1], "branch to"),
            r=branch[:, 2].copy(),
            x=branch[:, 3].copy(),
            b=branch[:, 4].copy(),
            tap=tap,
            shift=np.deg2rad(branch[:, 9]),
            br_status=(branch[:, 10] > 0).astype(np.int8),
            gen_bus=gen_bus,
            Pg=Pg,
            Qg=Qg,
            Vg=Vg,
            gen_status=gen_status,
            name=name,
            _id_to_idx=id_to_idx,
        )
        net.validate()
        return net

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_bus(self) -> int:
        """Number of buses."""
        return len(self.bus_ids)

    @property
    def n_branch(self) -> int:
        """Number of branches (including out-of-service ones)."""
        return len(self.f)

    @property
    def n_gen(self) -> int:
        """Number of generator records."""
        return len(self.gen_bus)

    @property
    def slack_buses(self) -> np.ndarray:
        """Internal indices of slack (reference) buses."""
        return np.flatnonzero(self.bus_type == BusType.SLACK)

    @property
    def pv_buses(self) -> np.ndarray:
        """Internal indices of PV buses."""
        return np.flatnonzero(self.bus_type == BusType.PV)

    @property
    def pq_buses(self) -> np.ndarray:
        """Internal indices of PQ buses."""
        return np.flatnonzero(self.bus_type == BusType.PQ)

    def index_of(self, bus_id: int) -> int:
        """Map an external bus number to its internal index."""
        try:
            return self._id_to_idx[int(bus_id)]
        except KeyError as exc:
            raise NetworkError(f"unknown bus number {bus_id}") from exc

    def indices_of(self, bus_ids) -> np.ndarray:
        """Vectorised :meth:`index_of` over a sequence of bus numbers."""
        return np.array([self.index_of(b) for b in bus_ids], dtype=np.int64)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetworkError` if violated."""
        n = self.n_bus
        if n == 0:
            raise NetworkError("network has no buses")
        if not len(self.slack_buses):
            raise NetworkError("network has no slack bus")
        for name, arr in (("f", self.f), ("t", self.t), ("gen_bus", self.gen_bus)):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise NetworkError(f"{name} contains out-of-range bus indices")
        if np.any(self.f == self.t):
            raise NetworkError("self-loop branch (f == t)")
        live = self.br_status > 0
        if np.any((self.r[live] == 0.0) & (self.x[live] == 0.0)):
            raise NetworkError("branch with zero series impedance")
        if np.any(self.tap <= 0.0):
            raise NetworkError("non-positive tap ratio")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def bus_injections(self) -> tuple[np.ndarray, np.ndarray]:
        """Net scheduled complex injection per bus: (P, Q) in per-unit.

        Generation minus load, with out-of-service units excluded.  Used as
        the power-flow specification.
        """
        P = -self.Pd.copy()
        Q = -self.Qd.copy()
        if self.n_gen:
            on = self.gen_status > 0
            np.add.at(P, self.gen_bus[on], self.Pg[on])
            np.add.at(Q, self.gen_bus[on], self.Qg[on])
        return P, Q

    def live_branches(self) -> np.ndarray:
        """Indices of in-service branches."""
        return np.flatnonzero(self.br_status > 0)

    def adjacency_pairs(self) -> np.ndarray:
        """Unique unordered in-service bus pairs, shape ``(m, 2)``.

        Parallel branches collapse to one pair; used for topology analyses
        (islands, decomposition, tie-line identification).
        """
        live = self.live_branches()
        lo = np.minimum(self.f[live], self.t[live])
        hi = np.maximum(self.f[live], self.t[live])
        pairs = np.unique(np.column_stack([lo, hi]), axis=0)
        return pairs

    def to_networkx(self):
        """Export the in-service topology as an undirected networkx graph.

        Nodes are internal bus indices with ``bus_id`` attributes; edges carry
        the branch index list in ``branches``.
        """
        import networkx as nx

        g = nx.Graph(name=self.name)
        for i in range(self.n_bus):
            g.add_node(i, bus_id=int(self.bus_ids[i]), area=int(self.area[i]))
        for k in self.live_branches():
            u, v = int(self.f[k]), int(self.t[k])
            if g.has_edge(u, v):
                g[u][v]["branches"].append(int(k))
            else:
                g.add_edge(u, v, branches=[int(k)])
        return g

    def fork(self, delta=None) -> "Network":
        """Copy-on-write scenario fork: base arrays plus a small delta.

        ``delta`` is a :class:`~repro.grid.delta.NetworkDelta` (or ``None``
        for a plain zero-cost view).  Only the arrays the delta touches are
        copied — forking is O(changed elements), never a deep copy — so the
        fork shares storage with its base and must be treated as read-only.
        Use :meth:`copy` (or ``delta.materialize``) for an owned snapshot.
        """
        if delta is None:
            from dataclasses import replace

            return replace(self)
        return delta.apply_to(self)

    def copy(self) -> "Network":
        """Deep copy (all arrays owned by the copy)."""
        return Network(
            base_mva=self.base_mva,
            bus_ids=self.bus_ids.copy(),
            bus_type=self.bus_type.copy(),
            Pd=self.Pd.copy(),
            Qd=self.Qd.copy(),
            Gs=self.Gs.copy(),
            Bs=self.Bs.copy(),
            area=self.area.copy(),
            Vm0=self.Vm0.copy(),
            Va0=self.Va0.copy(),
            base_kv=self.base_kv.copy(),
            f=self.f.copy(),
            t=self.t.copy(),
            r=self.r.copy(),
            x=self.x.copy(),
            b=self.b.copy(),
            tap=self.tap.copy(),
            shift=self.shift.copy(),
            br_status=self.br_status.copy(),
            gen_bus=self.gen_bus.copy(),
            Pg=self.Pg.copy(),
            Qg=self.Qg.copy(),
            Vg=self.Vg.copy(),
            gen_status=self.gen_status.copy(),
            name=self.name,
            _id_to_idx=dict(self._id_to_idx),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self.name!r}, n_bus={self.n_bus}, "
            f"n_branch={self.n_branch}, n_gen={self.n_gen})"
        )
