"""Topology connectivity analysis: electrical islands.

State estimation requires a connected observable network per estimator; the
decomposition code uses these helpers to check that subsystems are internally
connected and that the overall case is a single island.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from .network import Network

__all__ = ["find_islands", "is_single_island", "subgraph_components"]


def find_islands(net: Network) -> list[np.ndarray]:
    """Return the electrical islands as arrays of internal bus indices.

    Only in-service branches connect buses.  Islands are ordered by their
    smallest bus index; each island's indices are sorted.
    """
    labels = _component_labels(net.n_bus, net.adjacency_pairs())
    return _group(labels)


def is_single_island(net: Network) -> bool:
    """True when every bus is reachable from every other bus."""
    return len(find_islands(net)) == 1


def subgraph_components(
    n_bus: int, pairs: np.ndarray, members: np.ndarray
) -> list[np.ndarray]:
    """Connected components of the subgraph induced by ``members``.

    Parameters
    ----------
    n_bus:
        Total bus count (defines index space of ``pairs``).
    pairs:
        Unordered edge list, shape ``(m, 2)``.
    members:
        Bus indices defining the induced subgraph.

    Returns
    -------
    list of arrays of bus indices (in the original index space), one per
    connected component of the induced subgraph.
    """
    members = np.asarray(members, dtype=np.int64)
    pos = -np.ones(n_bus, dtype=np.int64)
    pos[members] = np.arange(len(members))
    if len(pairs):
        mask = (pos[pairs[:, 0]] >= 0) & (pos[pairs[:, 1]] >= 0)
        sub_pairs = np.column_stack([pos[pairs[mask, 0]], pos[pairs[mask, 1]]])
    else:
        sub_pairs = np.zeros((0, 2), dtype=np.int64)
    labels = _component_labels(len(members), sub_pairs)
    return [members[idx] for idx in _group(labels)]


def _component_labels(n: int, pairs: np.ndarray) -> np.ndarray:
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if len(pairs):
        data = np.ones(len(pairs))
        adj = sp.coo_matrix((data, (pairs[:, 0], pairs[:, 1])), shape=(n, n))
    else:
        adj = sp.coo_matrix((n, n))
    _, labels = connected_components(adj, directed=False)
    return labels


def _group(labels: np.ndarray) -> list[np.ndarray]:
    order = np.argsort(labels, kind="stable")
    groups: list[np.ndarray] = []
    if not len(labels):
        return groups
    sorted_labels = labels[order]
    starts = np.flatnonzero(np.r_[True, sorted_labels[1:] != sorted_labels[:-1]])
    bounds = np.r_[starts, len(labels)]
    for a, b in zip(bounds[:-1], bounds[1:]):
        groups.append(np.sort(order[a:b]))
    groups.sort(key=lambda g: int(g[0]))
    return groups
