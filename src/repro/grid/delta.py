"""Copy-on-write scenario forking for :class:`~repro.grid.network.Network`.

A *scenario* is the base network plus a small typed delta: branch-status
flips (outages / restorations), injection overrides (load changes) and
voltage-profile seeds.  :class:`NetworkDelta` stores the delta as compact
``(indices, values)`` pairs, so creating a scenario and shipping it to a
process-pool worker or over the wire costs O(changed elements) — never a
deep copy of the whole network.

:meth:`Network.fork` applies a delta copy-on-write: the forked network
*shares* every untouched array with its base and owns fresh copies only of
the columns the delta patches.  Forked networks must therefore be treated
as read-only views (as all estimation / power-flow code already does);
call :meth:`NetworkDelta.materialize` for a fully-owned deep copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

__all__ = ["DeltaError", "NetworkDelta"]


class DeltaError(ValueError):
    """Raised for structurally invalid scenario deltas."""


def _as_idx(idx) -> np.ndarray:
    return np.atleast_1d(np.asarray(idx, dtype=np.int64))


def _as_val(val, dtype=float) -> np.ndarray:
    return np.atleast_1d(np.asarray(val, dtype=dtype))


def _keep_last(idx: np.ndarray, val: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate an override list so the *last* write per index wins."""
    if len(idx) < 2:
        return idx, val
    # stable sort, then keep the final record of each run of equal indices
    order = np.argsort(idx, kind="stable")
    sidx, sval = idx[order], val[order]
    last = np.ones(len(sidx), dtype=bool)
    last[:-1] = sidx[1:] != sidx[:-1]
    return sidx[last], sval[last]


_EMPTY_IDX = np.zeros(0, dtype=np.int64)
_EMPTY_F = np.zeros(0, dtype=float)
_EMPTY_I8 = np.zeros(0, dtype=np.int8)


@dataclass(frozen=True)
class NetworkDelta:
    """A typed, compact difference against a base network.

    Every field is an ``(idx, val)`` pair; indices are internal bus/branch
    indices of the base network.  Deltas are immutable — build new ones
    with the class-method constructors and combine them with
    :meth:`compose`.

    Fields
    ------
    br_idx, br_val:
        Branch-status overrides (``0`` = out of service, ``1`` = in).
    pd_idx, pd_val / qd_idx, qd_val:
        Real/reactive load overrides in per-unit (absolute values, not
        increments).
    vm_idx, vm_val / va_idx, va_val:
        Stored voltage-profile seeds (``Vm0`` / ``Va0``) in p.u. / radians.
    label:
        Optional human-readable scenario tag.
    """

    br_idx: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    br_val: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    pd_idx: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    pd_val: np.ndarray = field(default_factory=lambda: _EMPTY_F)
    qd_idx: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    qd_val: np.ndarray = field(default_factory=lambda: _EMPTY_F)
    vm_idx: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    vm_val: np.ndarray = field(default_factory=lambda: _EMPTY_F)
    va_idx: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    va_val: np.ndarray = field(default_factory=lambda: _EMPTY_F)
    label: str = ""

    _PAIRS = (
        ("br_idx", "br_val"),
        ("pd_idx", "pd_val"),
        ("qd_idx", "qd_val"),
        ("vm_idx", "vm_val"),
        ("va_idx", "va_val"),
    )

    def __post_init__(self) -> None:
        for iname, vname in self._PAIRS:
            idx, val = getattr(self, iname), getattr(self, vname)
            if len(idx) != len(val):
                raise DeltaError(f"{iname}/{vname} length mismatch")
            if len(idx) and idx.min() < 0:
                raise DeltaError(f"{iname} contains negative indices")
        if len(self.br_val) and not np.isin(self.br_val, (0, 1)).all():
            raise DeltaError("branch status values must be 0 or 1")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def branch_outage(cls, *branches: int, label: str = "") -> "NetworkDelta":
        """Switch the given branches out of service."""
        idx = _as_idx(list(branches))
        return cls(br_idx=idx, br_val=np.zeros(len(idx), np.int8), label=label)

    @classmethod
    def branch_status(cls, idx, val, *, label: str = "") -> "NetworkDelta":
        """Explicit branch-status overrides (0/1 per index)."""
        return cls(br_idx=_as_idx(idx), br_val=_as_val(val, np.int8), label=label)

    @classmethod
    def load_override(
        cls, idx, *, Pd=None, Qd=None, label: str = ""
    ) -> "NetworkDelta":
        """Absolute per-unit load overrides at the given buses."""
        idx = _as_idx(idx)
        kw: dict = {"label": label}
        if Pd is not None:
            kw["pd_idx"], kw["pd_val"] = idx, _as_val(Pd)
        if Qd is not None:
            kw["qd_idx"], kw["qd_val"] = idx, _as_val(Qd)
        return cls(**kw)

    @classmethod
    def v0_seed(cls, Vm=None, Va=None, *, idx=None, label: str = "") -> "NetworkDelta":
        """Seed the stored voltage profile (``Vm0``/``Va0``).

        With ``idx=None`` the seed covers every bus of the given arrays
        (a warm start from a previous estimate).
        """
        kw: dict = {"label": label}
        if Vm is not None:
            vm = _as_val(Vm)
            kw["vm_idx"] = _as_idx(idx) if idx is not None else np.arange(
                len(vm), dtype=np.int64
            )
            kw["vm_val"] = vm
        if Va is not None:
            va = _as_val(Va)
            kw["va_idx"] = _as_idx(idx) if idx is not None else np.arange(
                len(va), dtype=np.int64
            )
            kw["va_val"] = va
        return cls(**kw)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return self.n_changes == 0

    @property
    def n_changes(self) -> int:
        """Number of overridden elements across all fields."""
        return sum(len(getattr(self, i)) for i, _ in self._PAIRS)

    @property
    def touches_topology(self) -> bool:
        """True when the delta flips any branch status."""
        return len(self.br_idx) > 0

    @property
    def nbytes(self) -> int:
        """Payload size of the delta arrays (the wire/process-pool cost)."""
        return sum(
            getattr(self, name).nbytes
            for pair in self._PAIRS
            for name in pair
        )

    # ------------------------------------------------------------------
    # Combination / application
    # ------------------------------------------------------------------
    def compose(self, other: "NetworkDelta") -> "NetworkDelta":
        """This delta followed by ``other`` (later writes win per index)."""
        kw: dict = {"label": other.label or self.label}
        for iname, vname in self._PAIRS:
            idx = np.concatenate([getattr(self, iname), getattr(other, iname)])
            val = np.concatenate([getattr(self, vname), getattr(other, vname)])
            kw[iname], kw[vname] = _keep_last(idx, val)
        return NetworkDelta(**kw)

    def _check_bounds(self, net) -> None:
        if len(self.br_idx) and self.br_idx.max() >= net.n_branch:
            raise DeltaError(
                f"branch override {self.br_idx.max()} >= n_branch {net.n_branch}"
            )
        for iname in ("pd_idx", "qd_idx", "vm_idx", "va_idx"):
            idx = getattr(self, iname)
            if len(idx) and idx.max() >= net.n_bus:
                raise DeltaError(
                    f"{iname} override {idx.max()} >= n_bus {net.n_bus}"
                )

    def apply_to(self, net):
        """Fork ``net`` copy-on-write (equivalent to ``net.fork(self)``).

        Only the arrays this delta touches are copied; everything else is
        shared with the base.  The result is a fully functional
        :class:`~repro.grid.network.Network` that must be treated as
        read-only.
        """
        self._check_bounds(net)
        patch: dict = {}

        def patched(arr: np.ndarray, idx: np.ndarray, val: np.ndarray):
            out = arr.copy()
            out[idx] = val
            return out

        if len(self.br_idx):
            patch["br_status"] = patched(
                net.br_status, self.br_idx, self.br_val.astype(net.br_status.dtype)
            )
        if len(self.pd_idx):
            patch["Pd"] = patched(net.Pd, self.pd_idx, self.pd_val)
        if len(self.qd_idx):
            patch["Qd"] = patched(net.Qd, self.qd_idx, self.qd_val)
        if len(self.vm_idx):
            patch["Vm0"] = patched(net.Vm0, self.vm_idx, self.vm_val)
        if len(self.va_idx):
            patch["Va0"] = patched(net.Va0, self.va_idx, self.va_val)
        if not patch:
            return replace(net)
        return replace(net, **patch)

    def materialize(self, net):
        """Eager deep copy of the forked scenario (all arrays owned)."""
        return self.apply_to(net).copy()

    def branch_status_of(self, net) -> np.ndarray:
        """The scenario's full branch-status vector (owned array)."""
        status = net.br_status.copy()
        if len(self.br_idx):
            status[self.br_idx] = self.br_val.astype(status.dtype)
        return status

    # ------------------------------------------------------------------
    # Wire / process-pool payload
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Compact plain-dict form for framing (O(changed elements))."""
        out: dict = {"label": self.label}
        for iname, vname in self._PAIRS:
            idx = getattr(self, iname)
            if len(idx):
                out[iname] = idx
                out[vname] = getattr(self, vname)
        return out

    @classmethod
    def from_payload(cls, payload: dict) -> "NetworkDelta":
        """Rebuild a delta from :meth:`to_payload` output."""
        return cls(**payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"{iname[:-4]}={len(getattr(self, iname))}"
            for iname, _ in self._PAIRS
            if len(getattr(self, iname))
        ]
        tag = f" {self.label!r}" if self.label else ""
        return f"NetworkDelta({', '.join(parts) or 'empty'}{tag})"
