"""Sparse admittance matrix construction.

Builds the bus admittance matrix ``Ybus`` and the branch admittance blocks
``(Yff, Yft, Ytf, Ytt)`` used by power flow and by the measurement-function
Jacobians.  The standard pi-model with off-nominal taps and phase shifters is
used:

    yff = (ys + j b/2) / tap^2
    yft = -ys / conj(tap_c),   ytf = -ys / tap_c,   ytt = ys + j b/2

with ``ys = 1/(r + jx)`` and complex tap ``tap_c = tap * exp(j shift)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .network import Network

__all__ = [
    "BranchAdmittances",
    "batch_branch_admittances",
    "branch_admittances",
    "build_ybus",
    "build_yf_yt",
]


@dataclass(frozen=True)
class BranchAdmittances:
    """Per-branch pi-model admittance terms (zero for out-of-service branches)."""

    yff: np.ndarray
    yft: np.ndarray
    ytf: np.ndarray
    ytt: np.ndarray


def branch_admittances(net: Network) -> BranchAdmittances:
    """Compute the four per-branch admittance terms for all branches."""
    status = net.br_status.astype(float)
    ys = status / (net.r + 1j * net.x)
    bc = status * net.b / 2.0
    tap_c = net.tap * np.exp(1j * net.shift)

    ytt = ys + 1j * bc
    yff = ytt / (net.tap * net.tap)
    yft = -ys / np.conj(tap_c)
    ytf = -ys / tap_c
    return BranchAdmittances(yff=yff, yft=yft, ytf=ytf, ytt=ytt)


def batch_branch_admittances(net: Network, status: np.ndarray) -> BranchAdmittances:
    """Per-scenario admittance terms for K branch-status vectors.

    ``status`` has shape ``(K, n_branch)``; the returned terms are
    column-stacked ``(n_branch, K)`` arrays (one column per scenario), the
    layout the batched measurement/Jacobian kernels consume.  Branch
    parameters are shared with the base network — only the status varies
    per scenario.
    """
    st = np.atleast_2d(np.asarray(status, dtype=float))
    if st.shape[1] != net.n_branch:
        raise ValueError(
            f"status must have {net.n_branch} columns, got {st.shape}"
        )
    st = st.T  # (nl, K)
    z = net.r + 1j * net.x
    # Dead zero-impedance branches are legal in case data; guard the 0/0.
    ys = st * np.where(z != 0, 1.0 / np.where(z != 0, z, 1.0), 0.0)[:, None]
    bc = st * (net.b / 2.0)[:, None]
    tap_c = (net.tap * np.exp(1j * net.shift))[:, None]

    ytt = ys + 1j * bc
    yff = ytt / (net.tap * net.tap)[:, None]
    yft = -ys / np.conj(tap_c)
    ytf = -ys / tap_c
    return BranchAdmittances(yff=yff, yft=yft, ytf=ytf, ytt=ytt)


def build_ybus(net: Network) -> sp.csr_matrix:
    """Build the n_bus x n_bus complex bus admittance matrix (CSR)."""
    n = net.n_bus
    adm = branch_admittances(net)
    ysh = net.Gs + 1j * net.Bs

    rows = np.concatenate([net.f, net.f, net.t, net.t, np.arange(n)])
    cols = np.concatenate([net.f, net.t, net.f, net.t, np.arange(n)])
    vals = np.concatenate([adm.yff, adm.yft, adm.ytf, adm.ytt, ysh])
    ybus = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    ybus.sum_duplicates()
    return ybus


def build_yf_yt(net: Network) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Build branch-to-bus admittance maps ``Yf`` and ``Yt``.

    ``Yf @ V`` gives the current injected into each branch at its *from* end
    and ``Yt @ V`` at its *to* end; both are ``n_branch x n_bus``.
    """
    nl, n = net.n_branch, net.n_bus
    adm = branch_admittances(net)
    il = np.arange(nl)
    rows = np.concatenate([il, il])
    cols = np.concatenate([net.f, net.t])
    yf = sp.coo_matrix(
        (np.concatenate([adm.yff, adm.yft]), (rows, cols)), shape=(nl, n)
    ).tocsr()
    yt = sp.coo_matrix(
        (np.concatenate([adm.ytf, adm.ytt]), (rows, cols)), shape=(nl, n)
    ).tocsr()
    return yf, yt
