"""Fluent network construction API.

For users assembling systems programmatically instead of loading case
files::

    net = (NetworkBuilder(base_mva=100)
           .add_bus(1, slack=True, vm=1.02)
           .add_bus(2, pd=30, qd=10)
           .add_bus(3, pd=80, qd=30)
           .add_gen(1, pg=0)
           .add_gen(2, pg=80, vg=1.01)
           .add_line(1, 2, r=0.01, x=0.05, b=0.02)
           .add_line(1, 3, r=0.02, x=0.08)
           .add_line(2, 3, r=0.02, x=0.06)
           .build())

Buses are identified by user-chosen numbers (any positive ints); the
builder validates references at ``build()`` through the normal
:class:`~repro.grid.network.Network` invariants.
"""

from __future__ import annotations

from .network import BusType, Network

__all__ = ["NetworkBuilder"]


class NetworkBuilder:
    """Incrementally builds a :class:`Network`."""

    def __init__(self, *, base_mva: float = 100.0, name: str = "built-network"):
        if base_mva <= 0:
            raise ValueError("base_mva must be positive")
        self.base_mva = base_mva
        self.name = name
        self._bus_rows: list[list[float]] = []
        self._gen_rows: list[list[float]] = []
        self._branch_rows: list[list[float]] = []
        self._bus_ids: set[int] = set()
        self._has_slack = False

    # ------------------------------------------------------------------
    def add_bus(
        self,
        bus_id: int,
        *,
        pd: float = 0.0,
        qd: float = 0.0,
        gs: float = 0.0,
        bs: float = 0.0,
        slack: bool = False,
        pv: bool = False,
        vm: float = 1.0,
        va_deg: float = 0.0,
        base_kv: float = 138.0,
        area: int = 1,
    ) -> "NetworkBuilder":
        """Add a bus.  ``pd``/``qd`` in MW/MVAr; ``slack`` marks the
        reference (exactly one required); ``pv`` marks a voltage-controlled
        bus (usually set implicitly by :meth:`add_gen`)."""
        if bus_id in self._bus_ids:
            raise ValueError(f"duplicate bus id {bus_id}")
        if slack and self._has_slack:
            raise ValueError("only one slack bus allowed")
        btype = BusType.SLACK if slack else (BusType.PV if pv else BusType.PQ)
        self._bus_rows.append(
            [bus_id, btype, pd, qd, gs, bs, area, vm, va_deg, base_kv, 1, 1.1, 0.9]
        )
        self._bus_ids.add(bus_id)
        self._has_slack = self._has_slack or slack
        return self

    def add_gen(
        self,
        bus_id: int,
        *,
        pg: float = 0.0,
        qg: float = 0.0,
        vg: float = 1.0,
        qmax: float = 9999.0,
        qmin: float = -9999.0,
        in_service: bool = True,
    ) -> "NetworkBuilder":
        """Add a generating unit at an existing bus.

        A PQ bus hosting an in-service unit is promoted to PV
        automatically (the standard convention)."""
        if bus_id not in self._bus_ids:
            raise ValueError(f"generator references unknown bus {bus_id}")
        self._gen_rows.append(
            [bus_id, pg, qg, qmax, qmin, vg, self.base_mva,
             1 if in_service else 0, max(pg * 2, 100.0), 0.0]
        )
        if in_service:
            for row in self._bus_rows:
                if row[0] == bus_id and row[1] == BusType.PQ:
                    row[1] = BusType.PV
        return self

    def add_line(
        self,
        from_bus: int,
        to_bus: int,
        *,
        r: float,
        x: float,
        b: float = 0.0,
        in_service: bool = True,
    ) -> "NetworkBuilder":
        """Add a transmission line (per-unit impedances)."""
        return self._add_branch(from_bus, to_bus, r, x, b, 0.0, 0.0, in_service)

    def add_transformer(
        self,
        from_bus: int,
        to_bus: int,
        *,
        x: float,
        r: float = 0.0,
        tap: float = 1.0,
        shift_deg: float = 0.0,
        in_service: bool = True,
    ) -> "NetworkBuilder":
        """Add a transformer with off-nominal tap and/or phase shift."""
        if tap <= 0:
            raise ValueError("tap must be positive")
        return self._add_branch(
            from_bus, to_bus, r, x, 0.0, tap, shift_deg, in_service
        )

    def _add_branch(self, f, t, r, x, b, tap, shift, in_service) -> "NetworkBuilder":
        for bus in (f, t):
            if bus not in self._bus_ids:
                raise ValueError(f"branch references unknown bus {bus}")
        self._branch_rows.append(
            [f, t, r, x, b, 0, 0, 0, tap, shift, 1 if in_service else 0,
             -360, 360]
        )
        return self

    # ------------------------------------------------------------------
    def build(self) -> Network:
        """Validate and return the network."""
        if not self._bus_rows:
            raise ValueError("no buses added")
        if not self._has_slack:
            raise ValueError("a slack bus is required (add_bus(..., slack=True))")
        case = {
            "name": self.name,
            "baseMVA": self.base_mva,
            "bus": [list(r) for r in self._bus_rows],
            "gen": [list(r) for r in self._gen_rows],
            "branch": [list(r) for r in self._branch_rows],
        }
        return Network.from_case(case)
