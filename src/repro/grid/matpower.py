"""MATPOWER ``.m`` case file I/O.

Reads and writes the MATPOWER case format (the lingua franca of power
system test data) so downstream users can bring their own systems instead
of the bundled cases.  The parser handles the standard ``mpc.baseMVA``,
``mpc.bus``, ``mpc.gen`` and ``mpc.branch`` assignments with MATLAB matrix
literals, comments, and both ``;``- and newline-separated rows.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from .network import Network

__all__ = ["parse_matpower", "load_matpower", "dump_matpower", "save_matpower"]

_MATRIX_RE = re.compile(
    r"mpc\.(?P<name>bus|gen|branch)\s*=\s*\[(?P<body>.*?)\]\s*;",
    re.DOTALL,
)
_BASE_RE = re.compile(r"mpc\.baseMVA\s*=\s*(?P<val>[0-9.eE+-]+)\s*;")
_NAME_RE = re.compile(r"function\s+mpc\s*=\s*(?P<name>\w+)")


def parse_matpower(text: str) -> dict:
    """Parse MATPOWER case text into a case dictionary.

    Returns ``{"name", "baseMVA", "bus", "gen", "branch"}`` compatible with
    :meth:`repro.grid.network.Network.from_case`.  Raises ``ValueError`` on
    missing sections or ragged matrices.
    """
    # strip comments
    clean = "\n".join(line.split("%", 1)[0] for line in text.splitlines())

    m = _BASE_RE.search(clean)
    if not m:
        raise ValueError("missing mpc.baseMVA")
    base_mva = float(m.group("val"))

    name_m = _NAME_RE.search(clean)
    name = name_m.group("name") if name_m else "matpower-case"

    case: dict = {"name": name, "baseMVA": base_mva}
    for m in _MATRIX_RE.finditer(clean):
        rows = []
        body = m.group("body")
        for raw in re.split(r"[;\n]", body):
            raw = raw.strip()
            if not raw:
                continue
            rows.append([float(x) for x in raw.replace(",", " ").split()])
        if not rows:
            raise ValueError(f"empty mpc.{m.group('name')} matrix")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise ValueError(f"ragged rows in mpc.{m.group('name')}")
        case[m.group("name")] = rows

    for section in ("bus", "gen", "branch"):
        if section not in case:
            raise ValueError(f"missing mpc.{section}")
    return case


def load_matpower(path: str | Path) -> Network:
    """Load a ``.m`` case file as a :class:`Network`."""
    return Network.from_case(parse_matpower(Path(path).read_text()))


def dump_matpower(net: Network) -> str:
    """Serialise a network to MATPOWER case text.

    Round-trips through :func:`parse_matpower`: the regenerated network has
    identical electrical data (floats are written with full precision).
    """
    fn_name = re.sub(r"\W", "_", net.name) or "case"

    def fmt(rows: np.ndarray) -> str:
        return "\n".join(
            "\t" + "\t".join(repr(float(x)) for x in row) + ";" for row in rows
        )

    bus = np.column_stack([
        net.bus_ids,
        net.bus_type,
        net.Pd * net.base_mva,
        net.Qd * net.base_mva,
        net.Gs * net.base_mva,
        net.Bs * net.base_mva,
        net.area,
        net.Vm0,
        np.rad2deg(net.Va0),
        net.base_kv,
        np.ones(net.n_bus),
        np.full(net.n_bus, 1.1),
        np.full(net.n_bus, 0.9),
    ])
    gen = np.column_stack([
        net.bus_ids[net.gen_bus],
        net.Pg * net.base_mva,
        net.Qg * net.base_mva,
        np.full(net.n_gen, 9999.0),
        np.full(net.n_gen, -9999.0),
        net.Vg,
        np.full(net.n_gen, net.base_mva),
        net.gen_status,
        np.full(net.n_gen, 9999.0),
        np.zeros(net.n_gen),
    ]) if net.n_gen else np.zeros((0, 10))
    branch = np.column_stack([
        net.bus_ids[net.f],
        net.bus_ids[net.t],
        net.r,
        net.x,
        net.b,
        np.zeros(net.n_branch),
        np.zeros(net.n_branch),
        np.zeros(net.n_branch),
        np.where(net.tap == 1.0, 0.0, net.tap),
        np.rad2deg(net.shift),
        net.br_status,
        np.full(net.n_branch, -360.0),
        np.full(net.n_branch, 360.0),
    ])

    parts = [
        f"function mpc = {fn_name}",
        f"%% {net.name} — written by repro.grid.matpower",
        "mpc.version = '2';",
        f"mpc.baseMVA = {net.base_mva!r};",
        "",
        "%% bus data",
        "mpc.bus = [",
        fmt(bus),
        "];",
        "",
        "%% generator data",
        "mpc.gen = [",
        fmt(gen),
        "];",
        "",
        "%% branch data",
        "mpc.branch = [",
        fmt(branch),
        "];",
    ]
    return "\n".join(parts) + "\n"


def save_matpower(net: Network, path: str | Path) -> None:
    """Write a network to a ``.m`` case file."""
    Path(path).write_text(dump_matpower(net))
