"""AC power flow (Newton-Raphson, polar form) and DC power flow.

The AC solver provides the "ground truth" operating point from which the
measurement substrate samples noisy SCADA/PMU telemetry.  It is a standard
full-Newton implementation on sparse matrices: PV buses hold voltage
magnitude, the slack bus holds magnitude and angle, and the Jacobian is the
polar ``dS/dV`` pair assembled in CSR form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .network import BusType, Network
from .ybus import build_yf_yt, build_ybus

__all__ = [
    "DcCompensationSolver",
    "PowerFlowResult",
    "PowerFlowError",
    "dsbus_dv",
    "run_ac_power_flow",
    "run_dc_power_flow",
    "run_dc_power_flow_batch",
]


class PowerFlowError(RuntimeError):
    """Raised when a power flow fails to converge."""


@dataclass
class PowerFlowResult:
    """Solved operating point.

    Attributes
    ----------
    converged:
        Whether the Newton iteration met the tolerance.
    iterations:
        Newton iterations used.
    Vm, Va:
        Bus voltage magnitude (p.u.) and angle (radians).
    P, Q:
        Net bus injections at the solution (p.u.).
    Pf, Qf, Pt, Qt:
        Branch flows at the from/to ends (p.u.).
    max_mismatch:
        Final infinity-norm of the power mismatch.
    """

    converged: bool
    iterations: int
    Vm: np.ndarray
    Va: np.ndarray
    P: np.ndarray
    Q: np.ndarray
    Pf: np.ndarray
    Qf: np.ndarray
    Pt: np.ndarray
    Qt: np.ndarray
    max_mismatch: float

    @property
    def V(self) -> np.ndarray:
        """Complex bus voltages."""
        return self.Vm * np.exp(1j * self.Va)


def dsbus_dv(ybus: sp.spmatrix, V: np.ndarray) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of complex bus injections w.r.t. voltage (polar).

    Returns ``(dS_dVa, dS_dVm)`` as sparse matrices; the standard MATPOWER
    formulation.
    """
    ib = ybus @ V
    diag_v = sp.diags(V)
    diag_ib = sp.diags(ib)
    diag_vnorm = sp.diags(V / np.abs(V))

    ds_dva = 1j * diag_v @ (diag_ib - ybus @ diag_v).conj()
    ds_dvm = diag_v @ (ybus @ diag_vnorm).conj() + diag_ib.conj() @ diag_vnorm
    return ds_dva.tocsr(), ds_dvm.tocsr()


def run_ac_power_flow(
    net: Network,
    *,
    tol: float = 1e-8,
    max_iter: int = 30,
    flat_start: bool = False,
) -> PowerFlowResult:
    """Solve the AC power flow for ``net`` with full Newton-Raphson.

    Parameters
    ----------
    net:
        The network to solve.
    tol:
        Convergence tolerance on the infinity norm of the mismatch (p.u.).
    max_iter:
        Maximum Newton iterations.
    flat_start:
        Start from ``Vm=1, Va=0`` (PV/slack setpoints still applied) instead
        of the case's stored voltage profile.

    Raises
    ------
    PowerFlowError
        If the iteration does not converge within ``max_iter``.
    """
    n = net.n_bus
    ybus = build_ybus(net)
    Pspec, Qspec = net.bus_injections()
    sbus = Pspec + 1j * Qspec

    Vm = np.ones(n) if flat_start else net.Vm0.copy()
    Va = np.zeros(n) if flat_start else net.Va0.copy()

    # Apply generator voltage setpoints at PV and slack buses.
    if net.n_gen:
        on = net.gen_status > 0
        gb = net.gen_bus[on]
        held = np.isin(net.bus_type[gb], (BusType.PV, BusType.SLACK))
        Vm[gb[held]] = net.Vg[on][held]

    pv = net.pv_buses
    pq = net.pq_buses
    pvpq = np.concatenate([pv, pq])
    npv, npq = len(pv), len(pq)

    def mismatch(V: np.ndarray) -> np.ndarray:
        s_calc = V * np.conj(ybus @ V)
        ds = s_calc - sbus
        return np.concatenate([ds.real[pvpq], ds.imag[pq]])

    V = Vm * np.exp(1j * Va)
    F = mismatch(V)
    converged = bool(np.max(np.abs(F)) < tol) if F.size else True
    it = 0

    while not converged and it < max_iter:
        it += 1
        ds_dva, ds_dvm = dsbus_dv(ybus, V)
        j11 = ds_dva[np.ix_(pvpq, pvpq)].real
        j12 = ds_dvm[np.ix_(pvpq, pq)].real
        j21 = ds_dva[np.ix_(pq, pvpq)].imag
        j22 = ds_dvm[np.ix_(pq, pq)].imag
        jac = sp.bmat([[j11, j12], [j21, j22]], format="csc")

        dx = spla.spsolve(jac, F)

        # Damped Newton: halve the step while it increases the mismatch
        # norm.  Full steps are taken on well-behaved cases (no extra cost);
        # the backtracking keeps weak synthetic grids from diverging.
        f_old = np.linalg.norm(F)
        step = 1.0
        for _ in range(12):
            Va_new = Va.copy()
            Vm_new = Vm.copy()
            Va_new[pvpq] -= step * dx[: npv + npq]
            Vm_new[pq] -= step * dx[npv + npq :]
            F_new = mismatch(Vm_new * np.exp(1j * Va_new))
            if np.linalg.norm(F_new) < f_old or step < 1e-3:
                break
            step *= 0.5
        Va, Vm, F = Va_new, Vm_new, F_new
        V = Vm * np.exp(1j * Va)
        converged = bool(np.max(np.abs(F)) < tol)

    if not converged:
        raise PowerFlowError(
            f"power flow for {net.name!r} did not converge in {max_iter} "
            f"iterations (max mismatch {np.max(np.abs(F)):.3e})"
        )

    s_calc = V * np.conj(ybus @ V)
    yf, yt = build_yf_yt(net)
    sf = V[net.f] * np.conj(yf @ V)
    st = V[net.t] * np.conj(yt @ V)

    return PowerFlowResult(
        converged=True,
        iterations=it,
        Vm=Vm,
        Va=Va,
        P=s_calc.real,
        Q=s_calc.imag,
        Pf=sf.real,
        Qf=sf.imag,
        Pt=st.real,
        Qt=st.imag,
        max_mismatch=float(np.max(np.abs(F))) if F.size else 0.0,
    )


def run_dc_power_flow(net: Network) -> PowerFlowResult:
    """Solve the lossless DC approximation ``P = B' theta``.

    Voltage magnitudes are fixed at 1 p.u.; angles come from the reduced
    susceptance system with the (first) slack bus as reference.  Branch
    reactive flows are zero by construction.
    """
    n = net.n_bus
    live = net.live_branches()
    f, t = net.f[live], net.t[live]
    bsus = 1.0 / (net.x[live] * net.tap[live])

    rows = np.concatenate([f, f, t, t])
    cols = np.concatenate([f, t, f, t])
    vals = np.concatenate([bsus, -bsus, -bsus, bsus])
    bmat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()

    Pspec, _ = net.bus_injections()
    slack = int(net.slack_buses[0])
    keep = np.flatnonzero(np.arange(n) != slack)

    theta = np.zeros(n)
    # Shift injections by the phase-shifter offsets.
    pshift = np.zeros(n)
    shift_amt = bsus * net.shift[live]
    np.subtract.at(pshift, f, shift_amt)
    np.add.at(pshift, t, shift_amt)
    rhs = (Pspec + pshift)[keep]
    theta[keep] = spla.spsolve(bmat[np.ix_(keep, keep)], rhs)

    pf = bsus * (theta[f] - theta[t] - net.shift[live])
    Pf = np.zeros(net.n_branch)
    Pf[live] = pf
    Pinj = np.zeros(n)
    np.add.at(Pinj, f, pf)
    np.subtract.at(Pinj, t, pf)

    zeros = np.zeros(net.n_branch)
    return PowerFlowResult(
        converged=True,
        iterations=0,
        Vm=np.ones(n),
        Va=theta,
        P=Pinj,
        Q=np.zeros(n),
        Pf=Pf,
        Qf=zeros,
        Pt=-Pf,
        Qt=zeros.copy(),
        max_mismatch=0.0,
    )


class DcCompensationSolver:
    """Batched DC power flow over scenario forks of one base network.

    The reduced base susceptance system ``B0 theta = P`` is factored once;
    each scenario — a :class:`~repro.grid.delta.NetworkDelta` carrying
    branch-status flips and/or ``Pd`` overrides — is then solved by
    small-rank compensation (Sherman-Morrison-Woodbury) against the cached
    factorization instead of rebuilding and refactoring the matrix.  A
    branch flip is a rank-1 update ``Delta_b * a a^T`` with incidence vector
    ``a = e_f - e_t``; the required ``B0^{-1} a`` columns are computed in one
    multi-RHS triangular solve and memoized across calls, so a full N-1
    sweep costs one factorization plus O(n_branch) back-substitutions.

    Scenarios whose compensated system is singular (outages that island the
    grid) are reported with ``converged=False`` and NaN angles rather than
    raising, so one bad contingency cannot abort a batch.
    """

    def __init__(self, net: Network):
        self._net = net
        n = net.n_bus
        self._slack = int(net.slack_buses[0])
        keep = np.flatnonzero(np.arange(n) != self._slack)
        self._keep = keep
        nk = len(keep)
        # Reduced-system position per bus; the slack maps to an extra
        # always-zero slot so gather-style indexing needs no branching.
        pos = np.full(n, nk, dtype=np.int64)
        pos[keep] = np.arange(nk)
        self._pos = pos

        xt = net.x * net.tap
        # Dead zero-impedance branches are legal case data; they contribute
        # b=0 rather than a divide-by-zero.
        self._bsus_all = np.where(xt != 0.0, 1.0 / np.where(xt != 0.0, xt, 1.0), 0.0)
        self._base_status = (net.br_status > 0).astype(float)
        bsus = self._base_status * self._bsus_all

        f, t = net.f, net.t
        rows = np.concatenate([f, f, t, t])
        cols = np.concatenate([f, t, f, t])
        vals = np.concatenate([bsus, -bsus, -bsus, bsus])
        bmat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
        self._lu = spla.splu(bmat[np.ix_(keep, keep)].tocsc())

        # Phase-shifter rhs term per branch (if that branch is in service).
        self._sh_all = self._bsus_all * net.shift
        sh0 = self._base_status * self._sh_all
        Pspec, _ = net.bus_injections()
        pshift = np.zeros(n)
        np.subtract.at(pshift, f, sh0)
        np.add.at(pshift, t, sh0)
        self._y0 = self._lu.solve((Pspec + pshift)[keep])

        # Bus->branch incidence for vectorized injection recovery.
        il = np.arange(net.n_branch)
        self._inc = sp.coo_matrix(
            (
                np.concatenate([np.ones(net.n_branch), -np.ones(net.n_branch)]),
                (np.concatenate([f, t]), np.concatenate([il, il])),
            ),
            shape=(n, net.n_branch),
        ).tocsr()

        # Memoized B0^{-1} columns: ("br", l) -> B0^{-1}(e_f - e_t),
        # ("bus", b) -> B0^{-1} e_b.  Rows are reduced-system coordinates.
        self._wcols: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _effective_changes(self, delta):
        """Net out no-op overrides; return (branch idx, db, dsh, bus idx, dP)."""
        from .delta import _keep_last

        br_i, br_v = _keep_last(delta.br_idx, delta.br_val.astype(float))
        if len(br_i):
            db_full = (br_v - self._base_status[br_i]) * self._bsus_all[br_i]
            live = db_full != 0.0
            br_i = br_i[live]
            db = db_full[live]
            dsh = (br_v[live] - self._base_status[br_i]) * self._sh_all[br_i]
        else:
            db = dsh = np.zeros(0)
        pd_i, pd_v = _keep_last(delta.pd_idx, delta.pd_val)
        if len(pd_i):
            # Pspec = generation - Pd, so a load override shifts the rhs by
            # the negated Pd change (at non-slack buses only).
            dP_full = -(pd_v - self._net.Pd[pd_i])
            hot = (dP_full != 0.0) & (pd_i != self._slack)
            pd_i, dP = pd_i[hot], dP_full[hot]
        else:
            dP = np.zeros(0)
        return br_i, db, dsh, pd_i, dP

    def _ensure_columns(self, branch_ids, bus_ids) -> None:
        """Solve all missing B0^{-1} columns in one multi-RHS call."""
        missing = [("br", int(l)) for l in branch_ids if ("br", int(l)) not in self._wcols]
        missing += [("bus", int(b)) for b in bus_ids if ("bus", int(b)) not in self._wcols]
        if not missing:
            return
        nk = len(self._keep)
        rhs = np.zeros((nk, len(missing)))
        for c, (kind, i) in enumerate(missing):
            if kind == "br":
                pf, pt = self._pos[self._net.f[i]], self._pos[self._net.t[i]]
                if pf < nk:
                    rhs[pf, c] += 1.0
                if pt < nk:
                    rhs[pt, c] -= 1.0
            else:
                pb = self._pos[i]
                if pb < nk:
                    rhs[pb, c] = 1.0
        cols = self._lu.solve(rhs)
        for c, key in enumerate(missing):
            self._wcols[key] = np.ascontiguousarray(cols[:, c])

    # ------------------------------------------------------------------
    def solve(self, deltas) -> list[PowerFlowResult]:
        """DC-solve every scenario delta against the cached factorization."""
        deltas = list(deltas)
        K = len(deltas)
        net = self._net
        n, nl, nk = net.n_bus, net.n_branch, len(self._keep)

        changes = [self._effective_changes(d) for d in deltas]
        self._ensure_columns(
            {int(l) for br_i, *_ in changes for l in br_i},
            {int(b) for *_, pd_i, _dP in changes for b in pd_i},
        )

        theta_keep = np.empty((K, nk))
        converged = np.ones(K, dtype=bool)
        status = np.repeat(self._base_status[None, :], K, axis=0)
        for j, delta in enumerate(deltas):
            if len(delta.br_idx):
                status[j, delta.br_idx] = delta.br_val

        # Vectorized rank-1 fast path: the dominant N-1 sweep shape (one
        # flipped branch, no load overrides) solves every scenario in a
        # handful of dense (nk, F) array ops.
        fast = [
            j
            for j, (br_i, _db, _dsh, pd_i, _dP) in enumerate(changes)
            if len(br_i) == 1 and len(pd_i) == 0
        ]
        if fast:
            idx = np.asarray(fast)
            ls = np.array([int(changes[j][0][0]) for j in fast])
            db = np.array([changes[j][1][0] for j in fast])
            dsh = np.array([changes[j][2][0] for j in fast])
            W = np.stack([self._wcols[("br", int(l))] for l in ls], axis=1)
            Wx = np.vstack([W, np.zeros((1, len(ls)))])
            pf, pt = self._pos[net.f[ls]], self._pos[net.t[ls]]
            cols = np.arange(len(ls))
            aTw = Wx[pf, cols] - Wx[pt, cols]
            y0x = np.append(self._y0, 0.0)
            aTy0 = y0x[pf] - y0x[pt]
            # rhs shift term folded in: y = y0 - Delta_sh * w  per scenario
            y = self._y0[:, None] - dsh[None, :] * W
            aTy = aTy0 - dsh * aTw
            with np.errstate(divide="ignore", invalid="ignore"):
                alpha = aTy / (1.0 / db + aTw)
            theta_f = y - W * alpha[None, :]
            bad = ~np.isfinite(alpha)
            theta_f[:, bad] = np.nan
            converged[idx[bad]] = False
            theta_keep[idx] = theta_f.T

        for j, (br_i, db, dsh, pd_i, dP) in enumerate(changes):
            if len(br_i) == 1 and len(pd_i) == 0:
                continue  # handled by the fast path
            y = self._y0
            if len(pd_i) or len(br_i):
                y = y.copy()
                for b, dp in zip(pd_i, dP):
                    y += dp * self._wcols[("bus", int(b))]
                # rhs shift term: Delta_rhs = -Delta_sh * a  per flipped branch
                for l, ds in zip(br_i, dsh):
                    if ds != 0.0:
                        y -= ds * self._wcols[("br", int(l))]
            r = len(br_i)
            if r == 0:
                theta_keep[j] = y
                continue
            W = np.stack([self._wcols[("br", int(l))] for l in br_i], axis=1)
            # Gather a^T v with the slack projected to the extra zero slot.
            Wx = np.vstack([W, np.zeros((1, r))])
            yx = np.append(y, 0.0)
            pf, pt = self._pos[net.f[br_i]], self._pos[net.t[br_i]]
            aTy = yx[pf] - yx[pt]
            M = Wx[pf, :] - Wx[pt, :]
            M = M + np.diag(1.0 / db)
            try:
                alpha = np.linalg.solve(M, aTy)
            except np.linalg.LinAlgError:
                converged[j] = False
                theta_keep[j] = np.nan
                continue
            th = y - W @ alpha
            if not np.all(np.isfinite(th)):
                converged[j] = False
                theta_keep[j] = np.nan
                continue
            theta_keep[j] = th

        theta = np.zeros((K, n))
        theta[:, self._keep] = theta_keep

        bs = status * self._bsus_all[None, :]
        pf_flow = bs * (theta[:, net.f] - theta[:, net.t] - net.shift[None, :])
        with np.errstate(invalid="ignore"):
            Pinj = (self._inc @ pf_flow.T).T

        ones = np.ones(n)
        zeros_b = np.zeros(nl)
        zeros_n = np.zeros(n)
        return [
            PowerFlowResult(
                converged=bool(converged[j]),
                iterations=0,
                Vm=ones.copy(),
                Va=theta[j],
                P=Pinj[j],
                Q=zeros_n.copy(),
                Pf=pf_flow[j],
                Qf=zeros_b.copy(),
                Pt=-pf_flow[j],
                Qt=zeros_b.copy(),
                max_mismatch=0.0,
            )
            for j in range(K)
        ]


def run_dc_power_flow_batch(net: Network, deltas) -> list[PowerFlowResult]:
    """One-shot convenience wrapper around :class:`DcCompensationSolver`.

    For repeated sweeps against the same base network, construct the solver
    once and call :meth:`DcCompensationSolver.solve` — the factorization and
    compensation columns are then reused across calls.
    """
    return DcCompensationSolver(net).solve(deltas)
