"""AC power flow (Newton-Raphson, polar form) and DC power flow.

The AC solver provides the "ground truth" operating point from which the
measurement substrate samples noisy SCADA/PMU telemetry.  It is a standard
full-Newton implementation on sparse matrices: PV buses hold voltage
magnitude, the slack bus holds magnitude and angle, and the Jacobian is the
polar ``dS/dV`` pair assembled in CSR form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .network import BusType, Network
from .ybus import build_yf_yt, build_ybus

__all__ = [
    "PowerFlowResult",
    "PowerFlowError",
    "dsbus_dv",
    "run_ac_power_flow",
    "run_dc_power_flow",
]


class PowerFlowError(RuntimeError):
    """Raised when a power flow fails to converge."""


@dataclass
class PowerFlowResult:
    """Solved operating point.

    Attributes
    ----------
    converged:
        Whether the Newton iteration met the tolerance.
    iterations:
        Newton iterations used.
    Vm, Va:
        Bus voltage magnitude (p.u.) and angle (radians).
    P, Q:
        Net bus injections at the solution (p.u.).
    Pf, Qf, Pt, Qt:
        Branch flows at the from/to ends (p.u.).
    max_mismatch:
        Final infinity-norm of the power mismatch.
    """

    converged: bool
    iterations: int
    Vm: np.ndarray
    Va: np.ndarray
    P: np.ndarray
    Q: np.ndarray
    Pf: np.ndarray
    Qf: np.ndarray
    Pt: np.ndarray
    Qt: np.ndarray
    max_mismatch: float

    @property
    def V(self) -> np.ndarray:
        """Complex bus voltages."""
        return self.Vm * np.exp(1j * self.Va)


def dsbus_dv(ybus: sp.spmatrix, V: np.ndarray) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Partial derivatives of complex bus injections w.r.t. voltage (polar).

    Returns ``(dS_dVa, dS_dVm)`` as sparse matrices; the standard MATPOWER
    formulation.
    """
    ib = ybus @ V
    diag_v = sp.diags(V)
    diag_ib = sp.diags(ib)
    diag_vnorm = sp.diags(V / np.abs(V))

    ds_dva = 1j * diag_v @ (diag_ib - ybus @ diag_v).conj()
    ds_dvm = diag_v @ (ybus @ diag_vnorm).conj() + diag_ib.conj() @ diag_vnorm
    return ds_dva.tocsr(), ds_dvm.tocsr()


def run_ac_power_flow(
    net: Network,
    *,
    tol: float = 1e-8,
    max_iter: int = 30,
    flat_start: bool = False,
) -> PowerFlowResult:
    """Solve the AC power flow for ``net`` with full Newton-Raphson.

    Parameters
    ----------
    net:
        The network to solve.
    tol:
        Convergence tolerance on the infinity norm of the mismatch (p.u.).
    max_iter:
        Maximum Newton iterations.
    flat_start:
        Start from ``Vm=1, Va=0`` (PV/slack setpoints still applied) instead
        of the case's stored voltage profile.

    Raises
    ------
    PowerFlowError
        If the iteration does not converge within ``max_iter``.
    """
    n = net.n_bus
    ybus = build_ybus(net)
    Pspec, Qspec = net.bus_injections()
    sbus = Pspec + 1j * Qspec

    Vm = np.ones(n) if flat_start else net.Vm0.copy()
    Va = np.zeros(n) if flat_start else net.Va0.copy()

    # Apply generator voltage setpoints at PV and slack buses.
    if net.n_gen:
        on = net.gen_status > 0
        gb = net.gen_bus[on]
        held = np.isin(net.bus_type[gb], (BusType.PV, BusType.SLACK))
        Vm[gb[held]] = net.Vg[on][held]

    pv = net.pv_buses
    pq = net.pq_buses
    pvpq = np.concatenate([pv, pq])
    npv, npq = len(pv), len(pq)

    def mismatch(V: np.ndarray) -> np.ndarray:
        s_calc = V * np.conj(ybus @ V)
        ds = s_calc - sbus
        return np.concatenate([ds.real[pvpq], ds.imag[pq]])

    V = Vm * np.exp(1j * Va)
    F = mismatch(V)
    converged = bool(np.max(np.abs(F)) < tol) if F.size else True
    it = 0

    while not converged and it < max_iter:
        it += 1
        ds_dva, ds_dvm = dsbus_dv(ybus, V)
        j11 = ds_dva[np.ix_(pvpq, pvpq)].real
        j12 = ds_dvm[np.ix_(pvpq, pq)].real
        j21 = ds_dva[np.ix_(pq, pvpq)].imag
        j22 = ds_dvm[np.ix_(pq, pq)].imag
        jac = sp.bmat([[j11, j12], [j21, j22]], format="csc")

        dx = spla.spsolve(jac, F)

        # Damped Newton: halve the step while it increases the mismatch
        # norm.  Full steps are taken on well-behaved cases (no extra cost);
        # the backtracking keeps weak synthetic grids from diverging.
        f_old = np.linalg.norm(F)
        step = 1.0
        for _ in range(12):
            Va_new = Va.copy()
            Vm_new = Vm.copy()
            Va_new[pvpq] -= step * dx[: npv + npq]
            Vm_new[pq] -= step * dx[npv + npq :]
            F_new = mismatch(Vm_new * np.exp(1j * Va_new))
            if np.linalg.norm(F_new) < f_old or step < 1e-3:
                break
            step *= 0.5
        Va, Vm, F = Va_new, Vm_new, F_new
        V = Vm * np.exp(1j * Va)
        converged = bool(np.max(np.abs(F)) < tol)

    if not converged:
        raise PowerFlowError(
            f"power flow for {net.name!r} did not converge in {max_iter} "
            f"iterations (max mismatch {np.max(np.abs(F)):.3e})"
        )

    s_calc = V * np.conj(ybus @ V)
    yf, yt = build_yf_yt(net)
    sf = V[net.f] * np.conj(yf @ V)
    st = V[net.t] * np.conj(yt @ V)

    return PowerFlowResult(
        converged=True,
        iterations=it,
        Vm=Vm,
        Va=Va,
        P=s_calc.real,
        Q=s_calc.imag,
        Pf=sf.real,
        Qf=sf.imag,
        Pt=st.real,
        Qt=st.imag,
        max_mismatch=float(np.max(np.abs(F))) if F.size else 0.0,
    )


def run_dc_power_flow(net: Network) -> PowerFlowResult:
    """Solve the lossless DC approximation ``P = B' theta``.

    Voltage magnitudes are fixed at 1 p.u.; angles come from the reduced
    susceptance system with the (first) slack bus as reference.  Branch
    reactive flows are zero by construction.
    """
    n = net.n_bus
    live = net.live_branches()
    f, t = net.f[live], net.t[live]
    bsus = 1.0 / (net.x[live] * net.tap[live])

    rows = np.concatenate([f, f, t, t])
    cols = np.concatenate([f, t, f, t])
    vals = np.concatenate([bsus, -bsus, -bsus, bsus])
    bmat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()

    Pspec, _ = net.bus_injections()
    slack = int(net.slack_buses[0])
    keep = np.flatnonzero(np.arange(n) != slack)

    theta = np.zeros(n)
    # Shift injections by the phase-shifter offsets.
    pshift = np.zeros(n)
    shift_amt = bsus * net.shift[live]
    np.subtract.at(pshift, f, shift_amt)
    np.add.at(pshift, t, shift_amt)
    rhs = (Pspec + pshift)[keep]
    theta[keep] = spla.spsolve(bmat[np.ix_(keep, keep)], rhs)

    pf = bsus * (theta[f] - theta[t] - net.shift[live])
    Pf = np.zeros(net.n_branch)
    Pf[live] = pf
    Pinj = np.zeros(n)
    np.add.at(Pinj, f, pf)
    np.subtract.at(Pinj, t, pf)

    zeros = np.zeros(net.n_branch)
    return PowerFlowResult(
        converged=True,
        iterations=0,
        Vm=np.ones(n),
        Va=theta,
        P=Pinj,
        Q=np.zeros(n),
        Pf=Pf,
        Qf=zeros,
        Pt=-Pf,
        Qt=zeros.copy(),
        max_mismatch=0.0,
    )
