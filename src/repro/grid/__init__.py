"""Power network substrate: data model, admittances, power flow, test cases."""

from .builder import NetworkBuilder
from .delta import DeltaError, NetworkDelta
from .matpower import dump_matpower, load_matpower, parse_matpower, save_matpower
from .islands import find_islands, is_single_island, subgraph_components
from .network import BusType, Network, NetworkError
from .powerflow import (
    DcCompensationSolver,
    PowerFlowError,
    PowerFlowResult,
    run_ac_power_flow,
    run_dc_power_flow,
    run_dc_power_flow_batch,
)
from .ybus import (
    BranchAdmittances,
    batch_branch_admittances,
    branch_admittances,
    build_yf_yt,
    build_ybus,
)

__all__ = [
    "BusType",
    "Network",
    "NetworkError",
    "NetworkDelta",
    "DeltaError",
    "BranchAdmittances",
    "batch_branch_admittances",
    "branch_admittances",
    "build_ybus",
    "build_yf_yt",
    "DcCompensationSolver",
    "PowerFlowError",
    "PowerFlowResult",
    "run_ac_power_flow",
    "run_dc_power_flow",
    "run_dc_power_flow_batch",
    "find_islands",
    "parse_matpower",
    "load_matpower",
    "dump_matpower",
    "save_matpower",
    "NetworkBuilder",
    "is_single_island",
    "subgraph_components",
]
