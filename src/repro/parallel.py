"""Pluggable executors for fanning independent subsystem work out.

The paper executes DSE Step 1 and each Step-2 round concurrently across
clusters; this repository's in-process reproduction runs the same solves on
one machine.  :class:`SubsystemExecutor` abstracts *how* a batch of
independent per-subsystem tasks is executed so that the DSE algorithm, the
session pipeline and the parallel contingency analyzer can share one
mechanism:

- :class:`SerialExecutor` — plain in-order loop (the reference semantics);
- :class:`ThreadPoolBackend` — ``concurrent.futures`` thread pool with a
  shared work queue (counter-based dynamic balancing: a free worker grabs
  the next task, mirroring Chen et al.'s scheme used by
  :mod:`repro.contingency.parallel`).

Executors only ever run *independent* tasks — callers are responsible for
snapshotting shared state before a fan-out and applying updates after it,
which is what keeps thread-pool results bit-identical to serial ones.
"""

from __future__ import annotations

import itertools
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = [
    "SubsystemExecutor",
    "SerialExecutor",
    "ThreadPoolBackend",
    "make_executor",
    "chunked",
]


class SubsystemExecutor(ABC):
    """Executes a batch of independent callables and collects results."""

    #: number of concurrent workers the backend can occupy
    n_workers: int = 1

    @abstractmethod
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        Exceptions raised by ``fn`` propagate to the caller (the batch is
        not silently truncated).
        """

    def worker_index(self) -> int:
        """Index of the worker running the current task (0-based).

        Valid only inside a task submitted through :meth:`map`; serial
        execution always reports worker 0.
        """
        return 0

    def shutdown(self) -> None:
        """Release worker resources (idempotent)."""

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "SubsystemExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(SubsystemExecutor):
    """Runs every task inline, in order — the reference executor."""

    n_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadPoolBackend(SubsystemExecutor):
    """``concurrent.futures`` thread pool with worker identification.

    The pool's single shared queue gives counter-based dynamic load
    balancing: whichever worker finishes first picks up the next task.
    ``worker_index`` is assigned on first task execution per thread, so
    per-worker accounting (busy time, case counts) works from inside tasks.
    """

    def __init__(self, n_workers: int | None = None):
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="subsys"
        )
        self._counter = itertools.count()
        self._local = threading.local()

    def _bind_worker(self) -> int:
        idx = getattr(self._local, "index", None)
        if idx is None:
            idx = next(self._counter)
            self._local.index = idx
        return idx

    def worker_index(self) -> int:
        return self._bind_worker()

    def map(self, fn: Callable, items: Iterable) -> list:
        def wrapped(item):
            self._bind_worker()
            return fn(item)

        return list(self._pool.map(wrapped, items))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolBackend(n_workers={self.n_workers})"


def make_executor(
    spec: "SubsystemExecutor | str | int | None",
) -> SubsystemExecutor:
    """Resolve an executor spec.

    ``None`` or ``"serial"`` — :class:`SerialExecutor`; ``"threads"`` — a
    :class:`ThreadPoolBackend` with the default worker count; an ``int`` —
    a thread pool with that many workers; an existing executor instance is
    passed through.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if spec == "threads":
        return ThreadPoolBackend()
    if isinstance(spec, int):
        return ThreadPoolBackend(spec)
    if isinstance(spec, SubsystemExecutor):
        return spec
    raise ValueError(
        f"executor must be None, 'serial', 'threads', an int worker count "
        f"or a SubsystemExecutor, got {spec!r}"
    )


def chunked(items: Sequence, n_chunks: int) -> list[list]:
    """Round-robin split of ``items`` into ``n_chunks`` lists (static
    pre-assignment; chunk ``w`` holds items ``w, w+n, w+2n, ...``)."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    return [list(items[w::n_chunks]) for w in range(n_chunks)]
