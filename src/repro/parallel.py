"""Pluggable executors for fanning independent subsystem work out.

The paper executes DSE Step 1 and each Step-2 round concurrently across
clusters; this repository's in-process reproduction runs the same solves on
one machine.  :class:`SubsystemExecutor` abstracts *how* a batch of
independent per-subsystem tasks is executed so that the DSE algorithm, the
session pipeline, the scenario-serving engine and the parallel contingency
analyzer can share one mechanism:

- :class:`SerialExecutor` — plain in-order loop (the reference semantics);
- :class:`ThreadPoolBackend` — ``concurrent.futures`` thread pool with a
  shared work queue (counter-based dynamic balancing: a free worker grabs
  the next task, mirroring Chen et al.'s scheme used by
  :mod:`repro.contingency.parallel`).  Good when the tasks spend their time
  in GIL-releasing scipy kernels; python-heavy tasks serialize.
- :class:`ProcessPoolBackend` — persistent worker *processes*.  Workers run
  a one-time initializer that builds heavy state (case network, Jacobian
  structures, factorization orderings, estimator caches) **inside** the
  worker, so the warm caches live across tasks; after that, tasks carry
  only compact payloads (measurement vectors, outage indices, round ids)
  and return plain arrays.  This is the true multi-core scale-out path.

Executors only ever run *independent* tasks — callers are responsible for
snapshotting shared state before a fan-out and applying updates after it,
which is what keeps pooled results bit-identical to serial ones.

Process-backend contract
------------------------
Functions submitted to :meth:`ProcessPoolBackend.map` must be module-level
callables (picklable by reference) and their items compact picklable
values.  Worker-resident state is installed with
:meth:`ProcessPoolBackend.initialize` and fetched inside tasks with
:func:`worker_context`; never ship ``Network``/estimator objects per task.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

from . import faults, obs
from .obs import use_context

__all__ = [
    "SubsystemExecutor",
    "SerialExecutor",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "WorkerError",
    "WorkerCrash",
    "worker_context",
    "make_executor",
    "chunked",
]

#: Executor spec strings accepted by :func:`make_executor`.
EXECUTOR_SPECS = (
    "None/'serial'",
    "'threads'",
    "'threads:N'",
    "'processes'",
    "'processes:N'",
    "an int worker count (thread pool)",
    "a SubsystemExecutor instance",
)


class WorkerError(Exception):
    """Carries the formatted traceback of an exception raised in a worker
    process; chained as ``__cause__`` of the re-raised original exception so
    the remote traceback text survives the process boundary."""

    def __str__(self) -> str:
        return f"worker-side traceback:\n{self.args[0]}"


class WorkerCrash(RuntimeError):
    """A worker process died or hung and the task could not be completed
    within the supervisor's retry budget (see
    :class:`ProcessPoolBackend`)."""


class SubsystemExecutor(ABC):
    """Executes a batch of independent callables and collects results."""

    #: number of concurrent workers the backend can occupy
    n_workers: int = 1

    #: True when tasks run in separate processes (no shared memory with the
    #: caller); callers must then submit module-level functions with compact
    #: picklable payloads instead of closures.
    distributed: bool = False

    @abstractmethod
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        Exceptions raised by ``fn`` propagate to the caller (the batch is
        not silently truncated).
        """

    def worker_index(self) -> int:
        """Index of the worker running the current task (0-based).

        Valid only inside a task submitted through :meth:`map`; serial
        execution always reports worker 0.
        """
        return 0

    def resize(self, n_workers: int) -> bool:
        """Change the worker count to ``n_workers`` (autoscaling hook).

        Returns True when the backend applied the change.  The base
        implementation (and :class:`SerialExecutor`) cannot resize and
        returns False — callers treat an un-resizable backend as a no-op,
        never an error.
        """
        return False

    def shutdown(self) -> None:
        """Release worker resources (idempotent)."""

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "SubsystemExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(SubsystemExecutor):
    """Runs every task inline, in order — the reference executor."""

    n_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadPoolBackend(SubsystemExecutor):
    """``concurrent.futures`` thread pool with worker identification.

    The pool's single shared queue gives counter-based dynamic load
    balancing: whichever worker finishes first picks up the next task.
    ``worker_index`` is assigned on first task execution per thread, so
    per-worker accounting (busy time, case counts) works from inside tasks.

    The pool itself is created lazily on the first :meth:`map` call, so
    constructing an executor that is never used costs nothing; a backend
    used again after :meth:`shutdown` transparently re-creates its pool.
    """

    def __init__(self, n_workers: int | None = None):
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._counter = itertools.count()
        self._local = threading.local()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers, thread_name_prefix="subsys"
                )
                self._counter = itertools.count()
                self._local = threading.local()
            return self._pool

    def _bind_worker(self) -> int:
        idx = getattr(self._local, "index", None)
        if idx is None:
            idx = next(self._counter)
            self._local.index = idx
        return idx

    def worker_index(self) -> int:
        return self._bind_worker()

    def resize(self, n_workers: int) -> bool:
        """Grow/shrink the pool; the live pool (if any) is retired and a
        fresh one spawns lazily at the new size on the next :meth:`map`."""
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        with self._pool_lock:
            if n_workers == self.n_workers:
                return True
            self.n_workers = int(n_workers)
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        return True

    def map(self, fn: Callable, items: Iterable) -> list:
        # Trace-context propagation: capture the submitting thread's active
        # span context and re-activate it around every task, so spans
        # opened inside tasks join the caller's trace even though pool
        # threads have their own (empty) contextvar state.
        ctx = obs.current_context()

        def wrapped(item):
            self._bind_worker()
            if ctx is None:
                return fn(item)
            with use_context(ctx):
                return fn(item)

        results = list(self._ensure_pool().map(wrapped, items))
        if obs.enabled():
            obs.metrics().counter(
                "executor.tasks_total", backend="threads"
            ).inc(len(results))
        return results

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolBackend(n_workers={self.n_workers})"


# ---------------------------------------------------------------------------
# Process backend: worker-resident contexts
# ---------------------------------------------------------------------------

#: Worker-process-resident heavy state, keyed by context token.  Populated
#: by the pool initializer; read from inside tasks via ``worker_context``.
_WORKER_CONTEXTS: dict[str, object] = {}


def worker_context(key: str):
    """Fetch worker-resident state installed by the pool initializer.

    Only meaningful inside a task running on a :class:`ProcessPoolBackend`
    whose :meth:`~ProcessPoolBackend.initialize` registered ``key``.
    """
    try:
        return _WORKER_CONTEXTS[key]
    except KeyError:
        raise RuntimeError(
            f"worker context {key!r} is not initialised in this process; "
            "register it with ProcessPoolBackend.initialize before map()"
        ) from None


def _pool_initializer(specs: tuple) -> None:
    """Runs once per worker process: build every registered context."""
    # A forked worker inherits the parent's observability state (enabled
    # flag, recorded spans); none of it is meaningful here — worker spans
    # are shipped back explicitly via RemoteSpanRecorder on the result
    # channel, so clear the inherited state and disable the global hub.
    obs.reset_in_worker()
    for key, builder, payload in specs:
        _WORKER_CONTEXTS[key] = builder(payload)


def _invoke_remote(fn: Callable, item):
    """Worker-side call wrapper: captures exceptions with their traceback
    text (the parent re-raises them chained to a :class:`WorkerError`), and
    tags results with the worker pid for load accounting."""
    try:
        return True, fn(item), os.getpid()
    except BaseException as exc:
        tb = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return False, (exc, tb), os.getpid()


def _invoke_remote_faulted(fn: Callable, item, mode: str | None, delay: float):
    """Worker-side wrapper used when a fault injector is installed in the
    parent.  The parent decides the fault (workers are separate processes
    and never see the injector) and ships it with the task: ``kill`` dies
    hard mid-task (``os._exit``, no cleanup — exactly what an OOM kill or
    segfault looks like to the pool), ``hang`` wedges the worker so only
    the supervisor's ``task_timeout`` can reclaim it."""
    if mode == "kill":
        os._exit(86)
    elif mode == "hang":
        time.sleep(delay if delay > 0 else 3600.0)
    return _invoke_remote(fn, item)


class ProcessPoolBackend(SubsystemExecutor):
    """Persistent worker processes with warm, worker-resident state.

    Parameters
    ----------
    n_workers:
        Worker process count (default ``min(8, cpu_count)``).
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap spawn, copy-on-write) and ``"spawn"`` otherwise.
    max_task_retries:
        The supervisor re-runs tasks stranded by a dead or hung worker on
        a freshly respawned warm pool; each task may be re-run at most
        this many times before :class:`WorkerCrash` is raised.  Ordinary
        task exceptions are *not* retried — they re-raise immediately, as
        before.
    task_timeout:
        Per-task deadline in seconds while draining results.  ``None``
        (default) waits forever — the legacy behaviour; set it to detect
        *hung* workers (a crash is detected immediately either way), which
        are terminated and their tasks re-run.

    Usage shape::

        pool = ProcessPoolBackend(4)
        pool.initialize("dse:abc123", _build_worker_state, payload)
        results = pool.map(_task_fn, compact_items)   # workers stay warm

    ``initialize`` registers a one-time per-worker initializer: the builder
    runs inside each worker when it spawns (lazily, on the first ``map``)
    and its product is fetched from tasks with :func:`worker_context`.
    Registering a *new* context key after the workers have spawned restarts
    the pool — callers key contexts by a structural fingerprint so repeated
    frames over the same case reuse the warm workers.

    ``map`` requires module-level functions and compact picklable items;
    exceptions raised in a worker re-raise in the parent with the original
    traceback text chained as ``WorkerError``.
    """

    distributed = True

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        start_method: str | None = None,
        max_task_retries: int = 2,
        task_timeout: float | None = None,
    ):
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self.n_workers = int(n_workers)
        if start_method is None:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.max_task_retries = int(max_task_retries)
        self.task_timeout = task_timeout
        self.respawns = 0  # pool respawns forced by dead/hung workers
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._contexts: dict[str, tuple[Callable, object]] = {}
        self._installed: set[str] = set()

    # -- worker contexts ----------------------------------------------------
    def initialize(self, key: str, builder: Callable, payload) -> None:
        """Register a one-time worker initializer under ``key``.

        ``builder(payload)`` runs in every worker process at spawn time;
        both must be picklable (``builder`` module-level).  Re-registering
        an existing key is a no-op; a new key while the pool is live
        restarts the workers (the one-time warmup cost).
        """
        with self._pool_lock:
            if key in self._contexts:
                return
            self._contexts[key] = (builder, payload)
            if self._pool is not None:
                pool, self._pool = self._pool, None
                self._installed = set()
            else:
                pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def resize(self, n_workers: int) -> bool:
        """Grow/shrink the worker-process count (the autoscaler's
        actuator).  The live pool is retired gracefully and the next
        :meth:`map` spawns a fresh one at the new size; every registered
        worker context rebuilds in the new workers, so the pool comes back
        *warm* — callers pay the one-time warmup, not a cold cache."""
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        with self._pool_lock:
            if n_workers == self.n_workers:
                return True
            self.n_workers = int(n_workers)
            pool, self._pool = self._pool, None
            self._installed = set()
        if pool is not None:
            pool.shutdown(wait=True)
        if obs.enabled():
            obs.metrics().gauge("executor.pool_size").set(self.n_workers)
        return True

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                import multiprocessing as mp

                specs = tuple(
                    (key, builder, payload)
                    for key, (builder, payload) in self._contexts.items()
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=mp.get_context(self.start_method),
                    initializer=_pool_initializer,
                    initargs=(specs,),
                )
                self._installed = set(self._contexts)
            return self._pool

    # -- execution ----------------------------------------------------------
    def map(self, fn: Callable, items: Iterable) -> list:
        results, _ = self.map_with_pids(fn, items)
        return results

    def map_with_pids(self, fn: Callable, items: Iterable) -> tuple[list, list[int]]:
        """Like :meth:`map`, also returning the worker pid per task —
        callers that keep per-worker accounting (busy time, case counts)
        densify the pids themselves.

        Supervised: a worker that dies mid-batch (``BrokenProcessPool``)
        or hangs past ``task_timeout`` is reclaimed — the pool is respawned
        warm (the registered contexts rebuild in the new workers) and the
        stranded tasks re-run, up to ``max_task_retries`` times each.
        Task payloads are compact by contract, so re-running them is cheap.
        """
        items = list(items)
        watch = None
        if obs.health_enabled():
            # a hung task beyond 2x its timeout means supervision itself
            # stalled (or no task_timeout bounds the wait — then the
            # monitor's default stall threshold applies)
            watch = obs.health().watch(
                "executor.pool_map",
                timeout=(
                    2.0 * self.task_timeout if self.task_timeout else None
                ),
                source="processes", tasks=len(items),
            )
        try:
            return self._map_with_pids(fn, items, watch)
        finally:
            if watch is not None:
                obs.health().disarm(watch)

    def _map_with_pids(
        self, fn: Callable, items: list, watch=None
    ) -> tuple[list, list[int]]:
        n = len(items)
        results: list = [None] * n
        pids: list[int] = [0] * n
        runs = [0] * n
        pending = list(range(n))
        while pending:
            pool = self._ensure_pool()
            inj = faults.active()
            futures: dict[int, object] = {}
            try:
                for i in pending:
                    runs[i] += 1
                    if inj is None:
                        futures[i] = pool.submit(_invoke_remote, fn, items[i])
                    else:
                        d = inj.decide("worker", i)
                        futures[i] = pool.submit(
                            _invoke_remote_faulted, fn, items[i],
                            d.action if d else None, d.delay,
                        )
            except BrokenProcessPool:
                pass  # drain whatever was submitted; the rest re-runs
            stranded: list[int] = []
            hung = False
            for i in pending:
                fut = futures.get(i)
                if fut is None:
                    stranded.append(i)
                    continue
                try:
                    ok, value, pid = fut.result(timeout=self.task_timeout)
                except BrokenProcessPool:
                    stranded.append(i)
                    continue
                except TimeoutError:
                    stranded.append(i)
                    hung = True
                    continue
                if not ok:
                    exc, tb = value
                    raise exc from WorkerError(tb)
                results[i] = value
                pids[i] = pid
                if watch is not None:
                    obs.health().beat(watch)
            if not stranded:
                break
            over = [i for i in stranded if runs[i] > self.max_task_retries]
            if over:
                self._kill_pool()
                raise WorkerCrash(
                    f"task(s) {over} still stranded by "
                    f"{'hung' if hung else 'dead'} workers after "
                    f"{self.max_task_retries} retr"
                    f"{'y' if self.max_task_retries == 1 else 'ies'}"
                )
            # reclaim the broken pool (terminating hung workers) and
            # respawn warm for the re-run
            self._kill_pool()
            self.respawns += 1
            if obs.enabled():
                m = obs.metrics()
                m.counter("executor.pool_respawns_total").inc()
                m.counter("executor.task_reruns_total").inc(len(stranded))
            pending = stranded
        if obs.enabled():
            obs.metrics().counter(
                "executor.tasks_total", backend="processes"
            ).inc(n)
        return results, pids

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting on its workers: terminate
        them first (a hung worker never honours a graceful shutdown)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._installed = set()
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already reaped
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._installed = set()
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolBackend(n_workers={self.n_workers}, "
            f"start_method={self.start_method!r})"
        )


def make_executor(
    spec: "SubsystemExecutor | str | int | None",
) -> SubsystemExecutor:
    """Resolve an executor spec.

    Accepted specs:

    - ``None`` / ``"serial"`` — :class:`SerialExecutor`;
    - ``"threads"`` / ``"threads:N"`` — :class:`ThreadPoolBackend` with the
      default / ``N`` workers;
    - ``"processes"`` / ``"processes:N"`` — :class:`ProcessPoolBackend`
      with the default / ``N`` worker processes;
    - an ``int`` — a thread pool with that many workers;
    - an existing :class:`SubsystemExecutor` instance — passed through.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, count = spec.partition(":")
        n_workers: int | None = None
        if count:
            try:
                n_workers = int(count)
            except ValueError:
                n_workers = -1  # rejected below with the full spec list
        if n_workers is None or n_workers >= 1:
            if name == "threads":
                return ThreadPoolBackend(n_workers)
            if name == "processes":
                return ProcessPoolBackend(n_workers)
    if isinstance(spec, int) and not isinstance(spec, bool):
        return ThreadPoolBackend(spec)
    if isinstance(spec, SubsystemExecutor):
        return spec
    raise ValueError(
        f"unrecognised executor spec {spec!r}; accepted specs: "
        + ", ".join(EXECUTOR_SPECS)
    )


def chunked(items: Sequence, n_chunks: int) -> list[list]:
    """Round-robin split of ``items`` into ``n_chunks`` lists (static
    pre-assignment; chunk ``w`` holds items ``w, w+n, w+2n, ...``)."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    return [list(items[w::n_chunks]) for w in range(n_chunks)]
