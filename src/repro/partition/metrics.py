"""Partition quality metrics: edge-cut, load imbalance, migration volume."""

from __future__ import annotations

import numpy as np

from .graph import WeightedGraph

__all__ = ["edge_cut", "part_weights", "load_imbalance", "migration_volume"]


def part_weights(graph: WeightedGraph, part: np.ndarray, k: int) -> np.ndarray:
    """Total vertex weight per partition, shape ``(k,)``."""
    w = np.zeros(k, dtype=np.int64)
    np.add.at(w, part, graph.vwgt)
    return w


def edge_cut(graph: WeightedGraph, part: np.ndarray) -> int:
    """Total weight of edges crossing partitions."""
    pairs, w = graph.edge_list()
    if not len(pairs):
        return 0
    cross = part[pairs[:, 0]] != part[pairs[:, 1]]
    return int(w[cross].sum())


def load_imbalance(graph: WeightedGraph, part: np.ndarray, k: int) -> float:
    """METIS load-imbalance ratio: max part weight / ideal part weight.

    1.0 is perfect balance; the paper quotes 1.035 and 1.079 for its two
    mappings against METIS' suggested 1.05 threshold.
    """
    w = part_weights(graph, part, k)
    ideal = graph.total_vwgt / k
    if ideal == 0:
        return 1.0
    return float(w.max() / ideal)


def migration_volume(
    graph: WeightedGraph, old_part: np.ndarray, new_part: np.ndarray
) -> int:
    """Vertex weight that changes partition between two mappings.

    This is the data-redistribution cost of adopting the new mapping
    (section IV-D: raw measurements must move to the subsystem's new
    cluster).
    """
    moved = old_part != new_part
    return int(graph.vwgt[moved].sum())
