"""Initial partitioning of the coarsest graph.

Greedy graph growing: grow each partition by BFS from a random seed vertex,
absorbing the lightest-connected frontier until the target weight is
reached.  Leftover vertices go to the lightest partition.  Several random
restarts keep the one with the smallest edge-cut.
"""

from __future__ import annotations

import numpy as np

from .graph import WeightedGraph
from .metrics import edge_cut

__all__ = ["greedy_growing", "initial_partition"]


def greedy_growing(
    graph: WeightedGraph, k: int, rng: np.random.Generator
) -> np.ndarray:
    """One greedy-growing pass; returns a partition vector."""
    n = graph.n_vertices
    part = np.full(n, -1, dtype=np.int64)
    target = graph.total_vwgt / k
    unassigned = set(range(n))

    for p in range(k - 1):
        if not unassigned:
            break
        seed = int(rng.choice(sorted(unassigned)))
        frontier = {seed}
        weight = 0
        while frontier and weight < target:
            # absorb the frontier vertex with the strongest connection to p
            best, best_gain = None, -1
            for v in frontier:
                gain = sum(
                    int(w)
                    for u, w in zip(graph.neighbors(v), graph.edge_weights(v))
                    if part[u] == p
                )
                if gain > best_gain:
                    best, best_gain = v, gain
            v = best
            frontier.discard(v)
            part[v] = p
            weight += int(graph.vwgt[v])
            unassigned.discard(v)
            for u in graph.neighbors(v):
                if part[u] == -1:
                    frontier.add(int(u))

    # Everything left goes to the last partition, then spread to lightest if
    # the last one ends up oversized relative to empties.
    for v in unassigned:
        part[v] = k - 1
    # Guard: ensure no partition is empty (move lightest vertices in).
    for p in range(k):
        if not np.any(part == p):
            weights = np.zeros(k, dtype=np.int64)
            np.add.at(weights, part, graph.vwgt)
            donor = int(np.argmax(weights))
            candidates = np.flatnonzero(part == donor)
            v = candidates[np.argmin(graph.vwgt[candidates])]
            part[v] = p
    return part


def initial_partition(
    graph: WeightedGraph,
    k: int,
    rng: np.random.Generator,
    *,
    restarts: int = 8,
) -> np.ndarray:
    """Best of several greedy-growing restarts (by edge-cut)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return np.zeros(graph.n_vertices, dtype=np.int64)
    if k >= graph.n_vertices:
        # One vertex per part, extras to part 0.
        part = np.zeros(graph.n_vertices, dtype=np.int64)
        part[: graph.n_vertices] = np.arange(graph.n_vertices) % k
        return part

    best, best_cut = None, None
    for _ in range(restarts):
        cand = greedy_growing(graph, k, rng)
        cut = edge_cut(graph, cand)
        if best_cut is None or cut < best_cut:
            best, best_cut = cand, cut
    return best
