"""Multilevel k-way weighted graph partitioner (METIS stand-in)."""

from .coarsen import CoarseLevel, coarsen, heavy_edge_matching
from .graph import WeightedGraph
from .initial import greedy_growing, initial_partition
from .kway import PartitionResult, partition_kway
from .metrics import edge_cut, load_imbalance, migration_volume, part_weights
from .refine import rebalance, refine_partition
from .repartition import repartition

__all__ = [
    "WeightedGraph",
    "PartitionResult",
    "partition_kway",
    "repartition",
    "edge_cut",
    "load_imbalance",
    "migration_volume",
    "part_weights",
    "coarsen",
    "heavy_edge_matching",
    "CoarseLevel",
    "initial_partition",
    "greedy_growing",
    "refine_partition",
    "rebalance",
]
