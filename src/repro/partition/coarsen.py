"""Graph coarsening by heavy-edge matching (the METIS scheme).

Each coarsening level matches vertices with their heaviest unmatched
neighbour; matched pairs collapse into one coarse vertex with summed vertex
weight, and parallel coarse edges merge with summed weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import WeightedGraph

__all__ = ["CoarseLevel", "heavy_edge_matching", "coarsen"]


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``cmap[v]`` is the coarse vertex that fine vertex ``v`` collapsed into.
    """

    fine: WeightedGraph
    coarse: WeightedGraph
    cmap: np.ndarray


def heavy_edge_matching(
    graph: WeightedGraph, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-edge matching: ``match[v]`` = partner of v (or v itself).

    Vertices are visited in random order; each unmatched vertex matches its
    heaviest unmatched neighbour (ties broken by first occurrence).
    """
    n = graph.n_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        nbrs = graph.neighbors(v)
        wts = graph.edge_weights(v)
        best, best_w = v, -1
        for u, w in zip(nbrs, wts):
            if match[u] == -1 and u != v and w > best_w:
                best, best_w = int(u), int(w)
        match[v] = best
        match[best] = v if best != v else best
    return match


def coarsen(graph: WeightedGraph, rng: np.random.Generator) -> CoarseLevel:
    """Collapse one level using heavy-edge matching."""
    n = graph.n_vertices
    match = heavy_edge_matching(graph, rng)

    cmap = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        cmap[v] = nxt
        u = match[v]
        if u != v:
            cmap[u] = nxt
        nxt += 1

    cvwgt = np.zeros(nxt, dtype=np.int64)
    np.add.at(cvwgt, cmap, graph.vwgt)

    pairs, w = graph.edge_list()
    if len(pairs):
        cu, cv = cmap[pairs[:, 0]], cmap[pairs[:, 1]]
        keep = cu != cv  # intra-pair edges vanish
        cedges = np.column_stack([cu[keep], cv[keep]])
        cw = w[keep]
    else:
        cedges = np.zeros((0, 2), dtype=np.int64)
        cw = np.zeros(0, dtype=np.int64)
    coarse = WeightedGraph.from_edges(nxt, cedges, vwgt=cvwgt, ewgt=cw)
    return CoarseLevel(fine=graph, coarse=coarse, cmap=cmap)
