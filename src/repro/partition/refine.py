"""Greedy boundary refinement (k-way Fiduccia-Mattheyses flavour).

Moves boundary vertices between partitions when the move reduces the
edge-cut (or keeps it equal while improving balance), subject to the METIS
balance constraint ``max part weight <= tol * ideal``.  An optional anchor
partition with a migration factor makes the same machinery serve adaptive
repartitioning: moves back toward the anchor earn a bonus, moves away pay a
penalty, so the refiner trades edge-cut against data-redistribution volume.
"""

from __future__ import annotations

import numpy as np

from .graph import WeightedGraph
from .metrics import part_weights

__all__ = ["refine_partition", "rebalance"]


def _conn_weights(graph: WeightedGraph, part: np.ndarray, v: int, k: int) -> np.ndarray:
    """Edge weight from ``v`` into each partition."""
    conn = np.zeros(k, dtype=np.int64)
    nbrs = graph.neighbors(v)
    np.add.at(conn, part[nbrs], graph.edge_weights(v))
    return conn


def refine_partition(
    graph: WeightedGraph,
    part: np.ndarray,
    k: int,
    *,
    tol: float = 1.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
    anchor: np.ndarray | None = None,
    migration_factor: float = 0.0,
) -> np.ndarray:
    """Refine ``part`` in place-sh (returns a new array).

    Parameters
    ----------
    tol:
        Balance tolerance (1.05 = parts may exceed ideal weight by 5%).
    anchor, migration_factor:
        When given, a move that lands vertex ``v`` on ``anchor[v]`` earns
        ``migration_factor * vwgt[v]`` of extra gain and a move off its
        anchor pays the same penalty (adaptive repartitioning).
    """
    rng = rng or np.random.default_rng(0)
    part = part.astype(np.int64).copy()
    n = graph.n_vertices
    weights = part_weights(graph, part, k)
    limit = tol * graph.total_vwgt / k

    for _ in range(max_passes):
        moved = 0
        for v in rng.permutation(n):
            home = part[v]
            conn = _conn_weights(graph, part, v, k)
            internal = conn[home]
            # candidate targets: partitions this vertex touches
            targets = np.flatnonzero(conn)
            best_p, best_gain = -1, 0.0
            for p in targets:
                if p == home:
                    continue
                if weights[p] + graph.vwgt[v] > limit:
                    continue
                gain = float(conn[p] - internal)
                if anchor is not None and migration_factor:
                    if p == anchor[v]:
                        gain += migration_factor * graph.vwgt[v]
                    if home == anchor[v]:
                        gain -= migration_factor * graph.vwgt[v]
                # tie-break on balance improvement
                better = gain > best_gain or (
                    gain == best_gain
                    and best_p != -1
                    and weights[p] < weights[best_p]
                )
                if gain > 0 and (best_p == -1 or better):
                    best_p, best_gain = int(p), gain
            if best_p >= 0:
                weights[home] -= graph.vwgt[v]
                weights[best_p] += graph.vwgt[v]
                part[v] = best_p
                moved += 1
        if not moved:
            break
    return part


def rebalance(
    graph: WeightedGraph,
    part: np.ndarray,
    k: int,
    *,
    tol: float = 1.05,
    rng: np.random.Generator | None = None,
    max_moves: int | None = None,
) -> np.ndarray:
    """Push overweight partitions under the balance limit.

    Repeatedly moves the boundary vertex with the least edge-cut damage out
    of the heaviest over-limit partition into the lightest partition that
    can take it.  Used when weight updates (new time frame) leave the old
    mapping unbalanced.
    """
    rng = rng or np.random.default_rng(0)
    part = part.astype(np.int64).copy()
    n = graph.n_vertices
    weights = part_weights(graph, part, k)
    limit = tol * graph.total_vwgt / k
    if max_moves is None:
        max_moves = 4 * n

    for _ in range(max_moves):
        over = np.flatnonzero(weights > limit)
        if not over.size:
            break
        donor = int(over[np.argmax(weights[over])])
        members = np.flatnonzero(part == donor)
        best = None  # (loss, v, target)
        for v in members:
            conn = _conn_weights(graph, part, v, k)
            for p in np.argsort(weights):
                p = int(p)
                if p == donor:
                    continue
                if weights[p] + graph.vwgt[v] > limit:
                    continue
                loss = float(conn[donor] - conn[p])
                if best is None or loss < best[0]:
                    best = (loss, int(v), p)
                break  # only consider the lightest feasible target
        if best is None:
            break  # cannot legally move anything; give up
        _, v, p = best
        weights[donor] -= graph.vwgt[v]
        weights[p] += graph.vwgt[v]
        part[v] = p
    return part
