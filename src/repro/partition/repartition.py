"""Adaptive repartitioning (METIS' repartitioning routine stand-in).

The paper's mapping method re-invokes the partitioner whenever the graph
weights change — before DSE Step 1 (new noise estimate → new vertex
weights) and before DSE Step 2 (communication weights become relevant).
Starting from the previous assignment and penalising migration keeps the
new mapping close to the old one, bounding the data-redistribution cost.
"""

from __future__ import annotations

import numpy as np

from .graph import WeightedGraph
from .kway import PartitionResult, partition_kway
from .metrics import edge_cut, load_imbalance, migration_volume
from .refine import rebalance, refine_partition

__all__ = ["repartition"]


def repartition(
    graph: WeightedGraph,
    k: int,
    old_part: np.ndarray,
    *,
    tol: float = 1.05,
    migration_factor: float = 0.5,
    seed: int = 0,
    refine_passes: int = 8,
    scratch_fallback: bool = True,
) -> PartitionResult:
    """Repartition starting from ``old_part`` with updated weights.

    Parameters
    ----------
    migration_factor:
        Vertex-weight units of edge-cut a migration is worth: higher values
        glue vertices to their previous cluster, lower values chase pure
        edge-cut quality.
    scratch_fallback:
        Also run a from-scratch partition and keep it when its edge-cut is
        better even after charging migrated weight at ``migration_factor``.
    """
    if len(old_part) != graph.n_vertices:
        raise ValueError("old_part length mismatch")
    if old_part.size and (old_part.min() < 0 or old_part.max() >= k):
        raise ValueError("old_part labels out of range")
    rng = np.random.default_rng(seed)

    part = rebalance(graph, old_part, k, tol=tol, rng=rng)
    part = refine_partition(
        graph,
        part,
        k,
        tol=tol,
        max_passes=refine_passes,
        rng=rng,
        anchor=old_part,
        migration_factor=migration_factor,
    )
    result = PartitionResult(
        part=part,
        k=k,
        edge_cut=edge_cut(graph, part),
        imbalance=load_imbalance(graph, part, k),
    )

    if scratch_fallback:
        scratch = partition_kway(graph, k, tol=tol, seed=seed)
        cost_adapt = result.edge_cut + migration_factor * migration_volume(
            graph, old_part, result.part
        )
        cost_scratch = scratch.edge_cut + migration_factor * migration_volume(
            graph, old_part, scratch.part
        )
        if cost_scratch < cost_adapt:
            return scratch
    return result
