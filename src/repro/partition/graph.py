"""Weighted undirected graph in CSR adjacency form.

The partitioner's working representation, mirroring METIS' input format:
``xadj``/``adjncy`` CSR adjacency, integer vertex weights ``vwgt`` and edge
weights ``adjwgt`` (stored per directed arc; symmetric).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An undirected vertex- and edge-weighted graph (CSR adjacency).

    Build with :meth:`from_edges`; the raw constructor expects consistent
    CSR arrays.  Weights default to 1.  Parallel edges are merged by summing
    their weights; self-loops are rejected.
    """

    def __init__(
        self,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        vwgt: np.ndarray,
        adjwgt: np.ndarray,
    ):
        self.xadj = np.asarray(xadj, dtype=np.int64)
        self.adjncy = np.asarray(adjncy, dtype=np.int64)
        self.vwgt = np.asarray(vwgt, dtype=np.int64)
        self.adjwgt = np.asarray(adjwgt, dtype=np.int64)
        if len(self.xadj) != self.n_vertices + 1:
            raise ValueError("xadj length inconsistent with vwgt")
        if len(self.adjncy) != len(self.adjwgt):
            raise ValueError("adjncy / adjwgt length mismatch")
        if np.any(self.vwgt < 0) or np.any(self.adjwgt < 0):
            raise ValueError("negative weights not allowed")

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges,
        *,
        vwgt: np.ndarray | None = None,
        ewgt: np.ndarray | None = None,
    ) -> "WeightedGraph":
        """Build from an edge list ``[(u, v), ...]`` with optional weights.

        Duplicate (u, v) pairs (in either orientation) are merged by summing
        weights.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges) == 0:
            vw = np.ones(n, np.int64) if vwgt is None else np.asarray(vwgt, np.int64)
            xadj = np.zeros(n + 1, dtype=np.int64)
            return cls(xadj, np.zeros(0, np.int64), vw, np.zeros(0, np.int64))
        if ewgt is None:
            ewgt = np.ones(len(edges), dtype=np.int64)
        else:
            ewgt = np.asarray(ewgt, dtype=np.int64)
            if len(ewgt) != len(edges):
                raise ValueError("ewgt length mismatch")
        if vwgt is None:
            vwgt = np.ones(n, dtype=np.int64)
        else:
            vwgt = np.asarray(vwgt, dtype=np.int64)
            if len(vwgt) != n:
                raise ValueError("vwgt length mismatch")
        if len(edges) and (edges.min() < 0 or edges.max() >= n):
            raise ValueError("edge endpoint out of range")
        if np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loops not allowed")

        # Merge duplicates on canonical orientation.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        key = lo * n + hi
        order = np.argsort(key, kind="stable")
        key_s, w_s = key[order], ewgt[order]
        starts = np.flatnonzero(np.r_[True, key_s[1:] != key_s[:-1]])
        merged_key = key_s[starts]
        merged_w = np.add.reduceat(w_s, starts) if len(w_s) else np.array([], np.int64)
        mu, mv = merged_key // n, merged_key % n

        # CSR from both arc directions.
        src = np.concatenate([mu, mv])
        dst = np.concatenate([mv, mu])
        w2 = np.concatenate([merged_w, merged_w])
        order = np.argsort(src, kind="stable")
        src, dst, w2 = src[order], dst[order], w2[order]
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.add.at(xadj, src + 1, 1)
        np.cumsum(xadj, out=xadj)
        return cls(xadj, dst, vwgt, w2)

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.vwgt)

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return len(self.adjncy) // 2

    @property
    def total_vwgt(self) -> int:
        return int(self.vwgt.sum())

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour vertex indices of ``v``."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of the arcs leaving ``v`` (aligned with :meth:`neighbors`)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique undirected edges as ``(pairs (m,2), weights (m,))``."""
        src = np.repeat(np.arange(self.n_vertices), np.diff(self.xadj))
        mask = src < self.adjncy
        pairs = np.column_stack([src[mask], self.adjncy[mask]])
        return pairs, self.adjwgt[mask].copy()

    def is_connected(self) -> bool:
        """BFS connectivity check."""
        n = self.n_vertices
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for w in self.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(int(w))
        return count == n

    def with_weights(
        self,
        *,
        vwgt: np.ndarray | None = None,
        ewgt_map=None,
    ) -> "WeightedGraph":
        """A copy with replaced vertex weights and/or edge weights.

        ``ewgt_map`` is a callable ``(u, v) -> weight`` applied to each
        unique edge (u < v).
        """
        pairs, w = self.edge_list()
        if ewgt_map is not None:
            w = np.array([ewgt_map(int(u), int(v)) for u, v in pairs], dtype=np.int64)
        new_vwgt = self.vwgt.copy() if vwgt is None else np.asarray(vwgt, np.int64)
        return WeightedGraph.from_edges(self.n_vertices, pairs, vwgt=new_vwgt, ewgt=w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedGraph(n={self.n_vertices}, m={self.n_edges})"
