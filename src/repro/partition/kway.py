"""Multilevel k-way partitioning driver (the METIS stand-in).

coarsen (heavy-edge matching) → initial partition (greedy growing) →
uncoarsen with boundary refinement at every level.  The public entry point
:func:`partition_kway` matches the role METIS plays in the paper: given the
power-system decomposition graph with computation/communication weights,
produce a small-edge-cut, balanced assignment of subsystems to clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coarsen import CoarseLevel, coarsen
from .graph import WeightedGraph
from .initial import initial_partition
from .metrics import edge_cut, load_imbalance
from .refine import rebalance, refine_partition

__all__ = ["PartitionResult", "partition_kway"]


@dataclass
class PartitionResult:
    """A k-way partition and its quality metrics."""

    part: np.ndarray
    k: int
    edge_cut: int
    imbalance: float

    def parts(self) -> list[np.ndarray]:
        """Vertex indices per partition."""
        return [np.flatnonzero(self.part == p) for p in range(self.k)]


def partition_kway(
    graph: WeightedGraph,
    k: int,
    *,
    tol: float = 1.05,
    seed: int = 0,
    coarsen_to: int | None = None,
    refine_passes: int = 8,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` balanced parts minimising edge-cut.

    Parameters
    ----------
    graph:
        The weighted graph (e.g. the power-system decomposition graph).
    k:
        Number of partitions (HPC clusters).
    tol:
        Balance tolerance; METIS' suggested default is 1.05.
    seed:
        Seed for all randomised phases (matching, seeds, visit order).
    coarsen_to:
        Stop coarsening when the graph is at most this many vertices
        (default ``max(20, 4k)``).
    refine_passes:
        Refinement passes per uncoarsening level.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if graph.n_vertices == 0:
        return PartitionResult(np.zeros(0, np.int64), k, 0, 1.0)
    rng = np.random.default_rng(seed)
    if coarsen_to is None:
        coarsen_to = max(20, 4 * k)

    # Coarsening phase.
    levels: list[CoarseLevel] = []
    g = graph
    while g.n_vertices > coarsen_to:
        level = coarsen(g, rng)
        if level.coarse.n_vertices >= g.n_vertices:  # no progress
            break
        levels.append(level)
        g = level.coarse

    # Initial partition at the coarsest level.
    part = initial_partition(g, k, rng)
    part = refine_partition(g, part, k, tol=tol, max_passes=refine_passes, rng=rng)

    # Uncoarsening with refinement.
    for level in reversed(levels):
        part = part[level.cmap]
        part = refine_partition(
            level.fine, part, k, tol=tol, max_passes=refine_passes, rng=rng
        )

    part = rebalance(graph, part, k, tol=tol, rng=rng)
    part = refine_partition(graph, part, k, tol=tol, max_passes=refine_passes, rng=rng)
    return PartitionResult(
        part=part,
        k=k,
        edge_cut=edge_cut(graph, part),
        imbalance=load_imbalance(graph, part, k),
    )
