"""Report rendering: aligned text tables and CSV export for session results.

Keeps presentation out of the core classes: anything with ``reports`` (a
:class:`~repro.core.session.DseSession`) or a list of
:class:`~repro.core.telemetry.FrameReport` renders through these helpers.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "format_table",
    "frame_table",
    "session_summary",
    "write_frames_csv",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned text table.

    Numbers are formatted with ``float_fmt``; everything else with
    ``str``.  Columns are right-aligned to the widest cell.
    """
    def cell(x) -> str:
        if isinstance(x, bool):
            return str(x)
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    body = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells):
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(headers), "-+-".join("-" * w for w in widths)]
    out.extend(line(row) for row in body)
    return "\n".join(out)


_FRAME_HEADERS = (
    "t", "noise x", "Ni", "imb1", "imb2", "migrated",
    "rounds", "bytes", "sim total (ms)", "wall (ms)", "Vm RMSE", "degraded",
)


def _frame_row(rep) -> list:
    degraded = getattr(rep, "degraded_subsystems", None) or []
    return [
        rep.t,
        rep.noise_level,
        rep.expected_iterations,
        rep.imbalance_step1,
        rep.imbalance_step2,
        rep.migrated_weight,
        rep.rounds,
        rep.bytes_exchanged,
        rep.timings.total * 1e3,
        rep.wall_time * 1e3,
        rep.vm_rmse_vs_truth if rep.vm_rmse_vs_truth is not None else "-",
        ",".join(str(int(s)) for s in degraded) if degraded else "-",
    ]


def frame_table(reports: Sequence) -> str:
    """Per-frame summary table for a list of :class:`FrameReport`."""
    return format_table(_FRAME_HEADERS, [_frame_row(r) for r in reports])


def session_summary(reports: Sequence) -> dict:
    """Aggregate statistics over a session's frames."""
    if not reports:
        raise ValueError("no frames to summarise")
    n = len(reports)
    tot = [r.timings.total for r in reports]
    return {
        "frames": n,
        "mean_noise_level": sum(r.noise_level for r in reports) / n,
        "mean_sim_total": sum(tot) / n,
        "max_sim_total": max(tot),
        "mean_imbalance_step1": sum(r.imbalance_step1 for r in reports) / n,
        "total_bytes": sum(r.bytes_exchanged for r in reports),
        "total_migrated_weight": sum(r.migrated_weight for r in reports),
    }


def write_frames_csv(reports: Sequence, path: str | Path | io.TextIOBase) -> None:
    """Write the per-frame table as CSV (path or open text stream)."""
    rows = [_frame_row(r) for r in reports]
    if isinstance(path, io.TextIOBase):
        writer = csv.writer(path)
        writer.writerow(_FRAME_HEADERS)
        writer.writerows(rows)
        return
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FRAME_HEADERS)
        writer.writerows(rows)
