"""Process-wide metrics: counters, gauges, streaming-quantile histograms.

The registry is the thread-safe aggregation point for every ad-hoc counter
that used to live on individual objects (`ScenarioService` stats,
`MuxRouter` per-pair stats, client byte counts).  Design constraints:

- **hot-path cheap** — a counter increment is one lock acquire and one
  float add; a histogram observation is a bisect into precomputed
  geometric bucket bounds plus five scalar updates.  Call sites cache the
  metric handle (``registry.counter(name)`` is get-or-create) so the
  registry lookup is paid once, not per event.
- **thread-safe by construction** — every metric owns its own lock; there
  is no way to mutate a value outside it.  Concurrent increments from any
  number of threads sum exactly (regression-tested).
- **streaming quantiles** — histograms keep geometric buckets (factor-2
  spacing from 1 ns to ~18 s and beyond), so p50/p90/p99 are available at
  any time without retaining samples.  Exact count/sum/min/max ride along.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "value": self.value,
        }


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "value": self.value,
        }


#: geometric bucket upper bounds: factor-2 spacing covering 1 ns .. ~1.8e10
#: (seconds-oriented, but unit-agnostic: anything outside lands in the
#: first / last bucket and min/max stay exact).
_BOUNDS = tuple(1e-9 * 2.0**i for i in range(64))


class Histogram:
    """Streaming-quantile histogram over geometric buckets.

    ``observe`` is O(log n_buckets); ``quantile`` interpolates inside the
    selected bucket and clamps to the exact observed min/max, so small
    sample counts do not report values never seen.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        idx = bisect_right(_BOUNDS, v)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def count_below(self, v: float) -> int:
        """Observations known to be ``<= v`` — the SLO engine's "good
        within threshold" counter.  Bucket-resolution and pessimistic:
        the bucket straddling ``v`` counts as *above* the threshold, so a
        latency SLO can under-report compliance by at most one bucket,
        never over-report it."""
        idx = bisect_right(_BOUNDS, v)
        with self._lock:
            return sum(self._counts[:idx])

    def bucket_counts(self) -> list[int]:
        """Copy of the raw geometric bucket counts (telemetry deltas)."""
        with self._lock:
            return list(self._counts)

    def absorb(self, pairs, count: int, vsum: float, vmin: float, vmax: float) -> None:
        """Merge a remote delta: sparse ``(bucket_idx, n)`` pairs plus the
        matching count/sum deltas and the remote's observed min/max.  The
        telemetry aggregation plane uses this to fold per-site histograms
        into one cluster histogram without shipping samples."""
        with self._lock:
            for idx, n in pairs:
                self._counts[idx] += n
            self._count += int(count)
            self._sum += float(vsum)
            if count:
                if vmin < self._min:
                    self._min = float(vmin)
                if vmax > self._max:
                    self._max = float(vmax)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cum = 0
            for idx, c in enumerate(self._counts):
                cum += c
                if cum >= target and c:
                    lo = _BOUNDS[idx - 1] if idx > 0 else 0.0
                    hi = _BOUNDS[idx] if idx < len(_BOUNDS) else self._max
                    frac = (target - (cum - c)) / c
                    est = lo + (hi - lo) * frac
                    return min(max(est, self._min), self._max)
            return self._max

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            vmin = self._min if count else 0.0
            vmax = self._max if count else 0.0
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": vmin,
            "max": vmax,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Metrics are keyed by ``(name, sorted labels)``; asking for an existing
    name with a different metric kind raises, so one name cannot silently
    hold two shapes.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = cls(name, labels)
                self._metrics[key] = m
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {m.kind}, "
                    f"not {cls.kind}"
                )
            return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def collect(self) -> list[dict]:
        """Snapshot every metric, sorted by (name, labels)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return [m.snapshot() for _, m in metrics]

    def get(self, name: str, **labels):
        """Existing metric or ``None`` (no creation)."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
