"""Observability exporters: JSONL dumps, Prometheus text, console flames.

One schema everywhere: spans export as the dicts produced by
:meth:`repro.obs.trace.Span.to_dict`, metrics as registry snapshots, and
per-frame session records as :meth:`repro.core.telemetry.FrameReport.to_dict`
— the same dicts ``benchmarks/record_bench.py`` embeds in its BENCH
artifacts, so a recorded session and a benchmark run are mutually
readable.

- :func:`export_jsonl` / :func:`load_jsonl` — line-per-record dump of a
  session (``kind`` is ``span`` / ``metric`` / ``frame`` / ``meta``);
- :func:`render_prometheus` — Prometheus text exposition of a registry
  (counters as ``_total``-style samples, histograms as count/sum plus
  quantile samples);
- :func:`build_trace_trees` / :func:`render_flame` — reassemble span
  parent/child links and render a per-trace console flame summary.
"""

from __future__ import annotations

import json
import time

from .metrics import MetricsRegistry

__all__ = [
    "export_jsonl",
    "load_jsonl",
    "render_prometheus",
    "render_prometheus_snapshots",
    "build_trace_trees",
    "render_flame",
    "render_metrics_table",
]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _json_default(o):
    try:
        import numpy as np

        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    return repr(o)


def _dump_record(d: dict) -> str:
    """One JSONL line for a record dict (shared with the flight recorder)."""
    return json.dumps(d, default=_json_default) + "\n"


def export_jsonl(path, *, tracer=None, registry=None, frames=None, meta=None) -> int:
    """Write a recorded session to ``path`` (one JSON object per line).

    ``tracer`` contributes its finished spans, ``registry`` a snapshot of
    every metric, ``frames`` an iterable of
    :class:`~repro.core.telemetry.FrameReport` (or plain dicts).  Returns
    the number of lines written.
    """
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {"kind": "meta", "format": "repro-obs-v1", "exported_at": time.time()}
        if tracer is not None:
            header["spans_dropped"] = tracer.spans_dropped
        if meta:
            header.update(meta)
        fh.write(json.dumps(header, default=_json_default) + "\n")
        n += 1
        if tracer is not None:
            for d in tracer.finished():
                fh.write(json.dumps(d, default=_json_default) + "\n")
                n += 1
        if registry is not None:
            for d in registry.collect():
                rec = dict(d)
                rec["kind"] = "metric"
                rec["metric_kind"] = d["kind"]
                fh.write(json.dumps(rec, default=_json_default) + "\n")
                n += 1
        if frames is not None:
            for fr in frames:
                d = fr if isinstance(fr, dict) else fr.to_dict()
                rec = {"kind": "frame", **d}
                fh.write(json.dumps(rec, default=_json_default) + "\n")
                n += 1
    return n


def load_jsonl(path) -> dict:
    """Read a session dump back:
    ``{"meta", "spans", "metrics", "frames", "events", "snapshots"}``.

    ``events`` / ``snapshots`` come from health-plane blackbox dumps
    (empty for plain session exports); unknown kinds are skipped, so
    newer dumps stay readable by older loaders and vice versa.
    """
    out = {"meta": {}, "spans": [], "metrics": [], "frames": [],
           "events": [], "snapshots": []}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("kind")
            if kind == "meta":
                out["meta"] = rec
            elif kind == "span":
                out["spans"].append(rec)
            elif kind == "metric":
                out["metrics"].append(rec)
            elif kind == "frame":
                out["frames"].append(rec)
            elif kind == "event":
                out["events"].append(rec)
            elif kind == "snapshot":
                out["snapshots"].append(rec)
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_escape(value) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote and newline must be ``\\\\``, ``\\"`` and ``\\n`` inside the
    quoted value."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_prom_name(str(k))}="{_prom_escape(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus_snapshots(snapshots) -> str:
    """Prometheus text-format rendering of metric snapshot dicts.

    Accepts both live ``registry.collect()`` snapshots (``kind`` is the
    metric kind) and JSONL metric records (``kind == "metric"`` with the
    metric kind under ``metric_kind``) — the one renderer behind
    :func:`render_prometheus` and the ``obsreport --prometheus`` CLI.
    """
    lines: list[str] = []
    for snap in snapshots:
        name = _prom_name(snap["name"])
        labels = snap.get("labels") or {}
        kind = snap.get("metric_kind", snap.get("kind"))
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_prom_labels(labels)} {snap['value']:.10g}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_prom_labels(labels)} {snap['value']:.10g}")
        else:  # histogram -> summary-style quantile samples
            lines.append(f"# TYPE {name} summary")
            for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                qlabels = dict(labels)
                qlabels["quantile"] = q
                lines.append(f"{name}{_prom_labels(qlabels)} {snap[key]:.10g}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {snap['sum']:.10g}")
            lines.append(f"{name}_count{_prom_labels(labels)} {snap['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text-format rendering of every metric in ``registry``."""
    return render_prometheus_snapshots(registry.collect())


# ----------------------------------------------------------------------
# trace trees and console flames
# ----------------------------------------------------------------------
def build_trace_trees(spans: list[dict]) -> list[dict]:
    """Reassemble span dicts into trace trees.

    Returns one record per trace: ``{"trace", "roots", "n_spans"}`` where
    every span node gains a ``"children"`` list (sorted by start time).
    Spans whose parent is missing from the dump (e.g. dropped by the
    retention bound) are promoted to roots rather than lost.
    """
    by_trace: dict[int, list[dict]] = {}
    for d in spans:
        by_trace.setdefault(d["trace"], []).append(d)

    trees = []
    for trace_id, group in sorted(by_trace.items()):
        nodes = {d["span"]: {**d, "children": []} for d in group}
        roots = []
        for node in nodes.values():
            parent = node.get("parent")
            if parent is not None and parent in nodes:
                nodes[parent]["children"].append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node["children"].sort(key=lambda c: c.get("start", 0.0))
        roots.sort(key=lambda c: c.get("start", 0.0))
        trees.append({"trace": trace_id, "roots": roots, "n_spans": len(group)})
    trees.sort(key=lambda t: min((r.get("start", 0.0) for r in t["roots"]), default=0.0))
    return trees


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items(), key=lambda kv: str(kv[0])))
    return " {" + body + "}"


def _flame_node(node: dict, total: float, depth: int, lines: list[str],
                max_depth: int) -> None:
    if max_depth is not None and depth > max_depth:
        return
    dur = node.get("dur", 0.0)
    frac = dur / total if total > 0 else 0.0
    bar = "#" * max(1, int(round(frac * 24))) if dur > 0 else ""
    status = "" if node.get("status", "ok") == "ok" else " [ERROR]"
    lines.append(
        f"{'  ' * depth}{node['name']:<{max(1, 38 - 2 * depth)}} "
        f"{dur * 1e3:9.3f} ms  {frac * 100:5.1f}%  {bar}{status}"
        f"{_fmt_attrs(node.get('attrs') or {})}"
    )
    for child in node.get("children", []):
        _flame_node(child, total, depth + 1, lines, max_depth)


def render_flame(spans: list[dict], *, max_depth: int | None = None) -> str:
    """Console flame summary: one indented tree per trace, durations and
    percent-of-root bars per span."""
    lines: list[str] = []
    for tree in build_trace_trees(spans):
        total = sum(r.get("dur", 0.0) for r in tree["roots"])
        lines.append(
            f"trace {tree['trace']:#x} — {tree['n_spans']} spans, "
            f"{total * 1e3:.3f} ms"
        )
        for root in tree["roots"]:
            _flame_node(root, total, 1, lines, max_depth)
        lines.append("")
    return "\n".join(lines)


def render_metrics_table(snapshots: list[dict]) -> str:
    """Fixed-width console table of metric snapshots."""
    lines = [f"{'metric':<44} {'kind':<10} {'value / p50 / p99':>32}"]
    for snap in snapshots:
        kind = snap.get("metric_kind", snap.get("kind", "?"))
        name = snap["name"] + _fmt_attrs(snap.get("labels") or {})
        if kind in ("counter", "gauge"):
            val = f"{snap['value']:.6g}"
        else:
            val = (
                f"n={snap['count']} p50={snap['p50']:.3e} "
                f"p99={snap['p99']:.3e}"
            )
        lines.append(f"{name:<44} {kind:<10} {val:>32}")
    return "\n".join(lines)
