"""repro.obs — process-wide observability: metrics, traces, exporters.

One switchboard for everything the repo measures about itself:

- a thread-safe :class:`~repro.obs.metrics.MetricsRegistry` (counters,
  gauges, streaming-quantile histograms) replacing the ad-hoc unsynchronized
  counters that used to live on individual services;
- a :class:`~repro.obs.trace.Tracer` producing span trees per DSE frame,
  with context propagation across executor threads, process-pool workers
  (spans ride the result channel back) and the middleware wire (a compact
  trace context rides the mux frame);
- exporters: JSONL session dumps, Prometheus text, console flame
  summaries (:mod:`repro.obs.export`), rendered offline by
  ``python -m repro.tools.obsreport``.

Everything is **off by default** and costs one flag check per
instrumentation point when disabled; the overhead with tracing *enabled*
is gated by ``benchmarks/bench_obs_overhead.py`` (≤ 5% on the IEEE-118
DSE hot path).  Estimator outputs are bit-identical either way — the
instrumentation never touches numerics or RNG state.

Usage::

    from repro import obs

    obs.configure(enabled=True)          # or REPRO_OBS=1 in the environment
    ...run a session...
    obs.export_jsonl("session.jsonl", tracer=obs.tracer(),
                     registry=obs.metrics())
    obs.configure(enabled=False, reset=True)

Knobs: ``configure(enabled=, sample_every=)``; environment overrides
``REPRO_OBS`` (truthy enables at import) and ``REPRO_OBS_SAMPLE``
(record every N-th trace).
"""

from __future__ import annotations

import os

from .export import (
    build_trace_trees,
    export_jsonl,
    load_jsonl,
    render_flame,
    render_metrics_table,
    render_prometheus,
    render_prometheus_snapshots,
)
from .aggregate import TelemetryAggregator, TelemetryPublisher
from .health import (
    DEFAULT_TRIGGERS,
    FlightRecorder,
    HealthEvent,
    HealthMonitor,
    SloEngine,
    SloSpec,
    Watchdog,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    NOOP_SPAN,
    RemoteSpanRecorder,
    Span,
    SpanContext,
    Tracer,
    TRACE_CTX_SIZE,
    pack_span_context,
    unpack_span_context,
    use_context,
)
from .trace import current_context as _trace_current_context

__all__ = [
    # hub
    "configure", "enabled", "tracer", "metrics", "span", "current_context",
    "pack_current_context", "adopt", "remote_recorder", "reset_in_worker",
    "health", "health_enabled",
    # building blocks
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "SpanContext", "Tracer", "RemoteSpanRecorder", "NOOP_SPAN",
    "use_context", "pack_span_context", "unpack_span_context",
    "TRACE_CTX_SIZE",
    # health plane
    "HealthMonitor", "HealthEvent", "FlightRecorder", "Watchdog",
    "SloSpec", "SloEngine", "DEFAULT_TRIGGERS",
    "TelemetryPublisher", "TelemetryAggregator",
    # exporters
    "export_jsonl", "load_jsonl", "render_prometheus",
    "render_prometheus_snapshots", "render_flame",
    "render_metrics_table", "build_trace_trees",
]

_USE_CURRENT = object()

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()
_health_enabled = False
_health: HealthMonitor | None = None
_health_dump_dir = None
_default_slos: list[SloSpec] = []


def _coerce_slos(specs) -> list[SloSpec]:
    out = []
    for s in specs:
        out.append(s if isinstance(s, SloSpec) else SloSpec.parse(str(s)))
    return out


def _make_health() -> HealthMonitor:
    from pathlib import Path

    mon = HealthMonitor(registry=_registry)
    mon.recorder.dump_dir = (
        Path(_health_dump_dir) if _health_dump_dir is not None else None
    )
    mon.default_slos = list(_default_slos)
    return mon


def configure(
    *,
    enabled: bool | None = None,
    sample_every: int | None = None,
    reset: bool = False,
    health: bool | None = None,
    slo=None,
    health_dump_dir=_USE_CURRENT,
) -> None:
    """Configure the process-wide observability state.

    ``enabled`` flips every instrumentation point on/off; ``sample_every``
    records every N-th root trace (head sampling, children inherit the
    decision); ``reset`` clears accumulated spans, metrics and health
    state first.

    ``health`` flips the runtime health plane (flight recorder, watchdog,
    SLO engine — see :mod:`repro.obs.health`); ``slo`` sets its default
    objectives (a list of :class:`SloSpec` or ``SloSpec.parse`` strings,
    applied to serving stats as they register); ``health_dump_dir`` is
    where trigger events auto-dump blackbox JSONL files (``None`` = no
    auto-dumps, explicit ``dump(path)`` only).  Span capture into the
    flight recorder additionally needs ``enabled=True`` — the health
    plane never creates spans of its own.
    """
    global _enabled, _health_enabled, _health, _health_dump_dir, _default_slos
    if reset:
        _tracer.reset()
        _registry.reset()
        if _health is not None:
            _health.stop()
            _health = None
        _tracer.mirror = None
    if sample_every is not None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        _tracer.sample_every = int(sample_every)
    if enabled is not None:
        _enabled = bool(enabled)
    if slo is not None:
        _default_slos = _coerce_slos(slo)
        if _health is not None:
            _health.default_slos = list(_default_slos)
    if health_dump_dir is not _USE_CURRENT:
        _health_dump_dir = health_dump_dir
        if _health is not None:
            from pathlib import Path

            _health.recorder.dump_dir = (
                Path(health_dump_dir) if health_dump_dir is not None else None
            )
    if health is not None:
        _health_enabled = bool(health)
        if _health_enabled:
            if _health is None:
                _health = _make_health()
            _tracer.mirror = _health.recorder.record_span
        else:
            if _health is not None:
                _health.stop()
            _tracer.mirror = None


def enabled() -> bool:
    """Whether observability is globally on (the hot-path guard)."""
    return _enabled


def health_enabled() -> bool:
    """Whether the runtime health plane is on (the hot-path guard for
    every health hook in serving / DSE / the pools)."""
    return _health_enabled


def health() -> HealthMonitor:
    """The process-wide :class:`HealthMonitor` (created lazily; shared by
    every instrumented layer).  Instrumented code guards each call with
    :func:`health_enabled` — accessing the monitor does not enable it."""
    global _health
    if _health is None:
        _health = _make_health()
        if _health_enabled:
            _tracer.mirror = _health.recorder.record_span
    return _health


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def span(name: str, *, parent=_USE_CURRENT, **attrs):
    """Open a span on the global tracer — the universal instrumentation
    point.  Returns :data:`NOOP_SPAN` when observability is disabled, so
    call sites need no guard of their own."""
    if not _enabled:
        return NOOP_SPAN
    if parent is _USE_CURRENT:
        return _tracer.start_span(name, attrs=attrs)
    return _tracer.start_span(name, parent=parent, attrs=attrs)


def current_context() -> SpanContext | None:
    """Active span context of this thread, or ``None`` (also when
    observability is disabled — callers use this as the propagation
    guard)."""
    if not _enabled:
        return None
    return _trace_current_context()


def pack_current_context() -> bytes | None:
    """Packed active context for task payloads / wire metadata, or
    ``None`` when disabled, outside any span, or in an unsampled trace
    (so downstream recorders stay no-ops)."""
    ctx = current_context()
    if ctx is None or not ctx.sampled:
        return None
    return pack_span_context(ctx)


def adopt(span_dicts) -> None:
    """Graft spans recorded elsewhere (pool workers, remote processes)."""
    if _enabled and span_dicts:
        _tracer.adopt(span_dicts)


def remote_recorder(packed_parent: bytes | None) -> RemoteSpanRecorder:
    """Worker-side recorder for a packed parent context (no-op recorder
    when the parent shipped ``None``)."""
    return RemoteSpanRecorder(packed_parent)


def reset_in_worker() -> None:
    """Disable and clear observability in a freshly spawned/forked pool
    worker: the parent's tracer state is not meaningful there (worker
    spans are shipped back explicitly via :class:`RemoteSpanRecorder`)."""
    global _enabled, _health_enabled, _health
    _enabled = False
    _health_enabled = False
    _health = None
    _tracer.mirror = None
    _tracer.reset()
    _registry.reset()


# Environment opt-in: REPRO_OBS=1 enables at import (CLI tools, examples);
# REPRO_OBS_SAMPLE=N records every N-th trace; REPRO_OBS_HEALTH=1 turns on
# the runtime health plane; REPRO_OBS_SLO holds ;-separated SloSpec.parse
# strings applied as the health plane's default objectives.
def _truthy(v: str) -> bool:
    return v.lower() in ("1", "true", "yes", "on")


if _truthy(os.environ.get("REPRO_OBS", "")):
    configure(enabled=True)
if os.environ.get("REPRO_OBS_SAMPLE", ""):
    try:
        configure(sample_every=int(os.environ["REPRO_OBS_SAMPLE"]))
    except ValueError:  # pragma: no cover - bad env value
        pass
if os.environ.get("REPRO_OBS_SLO", ""):
    try:
        configure(slo=[
            s for s in os.environ["REPRO_OBS_SLO"].split(";") if s.strip()
        ])
    except ValueError:  # pragma: no cover - bad env value
        pass
if _truthy(os.environ.get("REPRO_OBS_HEALTH", "")):
    configure(health=True)
