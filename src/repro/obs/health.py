"""repro.obs.health — the always-on runtime health plane.

PR 4 made the repo observable *after the fact* (record, export, render
with ``obsreport``).  This module makes it observable *while it runs*:

- :class:`HealthEvent` — one typed, timestamped "something notable
  happened" record (``shard.lost``, ``watchdog.stall``, ``shed.burst``,
  ``frame.degraded``, ``slo.burn``, ``manual``), counted under
  ``health.events_total{kind}``;
- :class:`FlightRecorder` — bounded ring buffers of the most recent
  spans, metric snapshots and health events.  When a trigger event fires
  (or :meth:`HealthMonitor.dump` is called) it writes a self-contained
  **blackbox**: a repro-obs-v1 JSONL file that ``obsreport`` /
  ``obstop`` render directly, with the active fault injector's
  ``fired_summary`` in the meta header so a chaos failure replays from
  the artifact alone;
- :class:`Watchdog` — armed heartbeat watches over stallable loops
  (Step-2 rounds, pool maps, shard dispatchers).  ``beat`` is a lock-free
  timestamp store on the instrumented thread; staleness is detected by a
  monitor *check*, never by anything on the hot path;
- :class:`SloSpec` / :class:`SloEngine` — declarative latency /
  availability / shed-budget objectives over the serving tier's
  cumulative stats, evaluated as **multi-window burn rates** with
  hysteresis (the SRE alerting shape: alert only when the error budget is
  burning in *every* window, enter/exit after N consecutive verdicts);
- :class:`HealthMonitor` — the hub tying them together, exposed as
  ``obs.health()`` behind ``obs.configure(health=True)`` /
  ``REPRO_OBS_HEALTH``.  Disabled (the default) no instrumented layer
  calls into this module at all — outputs stay bitwise identical.

Everything here observes; nothing blocks, retries or mutates the work it
watches.  The monitor's background loop (or an explicit ``tick()`` in
tests, with an injected clock) is the only place staleness and burn are
computed.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from .export import _dump_record
from .metrics import MetricsRegistry

__all__ = [
    "HealthEvent",
    "FlightRecorder",
    "Watchdog",
    "WatchToken",
    "SloSpec",
    "SloEngine",
    "HealthMonitor",
    "DEFAULT_TRIGGERS",
]

#: event kinds that auto-dump a blackbox when the recorder has a dump dir
DEFAULT_TRIGGERS = frozenset(
    {
        "frame.degraded",
        "shard.lost",
        "shed.burst",
        "watchdog.stall",
        "site.lost",
        "site.recovered",
    }
)


@dataclass(frozen=True)
class HealthEvent:
    """One typed health occurrence (immutable, JSON-ready)."""

    kind: str
    source: str
    severity: str = "warning"
    detail: dict = field(default_factory=dict)
    t_wall: float = 0.0
    seq: int = 0

    def to_dict(self) -> dict:
        """JSONL record (``kind="event"`` — repro-obs-v1 readers that
        predate the health plane skip it)."""
        return {
            "kind": "event",
            "event": self.kind,
            "severity": self.severity,
            "source": self.source,
            "detail": dict(self.detail),
            "t": self.t_wall,
            "seq": self.seq,
        }


def _jsonable_fired(summary: dict) -> dict:
    """``FaultInjector.fired_summary`` keyed by tuples -> JSON keys.

    The stringified tuple is deterministic, so two replays of the same
    seeded plan produce byte-identical blackbox meta."""
    return {str(k): v for k, v in sorted(summary.items(), key=lambda kv: str(kv[0]))}


class FlightRecorder:
    """Bounded rings of recent spans / metric snapshots / health events,
    dumped as a self-contained blackbox JSONL on demand or on trigger.

    The span ring is fed by the tracer's mirror hook
    (:attr:`repro.obs.trace.Tracer.mirror`), so it sees every recorded
    span — including ones the tracer's retention bound would drop — but
    only keeps the last ``span_capacity``.  That is the point: after a
    long soak the tracer may be full or reset, while the recorder still
    holds the minutes *around the failure*.
    """

    def __init__(
        self,
        *,
        span_capacity: int = 4096,
        event_capacity: int = 512,
        snapshot_capacity: int = 16,
        dump_dir=None,
        min_dump_interval: float = 1.0,
        clock=time.monotonic,
    ):
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=int(span_capacity))
        self._events: deque = deque(maxlen=int(event_capacity))
        self._snapshots: deque = deque(maxlen=int(snapshot_capacity))
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.min_dump_interval = float(min_dump_interval)
        self._clock = clock
        self._last_dump = None
        self._dump_seq = itertools.count(1)
        self.dumps: list[str] = []

    # -- feeds ---------------------------------------------------------
    def record_span(self, span_dict: dict) -> None:
        """Tracer mirror sink (appends under the ring's own lock)."""
        with self._lock:
            self._spans.append(span_dict)

    def record_event(self, event: HealthEvent) -> None:
        with self._lock:
            self._events.append(event)

    def snapshot_metrics(self, registry: MetricsRegistry) -> None:
        """Append one timestamped snapshot of every metric to the ring."""
        snap = {"t": time.time(), "metrics": registry.collect()}
        with self._lock:
            self._snapshots.append(snap)

    # -- reads ---------------------------------------------------------
    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def events(self) -> list[HealthEvent]:
        with self._lock:
            return list(self._events)

    def snapshots(self) -> list[dict]:
        with self._lock:
            return list(self._snapshots)

    # -- dumping -------------------------------------------------------
    def dump(self, path, *, registry=None, meta: dict | None = None) -> str:
        """Write the rings (plus an optional live-registry snapshot) to
        ``path`` as repro-obs-v1 JSONL; returns the path written.

        The file is self-contained: meta header (``"blackbox": true``,
        trigger info, fault ``fired_summary`` when an injector is
        active), span records, health-event records, a ``metric`` record
        per live metric and one ``snapshot`` record per ring entry.
        """
        with self._lock:
            spans = list(self._spans)
            events = list(self._events)
            snapshots = list(self._snapshots)
        header = {
            "kind": "meta",
            "format": "repro-obs-v1",
            "blackbox": True,
            "exported_at": time.time(),
            "n_spans": len(spans),
            "n_events": len(events),
        }
        from .. import faults  # local import: faults layers import obs

        inj = faults.active()
        if inj is not None:
            header["fired_summary"] = _jsonable_fired(inj.fired_summary())
        if meta:
            header.update(meta)
        path = str(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_dump_record(header))
            for d in spans:
                fh.write(_dump_record(d))
            for ev in events:
                fh.write(_dump_record(ev.to_dict()))
            if registry is not None:
                for d in registry.collect():
                    rec = dict(d)
                    rec["kind"] = "metric"
                    rec["metric_kind"] = d["kind"]
                    fh.write(_dump_record(rec))
            for snap in snapshots:
                fh.write(_dump_record({"kind": "snapshot", **snap}))
        self.dumps.append(path)
        return path

    def trigger(self, reason: str, *, registry=None, meta: dict | None = None) -> str | None:
        """Auto-dump a blackbox named after ``reason`` into ``dump_dir``.

        Returns the path, or ``None`` when no dump dir is configured or
        the previous dump was under ``min_dump_interval`` ago (one
        failure storm must not fill the disk with near-identical
        blackboxes)."""
        if self.dump_dir is None:
            return None
        now = self._clock()
        with self._lock:
            if (
                self._last_dump is not None
                and now - self._last_dump < self.min_dump_interval
            ):
                return None
            self._last_dump = now
            seq = next(self._dump_seq)
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        slug = "".join(c if c.isalnum() else "-" for c in reason)
        path = self.dump_dir / f"blackbox-{seq:03d}-{slug}.jsonl"
        full = dict(meta or {})
        full.setdefault("trigger", reason)
        return self.dump(path, registry=registry, meta=full)


class WatchToken:
    """One armed heartbeat watch (held by the instrumented code).

    ``beat()`` is the hot-path side: a single monotonic-clock read and an
    attribute store — no locks, no allocation.  Staleness is judged by
    :meth:`Watchdog.check` on the monitor's thread."""

    __slots__ = ("name", "source", "timeout", "gate", "detail",
                 "last_beat", "beats", "tripped")

    def __init__(self, name, source, timeout, gate, detail, now):
        self.name = name
        self.source = source
        self.timeout = float(timeout)
        self.gate = gate
        self.detail = detail or {}
        self.last_beat = now
        self.beats = 0
        self.tripped = False


class Watchdog:
    """Detects silent stalls through armed heartbeat watches.

    A watch is *armed* while its loop is supposed to make progress
    (a live Step-2 round loop, an in-flight pool map, a serving
    dispatcher with queued work) and *disarmed* when the loop ends.  An
    optional ``gate`` callable suppresses staleness while there is
    legitimately nothing to do (e.g. an idle dispatcher) — a gated-idle
    watch has its deadline refreshed so a later burst gets the full
    timeout again.

    ``check`` fires each stalled watch **once per stall episode**: the
    token stays tripped until the next beat clears it.
    """

    def __init__(self, *, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._watches: set[WatchToken] = set()
        self.trips = 0

    def arm(self, name: str, *, timeout: float, source: str = "",
            gate=None, detail: dict | None = None) -> WatchToken:
        if timeout <= 0:
            raise ValueError("watch timeout must be positive")
        tok = WatchToken(name, source or name, timeout, gate, detail,
                         self._clock())
        with self._lock:
            self._watches.add(tok)
        return tok

    def beat(self, token: WatchToken) -> None:
        token.beats += 1
        token.last_beat = self._clock()
        token.tripped = False

    def disarm(self, token: WatchToken) -> None:
        with self._lock:
            self._watches.discard(token)

    def active(self) -> list[WatchToken]:
        with self._lock:
            return list(self._watches)

    def check(self, now: float | None = None) -> list[WatchToken]:
        """Scan armed watches; returns the ones that newly stalled."""
        now = self._clock() if now is None else now
        stalled = []
        for tok in self.active():
            gate = tok.gate
            if gate is not None:
                try:
                    busy = bool(gate())
                except Exception:  # noqa: BLE001 - a dying gate is "idle"
                    busy = False
                if not busy:
                    tok.last_beat = now  # idle: restart the clock
                    continue
            if tok.tripped:
                continue
            if now - tok.last_beat > tok.timeout:
                tok.tripped = True
                stalled.append(tok)
        self.trips += len(stalled)
        return stalled


_SLO_KINDS = ("latency", "availability", "shed_budget")


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    ``objective`` is the target *good fraction* (0 < objective < 1); the
    error budget is ``1 - objective``.  ``kind`` selects how good/total
    counts derive from a stats source:

    - ``latency`` — good: requests resolving within ``threshold`` seconds
      (streaming-histogram bucket resolution, counted pessimistically);
    - ``availability`` — good: completed requests; bad: typed sheds plus
      lost replicas (a replica loss is one bad unit of serving capacity);
    - ``shed_budget`` — good: executed requests; bad: shed requests.

    ``windows`` are the (short, long) burn-rate windows in seconds; the
    alert condition is ``burn >= burn_threshold`` in **every** window,
    sustained for ``hysteresis`` consecutive evaluations (and it takes
    the same number of clean evaluations to clear).
    """

    name: str
    kind: str
    objective: float = 0.99
    threshold: float = 0.0
    windows: tuple = (5.0, 60.0)
    burn_threshold: float = 1.0
    hysteresis: int = 2

    def __post_init__(self):
        if self.kind not in _SLO_KINDS:
            raise ValueError(f"kind must be one of {_SLO_KINDS}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind == "latency" and self.threshold <= 0:
            raise ValueError("latency SLOs need a positive threshold")
        if len(self.windows) < 1 or any(w <= 0 for w in self.windows):
            raise ValueError("windows must be positive durations")
        if self.burn_threshold <= 0 or self.hysteresis < 1:
            raise ValueError("burn_threshold > 0 and hysteresis >= 1 required")

    @staticmethod
    def parse(text: str) -> "SloSpec":
        """Parse the compact knob grammar (``REPRO_OBS_SLO``)::

            name:kind:objective[:threshold][:short/long][:burn]

        e.g. ``lat:latency:0.95:0.2``, ``avail:availability:0.999``,
        ``shed:shed_budget:0.99::1/10:2``.  Empty positions keep their
        defaults."""
        parts = [p.strip() for p in text.split(":")]
        if len(parts) < 3:
            raise ValueError(
                f"SLO spec {text!r}: need at least name:kind:objective"
            )
        kw: dict = {"name": parts[0], "kind": parts[1],
                    "objective": float(parts[2])}
        if len(parts) > 3 and parts[3]:
            kw["threshold"] = float(parts[3])
        if len(parts) > 4 and parts[4]:
            kw["windows"] = tuple(float(w) for w in parts[4].split("/"))
        if len(parts) > 5 and parts[5]:
            kw["burn_threshold"] = float(parts[5])
        return SloSpec(**kw)


def _totals_fn(spec: SloSpec, source):
    """Cumulative ``() -> (total, good)`` reader for a stats source.

    Duck-typed over the serving tier's two stats shapes.  Counters are
    read without the source's lock: they are ints mutated under it, so a
    pair can skew by one in-flight update — noise the windowed burn
    estimate tolerates by construction."""
    if hasattr(source, "latency_hist"):  # ServiceStats
        if spec.kind == "latency":
            hist = source.latency_hist
            thr = spec.threshold
            return lambda: (hist.count, hist.count_below(thr))
        return lambda: (
            source.n_requests + source.n_shed, source.n_requests
        )
    if hasattr(source, "replicas_lost"):  # RouterStats
        if spec.kind == "latency":
            raise ValueError(
                "latency SLOs need a ServiceStats source (a router has "
                "no latency histogram of its own)"
            )
        return lambda: (
            source.completed + source.shed + source.replicas_lost,
            source.completed,
        )
    raise TypeError(
        f"cannot derive {spec.kind!r} totals from {type(source).__name__}"
    )


class _TrackedSlo:
    __slots__ = ("spec", "source", "source_name", "totals", "ring",
                 "burning", "enter_streak", "exit_streak", "burns")

    def __init__(self, spec, source, source_name, totals, ring_len):
        self.spec = spec
        self.source = source
        self.source_name = source_name
        self.totals = totals
        self.ring: deque = deque(maxlen=ring_len)  # (t, total, good)
        self.burning = False
        self.enter_streak = 0
        self.exit_streak = 0
        self.burns: dict[float, float] = {}


class SloEngine:
    """Evaluates tracked :class:`SloSpec` objectives as multi-window burn
    rates over cumulative stats snapshots.

    Each evaluation appends one ``(t, total, good)`` sample per tracked
    SLO and, per window, takes the delta against the newest sample at
    least that old (the oldest available while the window fills).  The
    burn rate is ``bad_fraction / error_budget`` — burn 1.0 consumes the
    budget exactly at the objective's pace, burn ≥ ``burn_threshold`` in
    every window (through hysteresis) raises the alert.  Gauges:
    ``health.slo.burn_rate{slo, source, window}`` and
    ``health.slo.burning{slo, source}``.
    """

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 clock=time.monotonic, ring_len: int = 512):
        self.registry = registry
        self._clock = clock
        self._ring_len = int(ring_len)
        self._lock = threading.Lock()
        self._tracked: dict[tuple, _TrackedSlo] = {}

    def track(self, spec: SloSpec, source, *, source_name: str = "") -> None:
        """Attach ``spec`` to a stats source (``ServiceStats`` /
        ``RouterStats``); re-tracking the same (slo, source name)
        replaces the previous attachment."""
        tr = _TrackedSlo(spec, source, source_name,
                         _totals_fn(spec, source), self._ring_len)
        with self._lock:
            self._tracked[(spec.name, source_name)] = tr

    def untrack_source(self, source) -> None:
        with self._lock:
            self._tracked = {
                k: v for k, v in self._tracked.items() if v.source is not source
            }

    def hint_for(self, source) -> int:
        """Autoscaler hint: +1 when any latency / shed-budget SLO attached
        to ``source`` is currently burning (more workers can help), else 0.
        Availability burns carry no hint — a lost replica is not fixed by
        resizing a pool."""
        with self._lock:
            tracked = list(self._tracked.values())
        for tr in tracked:
            if (
                tr.source is source
                and tr.burning
                and tr.spec.kind in ("latency", "shed_budget")
            ):
                return 1
        return 0

    def evaluate(self, now: float | None = None) -> list[dict]:
        """One evaluation pass; returns the alerts that newly *entered*
        the burning state (hysteresis satisfied this pass)."""
        now = self._clock() if now is None else now
        with self._lock:
            tracked = list(self._tracked.values())
        fired = []
        for tr in tracked:
            total, good = tr.totals()
            tr.ring.append((now, float(total), float(good)))
            spec = tr.spec
            budget = 1.0 - spec.objective
            burns = {}
            saw_traffic = False
            for w in spec.windows:
                base = tr.ring[0]
                for sample in reversed(tr.ring):
                    if now - sample[0] >= w:
                        base = sample
                        break
                d_total = total - base[1]
                d_good = good - base[2]
                if d_total <= 0:
                    burns[w] = 0.0
                    continue
                saw_traffic = True
                bad_frac = max(0.0, d_total - d_good) / d_total
                burns[w] = bad_frac / budget
            tr.burns = burns
            burning_now = saw_traffic and all(
                b >= spec.burn_threshold for b in burns.values()
            )
            if burning_now:
                tr.enter_streak += 1
                tr.exit_streak = 0
            else:
                tr.exit_streak += 1
                tr.enter_streak = 0
            if not tr.burning and tr.enter_streak >= spec.hysteresis:
                tr.burning = True
                fired.append({
                    "slo": spec.name,
                    "source": tr.source_name,
                    "kind": spec.kind,
                    "objective": spec.objective,
                    "burns": {str(w): b for w, b in burns.items()},
                })
            elif tr.burning and tr.exit_streak >= spec.hysteresis:
                tr.burning = False
            if self.registry is not None:
                for w, b in burns.items():
                    self.registry.gauge(
                        "health.slo.burn_rate",
                        slo=spec.name, source=tr.source_name, window=str(w),
                    ).set(b)
                self.registry.gauge(
                    "health.slo.burning", slo=spec.name, source=tr.source_name,
                ).set(1.0 if tr.burning else 0.0)
        return fired

    def status(self) -> list[dict]:
        """Per-SLO snapshot for dashboards."""
        with self._lock:
            tracked = list(self._tracked.values())
        return [
            {
                "slo": tr.spec.name,
                "source": tr.source_name,
                "kind": tr.spec.kind,
                "objective": tr.spec.objective,
                "burning": tr.burning,
                "burns": {str(w): b for w, b in tr.burns.items()},
            }
            for tr in tracked
        ]


class HealthMonitor:
    """The health-plane hub: one flight recorder, one watchdog, one SLO
    engine, one event stream — shared process-wide via ``obs.health()``.

    Instrumented layers call the cheap notifier methods
    (:meth:`shard_lost`, :meth:`note_shed`, :meth:`frame_degraded`,
    :meth:`watch` / :meth:`beat`); the monitor turns them into typed
    events, ``health.*`` counters and — for trigger kinds — blackbox
    dumps.  :meth:`tick` runs the periodic checks (watchdog scan, SLO
    evaluation, telemetry publish, metric snapshot); :meth:`start` runs
    them on a daemon thread.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        watchdog: Watchdog | None = None,
        slo: SloEngine | None = None,
        clock=time.monotonic,
        default_stall_timeout: float = 30.0,
        shed_burst: int = 10,
        shed_burst_window: float = 1.0,
        trigger_kinds=DEFAULT_TRIGGERS,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.recorder = recorder or FlightRecorder(clock=clock)
        self.watchdog = watchdog or Watchdog(clock=clock)
        self.slo = slo or SloEngine(registry=self.registry, clock=clock)
        self.default_stall_timeout = float(default_stall_timeout)
        self.trigger_kinds = frozenset(trigger_kinds)
        self.default_slos: list[SloSpec] = []
        self._listeners: list = []
        self._seq = itertools.count(1)
        self._publishers: list = []
        self._shed_times: deque = deque(maxlen=max(2, int(shed_burst)))
        self._shed_burst = int(shed_burst)
        self._shed_window = float(shed_burst_window)
        self._burst_rearm = float("-inf")
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- event stream --------------------------------------------------
    def add_listener(self, callback) -> None:
        """``callback(event)`` runs synchronously on the emitting thread
        (keep it cheap; exceptions are swallowed)."""
        self._listeners.append(callback)

    def emit(self, kind: str, source: str, *, severity: str = "warning",
             **detail) -> HealthEvent:
        """Record one typed health event (ring + counter + listeners);
        trigger kinds also dump a blackbox."""
        ev = HealthEvent(
            kind=kind, source=source, severity=severity, detail=detail,
            t_wall=time.time(), seq=next(self._seq),
        )
        self.recorder.record_event(ev)
        self.registry.counter("health.events_total", kind=kind).inc()
        for cb in self._listeners:
            try:
                cb(ev)
            except Exception:  # noqa: BLE001 - listeners must not break emitters
                pass
        if kind in self.trigger_kinds:
            path = self.recorder.trigger(
                kind, registry=self.registry, meta={"event": ev.to_dict()}
            )
            if path is not None:
                self.registry.counter(
                    "health.blackbox.dumps_total", trigger=kind
                ).inc()
        return ev

    # -- notifiers wired into the instrumented layers ------------------
    def shard_lost(self, shard: str, exc: Exception | None = None) -> HealthEvent:
        """A serving replica died (fires synchronously from the router's
        loss path, *before* the rehash re-dispatches its requests)."""
        return self.emit(
            "shard.lost", shard, severity="critical",
            error=repr(exc) if exc is not None else "",
        )

    def frame_degraded(self, source: str, **detail) -> HealthEvent:
        return self.emit("frame.degraded", source, **detail)

    def site_lost(self, site: str, **detail) -> HealthEvent:
        """A DSE site's lease expired (recovery plane): its checkpoints
        stopped arriving and the coordinator declared it lost."""
        return self.emit("site.lost", site, severity="critical", **detail)

    def site_recovered(self, source: str, **detail) -> HealthEvent:
        """A lost subsystem resumed on its checkpoint replica (failover
        promotion completed, or a degraded frame cleared)."""
        return self.emit("site.recovered", source, severity="info", **detail)

    def note_shed(self, source: str, cause: str) -> None:
        """Count a shed request toward burst detection: ``shed_burst``
        sheds inside ``shed_burst_window`` seconds raise one
        ``shed.burst`` event per episode."""
        now = self._clock()
        ring = self._shed_times
        ring.append(now)
        if (
            len(ring) == ring.maxlen
            and now - ring[0] <= self._shed_window
            and now >= self._burst_rearm
        ):
            self._burst_rearm = now + self._shed_window
            self.emit(
                "shed.burst", source, count=len(ring),
                window_s=self._shed_window, last_cause=cause,
            )

    # -- watchdog convenience ------------------------------------------
    def watch(self, name: str, *, timeout: float | None = None,
              source: str = "", gate=None, **detail) -> WatchToken:
        return self.watchdog.arm(
            name,
            timeout=timeout if timeout is not None else self.default_stall_timeout,
            source=source, gate=gate, detail=detail or None,
        )

    def beat(self, token: WatchToken) -> None:
        self.watchdog.beat(token)

    def disarm(self, token: WatchToken) -> None:
        self.watchdog.disarm(token)

    # -- SLO attachment ------------------------------------------------
    def watch_service(self, name: str, stats) -> int:
        """Apply every default latency / shed-budget SLO to a replica's
        ``ServiceStats``; returns the number attached."""
        n = 0
        for spec in self.default_slos:
            if spec.kind in ("latency", "shed_budget"):
                self.slo.track(spec, stats, source_name=name)
                n += 1
        return n

    def watch_router(self, name: str, stats) -> int:
        """Apply every default availability SLO to a ``RouterStats``."""
        n = 0
        for spec in self.default_slos:
            if spec.kind == "availability":
                self.slo.track(spec, stats, source_name=name)
                n += 1
        return n

    # -- telemetry publish ---------------------------------------------
    def attach_publisher(self, publish) -> None:
        """``publish()`` runs once per tick (a
        :class:`~repro.obs.aggregate.TelemetryPublisher` bound to a
        fabric — exceptions are swallowed so a dead fabric cannot kill
        the monitor loop)."""
        self._publishers.append(publish)

    # -- periodic checks -----------------------------------------------
    def tick(self, now: float | None = None) -> list[HealthEvent]:
        """One monitor pass: watchdog scan, SLO evaluation, telemetry
        publish, metric snapshot.  Returns the events it emitted."""
        now = self._clock() if now is None else now
        out: list[HealthEvent] = []
        for tok in self.watchdog.check(now):
            self.registry.counter(
                "health.watchdog.trips_total", watch=tok.name
            ).inc()
            out.append(self.emit(
                "watchdog.stall", tok.source, severity="critical",
                watch=tok.name, timeout_s=tok.timeout, beats=tok.beats,
                **tok.detail,
            ))
        for alert in self.slo.evaluate(now):
            self.registry.counter(
                "health.slo.trips_total", slo=alert["slo"]
            ).inc()
            detail = dict(alert)
            src = detail.pop("source") or alert["slo"]
            detail["slo_kind"] = detail.pop("kind")   # "kind" is the event's
            out.append(self.emit("slo.burn", src, **detail))
        for publish in self._publishers:
            try:
                publish()
            except Exception:  # noqa: BLE001 - see attach_publisher
                pass
        self.recorder.snapshot_metrics(self.registry)
        return out

    def start(self, interval: float = 0.25) -> None:
        """Run :meth:`tick` on a daemon thread every ``interval`` s."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, args=(float(interval),),
            name="health-monitor", daemon=True,
        )
        self._thread.start()

    def _loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self.tick()
            except Exception:  # pragma: no cover - keep the loop alive
                pass

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()

    # -- explicit blackbox ---------------------------------------------
    def dump(self, path=None, *, reason: str = "manual") -> str | None:
        """Write a blackbox now: to ``path``, or into the recorder's dump
        dir (``None`` if neither is available)."""
        self.emit("manual", reason, severity="info")
        if path is not None:
            return self.recorder.dump(
                path, registry=self.registry, meta={"trigger": reason}
            )
        return self.recorder.trigger(reason, registry=self.registry)
