"""Span-based tracing with cross-thread / cross-process / cross-wire context.

A *span* is one timed operation; spans link into trace trees through
``(trace_id, span_id, parent_id)``.  One DSE frame becomes one trace::

    dse.frame
    ├── dse.step1
    │   ├── dse.step1.subsystem {s=0}     (possibly recorded in a worker)
    │   └── ...
    ├── dse.exchange {round=0}
    │   └── mux.forward {src, dst}        (recorded at the router hop)
    ├── dse.step2 {round=0}
    │   └── dse.step2.subsystem {s=0}
    └── partition.remap

Propagation model:

- **same thread** — a ``contextvars.ContextVar`` holds the active span's
  context; ``start_span`` parents to it by default.
- **thread pools** — :meth:`repro.parallel.ThreadPoolBackend.map` captures
  the submitter's context and re-activates it around each task
  (:func:`use_context`), so spans opened inside tasks join the caller's
  trace without explicit plumbing.
- **process pools** — the parent packs its context
  (:func:`pack_span_context`) into the compact task payload; the worker
  records spans into a :class:`RemoteSpanRecorder` and ships the finished
  span dicts back on the existing result channel; the parent grafts them
  with :meth:`Tracer.adopt`.
- **the wire** — the packed context rides a mux-frame payload prefix
  (``FLAG_TRACED``); the router hop and the receiving site join the
  sender's trace (see :mod:`repro.middleware.message`).

Timing uses the monotonic clock for durations (``perf_counter``) and the
epoch clock only to anchor span start times for cross-process merging.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import struct
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "SpanContext",
    "Span",
    "NOOP_SPAN",
    "Tracer",
    "RemoteSpanRecorder",
    "use_context",
    "current_context",
    "pack_span_context",
    "unpack_span_context",
    "TRACE_CTX_SIZE",
]

#: wire encoding of a span context: sampled flag, trace id, span id
_TRACE_CTX = struct.Struct(">BQQ")
TRACE_CTX_SIZE = _TRACE_CTX.size

_ID_LOCK = threading.Lock()
_ID_COUNTER = itertools.count(1)


def _new_id() -> int:
    """Process-unique id, salted with the pid so ids minted in pool
    workers cannot collide with the parent's when spans are merged."""
    with _ID_LOCK:
        n = next(_ID_COUNTER)
    return ((os.getpid() & 0xFFFFF) << 40) | (n & 0xFFFFFFFFFF)


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: enough to parent children to it
    anywhere — another thread, another process, the far side of a socket."""

    trace_id: int
    span_id: int
    sampled: bool = True


#: the active span context of the current thread/task
_current: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_context() -> SpanContext | None:
    """The active span context in this thread (``None`` outside spans)."""
    return _current.get()


@contextmanager
def use_context(ctx: SpanContext | None):
    """Re-activate a captured span context (cross-thread propagation)."""
    if ctx is None:
        yield
        return
    token = _current.set(ctx)
    try:
        yield
    finally:
        _current.reset(token)


def pack_span_context(ctx: SpanContext) -> bytes:
    """Compact wire/pickle encoding (17 bytes)."""
    return _TRACE_CTX.pack(1 if ctx.sampled else 0, ctx.trace_id, ctx.span_id)


def unpack_span_context(buf, offset: int = 0) -> SpanContext:
    sampled, trace_id, span_id = _TRACE_CTX.unpack_from(buf, offset)
    return SpanContext(trace_id=trace_id, span_id=span_id, sampled=bool(sampled))


class Span:
    """One timed operation; use as a context manager.

    ``__exit__`` is exception-safe: an exception marks the span
    ``status="error"`` (with the exception repr as an attribute) and the
    span still ends and records.
    """

    __slots__ = (
        "name", "context", "parent_id", "attrs",
        "status", "_sink", "_t0", "_wall0", "_token", "_ended",
    )

    def __init__(self, name: str, context: SpanContext, parent_id: int | None,
                 sink, attrs: dict | None = None):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.status = "ok"
        self._sink = sink
        self._t0 = 0.0
        self._wall0 = 0.0
        self._token = None
        self._ended = False

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._token = _current.set(self.context)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", repr(exc))
        try:
            self.end()
        finally:
            # Restore the contextvar even when the sink raises — otherwise
            # this thread's "current span" leaks past the with-block and
            # every later span silently parents into a dead trace (the
            # same shape as the PR 4 re-entrant Timer fix).
            if self._token is not None:
                _current.reset(self._token)
                self._token = None

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        if self.context.sampled and self._sink is not None:
            self._sink._record(self.to_dict(time.perf_counter() - self._t0))

    def to_dict(self, duration: float) -> dict:
        return {
            "kind": "span",
            "trace": self.context.trace_id,
            "span": self.context.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self._wall0,
            "dur": duration,
            "status": self.status,
            "attrs": self.attrs,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }


class _NoopSpan:
    """Recorded-nowhere span — the disabled/unsampled fast path."""

    __slots__ = ()
    context = None
    parent_id = None
    name = ""
    status = "ok"
    attrs: dict = {}

    def set_attr(self, key, value) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: sentinel: "parent not given — use the thread's current context"
_USE_CURRENT = object()


class Tracer:
    """Creates spans and collects the finished ones (thread-safe, bounded).

    Parameters
    ----------
    sample_every:
        Head sampling: record every N-th root trace (1 = all, 0 = none).
        The decision is made once per root and inherited by every child,
        worker span and wire hop, so sampled traces stay complete.
    max_spans:
        Retention bound; beyond it finished spans are counted as dropped
        instead of retained (the JSONL exporter reports the drop count).
    """

    def __init__(self, *, sample_every: int = 1, max_spans: int = 200_000):
        self.sample_every = int(sample_every)
        self.max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._finished: list[dict] = []
        self._root_count = 0
        self.spans_dropped = 0
        #: optional ``callback(span_dict)`` mirror — the health plane's
        #: flight recorder.  Fed every finished span (even ones the
        #: retention bound drops), outside this tracer's lock.
        self.mirror = None

    # -- span creation ------------------------------------------------------
    def _sample_root(self) -> bool:
        with self._lock:
            self._root_count += 1
            n = self.sample_every
            return n > 0 and (self._root_count - 1) % n == 0

    def start_span(self, name: str, *, parent=_USE_CURRENT, attrs=None) -> Span:
        """Open a span.

        ``parent`` may be a :class:`SpanContext`, a :class:`Span`, ``None``
        (force a new root) or omitted (parent to the thread's current
        context, root if there is none).
        """
        if parent is _USE_CURRENT:
            parent = _current.get()
        if isinstance(parent, Span):
            parent = parent.context
        if parent is None:
            ctx = SpanContext(
                trace_id=_new_id(), span_id=_new_id(),
                sampled=self._sample_root(),
            )
            parent_id = None
        else:
            ctx = SpanContext(
                trace_id=parent.trace_id, span_id=_new_id(),
                sampled=parent.sampled,
            )
            parent_id = parent.span_id
        return Span(name, ctx, parent_id, self, attrs)

    # -- collection ---------------------------------------------------------
    def _record(self, span_dict: dict) -> None:
        mirror = self.mirror
        if mirror is not None:
            mirror(span_dict)
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.spans_dropped += 1
                return
            self._finished.append(span_dict)

    def adopt(self, span_dicts) -> None:
        """Graft spans finished elsewhere (pool workers, remote hops)."""
        if not span_dicts:
            return
        mirror = self.mirror
        if mirror is not None:
            for d in span_dicts:
                mirror(d)
        with self._lock:
            room = self.max_spans - len(self._finished)
            if room <= 0:
                self.spans_dropped += len(span_dicts)
                return
            take = list(span_dicts)[:room]
            self.spans_dropped += len(span_dicts) - len(take)
            self._finished.extend(take)

    def finished(self) -> list[dict]:
        """Copy of the finished spans recorded so far."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[dict]:
        """Remove and return every finished span."""
        with self._lock:
            out, self._finished = self._finished, []
            return out

    def spans_named(self, name: str) -> list[dict]:
        return [d for d in self.finished() if d["name"] == name]

    def reset(self) -> None:
        with self._lock:
            self._finished = []
            self._root_count = 0
            self.spans_dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


class RemoteSpanRecorder:
    """Worker-side span sink for process-pool tasks.

    Built from the packed parent context shipped in the task payload
    (``None`` when observability is off — every span becomes a no-op).
    Finished spans accumulate locally; :meth:`export` returns them (or
    ``None``) for the result tuple, and the parent grafts them with
    :meth:`Tracer.adopt`.
    """

    def __init__(self, packed_parent: bytes | None):
        self._parent = (
            unpack_span_context(packed_parent) if packed_parent else None
        )
        self._spans: list[dict] = []

    @property
    def enabled(self) -> bool:
        return self._parent is not None and self._parent.sampled

    def span(self, name: str, **attrs):
        if not self.enabled:
            return NOOP_SPAN
        ctx = SpanContext(
            trace_id=self._parent.trace_id, span_id=_new_id(), sampled=True
        )
        return Span(name, ctx, self._parent.span_id, self, attrs)

    def _record(self, span_dict: dict) -> None:
        self._spans.append(span_dict)

    def export(self) -> list[dict] | None:
        return self._spans or None
