"""Cluster-wide telemetry aggregation over the mux fabric.

Each site (worker process, shard host, DSE site) runs a
:class:`TelemetryPublisher` against its local
:class:`~repro.obs.metrics.MetricsRegistry`; every publish interval it
computes **compact deltas** since its previous publish — counter
increments, changed gauges, sparse histogram bucket deltas — packs them
with :func:`repro.middleware.message.pack_telemetry` and ships them as a
``FLAG_TELEMETRY`` frame.  The mux hub consumes telemetry frames before
destination routing (they never reach application deliver callbacks) and
hands them to a :class:`TelemetryAggregator`, which folds them into one
cluster-level registry with a ``site`` label — so ``obstop`` or a
Prometheus scrape of the hub process sees the whole cluster.

Deltas, not snapshots, for two reasons: frames stay small (an idle site
publishes nothing), and aggregation is correct under publisher restarts —
a counter delta applies with ``inc``, never a last-write-wins overwrite
that could go backwards.

The middleware imports live inside the methods that need them:
``repro.middleware`` imports ``repro.obs`` at module level, and this
module must stay importable from ``repro.obs`` without a cycle.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["TelemetryPublisher", "TelemetryAggregator"]


def _rec_key(snap: dict) -> tuple:
    return (snap["name"], tuple(sorted(snap["labels"].items())))


class TelemetryPublisher:
    """Computes metric deltas for one site's registry and ships them.

    Call :meth:`publish` from one thread (the health monitor's tick loop
    via :meth:`~repro.obs.health.HealthMonitor.attach_publisher`, or any
    periodic caller); the previous-snapshot state is not locked.
    """

    def __init__(self, site: str, registry: MetricsRegistry):
        self.site = site
        self.registry = registry
        self._last: dict[tuple, object] = {}
        self.frames_sent = 0

    def collect_deltas(self) -> list[dict]:
        """Delta records since the previous call (empty when idle)."""
        records: list[dict] = []
        for snap in self.registry.collect():
            kind = snap["kind"]
            key = _rec_key(snap)
            if kind == "counter":
                prev = self._last.get(key, 0.0)
                delta = snap["value"] - prev
                if delta > 0:
                    self._last[key] = snap["value"]
                    records.append({
                        "k": "c", "n": snap["name"], "l": snap["labels"],
                        "d": delta,
                    })
            elif kind == "gauge":
                prev = self._last.get(key)
                if prev is None or snap["value"] != prev:
                    self._last[key] = snap["value"]
                    records.append({
                        "k": "g", "n": snap["name"], "l": snap["labels"],
                        "v": snap["value"],
                    })
            else:  # histogram
                hist = self.registry.get(snap["name"], **snap["labels"])
                if hist is None:  # pragma: no cover - registry raced a reset
                    continue
                counts = hist.bucket_counts()
                count, vsum = hist.count, hist.sum
                prev_counts, prev_count, prev_sum = self._last.get(
                    key, ([0] * len(counts), 0, 0.0)
                )
                pairs = [
                    [i, c - p]
                    for i, (c, p) in enumerate(zip(counts, prev_counts))
                    if c != p
                ]
                if not pairs and count == prev_count:
                    continue
                self._last[key] = (counts, count, vsum)
                records.append({
                    "k": "h", "n": snap["name"], "l": snap["labels"],
                    "b": pairs, "dc": count - prev_count,
                    "ds": vsum - prev_sum,
                    "mn": snap["min"], "mx": snap["max"],
                })
        return records

    def publish(self, send) -> int:
        """Pack the pending deltas and hand the frame to ``send(payload)``
        (e.g. ``lambda p: fabric.send_telemetry(site, p)``).  No frame is
        sent when nothing changed; returns the number of records shipped."""
        from ..middleware.message import pack_telemetry

        records = self.collect_deltas()
        if not records:
            return 0
        send(pack_telemetry(self.site, records))
        self.frames_sent += 1
        return len(records)

    def bind(self, fabric, src: str):
        """Convenience: a zero-arg publisher closure over a fabric site,
        ready for :meth:`HealthMonitor.attach_publisher`."""
        return lambda: self.publish(lambda p: fabric.send_telemetry(src, p))


class TelemetryAggregator:
    """Folds telemetry frames from many sites into one cluster registry.

    Every ingested metric gains a ``site`` label, so per-site series stay
    distinguishable and cluster totals are one label-sum away.  Wire this
    as the hub sink: ``fabric.enable_telemetry(aggregator.ingest)``.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.frames_ingested = 0
        self.records_ingested = 0

    def ingest(self, payload: bytes) -> None:
        """Apply one packed telemetry frame (hub-thread callback)."""
        from ..middleware.message import unpack_telemetry

        site, records = unpack_telemetry(payload)
        for rec in records:
            labels = dict(rec.get("l") or {})
            labels["site"] = site
            kind = rec["k"]
            if kind == "c":
                self.registry.counter(rec["n"], **labels).inc(rec["d"])
            elif kind == "g":
                self.registry.gauge(rec["n"], **labels).set(rec["v"])
            elif kind == "h":
                self.registry.histogram(rec["n"], **labels).absorb(
                    rec["b"], rec["dc"], rec["ds"], rec["mn"], rec["mx"]
                )
        self.frames_ingested += 1
        self.records_ingested += len(records)
