"""Live distributed DSE runtime: concurrent estimator sites + middleware.

The closest thing in this repository to the paper's deployed prototype:
every subsystem's state estimator runs in its own thread ("site"), owns
only its local subproblem, and learns about its neighbours exclusively from
the bytes that arrive through the MeDICi-style pipelines — no shared-memory
shortcuts.  Rounds advance in lockstep (a barrier models the cycle
boundary of Figure 6); the payloads on the wire are the packed
pseudo-measurement records of :mod:`repro.middleware.message`.

The functional result must match the in-process
:class:`~repro.dse.algorithm.DistributedStateEstimator` — asserted in the
tests — while the wall-clock and relay statistics are those of a real
multi-threaded, socket-backed execution.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..cluster.recovery import (
    RecoveryConfig,
    RecoveryCoordinator,
    SubsystemCheckpoint,
    heartbeat_payload,
)
from ..dse.algorithm import DistributedStateEstimator
from ..dse.decomposition import Decomposition
from ..estimation.wls import WlsEstimator
from ..measurements.types import MeasurementSet
from ..middleware.errors import ClientClosed, MiddlewareError
from ..middleware.message import (
    FrameError,
    pack_condensed_update,
    pack_state_update,
    unpack_condensed_update,
    unpack_state_update,
)
from ..middleware.router import MiddlewareFabric

__all__ = ["LiveSiteStats", "LiveDseResult", "LiveDseRuntime"]

#: per-site cap on retained degraded-round indices (the full count lives
#: in ``degraded_total``) — a week-long soak stays O(1) memory per site
DEGRADED_ROUNDS_RETAINED = 64


@dataclass
class LiveSiteStats:
    """Per-site execution record."""

    s: int
    step1_time: float = 0.0
    step2_times: list[float] = field(default_factory=list)
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_received: int = 0
    #: Step-2 rounds this site completed without its full neighbour set
    #: (missed/corrupt updates, failed sends, blown round deadline);
    #: bounded to the most recent :data:`DEGRADED_ROUNDS_RETAINED` entries
    degraded_rounds: list[int] = field(default_factory=list)
    #: total degraded rounds, including any aged out of the capped list
    degraded_total: int = 0
    #: subsystem ids promoted onto this site by failover (recovery mode)
    promoted_subsystems: list[int] = field(default_factory=list)
    checkpoints_sent: int = 0
    checkpoint_bytes: int = 0

    def record_degraded(self, r: int) -> None:
        """Record a degraded round; the retained list keeps only the most
        recent entries so long-running soaks don't grow without bound."""
        self.degraded_total += 1
        self.degraded_rounds.append(r)
        if len(self.degraded_rounds) > DEGRADED_ROUNDS_RETAINED:
            del self.degraded_rounds[
                : len(self.degraded_rounds) - DEGRADED_ROUNDS_RETAINED
            ]


class _HostedSub:
    """Mutable Step-2 state for one subsystem hosted on a site thread
    (recovery mode hosts can carry more than their own after failover)."""

    __slots__ = ("s", "vm_loc", "va_loc", "prev2", "lin0")

    def __init__(self, s: int):
        self.s = s
        self.vm_loc: dict[int, float] = {}
        self.va_loc: dict[int, float] = {}
        self.prev2: tuple | None = None  # (Vm, Va) over the extended net
        self.lin0: tuple | None = None  # condensation linearisation point

    @classmethod
    def from_checkpoint(cls, ck: SubsystemCheckpoint) -> "_HostedSub":
        w = cls(ck.subsystem)
        w.vm_loc = {int(b): float(v) for b, v in zip(ck.own_ids, ck.own_vm)}
        w.va_loc = {int(b): float(v) for b, v in zip(ck.own_ids, ck.own_va)}
        if ck.warm_vm is not None:
            w.prev2 = (ck.warm_vm, ck.warm_va)
        if ck.lin_vm is not None:
            # float64 state round-trips the wire bit-exactly, so this hits
            # the donor's factorisation cache — no re-condensation
            w.lin0 = (ck.lin_vm, ck.lin_va)
        return w


@dataclass
class LiveDseResult:
    """Outcome of a live distributed run."""

    Vm: np.ndarray
    Va: np.ndarray
    rounds: int
    wall_time: float
    sites: dict[int, LiveSiteStats]
    errors: list[str] = field(default_factory=list)
    #: site id -> Step-2 rounds the site ran degraded (empty when clean)
    degraded: dict[int, list[int]] = field(default_factory=dict)
    #: subsystem ids re-hosted by failover (recovery mode; empty otherwise)
    recovered_subsystems: list[int] = field(default_factory=list)
    #: site ids whose lease expired during the run
    lost_sites: list[int] = field(default_factory=list)

    @property
    def degraded_subsystems(self) -> list[int]:
        """Sorted ids of the subsystems that ran any degraded round."""
        return sorted(self.degraded)

    def state_error(self, Vm_true: np.ndarray, Va_true: np.ndarray) -> dict:
        dva = self.Va - Va_true
        dva -= dva.mean()
        return {
            "vm_rmse": float(np.sqrt(np.mean((self.Vm - Vm_true) ** 2))),
            "va_rmse": float(np.sqrt(np.mean(dva**2))),
        }


class LiveDseRuntime:
    """Runs the two-step DSE as concurrent sites over live middleware.

    Parameters
    ----------
    dec, mset:
        The decomposition and the system-wide measurement snapshot (each
        site only ever touches its own assigned rows).
    use_tcp:
        Real localhost TCP pipelines instead of in-process queues.
    solver, sensitivity_threshold:
        Passed through to the local estimators.
    recv_timeout:
        Per-message receive timeout; a site that misses a neighbour's
        update records an error and re-uses its last known values, so a
        slow or dead peer degrades accuracy instead of deadlocking.
    round_deadline:
        Wall-clock budget per Step-2 exchange round, in seconds.  A site
        that has not collected its full neighbour set by the deadline
        stops waiting, runs the round on what it has (falling back to
        last-known pseudo values) and records the round as degraded —
        liveness under hard faults is bounded by ``rounds x deadline``
        instead of ``rounds x neighbours x recv_timeout``.  ``None``
        (default) keeps the per-message-timeout-only behaviour.
    use_cache:
        Reuse each site's estimators (cached Jacobian patterns,
        factorization orderings, merged pseudo structures) across Step-2
        rounds; rounds where a neighbour timed out fall back to a freshly
        built estimator over the partial pseudo set.
    fast:
        Use the fabric's multiplexed fast path (single router hub, pooled
        duplex links, batched neighbour sends) instead of one relay
        pipeline per pair.  Same bytes on the wire, same barrier schedule
        — the result stays bit-identical to the in-process DSE either way.
    condense:
        Condensed Step 2 (see
        :class:`~repro.dse.algorithm.DistributedStateEstimator`): each
        site solves the boundary-condensed system and the wire carries
        compact per-neighbour boundary blocks
        (:func:`~repro.middleware.message.pack_condensed_update`) — bus
        ids ride only the round-0 frames, later rounds are values-only
        over the receiver's a-priori ordering.  Requires
        ``use_cache=True``.
    recovery:
        Self-healing mode (a :class:`~repro.cluster.recovery.RecoveryConfig`;
        ``None`` — the default — is bitwise-inert): every round each site
        replicates a compact checkpoint of each subsystem it hosts to the
        subsystem's hash-ring successor over ``FLAG_CHECKPOINT`` frames;
        a site whose checkpoints stop arriving for ``lease_rounds``
        rounds is declared lost, its subsystems are promoted onto the
        successors holding their replicas, and the mux hub fences the
        zombie's epoch-stamped frames so it can never corrupt a
        post-failover round.  Requires ``fast=True`` and
        ``use_cache=True``.
    """

    def __init__(
        self,
        dec: Decomposition,
        mset: MeasurementSet,
        *,
        use_tcp: bool = False,
        solver: str = "lu",
        sensitivity_threshold: float = 0.5,
        recv_timeout: float = 10.0,
        round_deadline: float | None = None,
        use_cache: bool = True,
        fast: bool = True,
        condense: bool = False,
        recovery: RecoveryConfig | None = None,
    ):
        if condense and not use_cache:
            raise ValueError(
                "condense=True requires use_cache=True (the condensed "
                "operator lives in the per-site caches)"
            )
        if recovery is not None and not (fast and use_cache):
            raise ValueError(
                "recovery needs fast=True (checkpoint/epoch frames ride "
                "the mux hub) and use_cache=True (promoted subsystems "
                "reuse the shared per-site estimator caches)"
            )
        # Reuse the in-process DSE's subproblem construction and checks
        # (including its per-subsystem estimator caches).
        self._dse = DistributedStateEstimator(
            dec, mset, solver=solver,
            sensitivity_threshold=sensitivity_threshold,
            reuse_structures=use_cache,
            condense=condense,
        )
        self.dec = dec
        self.solver = solver
        self.recv_timeout = recv_timeout
        self.round_deadline = round_deadline
        self.use_tcp = use_tcp
        self.use_cache = use_cache
        self.fast = fast
        self.condense = condense
        self.recovery = recovery

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        rounds: int | None = None,
        tol: float = 1e-8,
        z: np.ndarray | None = None,
    ) -> LiveDseResult:
        """Execute one live distributed estimation.

        ``z`` optionally overrides the system-wide measured values
        (canonical order of the constructor's ``mset``) — a values-only
        frame over the warm site estimators, mirroring
        :meth:`repro.dse.algorithm.DistributedStateEstimator.run`; requires
        ``use_cache=True``.
        """
        dec = self.dec
        net = dec.net
        if rounds is None:
            rounds = max(1, dec.diameter())
        if z is not None:
            if not self.use_cache:
                raise ValueError("values-only frames (z=) require use_cache=True")
            z = np.asarray(z, dtype=float)
            if len(z) != len(self._dse.mset):
                raise ValueError("z override length mismatch")

        names = [f"se{s}" for s in range(dec.m)]
        pairs: list[tuple[str, str]] | None = []
        for u, v in dec.quotient_edges():
            pairs.append((f"se{u}", f"se{v}"))
            pairs.append((f"se{v}", f"se{u}"))
        recovery = self.recovery
        if recovery is not None:
            # failover can rebind any (publisher, host) pair, so the
            # fabric wires the full ordered-pair mesh up front
            pairs = None

        Vm = np.ones(net.n_bus)
        Va = np.zeros(net.n_bus)
        stats = {s: LiveSiteStats(s=s) for s in range(dec.m)}
        errors: list[str] = []
        err_lock = threading.Lock()
        barrier = threading.Barrier(dec.m)
        # Each site writes only its own buses; reads of neighbour values
        # happen via the wire, never via these arrays.
        result_lock = threading.Lock()
        coord: RecoveryCoordinator | None = None
        if recovery is not None:
            coord = RecoveryCoordinator(
                sites={name: i for i, name in enumerate(names)},
                hosted={f"se{s}": [s] for s in range(dec.m)},
                config=recovery,
            )

        watches: dict[int, object] = {}

        def site(s: int, fabric: MiddlewareFabric) -> None:
            if obs.health_enabled():
                # a round legitimately lasts up to its deadline (or one
                # recv timeout per neighbour); double that is a stall
                budget = (
                    self.round_deadline
                    if self.round_deadline is not None
                    else self.recv_timeout * max(1, dec.m - 1)
                )
                watches[s] = obs.health().watch(
                    f"live.site:{s}", timeout=2.0 * budget, source=f"se{s}",
                )
            try:
                # site threads start with a fresh contextvars context, so
                # the root span is handed over explicitly
                with obs.span("live.site", parent=root_ctx, s=s):
                    if coord is None:
                        _site_body(s, fabric)
                    else:
                        _site_body_rec(s, fabric)
            except Exception as exc:  # crash must not deadlock the barrier
                with err_lock:
                    errors.append(f"site {s} failed: {exc!r}")
                barrier.abort()
            finally:
                tok = watches.pop(s, None)
                if tok is not None:
                    obs.health().disarm(tok)

        def _site_body(s: int, fabric: MiddlewareFabric) -> None:
            st = stats[s]
            subnet1, _, own, ms1 = self._dse.sub1[s]
            subnet2, bmap2, xbuses, ext, ms2 = self._dse.sub2[s]
            nbrs = [int(b) for b in dec.neighbors(s)]
            publish = self._dse.exchange_sets[s]

            # local state, keyed by global bus index
            vm_loc = {int(b): 1.0 for b in own}
            va_loc = {int(b): 0.0 for b in own}
            known_vm: dict[int, float] = {}
            known_va: dict[int, float] = {}
            prev2 = None  # previous round's extended solution (warm start)
            lin0 = None  # frame linearization point (condensed mode)

            # ---- Step 1 ----
            t0 = time.perf_counter()
            with obs.span("live.step1", s=s):
                est1 = (
                    self._dse._est1[s]
                    if self.use_cache
                    else WlsEstimator(subnet1, ms1, solver=self.solver)
                )
                z1 = self._dse._step1_z(s, z) if z is not None else None
                res1 = est1.estimate(tol=tol, z=z1)
            st.step1_time = time.perf_counter() - t0
            for i, b in enumerate(own):
                vm_loc[int(b)] = float(res1.Vm[i])
                va_loc[int(b)] = float(res1.Va[i])

            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                return

            # ---- Step 2 rounds ----
            for r in range(rounds):
                tok = watches.get(s)
                if tok is not None:
                    obs.health().beat(tok)
                degraded_round = False
                with obs.span("live.exchange", s=s, round=r):
                    round_t1 = (
                        None
                        if self.round_deadline is None
                        else time.monotonic() + self.round_deadline
                    )
                    if self.condense:
                        # Per-neighbour condensed boundary blocks: each
                        # neighbour gets only the tie-endpoint buses its
                        # extended network reads.  Round 0 carries the bus
                        # ids; later rounds are values-only over the
                        # receiver's a-priori ordering.
                        parts = []
                        for nb in nbrs:
                            ids = self._dse._nbr_pub[s][nb]
                            parts.append((f"se{nb}", pack_condensed_update(
                                s, ids,
                                np.array([vm_loc[int(b)] for b in ids]),
                                np.array([va_loc[int(b)] for b in ids]),
                                values_only=r > 0,
                            )))
                    else:
                        payload = pack_state_update(
                            publish.astype(np.int64),
                            np.array([vm_loc[int(b)] for b in publish]),
                            np.array([va_loc[int(b)] for b in publish]),
                        )
                        parts = [(f"se{nb}", payload) for nb in nbrs]
                    # the whole neighbour burst rides one syscall on the
                    # fast plane (legacy falls back to per-pipeline sends);
                    # sending inside the span stamps the frames with this
                    # trace's context, so the router hop joins the trace
                    try:
                        fabric.send_many(f"se{s}", parts)
                        st.bytes_sent += sum(len(p) for _, p in parts)
                    except (MiddlewareError, ConnectionError, OSError) as exc:
                        # this site is cut off from the fabric; keep
                        # solving on last-known values, flag the round
                        with err_lock:
                            errors.append(
                                f"site {s} round {r}: send failed: {exc!r}"
                            )
                        degraded_round = True

                    for _ in nbrs:
                        timeout = self.recv_timeout
                        if round_t1 is not None:
                            remaining = round_t1 - time.monotonic()
                            if remaining <= 0:
                                with err_lock:
                                    errors.append(
                                        f"site {s} round {r}: "
                                        "round deadline exceeded"
                                    )
                                degraded_round = True
                                break
                            timeout = min(timeout, remaining)
                        try:
                            raw = fabric.recv(f"se{s}", timeout=timeout)
                        except TimeoutError:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: "
                                    "neighbour update timed out"
                                )
                            degraded_round = True
                            continue
                        except (ClientClosed, MiddlewareError) as exc:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: recv failed: "
                                    f"{exc!r}"
                                )
                            degraded_round = True
                            break
                        st.bytes_received += len(raw)
                        st.messages_received += 1
                        try:
                            # views over the wire buffer; values are copied
                            # into the known_* dicts below, so no aliasing
                            # escapes
                            if self.condense:
                                src_id, _vo, ids, vms, vas = (
                                    unpack_condensed_update(raw, copy=False)
                                )
                                if ids is None:
                                    # values-only frame: resolve the bus
                                    # ids from the shared a-priori
                                    # per-neighbour publication sets
                                    ids = self._dse._nbr_pub[int(src_id)][s]
                                    if len(ids) != len(vms):
                                        raise FrameError(
                                            "condensed update length "
                                            "mismatch"
                                        )
                            else:
                                ids, vms, vas = unpack_state_update(
                                    raw, copy=False
                                )
                        except (FrameError, ValueError, KeyError) as exc:
                            # corrupted in flight; the neighbour's update
                            # is lost for this round
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: corrupt update: "
                                    f"{exc!r}"
                                )
                            degraded_round = True
                            continue
                        for b, vm_b, va_b in zip(ids, vms, vas):
                            known_vm[int(b)] = float(vm_b)
                            known_va[int(b)] = float(va_b)
                if degraded_round:
                    st.record_degraded(r)
                    if obs.enabled():
                        obs.metrics().counter(
                            "live.degraded_rounds_total"
                        ).inc()
                    if obs.health_enabled():
                        obs.health().frame_degraded(f"se{s}", round=r)

                # pseudo measurements at the external boundary buses we know
                ext_known = [int(b) for b in ext if int(b) in known_vm]
                cached_path = self.use_cache and len(ext_known) == len(ext)
                if cached_path:
                    # Full neighbour coverage: refill the cached merged
                    # structure's pseudo values instead of rebuilding.
                    est2, z_tmpl, rows_vm, rows_va, src, rows_ms2 = (
                        self._dse._step2_cache[s]
                    )
                    z2 = z_tmpl.copy()
                    if z is not None:
                        z2[rows_ms2] = self._dse._step2_meas_z(s, z)
                    z2[rows_vm] = [known_vm[int(b)] for b in src]
                    z2[rows_va] = [known_va[int(b)] for b in src]
                else:
                    from ..dse.pseudo import pseudo_measurements

                    pseudo = pseudo_measurements(
                        bmap2[np.array(ext_known, dtype=np.int64)]
                        if ext_known else np.zeros(0, np.int64),
                        np.array([known_vm[b] for b in ext_known]),
                        np.array([known_va[b] for b in ext_known]),
                    )
                    ms2_round = (
                        ms2.with_values(self._dse._step2_meas_z(s, z))
                        if z is not None
                        else ms2
                    )
                    est2 = WlsEstimator(
                        subnet2, ms2_round.merged_with(pseudo), solver=self.solver
                    )
                    z2 = None

                if prev2 is not None:
                    # Warm start from the previous round's extended solve,
                    # with the external boundary refreshed from the latest
                    # neighbour publications — the same schedule as
                    # DistributedStateEstimator's warm_start path.
                    x0_vm = prev2.Vm.copy()
                    x0_va = prev2.Va.copy()
                    if ext_known:
                        idx = bmap2[np.array(ext_known, dtype=np.int64)]
                        x0_vm[idx] = [known_vm[b] for b in ext_known]
                        x0_va[idx] = [known_va[b] for b in ext_known]
                else:
                    x0_vm = np.ones(len(xbuses))
                    x0_va = np.zeros(len(xbuses))
                    for i, b in enumerate(xbuses):
                        b = int(b)
                        if b in vm_loc:
                            x0_vm[i], x0_va[i] = vm_loc[b], va_loc[b]
                        elif b in known_vm:
                            x0_vm[i], x0_va[i] = known_vm[b], known_va[b]
                    if self.condense:
                        # Round 0's start is the frame's Step-1 publication
                        # over the extended network — the same history-free
                        # linearization point the in-process DSE condenses
                        # at, so the operators (and the results) match.
                        lin0 = (x0_vm.copy(), x0_va.copy())

                kwargs = (
                    {"lin_point": lin0}
                    if self.condense and cached_path and lin0 is not None
                    else {}
                )
                t0 = time.perf_counter()
                with obs.span("live.step2", s=s, round=r):
                    res2 = est2.estimate(
                        x0=(x0_vm, x0_va), tol=tol, z=z2, **kwargs
                    )
                st.step2_times.append(time.perf_counter() - t0)
                prev2 = res2

                scope = self._dse.exchange_sets[s]
                local = bmap2[scope]
                for g, l in zip(scope, local):
                    vm_loc[int(g)] = float(res2.Vm[l])
                    va_loc[int(g)] = float(res2.Va[l])

                try:
                    barrier.wait()
                except threading.BrokenBarrierError:
                    return

            with result_lock:
                for b in own:
                    Vm[b] = vm_loc[int(b)]
                    Va[b] = va_loc[int(b)]

        def _make_ckpt(w: _HostedSub, site_idx: int, rnd: int):
            own_ = self._dse.sub1[w.s][2]
            own_ids = np.asarray(own_, dtype=np.int64)
            return SubsystemCheckpoint(
                subsystem=w.s, site=site_idx, epoch=coord.epoch, round=rnd,
                own_ids=own_ids,
                own_vm=np.array([w.vm_loc[int(b)] for b in own_ids]),
                own_va=np.array([w.va_loc[int(b)] for b in own_ids]),
                warm_vm=None if w.prev2 is None else np.asarray(w.prev2[0], float),
                warm_va=None if w.prev2 is None else np.asarray(w.prev2[1], float),
                lin_vm=None if w.lin0 is None else w.lin0[0],
                lin_va=None if w.lin0 is None else w.lin0[1],
            )

        def _site_body_rec(s: int, fabric: MiddlewareFabric) -> None:
            # Recovery-aware variant of _site_body: a site can host more
            # than one subsystem after failover, addresses frames by the
            # coordinator's live subsystem→site binding, and replicates a
            # checkpoint per hosted subsystem every round.  Numerics per
            # subsystem are identical to the base path.
            me = f"se{s}"
            st = stats[s]
            subnet1, _, own, ms1 = self._dse.sub1[s]

            w = _HostedSub(s)
            w.vm_loc = {int(b): 1.0 for b in own}
            w.va_loc = {int(b): 0.0 for b in own}
            hosted: dict[int, _HostedSub] = {s: w}
            nbrs_of = {s: [int(b) for b in dec.neighbors(s)]}
            known_vm: dict[int, float] = {}
            known_va: dict[int, float] = {}

            # ---- Step 1 ----
            t0 = time.perf_counter()
            with obs.span("live.step1", s=s):
                est1 = self._dse._est1[s]  # recovery requires use_cache
                z1 = self._dse._step1_z(s, z) if z is not None else None
                res1 = est1.estimate(tol=tol, z=z1)
            st.step1_time = time.perf_counter() - t0
            for i, b in enumerate(own):
                w.vm_loc[int(b)] = float(res1.Vm[i])
                w.va_loc[int(b)] = float(res1.Va[i])

            # Bootstrap replica seed (round -1), handed to the coordinator
            # before the first barrier: a replica exists before any data
            # frame can kill a site, and before any ordering race on the
            # hub — per-round checkpoints ride the fabric from round 0 on.
            succ = coord.successor(s)
            if succ is not None:
                coord.ingest(succ, _make_ckpt(w, s, -1).to_payload())

            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                return

            # ---- Step 2 rounds ----
            for r in range(rounds):
                tok = watches.get(s)
                if tok is not None:
                    obs.health().beat(tok)
                for ck in coord.begin_round(me, r):
                    nw = _HostedSub.from_checkpoint(ck)
                    hosted[nw.s] = nw
                    nbrs_of[nw.s] = [int(b) for b in dec.neighbors(nw.s)]
                    st.promoted_subsystems.append(nw.s)
                    if obs.health_enabled():
                        obs.health().site_recovered(
                            me, subsystem=nw.s, round=r,
                            checkpoint_round=ck.round,
                        )
                # shed subsystems promoted away from us: our lease expired
                # while we were cut off, and the hub now fences our frames
                for s_ in [k for k in hosted if not coord.owns(me, k)]:
                    hosted.pop(s_)
                if not hosted:
                    # passive zombie: nothing left to solve; keep the
                    # barrier cadence so the lockstep schedule holds
                    try:
                        barrier.wait()
                    except threading.BrokenBarrierError:
                        return
                    continue

                # Lease beat to every live peer: checkpoints reach only
                # the ring successor, so a lease riding on them alone
                # would starve the moment that successor died.
                hb = heartbeat_payload(s, coord.epoch, r)
                for peer in names:
                    if peer == me or coord.is_lost(peer):
                        continue
                    try:
                        fabric.send_checkpoint(me, peer, hb, epoch=coord.epoch)
                    except (MiddlewareError, ConnectionError, OSError):
                        pass  # a dead peer's inbox is not our liveness

                degraded_round = False
                with obs.span("live.exchange", s=s, round=r):
                    round_t1 = (
                        None
                        if self.round_deadline is None
                        else time.monotonic() + self.round_deadline
                    )
                    parts = []
                    for s_, ws in sorted(hosted.items()):
                        for nb in nbrs_of[s_]:
                            dst = coord.site_of(nb)
                            if self.condense:
                                ids = self._dse._nbr_pub[s_][nb]
                                vals = (
                                    np.array([ws.vm_loc[int(b)] for b in ids]),
                                    np.array([ws.va_loc[int(b)] for b in ids]),
                                )
                            else:
                                ids = self._dse.exchange_sets[s_]
                                vals = (
                                    np.array([ws.vm_loc[int(b)] for b in ids]),
                                    np.array([ws.va_loc[int(b)] for b in ids]),
                                )
                            if dst == me:
                                # co-hosted neighbour: absorb locally
                                # (self-pairs are not wired on the fabric)
                                for b, vm_b, va_b in zip(ids, *vals):
                                    known_vm[int(b)] = float(vm_b)
                                    known_va[int(b)] = float(va_b)
                                continue
                            if self.condense:
                                # ids ride every round in recovery mode: a
                                # frame must stay self-describing when the
                                # receiving host changes under failover
                                payload = pack_condensed_update(
                                    s_, ids, vals[0], vals[1],
                                    values_only=False,
                                )
                            else:
                                payload = pack_state_update(
                                    ids.astype(np.int64), vals[0], vals[1]
                                )
                            parts.append((dst, payload))
                    try:
                        fabric.send_many(me, parts, epoch=coord.epoch)
                        st.bytes_sent += sum(len(p) for _, p in parts)
                    except (MiddlewareError, ConnectionError, OSError) as exc:
                        with err_lock:
                            errors.append(
                                f"site {s} round {r}: send failed: {exc!r}"
                            )
                        degraded_round = True

                    expected = sum(
                        1
                        for s_ in hosted
                        for nb in nbrs_of[s_]
                        if coord.site_of(nb) != me
                    )
                    for _ in range(expected):
                        timeout = self.recv_timeout
                        if round_t1 is not None:
                            remaining = round_t1 - time.monotonic()
                            if remaining <= 0:
                                with err_lock:
                                    errors.append(
                                        f"site {s} round {r}: "
                                        "round deadline exceeded"
                                    )
                                degraded_round = True
                                break
                            timeout = min(timeout, remaining)
                        try:
                            raw = fabric.recv(me, timeout=timeout)
                        except TimeoutError:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: "
                                    "neighbour update timed out"
                                )
                            degraded_round = True
                            continue
                        except (ClientClosed, MiddlewareError) as exc:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: recv failed: "
                                    f"{exc!r}"
                                )
                            degraded_round = True
                            break
                        st.bytes_received += len(raw)
                        st.messages_received += 1
                        try:
                            if self.condense:
                                _src, _vo, ids, vms, vas = (
                                    unpack_condensed_update(raw, copy=False)
                                )
                                if ids is None:
                                    raise FrameError(
                                        "values-only condensed frame in "
                                        "recovery mode"
                                    )
                            else:
                                ids, vms, vas = unpack_state_update(
                                    raw, copy=False
                                )
                        except (FrameError, ValueError, KeyError) as exc:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: corrupt update: "
                                    f"{exc!r}"
                                )
                            degraded_round = True
                            continue
                        for b, vm_b, va_b in zip(ids, vms, vas):
                            known_vm[int(b)] = float(vm_b)
                            known_va[int(b)] = float(va_b)
                if degraded_round:
                    st.record_degraded(r)
                    if obs.enabled():
                        obs.metrics().counter(
                            "live.degraded_rounds_total"
                        ).inc()
                    if obs.health_enabled():
                        obs.health().frame_degraded(me, round=r)

                for s_, ws in sorted(hosted.items()):
                    subnet2, bmap2, xbuses, ext, ms2 = self._dse.sub2[s_]
                    ext_known = [int(b) for b in ext if int(b) in known_vm]
                    cached_path = len(ext_known) == len(ext)
                    if cached_path:
                        est2, z_tmpl, rows_vm, rows_va, src, rows_ms2 = (
                            self._dse._step2_cache[s_]
                        )
                        z2 = z_tmpl.copy()
                        if z is not None:
                            z2[rows_ms2] = self._dse._step2_meas_z(s_, z)
                        z2[rows_vm] = [known_vm[int(b)] for b in src]
                        z2[rows_va] = [known_va[int(b)] for b in src]
                    else:
                        from ..dse.pseudo import pseudo_measurements

                        pseudo = pseudo_measurements(
                            bmap2[np.array(ext_known, dtype=np.int64)]
                            if ext_known else np.zeros(0, np.int64),
                            np.array([known_vm[b] for b in ext_known]),
                            np.array([known_va[b] for b in ext_known]),
                        )
                        ms2_round = (
                            ms2.with_values(self._dse._step2_meas_z(s_, z))
                            if z is not None
                            else ms2
                        )
                        est2 = WlsEstimator(
                            subnet2, ms2_round.merged_with(pseudo),
                            solver=self.solver,
                        )
                        z2 = None

                    if ws.prev2 is not None:
                        x0_vm = ws.prev2[0].copy()
                        x0_va = ws.prev2[1].copy()
                        if ext_known:
                            idx = bmap2[np.array(ext_known, dtype=np.int64)]
                            x0_vm[idx] = [known_vm[b] for b in ext_known]
                            x0_va[idx] = [known_va[b] for b in ext_known]
                    else:
                        x0_vm = np.ones(len(xbuses))
                        x0_va = np.zeros(len(xbuses))
                        for i, b in enumerate(xbuses):
                            b = int(b)
                            if b in ws.vm_loc:
                                x0_vm[i], x0_va[i] = ws.vm_loc[b], ws.va_loc[b]
                            elif b in known_vm:
                                x0_vm[i], x0_va[i] = known_vm[b], known_va[b]
                        if self.condense:
                            ws.lin0 = (x0_vm.copy(), x0_va.copy())

                    kwargs = (
                        {"lin_point": ws.lin0}
                        if self.condense and cached_path and ws.lin0 is not None
                        else {}
                    )
                    t0 = time.perf_counter()
                    with obs.span("live.step2", s=s_, round=r):
                        res2 = est2.estimate(
                            x0=(x0_vm, x0_va), tol=tol, z=z2, **kwargs
                        )
                    st.step2_times.append(time.perf_counter() - t0)
                    ws.prev2 = (res2.Vm, res2.Va)

                    scope = self._dse.exchange_sets[s_]
                    local = bmap2[scope]
                    for g, l in zip(scope, local):
                        ws.vm_loc[int(g)] = float(res2.Vm[l])
                        ws.va_loc[int(g)] = float(res2.Va[l])

                # ---- checkpoint replication ----
                if r % recovery.checkpoint_every == 0:
                    for s_, ws in sorted(hosted.items()):
                        succ = coord.successor(s_)
                        if succ is None or succ == me:
                            continue
                        pay = _make_ckpt(ws, s, r).to_payload()
                        try:
                            fabric.send_checkpoint(
                                me, succ, pay, epoch=coord.epoch
                            )
                        except (MiddlewareError, ConnectionError, OSError) as exc:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: checkpoint send "
                                    f"failed: {exc!r}"
                                )
                            continue
                        st.checkpoints_sent += 1
                        st.checkpoint_bytes += len(pay)
                        if obs.enabled():
                            m = obs.metrics()
                            m.counter("recovery.checkpoints_sent_total").inc()
                            m.counter(
                                "recovery.checkpoint_bytes_total"
                            ).inc(len(pay))

                try:
                    barrier.wait()
                except threading.BrokenBarrierError:
                    return

            with result_lock:
                for s_, ws in hosted.items():
                    for b in self._dse.sub1[s_][2]:
                        Vm[b] = ws.vm_loc[int(b)]
                        Va[b] = ws.va_loc[int(b)]

        with MiddlewareFabric(
            names, pairs, use_tcp=self.use_tcp, fast=self.fast
        ) as fabric:
            if coord is not None:
                # replica sinks + zombie fence must be live before the
                # first site thread can send a frame
                for name in names:
                    fabric.set_checkpoint_sink(
                        name, lambda p, _n=name: coord.ingest(_n, p)
                    )
                fabric.set_epoch_fence(coord.fence)
            with obs.span(
                "live.run", m=dec.m, rounds=rounds,
                tcp=self.use_tcp, fast=self.fast,
            ):
                root_ctx = obs.current_context()
                wall_t0 = time.perf_counter()
                threads = [
                    threading.Thread(target=site, args=(s, fabric),
                                     name=f"site-{s}")
                    for s in range(dec.m)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                wall_elapsed = time.perf_counter() - wall_t0

        if obs.enabled():
            reg = obs.metrics()
            reg.counter("live.runs_total").inc()
            reg.histogram("live.run.seconds").observe(wall_elapsed)

        return LiveDseResult(
            Vm=Vm, Va=Va, rounds=rounds, wall_time=wall_elapsed,
            sites=stats, errors=errors,
            degraded={
                s: list(st.degraded_rounds)
                for s, st in stats.items()
                if st.degraded_rounds
            },
            recovered_subsystems=sorted(coord.recovered) if coord else [],
            lost_sites=(
                sorted(int(n[2:]) for n in coord.lost_sites) if coord else []
            ),
        )
