"""Live distributed DSE runtime: concurrent estimator sites + middleware.

The closest thing in this repository to the paper's deployed prototype:
every subsystem's state estimator runs in its own thread ("site"), owns
only its local subproblem, and learns about its neighbours exclusively from
the bytes that arrive through the MeDICi-style pipelines — no shared-memory
shortcuts.  Rounds advance in lockstep (a barrier models the cycle
boundary of Figure 6); the payloads on the wire are the packed
pseudo-measurement records of :mod:`repro.middleware.message`.

The functional result must match the in-process
:class:`~repro.dse.algorithm.DistributedStateEstimator` — asserted in the
tests — while the wall-clock and relay statistics are those of a real
multi-threaded, socket-backed execution.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dse.algorithm import DistributedStateEstimator
from ..dse.decomposition import Decomposition
from ..estimation.wls import WlsEstimator
from ..measurements.types import MeasurementSet
from ..middleware.errors import ClientClosed, MiddlewareError
from ..middleware.message import (
    FrameError,
    pack_condensed_update,
    pack_state_update,
    unpack_condensed_update,
    unpack_state_update,
)
from ..middleware.router import MiddlewareFabric

__all__ = ["LiveSiteStats", "LiveDseResult", "LiveDseRuntime"]


@dataclass
class LiveSiteStats:
    """Per-site execution record."""

    s: int
    step1_time: float = 0.0
    step2_times: list[float] = field(default_factory=list)
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_received: int = 0
    #: Step-2 rounds this site completed without its full neighbour set
    #: (missed/corrupt updates, failed sends, blown round deadline)
    degraded_rounds: list[int] = field(default_factory=list)


@dataclass
class LiveDseResult:
    """Outcome of a live distributed run."""

    Vm: np.ndarray
    Va: np.ndarray
    rounds: int
    wall_time: float
    sites: dict[int, LiveSiteStats]
    errors: list[str] = field(default_factory=list)
    #: site id -> Step-2 rounds the site ran degraded (empty when clean)
    degraded: dict[int, list[int]] = field(default_factory=dict)

    @property
    def degraded_subsystems(self) -> list[int]:
        """Sorted ids of the subsystems that ran any degraded round."""
        return sorted(self.degraded)

    def state_error(self, Vm_true: np.ndarray, Va_true: np.ndarray) -> dict:
        dva = self.Va - Va_true
        dva -= dva.mean()
        return {
            "vm_rmse": float(np.sqrt(np.mean((self.Vm - Vm_true) ** 2))),
            "va_rmse": float(np.sqrt(np.mean(dva**2))),
        }


class LiveDseRuntime:
    """Runs the two-step DSE as concurrent sites over live middleware.

    Parameters
    ----------
    dec, mset:
        The decomposition and the system-wide measurement snapshot (each
        site only ever touches its own assigned rows).
    use_tcp:
        Real localhost TCP pipelines instead of in-process queues.
    solver, sensitivity_threshold:
        Passed through to the local estimators.
    recv_timeout:
        Per-message receive timeout; a site that misses a neighbour's
        update records an error and re-uses its last known values, so a
        slow or dead peer degrades accuracy instead of deadlocking.
    round_deadline:
        Wall-clock budget per Step-2 exchange round, in seconds.  A site
        that has not collected its full neighbour set by the deadline
        stops waiting, runs the round on what it has (falling back to
        last-known pseudo values) and records the round as degraded —
        liveness under hard faults is bounded by ``rounds x deadline``
        instead of ``rounds x neighbours x recv_timeout``.  ``None``
        (default) keeps the per-message-timeout-only behaviour.
    use_cache:
        Reuse each site's estimators (cached Jacobian patterns,
        factorization orderings, merged pseudo structures) across Step-2
        rounds; rounds where a neighbour timed out fall back to a freshly
        built estimator over the partial pseudo set.
    fast:
        Use the fabric's multiplexed fast path (single router hub, pooled
        duplex links, batched neighbour sends) instead of one relay
        pipeline per pair.  Same bytes on the wire, same barrier schedule
        — the result stays bit-identical to the in-process DSE either way.
    condense:
        Condensed Step 2 (see
        :class:`~repro.dse.algorithm.DistributedStateEstimator`): each
        site solves the boundary-condensed system and the wire carries
        compact per-neighbour boundary blocks
        (:func:`~repro.middleware.message.pack_condensed_update`) — bus
        ids ride only the round-0 frames, later rounds are values-only
        over the receiver's a-priori ordering.  Requires
        ``use_cache=True``.
    """

    def __init__(
        self,
        dec: Decomposition,
        mset: MeasurementSet,
        *,
        use_tcp: bool = False,
        solver: str = "lu",
        sensitivity_threshold: float = 0.5,
        recv_timeout: float = 10.0,
        round_deadline: float | None = None,
        use_cache: bool = True,
        fast: bool = True,
        condense: bool = False,
    ):
        if condense and not use_cache:
            raise ValueError(
                "condense=True requires use_cache=True (the condensed "
                "operator lives in the per-site caches)"
            )
        # Reuse the in-process DSE's subproblem construction and checks
        # (including its per-subsystem estimator caches).
        self._dse = DistributedStateEstimator(
            dec, mset, solver=solver,
            sensitivity_threshold=sensitivity_threshold,
            reuse_structures=use_cache,
            condense=condense,
        )
        self.dec = dec
        self.solver = solver
        self.recv_timeout = recv_timeout
        self.round_deadline = round_deadline
        self.use_tcp = use_tcp
        self.use_cache = use_cache
        self.fast = fast
        self.condense = condense

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        rounds: int | None = None,
        tol: float = 1e-8,
        z: np.ndarray | None = None,
    ) -> LiveDseResult:
        """Execute one live distributed estimation.

        ``z`` optionally overrides the system-wide measured values
        (canonical order of the constructor's ``mset``) — a values-only
        frame over the warm site estimators, mirroring
        :meth:`repro.dse.algorithm.DistributedStateEstimator.run`; requires
        ``use_cache=True``.
        """
        dec = self.dec
        net = dec.net
        if rounds is None:
            rounds = max(1, dec.diameter())
        if z is not None:
            if not self.use_cache:
                raise ValueError("values-only frames (z=) require use_cache=True")
            z = np.asarray(z, dtype=float)
            if len(z) != len(self._dse.mset):
                raise ValueError("z override length mismatch")

        names = [f"se{s}" for s in range(dec.m)]
        pairs = []
        for u, v in dec.quotient_edges():
            pairs.append((f"se{u}", f"se{v}"))
            pairs.append((f"se{v}", f"se{u}"))

        Vm = np.ones(net.n_bus)
        Va = np.zeros(net.n_bus)
        stats = {s: LiveSiteStats(s=s) for s in range(dec.m)}
        errors: list[str] = []
        err_lock = threading.Lock()
        barrier = threading.Barrier(dec.m)
        # Each site writes only its own buses; reads of neighbour values
        # happen via the wire, never via these arrays.
        result_lock = threading.Lock()

        watches: dict[int, object] = {}

        def site(s: int, fabric: MiddlewareFabric) -> None:
            if obs.health_enabled():
                # a round legitimately lasts up to its deadline (or one
                # recv timeout per neighbour); double that is a stall
                budget = (
                    self.round_deadline
                    if self.round_deadline is not None
                    else self.recv_timeout * max(1, dec.m - 1)
                )
                watches[s] = obs.health().watch(
                    f"live.site:{s}", timeout=2.0 * budget, source=f"se{s}",
                )
            try:
                # site threads start with a fresh contextvars context, so
                # the root span is handed over explicitly
                with obs.span("live.site", parent=root_ctx, s=s):
                    _site_body(s, fabric)
            except Exception as exc:  # crash must not deadlock the barrier
                with err_lock:
                    errors.append(f"site {s} failed: {exc!r}")
                barrier.abort()
            finally:
                tok = watches.pop(s, None)
                if tok is not None:
                    obs.health().disarm(tok)

        def _site_body(s: int, fabric: MiddlewareFabric) -> None:
            st = stats[s]
            subnet1, _, own, ms1 = self._dse.sub1[s]
            subnet2, bmap2, xbuses, ext, ms2 = self._dse.sub2[s]
            nbrs = [int(b) for b in dec.neighbors(s)]
            publish = self._dse.exchange_sets[s]

            # local state, keyed by global bus index
            vm_loc = {int(b): 1.0 for b in own}
            va_loc = {int(b): 0.0 for b in own}
            known_vm: dict[int, float] = {}
            known_va: dict[int, float] = {}
            prev2 = None  # previous round's extended solution (warm start)
            lin0 = None  # frame linearization point (condensed mode)

            # ---- Step 1 ----
            t0 = time.perf_counter()
            with obs.span("live.step1", s=s):
                est1 = (
                    self._dse._est1[s]
                    if self.use_cache
                    else WlsEstimator(subnet1, ms1, solver=self.solver)
                )
                z1 = self._dse._step1_z(s, z) if z is not None else None
                res1 = est1.estimate(tol=tol, z=z1)
            st.step1_time = time.perf_counter() - t0
            for i, b in enumerate(own):
                vm_loc[int(b)] = float(res1.Vm[i])
                va_loc[int(b)] = float(res1.Va[i])

            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                return

            # ---- Step 2 rounds ----
            for r in range(rounds):
                tok = watches.get(s)
                if tok is not None:
                    obs.health().beat(tok)
                degraded_round = False
                with obs.span("live.exchange", s=s, round=r):
                    round_t1 = (
                        None
                        if self.round_deadline is None
                        else time.monotonic() + self.round_deadline
                    )
                    if self.condense:
                        # Per-neighbour condensed boundary blocks: each
                        # neighbour gets only the tie-endpoint buses its
                        # extended network reads.  Round 0 carries the bus
                        # ids; later rounds are values-only over the
                        # receiver's a-priori ordering.
                        parts = []
                        for nb in nbrs:
                            ids = self._dse._nbr_pub[s][nb]
                            parts.append((f"se{nb}", pack_condensed_update(
                                s, ids,
                                np.array([vm_loc[int(b)] for b in ids]),
                                np.array([va_loc[int(b)] for b in ids]),
                                values_only=r > 0,
                            )))
                    else:
                        payload = pack_state_update(
                            publish.astype(np.int64),
                            np.array([vm_loc[int(b)] for b in publish]),
                            np.array([va_loc[int(b)] for b in publish]),
                        )
                        parts = [(f"se{nb}", payload) for nb in nbrs]
                    # the whole neighbour burst rides one syscall on the
                    # fast plane (legacy falls back to per-pipeline sends);
                    # sending inside the span stamps the frames with this
                    # trace's context, so the router hop joins the trace
                    try:
                        fabric.send_many(f"se{s}", parts)
                        st.bytes_sent += sum(len(p) for _, p in parts)
                    except (MiddlewareError, ConnectionError, OSError) as exc:
                        # this site is cut off from the fabric; keep
                        # solving on last-known values, flag the round
                        with err_lock:
                            errors.append(
                                f"site {s} round {r}: send failed: {exc!r}"
                            )
                        degraded_round = True

                    for _ in nbrs:
                        timeout = self.recv_timeout
                        if round_t1 is not None:
                            remaining = round_t1 - time.monotonic()
                            if remaining <= 0:
                                with err_lock:
                                    errors.append(
                                        f"site {s} round {r}: "
                                        "round deadline exceeded"
                                    )
                                degraded_round = True
                                break
                            timeout = min(timeout, remaining)
                        try:
                            raw = fabric.recv(f"se{s}", timeout=timeout)
                        except TimeoutError:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: "
                                    "neighbour update timed out"
                                )
                            degraded_round = True
                            continue
                        except (ClientClosed, MiddlewareError) as exc:
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: recv failed: "
                                    f"{exc!r}"
                                )
                            degraded_round = True
                            break
                        st.bytes_received += len(raw)
                        st.messages_received += 1
                        try:
                            # views over the wire buffer; values are copied
                            # into the known_* dicts below, so no aliasing
                            # escapes
                            if self.condense:
                                src_id, _vo, ids, vms, vas = (
                                    unpack_condensed_update(raw, copy=False)
                                )
                                if ids is None:
                                    # values-only frame: resolve the bus
                                    # ids from the shared a-priori
                                    # per-neighbour publication sets
                                    ids = self._dse._nbr_pub[int(src_id)][s]
                                    if len(ids) != len(vms):
                                        raise FrameError(
                                            "condensed update length "
                                            "mismatch"
                                        )
                            else:
                                ids, vms, vas = unpack_state_update(
                                    raw, copy=False
                                )
                        except (FrameError, ValueError, KeyError) as exc:
                            # corrupted in flight; the neighbour's update
                            # is lost for this round
                            with err_lock:
                                errors.append(
                                    f"site {s} round {r}: corrupt update: "
                                    f"{exc!r}"
                                )
                            degraded_round = True
                            continue
                        for b, vm_b, va_b in zip(ids, vms, vas):
                            known_vm[int(b)] = float(vm_b)
                            known_va[int(b)] = float(va_b)
                if degraded_round:
                    st.degraded_rounds.append(r)
                    if obs.enabled():
                        obs.metrics().counter(
                            "live.degraded_rounds_total"
                        ).inc()
                    if obs.health_enabled():
                        obs.health().frame_degraded(f"se{s}", round=r)

                # pseudo measurements at the external boundary buses we know
                ext_known = [int(b) for b in ext if int(b) in known_vm]
                cached_path = self.use_cache and len(ext_known) == len(ext)
                if cached_path:
                    # Full neighbour coverage: refill the cached merged
                    # structure's pseudo values instead of rebuilding.
                    est2, z_tmpl, rows_vm, rows_va, src, rows_ms2 = (
                        self._dse._step2_cache[s]
                    )
                    z2 = z_tmpl.copy()
                    if z is not None:
                        z2[rows_ms2] = self._dse._step2_meas_z(s, z)
                    z2[rows_vm] = [known_vm[int(b)] for b in src]
                    z2[rows_va] = [known_va[int(b)] for b in src]
                else:
                    from ..dse.pseudo import pseudo_measurements

                    pseudo = pseudo_measurements(
                        bmap2[np.array(ext_known, dtype=np.int64)]
                        if ext_known else np.zeros(0, np.int64),
                        np.array([known_vm[b] for b in ext_known]),
                        np.array([known_va[b] for b in ext_known]),
                    )
                    ms2_round = (
                        ms2.with_values(self._dse._step2_meas_z(s, z))
                        if z is not None
                        else ms2
                    )
                    est2 = WlsEstimator(
                        subnet2, ms2_round.merged_with(pseudo), solver=self.solver
                    )
                    z2 = None

                if prev2 is not None:
                    # Warm start from the previous round's extended solve,
                    # with the external boundary refreshed from the latest
                    # neighbour publications — the same schedule as
                    # DistributedStateEstimator's warm_start path.
                    x0_vm = prev2.Vm.copy()
                    x0_va = prev2.Va.copy()
                    if ext_known:
                        idx = bmap2[np.array(ext_known, dtype=np.int64)]
                        x0_vm[idx] = [known_vm[b] for b in ext_known]
                        x0_va[idx] = [known_va[b] for b in ext_known]
                else:
                    x0_vm = np.ones(len(xbuses))
                    x0_va = np.zeros(len(xbuses))
                    for i, b in enumerate(xbuses):
                        b = int(b)
                        if b in vm_loc:
                            x0_vm[i], x0_va[i] = vm_loc[b], va_loc[b]
                        elif b in known_vm:
                            x0_vm[i], x0_va[i] = known_vm[b], known_va[b]
                    if self.condense:
                        # Round 0's start is the frame's Step-1 publication
                        # over the extended network — the same history-free
                        # linearization point the in-process DSE condenses
                        # at, so the operators (and the results) match.
                        lin0 = (x0_vm.copy(), x0_va.copy())

                kwargs = (
                    {"lin_point": lin0}
                    if self.condense and cached_path and lin0 is not None
                    else {}
                )
                t0 = time.perf_counter()
                with obs.span("live.step2", s=s, round=r):
                    res2 = est2.estimate(
                        x0=(x0_vm, x0_va), tol=tol, z=z2, **kwargs
                    )
                st.step2_times.append(time.perf_counter() - t0)
                prev2 = res2

                scope = self._dse.exchange_sets[s]
                local = bmap2[scope]
                for g, l in zip(scope, local):
                    vm_loc[int(g)] = float(res2.Vm[l])
                    va_loc[int(g)] = float(res2.Va[l])

                try:
                    barrier.wait()
                except threading.BrokenBarrierError:
                    return

            with result_lock:
                for b in own:
                    Vm[b] = vm_loc[int(b)]
                    Va[b] = va_loc[int(b)]

        with MiddlewareFabric(
            names, pairs, use_tcp=self.use_tcp, fast=self.fast
        ) as fabric:
            with obs.span(
                "live.run", m=dec.m, rounds=rounds,
                tcp=self.use_tcp, fast=self.fast,
            ):
                root_ctx = obs.current_context()
                wall_t0 = time.perf_counter()
                threads = [
                    threading.Thread(target=site, args=(s, fabric),
                                     name=f"site-{s}")
                    for s in range(dec.m)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                wall_elapsed = time.perf_counter() - wall_t0

        if obs.enabled():
            reg = obs.metrics()
            reg.counter("live.runs_total").inc()
            reg.histogram("live.run.seconds").observe(wall_elapsed)

        return LiveDseResult(
            Vm=Vm, Va=Va, rounds=rounds, wall_time=wall_elapsed,
            sites=stats, errors=errors,
            degraded={
                s: list(st.degraded_rounds)
                for s, st in stats.items()
                if st.degraded_rounds
            },
        )
