"""DSE sessions on the architecture prototype.

``DseSession`` executes the full per-frame pipeline of the paper's Figure 6
on an :class:`~repro.core.architecture.ArchitecturePrototype`:

1. estimate the frame's noise level ``x = f(δt)``;
2. map subsystems to clusters for Step 1 (compute balance);
3. run every subsystem's Step-1 WLS (real computation, wall-clocked);
4. update weights, remap for Step 2, charge the data redistribution;
5. run the Step-2 exchange + re-evaluation rounds, optionally pushing the
   pseudo-measurement bytes through live middleware pipelines;
6. aggregate the solution and replay all measured durations on the
   simulated cluster testbed to obtain the distributed execution timeline.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..cluster.executor import MessageSpec, TaskSpec
from ..dse.algorithm import BYTES_PER_EXCHANGED_BUS, DistributedStateEstimator
from ..dse.sensitivity import exchange_bus_sets
from ..measurements.types import MeasurementSet
from ..middleware.errors import ClientClosed, MiddlewareError
from ..middleware.message import pack_condensed_update, pack_state_update
from ..parallel import make_executor
from .architecture import ArchitecturePrototype
from .noise import NoiseLevelEstimator
from .telemetry import FrameReport, PhaseBreakdown

__all__ = ["DseSession"]


class DseSession:
    """Processes telemetry frames through the architecture.

    Parameters
    ----------
    arch:
        The assembled architecture.
    solver:
        Local WLS solver for every subsystem estimator.
    sensitivity_threshold:
        Threshold for the sensitive-internal-bus analysis.
    executor:
        Fan-out backend for the per-subsystem solves (see
        :class:`repro.parallel.SubsystemExecutor`); shared by every frame's
        DSE run.
    reuse_structures, warm_start, degrade_on_failure, condense:
        Hot-path / robustness knobs forwarded to
        :class:`~repro.dse.algorithm.DistributedStateEstimator`
        (``condense`` switches Step 2 to the Schur-complement condensed
        mode: boundary-sized solves, compact per-neighbour wire frames).
    fabric_timeout:
        Receive timeout (seconds) while draining the live middleware
        exchange.  A site that misses updates — dead peer, dropped or
        corrupted frames — is recorded in the frame report's
        ``degraded_subsystems`` instead of failing the frame.
    """

    def __init__(
        self,
        arch: ArchitecturePrototype,
        *,
        solver: str = "lu",
        sensitivity_threshold: float = 0.5,
        bad_data_policy: str = "off",
        executor=None,
        reuse_structures: bool = True,
        warm_start: bool = True,
        degrade_on_failure: bool = False,
        condense: bool = False,
        fabric_timeout: float = 5.0,
    ):
        if bad_data_policy not in ("off", "detect", "identify"):
            raise ValueError("bad_data_policy must be off|detect|identify")
        self.arch = arch
        self.solver = solver
        self.sensitivity_threshold = sensitivity_threshold
        self.bad_data_policy = bad_data_policy
        self.executor = make_executor(executor)
        self.reuse_structures = reuse_structures
        self.warm_start = warm_start
        self.degrade_on_failure = degrade_on_failure
        self.condense = condense
        self.fabric_timeout = fabric_timeout
        self.noise_estimator = NoiseLevelEstimator(arch.net)
        self.exchange_sets = exchange_bus_sets(
            arch.dec, threshold=sensitivity_threshold
        )
        self._prev_vm = np.ones(arch.net.n_bus)
        self._prev_va = np.zeros(arch.net.n_bus)
        self._frame_no = 0
        self._prev_degraded: set[int] = set()
        self.reports: list[FrameReport] = []

    # ------------------------------------------------------------------
    def scenario_service(self, mset: MeasurementSet, **kwargs):
        """Build a batched :class:`~repro.serving.ScenarioService` over this
        session's decomposition and executor.

        ``mset`` fixes the template measurement placement; estimation
        requests then carry values-only ``z`` frames over it.  The session's
        solver, sensitivity threshold and executor are forwarded (the
        service shares — and does not shut down — the session's pool);
        keyword arguments override any service option.
        """
        from ..serving import ScenarioService

        opts = dict(
            executor=self.executor,
            solver=self.solver,
            sensitivity_threshold=self.sensitivity_threshold,
        )
        opts.update(kwargs)
        return ScenarioService(self.arch.dec, mset, **opts)

    # ------------------------------------------------------------------
    def process_frame(
        self,
        mset: MeasurementSet,
        *,
        t: float | None = None,
        rounds: int | None = None,
        truth: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> FrameReport:
        """Run the full DSE pipeline on one measurement frame."""
        if not obs.enabled():
            return self._process_frame_impl(mset, t=t, rounds=rounds, truth=truth)
        with obs.span("session.frame", frame=self._frame_no) as sp:
            report = self._process_frame_impl(mset, t=t, rounds=rounds, truth=truth)
            sp.set_attr("rounds", report.rounds)
            sp.set_attr("bytes_exchanged", report.bytes_exchanged)
        reg = obs.metrics()
        reg.counter("session.frames_total").inc()
        reg.histogram("session.frame.seconds").observe(report.wall_time)
        return report

    def _process_frame_impl(
        self,
        mset: MeasurementSet,
        *,
        t: float | None,
        rounds: int | None,
        truth: tuple[np.ndarray, np.ndarray] | None,
    ) -> FrameReport:
        arch = self.arch
        dec = arch.dec
        if t is None:
            t = float(self._frame_no)

        # (0) optional distributed bad-data screening on the raw frame
        bad_data_report = None
        if self.bad_data_policy != "off":
            from ..dse.baddata import distributed_bad_data

            with obs.span("session.bad_data", policy=self.bad_data_policy):
                bad_data_report = distributed_bad_data(
                    dec, mset, identify=(self.bad_data_policy == "identify")
                )
                removed = bad_data_report.removed_global_rows
                if removed:
                    keep = np.ones(len(mset), dtype=bool)
                    keep[removed] = False
                    mset = mset.subset(keep)

        # (1) noise level for this time frame
        with obs.span("session.noise_estimate"):
            x = self.noise_estimator.update(mset, self._prev_vm, self._prev_va)
            ni = arch.iteration_model.iterations(x)

        # (2) Step-1 mapping: balance compute
        with obs.span("partition.map_step1"):
            map1 = arch.mapper.map_step1(dec, x)

        # (3-5) run the DSE (functionally) and wall-clock it; after the
        # first frame, warm-start from the tracked state (the mechanism
        # behind the paper's iteration model)
        warm = (self._prev_vm, self._prev_va) if self._frame_no > 0 else None
        wall_t0 = time.perf_counter()
        dse = DistributedStateEstimator(
            dec,
            mset,
            solver=self.solver,
            sensitivity_threshold=self.sensitivity_threshold,
            executor=self.executor,
            reuse_structures=self.reuse_structures,
            warm_start=self.warm_start,
            degrade_on_failure=self.degrade_on_failure,
            condense=self.condense,
        )
        result = dse.run(rounds=rounds, x0=warm)
        wall_elapsed = time.perf_counter() - wall_t0
        degraded = set(result.degraded_subsystems)

        # (4) Step-2 remapping with updated weights
        with obs.span("partition.remap"):
            map2, moved = arch.mapper.remap_step2(
                dec, x, map1, self.exchange_sets
            )

        # (5) optional: push real pseudo-measurement bytes through pipelines
        if arch.fabric is not None:
            with obs.span("session.fabric_exchange"):
                degraded |= self._exercise_fabric(result, dse)

        # (6) replay on the simulated testbed
        with obs.span("session.replay_sim"):
            timings = self._replay(result, map1, map2, moved)

        report = FrameReport(
            t=t,
            noise_level=x,
            expected_iterations=ni,
            mapping_step1=map1.as_dict(),
            imbalance_step1=map1.imbalance,
            mapping_step2=map2.as_dict(),
            imbalance_step2=map2.imbalance,
            edge_cut_step2=map2.edge_cut,
            migrated_weight=moved,
            rounds=result.rounds,
            bytes_exchanged=result.total_bytes_exchanged,
            timings=timings,
            wall_time=wall_elapsed,
        )
        if truth is not None:
            err = result.state_error(*truth)
            report.vm_rmse_vs_truth = err["vm_rmse"]
            report.va_rmse_vs_truth = err["va_rmse"]
        report.bad_data = bad_data_report
        report.degraded_subsystems = sorted(degraded)
        # a subsystem degraded last frame that completed cleanly this
        # frame has recovered (failover promotion, or the fault cleared)
        recovered = sorted(self._prev_degraded - degraded)
        report.recovered_subsystems = recovered
        self._prev_degraded = set(degraded)
        if degraded and obs.enabled():
            obs.metrics().counter("session.degraded_frames_total").inc()
        if degraded and obs.health_enabled():
            obs.health().frame_degraded(
                "session", frame=self._frame_no,
                subsystems=sorted(degraded),
            )
        if recovered and obs.enabled():
            obs.metrics().counter("session.recovered_frames_total").inc()
        if recovered and obs.health_enabled():
            obs.health().site_recovered(
                "session", frame=self._frame_no, subsystems=recovered,
            )

        self._prev_vm = result.Vm
        self._prev_va = result.Va
        self._frame_no += 1
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def _exercise_fabric(self, result, dse) -> set[int]:
        """Move each subsystem's exchange set through the live pipelines.

        Under ``condense`` the payloads are the compact per-neighbour
        condensed frames (matching what the DSE's byte accounting
        charges); otherwise each subsystem's full exchange set rides a
        legacy state-update frame to every neighbour.

        Fault-tolerant: a site whose sends fail is cut off from the fabric
        and marked degraded; a site that cannot collect its full neighbour
        set (dead peer, dropped/corrupt frames, timeout) is marked
        degraded too.  Returns the degraded site ids — a clean fabric
        returns an empty set and behaves exactly as before.
        """
        arch = self.arch
        dec = arch.dec
        degraded: set[int] = set()
        for s in range(dec.m):
            pub = self.exchange_sets[s]
            payload = pack_state_update(
                dec.net.bus_ids[pub], result.Vm[pub], result.Va[pub]
            )
            for nb in dec.neighbors(s):
                if self.condense:
                    ids = dse._nbr_pub[s][int(nb)]
                    payload = pack_condensed_update(
                        s, ids, result.Vm[ids], result.Va[ids]
                    )
                try:
                    arch.fabric.send(f"se{s}", f"se{int(nb)}", payload)
                except (MiddlewareError, ConnectionError, OSError):
                    # the sender is cut off; its neighbours will miss the
                    # update and surface on the receive side
                    degraded.add(s)
        # drain every site's buffer
        for s in range(dec.m):
            for _ in range(len(dec.neighbors(s))):
                try:
                    arch.fabric.recv(f"se{s}", timeout=self.fabric_timeout)
                except TimeoutError:
                    degraded.add(s)
                except (ClientClosed, MiddlewareError):
                    degraded.add(s)
                    break
        return degraded

    # ------------------------------------------------------------------
    def _replay(self, result, map1, map2, moved_weight) -> PhaseBreakdown:
        """Replay measured per-subsystem durations on the simulated testbed."""
        arch = self.arch
        dec = arch.dec
        ex = arch.executor

        breakdown = PhaseBreakdown()

        # Step 1 compute phase under mapping 1.
        tasks1 = [
            TaskSpec(
                name=f"se{s}.step1",
                cluster=map1.cluster_of(s),
                duration=result.records[s].step1_time,
            )
            for s in range(dec.m)
        ]
        breakdown.step1 = ex.run_phase(tasks1).makespan

        # Data redistribution between mappings (section IV-C): migrated
        # subsystems ship their raw measurements to the new cluster.
        redis_msgs = []
        for s in range(dec.m):
            if map1.cluster_of(s) != map2.cluster_of(s):
                nbytes = result.records[s].n_buses * BYTES_PER_EXCHANGED_BUS * 4
                redis_msgs.append(
                    MessageSpec(map1.cluster_of(s), map2.cluster_of(s), nbytes)
                )
        breakdown.redistribution = ex.run_exchange(redis_msgs).makespan

        # Step-2 rounds under mapping 2: exchange then compute.
        for r in range(result.rounds):
            msgs = []
            for s in range(dec.m):
                rec = result.records[s]
                # Actual packed bytes this subsystem put on the wire in
                # round r (condensation-aware), split per neighbour.
                nbrs = dec.neighbors(s)
                per_neighbor = rec.bytes_sent_per_round[r] // max(1, len(nbrs))
                for nb in nbrs:
                    src = map2.cluster_of(s)
                    dst = map2.cluster_of(int(nb))
                    if src != dst:
                        msgs.append(MessageSpec(src, dst, per_neighbor))
            breakdown.exchange_per_round.append(ex.run_exchange(msgs).makespan)

            tasks2 = [
                TaskSpec(
                    name=f"se{s}.step2.r{r}",
                    cluster=map2.cluster_of(s),
                    duration=result.records[s].step2_times[r],
                )
                for s in range(dec.m)
            ]
            breakdown.step2_per_round.append(ex.run_phase(tasks2).makespan)
        return breakdown

    # ------------------------------------------------------------------
    def centralized_sim_time(self, wall_time: float, *, cluster: str | None = None) -> float:
        """Simulated time of the centralized alternative: the whole-system
        estimation on one cluster (no distribution, no exchange)."""
        arch = self.arch
        cname = cluster or arch.topology.clusters[0].name
        phase = arch.executor.run_phase(
            [TaskSpec(name="centralized", cluster=cname, duration=wall_time)]
        )
        return phase.makespan
