"""Noise-level estimation per time frame — the paper's ``x = f(δt)``.

The mapping method needs the measurement noise level of the current time
frame *before* running the estimation, because the expected iteration count
(and hence the vertex weights) depends on it.  The innovation estimator
compares the fresh measurements against the prediction from the previous
state: standardized innovations have standard deviation ≈ the noise level
when the operating point drifts slowly between scans.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..grid.network import Network
from ..measurements.functions import MeasurementModel
from ..measurements.types import MeasurementSet

__all__ = ["innovation_noise_level", "NoiseLevelEstimator"]


def innovation_noise_level(
    net: Network,
    mset: MeasurementSet,
    Vm_prev: np.ndarray,
    Va_prev: np.ndarray,
    *,
    clip: tuple[float, float] = (0.05, 10.0),
) -> float:
    """One-shot noise-level estimate from measurement innovations.

    ``sqrt(mean(((z - h(x_prev)) / sigma)^2))``, clipped to ``clip``.  The
    estimate is slightly biased upward by genuine state drift, which is the
    safe direction for capacity planning.
    """
    model = MeasurementModel(net, mset)
    r = (mset.z - model.h(Vm_prev, Va_prev)) / mset.sigma
    level = float(np.sqrt(np.mean(r * r))) if len(r) else 1.0
    return float(np.clip(level, *clip))


class NoiseLevelEstimator:
    """Windowed noise tracker used by the mapping method across scans.

    Keeps the last ``window`` per-frame estimates; :meth:`level` returns
    their mean (the Gaussian assumption of section IV-B.2), and
    :meth:`update` folds in a new frame given the previous state estimate.
    """

    def __init__(self, net: Network, *, window: int = 8, initial: float = 1.0):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.net = net
        self._history: deque[float] = deque([float(initial)], maxlen=window)

    @property
    def level(self) -> float:
        """Current smoothed noise level."""
        return float(np.mean(self._history))

    def update(
        self, mset: MeasurementSet, Vm_prev: np.ndarray, Va_prev: np.ndarray
    ) -> float:
        """Fold in a new frame; returns the updated smoothed level."""
        x = innovation_noise_level(self.net, mset, Vm_prev, Va_prev)
        self._history.append(x)
        return self.level
