"""Graph-weight estimation — Expressions (1)-(5) of the paper.

The mapping method models the power-system decomposition as a weighted
graph:

- vertex weight ``Wv = Nb × Ni`` (Expression 3/4): bus count times expected
  Gauss-Newton iterations, with ``Ni = g1·x + g2`` (Expression 2) driven by
  the estimated noise level ``x = f(δt)``;
- edge weight ``We = gs(s1) + gs(s2)`` (Expression 5): the exchanged
  boundary + sensitive-internal bus counts of the two neighbouring
  subsystems (upper-bounded by the bus-count sum used in Table I).

Step 1 needs no communication, so its graph carries uniform edge weights
and the partition objective is pure compute balance; Step 2 carries the
communication weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dse.decomposition import Decomposition
from ..partition import WeightedGraph

__all__ = [
    "IterationModel",
    "PAPER_ITERATION_MODEL",
    "vertex_weights",
    "edge_weight_exchange",
    "edge_weight_upper_bound",
    "step1_graph",
    "step2_graph",
]


@dataclass(frozen=True)
class IterationModel:
    """``Ni = g1 · x + g2`` — iterations as a function of noise level.

    The defaults are the paper's empirical constants for a 14-bus subsystem
    (g1 = 3.7579, g2 = 5.2464; section IV-B.2).
    """

    g1: float = 3.7579
    g2: float = 5.2464

    def iterations(self, noise_level: float) -> float:
        """Expected Gauss-Newton iterations at the given noise level."""
        if noise_level < 0:
            raise ValueError("noise_level must be non-negative")
        return self.g1 * noise_level + self.g2

    def fit(self, levels: np.ndarray, iterations: np.ndarray) -> "IterationModel":
        """Refit (g1, g2) by least squares on observed (x, Ni) pairs."""
        levels = np.asarray(levels, dtype=float)
        iterations = np.asarray(iterations, dtype=float)
        if len(levels) < 2:
            raise ValueError("need at least two observations")
        A = np.column_stack([levels, np.ones_like(levels)])
        (g1, g2), *_ = np.linalg.lstsq(A, iterations, rcond=None)
        return IterationModel(g1=float(g1), g2=float(g2))


#: The constants published in the paper.
PAPER_ITERATION_MODEL = IterationModel()


def vertex_weights(
    dec: Decomposition,
    noise_level: float,
    *,
    model: IterationModel = PAPER_ITERATION_MODEL,
) -> np.ndarray:
    """Expression (4): ``Wv = Nb × (g1·f(δt) + g2)`` per subsystem.

    Returned as integers (the partitioner's weight domain), rounded from
    the real-valued estimate.
    """
    ni = model.iterations(noise_level)
    return np.maximum(1, np.rint(dec.sizes() * ni)).astype(np.int64)


def edge_weight_exchange(
    dec: Decomposition, exchange_sets: dict[int, np.ndarray]
) -> dict[tuple[int, int], int]:
    """Expression (5): ``We = gs(s1) + gs(s2)`` per quotient edge."""
    out = {}
    for u, v in dec.quotient_edges():
        out[(u, v)] = int(len(exchange_sets[u]) + len(exchange_sets[v]))
    return out


def edge_weight_upper_bound(dec: Decomposition) -> dict[tuple[int, int], int]:
    """Table I initialisation: ``We`` upper bound = bus-count sum."""
    sizes = dec.sizes()
    return {(u, v): int(sizes[u] + sizes[v]) for u, v in dec.quotient_edges()}


def step1_graph(
    dec: Decomposition,
    noise_level: float,
    *,
    model: IterationModel = PAPER_ITERATION_MODEL,
) -> WeightedGraph:
    """Decomposition graph for the Step-1 mapping.

    Vertex weights from Expression (4); all edge weights equal (Step 1
    involves no communication, section IV-B.3), so the partitioner's only
    live objective is compute balance.
    """
    vw = vertex_weights(dec, noise_level, model=model)
    return WeightedGraph.from_edges(
        dec.m,
        dec.quotient_edges(),
        vwgt=vw,
        ewgt=[1] * len(dec.quotient_edges()),
    )


def step2_graph(
    dec: Decomposition,
    noise_level: float,
    exchange_sets: dict[int, np.ndarray] | None = None,
    *,
    model: IterationModel = PAPER_ITERATION_MODEL,
) -> WeightedGraph:
    """Decomposition graph for the Step-2 remapping.

    Vertex weights again from Expression (4); edge weights from Expression
    (5) when exchange sets are given, otherwise the Table-I upper bound.
    """
    vw = vertex_weights(dec, noise_level, model=model)
    if exchange_sets is None:
        wmap = edge_weight_upper_bound(dec)
    else:
        wmap = edge_weight_exchange(dec, exchange_sets)
    edges = dec.quotient_edges()
    return WeightedGraph.from_edges(
        dec.m, edges, vwgt=vw, ewgt=[wmap[e] for e in edges]
    )
