"""The mapping method: placing subsystems onto HPC clusters.

Section IV-B.3 of the paper: before DSE Step 1 the decomposition graph is
(re)partitioned to balance compute; before DSE Step 2 the weights are
updated and the graph repartitioned to minimise communication while staying
balanced, with subsystems that change cluster paying a data-redistribution
cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology
from ..dse.decomposition import Decomposition
from ..partition import (
    load_imbalance,
    migration_volume,
    partition_kway,
    repartition,
)
from .weights import IterationModel, PAPER_ITERATION_MODEL, step1_graph, step2_graph

__all__ = ["Mapping", "ClusterMapper"]


@dataclass
class Mapping:
    """Subsystem → cluster assignment and its quality metrics."""

    assignment: np.ndarray  # subsystem -> cluster index
    cluster_names: list[str]
    imbalance: float
    edge_cut: int

    def cluster_of(self, s: int) -> str:
        """Cluster name hosting subsystem ``s``."""
        return self.cluster_names[int(self.assignment[s])]

    def subsystems_on(self, cluster: str) -> np.ndarray:
        """Subsystem ids mapped to a cluster."""
        idx = self.cluster_names.index(cluster)
        return np.flatnonzero(self.assignment == idx)

    def as_dict(self) -> dict[str, list[int]]:
        """``{cluster: [subsystems...]}`` — the Figure 4/5 presentation."""
        return {
            name: self.subsystems_on(name).tolist() for name in self.cluster_names
        }


class ClusterMapper:
    """Implements the paper's mapping method over a cluster topology.

    Parameters
    ----------
    topology:
        The available HPC clusters (``p`` = number of clusters).
    tol:
        Balance tolerance for the partitioner (METIS' suggested 1.05).
    iteration_model:
        The ``Ni = g1·x + g2`` model used for vertex weights.
    migration_factor:
        Edge-cut units one unit of migrated vertex weight costs during
        repartitioning (bounds data redistribution).
    seed:
        Seed for the partitioner.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        tol: float = 1.05,
        iteration_model: IterationModel = PAPER_ITERATION_MODEL,
        migration_factor: float = 0.5,
        seed: int = 0,
    ):
        self.topology = topology
        self.tol = tol
        self.iteration_model = iteration_model
        self.migration_factor = migration_factor
        self.seed = seed
        self.cluster_names = [c.name for c in topology.clusters]

    @property
    def p(self) -> int:
        """Number of clusters."""
        return len(self.cluster_names)

    # ------------------------------------------------------------------
    def map_step1(self, dec: Decomposition, noise_level: float) -> Mapping:
        """Partition for DSE Step 1: balance the computational loads."""
        g = step1_graph(dec, noise_level, model=self.iteration_model)
        res = partition_kway(g, self.p, tol=self.tol, seed=self.seed)
        return Mapping(
            assignment=res.part,
            cluster_names=self.cluster_names,
            imbalance=res.imbalance,
            edge_cut=res.edge_cut,
        )

    def remap_step2(
        self,
        dec: Decomposition,
        noise_level: float,
        previous: Mapping,
        exchange_sets: dict[int, np.ndarray] | None = None,
    ) -> tuple[Mapping, int]:
        """Repartition for DSE Step 2: minimise communication, stay
        balanced, limit migration.

        Returns ``(mapping, migrated_weight)`` where the second element is
        the vertex weight (≈ measurement volume) that must be redistributed
        between clusters (section IV-C's data-redistribution step).
        """
        g = step2_graph(
            dec, noise_level, exchange_sets, model=self.iteration_model
        )
        res = repartition(
            g,
            self.p,
            previous.assignment,
            tol=self.tol,
            migration_factor=self.migration_factor,
            seed=self.seed,
        )
        moved = migration_volume(g, previous.assignment, res.part)
        return (
            Mapping(
                assignment=res.part,
                cluster_names=self.cluster_names,
                imbalance=res.imbalance,
                edge_cut=res.edge_cut,
            ),
            moved,
        )

    # ------------------------------------------------------------------
    def static_mapping(self, dec: Decomposition) -> Mapping:
        """The "w/o mapping" baseline of Table II: contiguous block
        assignment of subsystems to clusters, ignoring weights."""
        sizes = dec.sizes()
        order = np.arange(dec.m)
        assignment = np.zeros(dec.m, dtype=np.int64)
        # contiguous chunks of ~m/p subsystems
        bounds = np.linspace(0, dec.m, self.p + 1).astype(int)
        for c in range(self.p):
            assignment[order[bounds[c] : bounds[c + 1]]] = c
        g = step1_graph(dec, 1.0, model=self.iteration_model)
        return Mapping(
            assignment=assignment,
            cluster_names=self.cluster_names,
            imbalance=load_imbalance(g, assignment, self.p),
            edge_cut=0,
        )
