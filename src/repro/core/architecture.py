"""The system-architecture prototype: wiring all substrates together.

``ArchitecturePrototype`` owns the pieces of the paper's Figure 1: the
decomposed power system, the HPC cluster topology, the mapping method, the
cost models used to replay execution on the simulated testbed, and
(optionally) a live middleware fabric whose pipelines actually move the
pseudo-measurement bytes between the estimator sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.costmodel import MiddlewareCostModel, WlsCostModel
from ..cluster.executor import SimExecutor
from ..cluster.topology import ClusterTopology, pnnl_testbed
from ..dse.decomposition import Decomposition, decompose
from ..grid.network import Network
from ..middleware.router import MiddlewareFabric
from .mapper import ClusterMapper
from .weights import IterationModel, PAPER_ITERATION_MODEL

__all__ = ["ArchitecturePrototype"]


@dataclass
class ArchitecturePrototype:
    """A configured instance of the distributed-SE architecture.

    Build with :meth:`assemble`; then hand it to
    :class:`repro.core.session.DseSession` to process telemetry frames.
    """

    net: Network
    dec: Decomposition
    topology: ClusterTopology
    mapper: ClusterMapper
    executor: SimExecutor
    wls_cost: WlsCostModel
    middleware_cost: MiddlewareCostModel
    iteration_model: IterationModel
    fabric: MiddlewareFabric | None = field(default=None)

    @classmethod
    def assemble(
        cls,
        net: Network,
        *,
        m_subsystems: int = 9,
        subsystem_sizes=None,
        topology: ClusterTopology | None = None,
        iteration_model: IterationModel = PAPER_ITERATION_MODEL,
        wls_cost: WlsCostModel | None = None,
        middleware_cost: MiddlewareCostModel | None = None,
        seed: int = 0,
        with_fabric: bool = False,
        fabric_tcp: bool = False,
        fabric_fast: bool = False,
    ) -> "ArchitecturePrototype":
        """Decompose ``net`` and wire the architecture around it.

        ``subsystem_sizes`` forces exact subsystem bus counts (e.g. the
        paper's 14,13,... split); otherwise a balanced ``m_subsystems``-way
        decomposition is computed.  ``with_fabric`` starts live middleware
        pipelines between neighbouring estimators (in-process queues, or
        localhost TCP with ``fabric_tcp=True``; the multiplexed fast plane
        with ``fabric_fast=True``); without it, communication is accounted
        analytically on the simulated testbed only.
        """
        topology = topology or pnnl_testbed()
        if subsystem_sizes is not None:
            from ..dse.decomposition import decompose_with_sizes

            dec = decompose_with_sizes(net, subsystem_sizes, seed=seed)
        else:
            dec = decompose(net, m_subsystems, seed=seed)
        mapper = ClusterMapper(topology, iteration_model=iteration_model, seed=seed)
        middleware_cost = middleware_cost or MiddlewareCostModel()
        executor = SimExecutor(topology, middleware=middleware_cost)
        wls_cost = wls_cost or WlsCostModel()

        fabric = None
        if with_fabric:
            names = [f"se{s}" for s in range(dec.m)]
            pairs = []
            for u, v in dec.quotient_edges():
                pairs.append((f"se{u}", f"se{v}"))
                pairs.append((f"se{v}", f"se{u}"))
            fabric = MiddlewareFabric(
                names, pairs, use_tcp=fabric_tcp, fast=fabric_fast
            )
            fabric.start()

        return cls(
            net=net,
            dec=dec,
            topology=topology,
            mapper=mapper,
            executor=executor,
            wls_cost=wls_cost,
            middleware_cost=middleware_cost,
            iteration_model=iteration_model,
            fabric=fabric,
        )

    def close(self) -> None:
        """Stop the middleware fabric (if any)."""
        if self.fabric is not None:
            self.fabric.stop()
            self.fabric = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
