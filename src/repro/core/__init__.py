"""The paper's contribution: weights, mapping method, architecture, sessions."""

from .adaptation import (
    BranchOutageReport,
    ClusterOutageReport,
    apply_branch_outage,
    apply_cluster_outage,
)
from .architecture import ArchitecturePrototype
from .mapper import ClusterMapper, Mapping
from .noise import NoiseLevelEstimator, innovation_noise_level
from .runtime import LiveDseResult, LiveDseRuntime, LiveSiteStats
from .session import DseSession
from .simulation import DseTimeline, simulate_dse_message_level
from .telemetry import FrameReport, PhaseBreakdown, Timer
from .weights import (
    IterationModel,
    PAPER_ITERATION_MODEL,
    edge_weight_exchange,
    edge_weight_upper_bound,
    step1_graph,
    step2_graph,
    vertex_weights,
)

__all__ = [
    "IterationModel",
    "PAPER_ITERATION_MODEL",
    "vertex_weights",
    "edge_weight_exchange",
    "edge_weight_upper_bound",
    "step1_graph",
    "step2_graph",
    "innovation_noise_level",
    "NoiseLevelEstimator",
    "ClusterMapper",
    "Mapping",
    "ArchitecturePrototype",
    "BranchOutageReport",
    "ClusterOutageReport",
    "apply_branch_outage",
    "apply_cluster_outage",
    "DseSession",
    "LiveDseRuntime",
    "LiveDseResult",
    "LiveSiteStats",
    "DseTimeline",
    "simulate_dse_message_level",
    "FrameReport",
    "PhaseBreakdown",
    "Timer",
]
