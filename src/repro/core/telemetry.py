"""Telemetry records for architecture sessions."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "PhaseBreakdown", "FrameReport"]


class Timer:
    """Context-manager wall-clock timer."""

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._t0


@dataclass
class PhaseBreakdown:
    """Simulated-testbed timing of one DSE execution."""

    step1: float = 0.0
    redistribution: float = 0.0
    exchange_per_round: list[float] = field(default_factory=list)
    step2_per_round: list[float] = field(default_factory=list)

    @property
    def exchange(self) -> float:
        return sum(self.exchange_per_round)

    @property
    def step2(self) -> float:
        return sum(self.step2_per_round)

    @property
    def total(self) -> float:
        return self.step1 + self.redistribution + self.exchange + self.step2


@dataclass
class FrameReport:
    """Everything recorded about one processed time frame."""

    t: float
    noise_level: float
    expected_iterations: float
    mapping_step1: dict[str, list[int]]
    imbalance_step1: float
    mapping_step2: dict[str, list[int]]
    imbalance_step2: float
    edge_cut_step2: int
    migrated_weight: int
    rounds: int
    bytes_exchanged: int
    timings: PhaseBreakdown
    wall_time: float
    vm_rmse_vs_truth: float | None = None
    va_rmse_vs_truth: float | None = None
    centralized_sim_time: float | None = None
    bad_data: object | None = None  # DistributedBadDataReport when enabled
