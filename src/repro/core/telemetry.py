"""Telemetry records for architecture sessions.

:class:`FrameReport` / :class:`PhaseBreakdown` carry the per-frame numbers
and serialize to plain dicts (:meth:`FrameReport.to_dict`), the one schema
shared by ``benchmarks/record_bench.py`` and the JSONL exporter in
:mod:`repro.obs.export`.

:class:`Timer` predates the span-based tracing in :mod:`repro.obs` and is
deprecated in its favour; it is kept (re-entrant and exception-safe) for
existing consumers.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

__all__ = ["Timer", "PhaseBreakdown", "FrameReport"]


class Timer:
    """Context-manager wall-clock timer.

    .. deprecated::
        Superseded by :func:`repro.obs.span`, which times, nests and
        exports; ``Timer`` only measures.  It stays for backward
        compatibility with :class:`FrameReport` consumers.

    Safe to re-enter: one instance can be reused sequentially or nested
    (start times are kept on a stack, so an inner interval does not
    clobber an outer one), and ``__exit__`` records the elapsed time even
    when the body raised.  ``elapsed`` holds the most recently closed
    interval.
    """

    def __init__(self):
        self.elapsed = 0.0
        self._starts: list[float] = []

    def __enter__(self):
        warnings.warn(
            "repro.core.telemetry.Timer is deprecated; use repro.obs.span",
            DeprecationWarning,
            stacklevel=2,
        )
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._starts.pop()


@dataclass
class PhaseBreakdown:
    """Simulated-testbed timing of one DSE execution."""

    step1: float = 0.0
    redistribution: float = 0.0
    exchange_per_round: list[float] = field(default_factory=list)
    step2_per_round: list[float] = field(default_factory=list)

    @property
    def exchange(self) -> float:
        return sum(self.exchange_per_round)

    @property
    def step2(self) -> float:
        return sum(self.step2_per_round)

    @property
    def total(self) -> float:
        return self.step1 + self.redistribution + self.exchange + self.step2

    def to_dict(self) -> dict:
        """JSON-ready dict (derived totals included for readers that do not
        want to recompute them; :meth:`from_dict` ignores them)."""
        return {
            "step1": float(self.step1),
            "redistribution": float(self.redistribution),
            "exchange_per_round": [float(v) for v in self.exchange_per_round],
            "step2_per_round": [float(v) for v in self.step2_per_round],
            "exchange": float(self.exchange),
            "step2": float(self.step2),
            "total": float(self.total),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PhaseBreakdown":
        return cls(
            step1=float(d.get("step1", 0.0)),
            redistribution=float(d.get("redistribution", 0.0)),
            exchange_per_round=[float(v) for v in d.get("exchange_per_round", [])],
            step2_per_round=[float(v) for v in d.get("step2_per_round", [])],
        )


@dataclass
class FrameReport:
    """Everything recorded about one processed time frame."""

    t: float
    noise_level: float
    expected_iterations: float
    mapping_step1: dict[str, list[int]]
    imbalance_step1: float
    mapping_step2: dict[str, list[int]]
    imbalance_step2: float
    edge_cut_step2: int
    migrated_weight: int
    rounds: int
    bytes_exchanged: int
    timings: PhaseBreakdown
    wall_time: float
    vm_rmse_vs_truth: float | None = None
    va_rmse_vs_truth: float | None = None
    centralized_sim_time: float | None = None
    bad_data: object | None = None  # DistributedBadDataReport when enabled
    #: subsystems that completed this frame degraded (failed solves,
    #: missed exchanges, dead middleware peers); empty on a clean frame
    degraded_subsystems: list = field(default_factory=list)
    #: subsystems that were degraded last frame and completed cleanly this
    #: frame (failover promotion landed, or the fault cleared)
    recovered_subsystems: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready dict; ``bad_data`` is flattened to its summary
        fields (the full per-subsystem report does not round-trip)."""
        bad = self.bad_data
        if bad is not None and not isinstance(bad, dict):
            bad = {
                "suspect_subsystems": [int(s) for s in bad.suspect_subsystems],
                "removed_global_rows": [
                    int(r) for r in bad.removed_global_rows
                ],
                "clean_after_identification": bool(
                    bad.clean_after_identification
                ),
            }
        return {
            "t": float(self.t),
            "noise_level": float(self.noise_level),
            "expected_iterations": float(self.expected_iterations),
            "mapping_step1": {
                k: [int(s) for s in v] for k, v in self.mapping_step1.items()
            },
            "imbalance_step1": float(self.imbalance_step1),
            "mapping_step2": {
                k: [int(s) for s in v] for k, v in self.mapping_step2.items()
            },
            "imbalance_step2": float(self.imbalance_step2),
            "edge_cut_step2": int(self.edge_cut_step2),
            "migrated_weight": float(self.migrated_weight),
            "rounds": int(self.rounds),
            "bytes_exchanged": int(self.bytes_exchanged),
            "timings": self.timings.to_dict(),
            "wall_time": float(self.wall_time),
            "vm_rmse_vs_truth": self.vm_rmse_vs_truth,
            "va_rmse_vs_truth": self.va_rmse_vs_truth,
            "centralized_sim_time": self.centralized_sim_time,
            "bad_data": bad,
            "degraded_subsystems": [int(s) for s in self.degraded_subsystems],
            "recovered_subsystems": [
                int(s) for s in self.recovered_subsystems
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FrameReport":
        return cls(
            t=float(d["t"]),
            noise_level=float(d["noise_level"]),
            expected_iterations=float(d["expected_iterations"]),
            mapping_step1={k: list(v) for k, v in d["mapping_step1"].items()},
            imbalance_step1=float(d["imbalance_step1"]),
            mapping_step2={k: list(v) for k, v in d["mapping_step2"].items()},
            imbalance_step2=float(d["imbalance_step2"]),
            edge_cut_step2=int(d["edge_cut_step2"]),
            migrated_weight=d["migrated_weight"],
            rounds=int(d["rounds"]),
            bytes_exchanged=int(d["bytes_exchanged"]),
            timings=PhaseBreakdown.from_dict(d.get("timings", {})),
            wall_time=float(d["wall_time"]),
            vm_rmse_vs_truth=d.get("vm_rmse_vs_truth"),
            va_rmse_vs_truth=d.get("va_rmse_vs_truth"),
            centralized_sim_time=d.get("centralized_sim_time"),
            bad_data=d.get("bad_data"),
            degraded_subsystems=[
                int(s) for s in d.get("degraded_subsystems", [])
            ],
            recovered_subsystems=[
                int(s) for s in d.get("recovered_subsystems", [])
            ],
        )
