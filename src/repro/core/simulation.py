"""Message-level simulation of a DSE execution (Figure 6, per process).

The analytic replay in :mod:`repro.core.session` computes phase makespans
in closed form.  This module runs the finer-grained version: one simulated
process per state estimator, exchanging pseudo-measurement messages
through the simulated MPI layer with the middleware relay charged per
message — so overlap between communication and computation, stragglers and
link contention all emerge from the event simulation instead of being
aggregated analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..cluster.costmodel import MiddlewareCostModel
from ..cluster.simevent import SimEngine, Timeout
from ..cluster.simmpi import SimComm
from ..cluster.topology import ClusterTopology
from ..dse.algorithm import DseResult
from ..dse.decomposition import Decomposition
from .mapper import Mapping

__all__ = ["DseTimeline", "simulate_dse_message_level"]


@dataclass
class DseTimeline:
    """Event-level timeline of one simulated DSE execution."""

    total_time: float
    step1_done: float
    round_done: list[float]
    per_subsystem_finish: dict[int, float] = field(default_factory=dict)
    bytes_communicated: float = 0.0
    messages: int = 0

    @property
    def rounds(self) -> int:
        return len(self.round_done)


def simulate_dse_message_level(
    dec: Decomposition,
    result: DseResult,
    mapping: Mapping,
    topology: ClusterTopology,
    *,
    middleware: MiddlewareCostModel | None = None,
    use_middleware: bool = True,
) -> DseTimeline:
    """Replay a DSE run as communicating processes.

    Parameters
    ----------
    dec:
        The decomposition that produced ``result``.
    result:
        A completed :class:`~repro.dse.algorithm.DseResult` whose measured
        per-subsystem durations drive the simulated compute delays.
    mapping:
        Subsystem → cluster placement (one rank per subsystem).
    use_middleware:
        Charge the MeDICi-style relay per message (store-and-forward copy);
        with ``False`` messages ride the raw links.
    """
    middleware = middleware or MiddlewareCostModel()
    engine = SimEngine()
    placement = [mapping.cluster_of(s) for s in range(dec.m)]
    comm = SimComm(engine, topology, placement)

    timeline = DseTimeline(
        total_time=0.0,
        step1_done=0.0,
        round_done=[0.0] * result.rounds,
    )
    barrier_hits = {"step1": 0, **{f"round{r}": 0 for r in range(result.rounds)}}

    def estimator_proc(s: int):
        rec = result.records[s]
        nbrs = [int(b) for b in dec.neighbors(s)]

        # ---- DSE Step 1: local estimation ----
        yield Timeout(rec.step1_time)
        barrier_hits["step1"] += 1
        timeline.step1_done = max(timeline.step1_done, engine.now)

        # ---- DSE Step 2 rounds ----
        for r in range(result.rounds):
            # actual packed bytes this subsystem put on the wire in
            # round r (condensation-aware), split per neighbour
            exchange_bytes = rec.bytes_sent_per_round[r] // max(1, len(nbrs))
            # publish this round's solution to every neighbour
            for nb in nbrs:
                extra = 0.0
                if use_middleware:
                    link = topology.link(placement[s], placement[nb])
                    extra = middleware.relayed_time(
                        exchange_bytes, link
                    ) - middleware.direct_time(exchange_bytes, link)
                yield from comm.send(
                    nb, ("state", s, r), nbytes=exchange_bytes, src=s,
                    tag=r, extra_delay=extra,
                )
            # collect every neighbour's solution
            for nb in nbrs:
                yield from comm.recv(nb, dst=s, tag=r)
            # re-evaluate
            yield Timeout(rec.step2_times[r])
            barrier_hits[f"round{r}"] += 1
            timeline.round_done[r] = max(timeline.round_done[r], engine.now)

        timeline.per_subsystem_finish[s] = engine.now

    with obs.span("sim.replay", m=dec.m, rounds=result.rounds) as sp:
        for s in range(dec.m):
            engine.process(estimator_proc(s), name=f"se{s}")
        timeline.total_time = engine.run()
        timeline.bytes_communicated = comm.stats_bytes
        timeline.messages = comm.stats_messages
        sp.set_attr("sim_total", timeline.total_time)
        sp.set_attr("messages", timeline.messages)
    if obs.enabled():
        obs.metrics().counter("sim.messages_total").inc(timeline.messages)

    # sanity: every estimator completed every phase
    assert barrier_hits["step1"] == dec.m
    for r in range(result.rounds):
        assert barrier_hits[f"round{r}"] == dec.m
    return timeline
