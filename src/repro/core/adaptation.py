"""Runtime adaptation: grid topology changes and cluster failures.

The paper motivates the architecture with the *dynamics* of the power
system — "varying number of data exchange sessions between state
estimators" — and its mapping method exists precisely to re-place work as
conditions change.  This module implements the two disruptive events a
deployment must absorb between frames:

- **branch outages** (:func:`apply_branch_outage`): the decomposition is
  repaired in place — a tie-line loss just removes an exchange session; a
  loss that splits a subsystem internally reassigns the stranded fragment
  to a neighbouring subsystem;
- **cluster failures** (:func:`apply_cluster_outage`): the mapper is rebuilt
  over the surviving clusters and the orphaned subsystems are re-placed by
  the migration-aware repartitioner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.topology import ClusterTopology
from ..dse.decomposition import Decomposition
from ..grid.islands import subgraph_components
from ..partition import migration_volume
from .architecture import ArchitecturePrototype
from .mapper import ClusterMapper, Mapping
from .weights import step1_graph

__all__ = ["BranchOutageReport", "ClusterOutageReport", "apply_branch_outage",
           "apply_cluster_outage"]


@dataclass
class BranchOutageReport:
    """What a branch outage did to the decomposition."""

    branch: int
    was_tie_line: bool
    islanded_network: bool
    reassigned_buses: np.ndarray = field(
        default_factory=lambda: np.zeros(0, np.int64)
    )
    new_decomposition: Decomposition | None = None

    @property
    def decomposition_changed(self) -> bool:
        return len(self.reassigned_buses) > 0


def apply_branch_outage(
    arch: ArchitecturePrototype, branch: int
) -> BranchOutageReport:
    """Take a branch out of service and repair the decomposition.

    The architecture's network and decomposition are updated in place.
    If the outage islands the *whole* network the report flags it and no
    repair is attempted (operator intervention territory).
    """
    net = arch.net
    if not 0 <= branch < net.n_branch:
        raise ValueError(f"branch {branch} out of range")
    if net.br_status[branch] == 0:
        raise ValueError(f"branch {branch} already out of service")

    dec = arch.dec
    was_tie = branch in set(dec.tie_lines.tolist())
    net.br_status[branch] = 0

    pairs = net.adjacency_pairs()
    # Whole-network islanding?
    comps = subgraph_components(net.n_bus, pairs, np.arange(net.n_bus))
    if len(comps) > 1:
        net.br_status[branch] = 1  # roll back; caller must handle
        return BranchOutageReport(
            branch=branch, was_tie_line=was_tie, islanded_network=True
        )

    part = dec.part.copy()
    reassigned: list[int] = []
    if not was_tie:
        # The outage may split its subsystem internally.
        s = int(part[net.f[branch]])
        members = np.flatnonzero(part == s)
        frags = subgraph_components(net.n_bus, pairs, members)
        if len(frags) > 1:
            frags.sort(key=len, reverse=True)
            adj: dict[int, dict[int, int]] = {}
            for frag in frags[1:]:
                counts: dict[int, int] = {}
                fragset = set(frag.tolist())
                for u, v in pairs:
                    u, v = int(u), int(v)
                    if u in fragset and part[v] != s:
                        counts[int(part[v])] = counts.get(int(part[v]), 0) + 1
                    if v in fragset and part[u] != s:
                        counts[int(part[u])] = counts.get(int(part[u]), 0) + 1
                target = max(counts, key=counts.get) if counts else s
                if target != s:
                    part[frag] = target
                    reassigned.extend(int(b) for b in frag)

    new_dec = Decomposition(net=net, part=part, m=dec.m)
    arch.dec = new_dec
    return BranchOutageReport(
        branch=branch,
        was_tie_line=was_tie,
        islanded_network=False,
        reassigned_buses=np.array(sorted(reassigned), dtype=np.int64),
        new_decomposition=new_dec,
    )


@dataclass
class ClusterOutageReport:
    """What a cluster failure did to the mapping."""

    failed_cluster: str
    survivors: list[str]
    orphaned_subsystems: np.ndarray
    new_mapping: Mapping
    migrated_weight: int


def apply_cluster_outage(
    arch: ArchitecturePrototype,
    failed: str,
    previous: Mapping,
    *,
    noise_level: float = 1.0,
) -> ClusterOutageReport:
    """Re-place all subsystems after ``failed`` drops out.

    The architecture's mapper is rebuilt over the surviving clusters; the
    repartitioner starts from the previous assignment (anchoring surviving
    placements) so only the orphans and whatever rebalancing demands move.
    """
    names = [c.name for c in arch.topology.clusters]
    if failed not in names:
        raise KeyError(f"unknown cluster {failed!r}")
    survivors = [c for c in arch.topology.clusters if c.name != failed]
    if not survivors:
        raise ValueError("no surviving clusters")

    new_topo = ClusterTopology(
        clusters=survivors,
        links={k: v for k, v in arch.topology.links.items() if failed not in k},
        loopback=arch.topology.loopback,
        default_link=arch.topology.default_link,
    )
    new_mapper = ClusterMapper(
        new_topo,
        tol=arch.mapper.tol,
        iteration_model=arch.mapper.iteration_model,
        migration_factor=arch.mapper.migration_factor,
        seed=arch.mapper.seed,
    )

    # Re-index the previous assignment onto the surviving cluster list;
    # orphaned subsystems start on the least-loaded survivor.
    old_names = previous.cluster_names
    new_names = [c.name for c in survivors]
    orphans = np.array(
        [s for s in range(len(previous.assignment))
         if old_names[previous.assignment[s]] == failed],
        dtype=np.int64,
    )
    dec = arch.dec
    g = step1_graph(dec, noise_level, model=arch.mapper.iteration_model)
    start = np.zeros(dec.m, dtype=np.int64)
    loads = np.zeros(len(new_names), dtype=np.int64)
    for s in range(dec.m):
        old = old_names[previous.assignment[s]]
        if old != failed:
            start[s] = new_names.index(old)
            loads[start[s]] += g.vwgt[s]
    for s in orphans:
        target = int(np.argmin(loads))
        start[s] = target
        loads[target] += g.vwgt[s]

    from ..partition import repartition

    res = repartition(
        g,
        len(new_names),
        start,
        tol=arch.mapper.tol,
        migration_factor=arch.mapper.migration_factor,
        seed=arch.mapper.seed,
    )
    new_mapping = Mapping(
        assignment=res.part,
        cluster_names=new_names,
        imbalance=res.imbalance,
        edge_cut=res.edge_cut,
    )
    moved = migration_volume(g, start, res.part)

    arch.topology = new_topo
    arch.mapper = new_mapper
    from ..cluster.executor import SimExecutor

    arch.executor = SimExecutor(new_topo, middleware=arch.middleware_cost)

    return ClusterOutageReport(
        failed_cluster=failed,
        survivors=new_names,
        orphaned_subsystems=orphans,
        new_mapping=new_mapping,
        migrated_weight=moved,
    )
