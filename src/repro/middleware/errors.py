"""Typed middleware errors and the retry policy that handles them.

The middleware used to leak raw ``OSError`` / ``RuntimeError`` from
whichever socket primitive failed first, which callers could neither
classify nor handle uniformly.  Every failure that crosses the
``MWClient`` / fabric API now maps onto this hierarchy:

``MiddlewareError``
    base class (subclasses ``RuntimeError`` so legacy ``except
    RuntimeError`` call sites keep working)
``ConnectFailed``
    dialling the destination failed (refused, unreachable, dial fault)
``SendFailed``
    a send could not be completed after the retry budget; the pooled
    connection involved has been discarded (never reused after a
    partial write)
``RecvTimeout``
    no payload arrived within the receive timeout (subclasses
    ``TimeoutError`` — existing ``except TimeoutError`` degradation
    paths see no difference)
``ClientClosed``
    the client (or its buffer) was closed while the caller was blocked
    in ``recv`` — shutdown wakes receivers instead of letting them hang
    until their timeout
``DeadlineExceeded``
    an operation-level deadline (per-frame exchange round, serving
    request) expired (also a ``TimeoutError``)

:class:`RetryPolicy` is the one retry/backoff/jitter implementation used
by the client pool (and available to callers): exponential backoff with
deterministic decorrelated jitter — the jitter sequence is derived from
the policy's seed, so a faulted run retries on the same schedule every
replay.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass

__all__ = [
    "MiddlewareError",
    "ConnectFailed",
    "SendFailed",
    "RecvTimeout",
    "ClientClosed",
    "DeadlineExceeded",
    "RetryPolicy",
]


class MiddlewareError(RuntimeError):
    """Base class for every typed middleware failure."""


class ConnectFailed(MiddlewareError, ConnectionRefusedError):
    """Dialling the destination endpoint failed.

    Also a :class:`ConnectionRefusedError` so pre-hierarchy call sites
    (``except ConnectionError`` / ``except OSError``) keep working.
    """


class SendFailed(MiddlewareError):
    """A send could not be delivered within the retry budget."""


class RecvTimeout(MiddlewareError, TimeoutError):
    """No payload arrived within the receive timeout."""


class ClientClosed(MiddlewareError):
    """The client was closed while an operation was blocked on it."""


class DeadlineExceeded(MiddlewareError, TimeoutError):
    """An operation-level deadline expired before completion."""


_U64 = struct.Struct(">Q")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    attempt plus at most two retries.  The backoff before retry ``k``
    (1-based) is ``min(max_delay, base_delay * 2**(k-1)) * j`` with
    ``j`` drawn deterministically from ``[1 - jitter, 1]`` — seeded
    jitter keeps replayed fault runs on identical schedules while still
    decorrelating real-world retry storms.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int) -> float:
        """Sleep duration before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        h = hashlib.blake2b(digest_size=8)
        h.update(_U64.pack(self.seed & 0xFFFFFFFFFFFFFFFF))
        h.update(_U64.pack(attempt))
        frac = _U64.unpack(h.digest())[0] / float(1 << 64)
        return raw * (1.0 - self.jitter * frac)

    def sleep(self, attempt: int, *, deadline: float | None = None) -> None:
        """Back off before retry ``attempt``; raises
        :class:`DeadlineExceeded` if the backoff would cross ``deadline``
        (a ``time.monotonic`` timestamp)."""
        delay = self.backoff(attempt)
        if deadline is not None and time.monotonic() + delay > deadline:
            raise DeadlineExceeded(
                f"retry backoff ({delay:.3f}s) would exceed the deadline"
            )
        if delay > 0:
            time.sleep(delay)


#: the default policy used by MWClient pooled sends; one transparent
#: re-dial (the pre-fault-layer behaviour) plus one backed-off retry
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.2)
