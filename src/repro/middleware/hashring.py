"""Consistent hashing for shard-addressed routing.

The serving tier spreads scenario traffic across N service replicas, and
the fabric can address frames by *key* instead of by destination name.
Both need the same property: adding or removing one shard must move only
``~1/N`` of the keyspace (a modulo hash reshuffles almost everything,
destroying warm caches on every membership change).

:class:`ConsistentHashRing` is the classic construction: every node is
hashed onto a 64-bit ring at ``vnodes`` positions (virtual nodes smooth
the per-node arc lengths), a key routes to the first node clockwise from
its own hash, and :meth:`preference` walks further clockwise to yield the
distinct-node fallback order used for overload spillover and replica
handoff.  Hashing is ``blake2b`` over the ``repr`` of the key — pure,
process-independent and seedless, so every router instance in every
process agrees on the placement of every key.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from bisect import bisect_right

__all__ = ["ConsistentHashRing", "EmptyRing"]

_U64 = struct.Struct(">Q")


class EmptyRing(LookupError):
    """Routing was attempted against a ring with no nodes."""


def _hash64(data: str) -> int:
    h = hashlib.blake2b(data.encode(), digest_size=8)
    return _U64.unpack(h.digest())[0]


class ConsistentHashRing:
    """A thread-safe consistent-hash ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial node names (order-independent: the ring layout depends
        only on the set of names and ``vnodes``).
    vnodes:
        Virtual nodes per physical node.  More virtual nodes flatten the
        load split (64 keeps the max/mean arc ratio within ~30% for small
        clusters) at a small memory cost.
    """

    def __init__(self, nodes=(), *, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._points: list[int] = []       # sorted ring positions
        self._owners: list[str] = []       # owner node per position
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Insert ``node`` (idempotent)."""
        with self._lock:
            if node in self._nodes:
                return
            self._nodes.add(node)
            for v in range(self.vnodes):
                pt = _hash64(f"{node}#{v}")
                i = bisect_right(self._points, pt)
                self._points.insert(i, pt)
                self._owners.insert(i, node)

    def remove(self, node: str) -> None:
        """Remove ``node`` (idempotent); its arcs fall to the clockwise
        successors, every other key keeps its placement."""
        with self._lock:
            if node not in self._nodes:
                return
            self._nodes.discard(node)
            keep = [
                (pt, owner)
                for pt, owner in zip(self._points, self._owners)
                if owner != node
            ]
            self._points = [pt for pt, _ in keep]
            self._owners = [owner for _, owner in keep]

    @property
    def nodes(self) -> frozenset:
        with self._lock:
            return frozenset(self._nodes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        with self._lock:
            return node in self._nodes

    # ------------------------------------------------------------------
    def route(self, key) -> str:
        """The node owning ``key`` (first node clockwise from its hash)."""
        with self._lock:
            if not self._points:
                raise EmptyRing("no nodes on the ring")
            i = bisect_right(self._points, _hash64(repr(key)))
            return self._owners[i % len(self._owners)]

    def preference(self, key, n: int | None = None) -> list[str]:
        """Distinct nodes in clockwise order from ``key``'s hash.

        ``preference(key)[0] == route(key)``; the tail is the spillover /
        handoff order — the nodes that inherit the key, in sequence, as
        earlier ones are removed.  ``n`` truncates the list.
        """
        with self._lock:
            if not self._points:
                raise EmptyRing("no nodes on the ring")
            want = len(self._nodes) if n is None else min(n, len(self._nodes))
            start = bisect_right(self._points, _hash64(repr(key)))
            out: list[str] = []
            seen: set[str] = set()
            m = len(self._owners)
            for step in range(m):
                owner = self._owners[(start + step) % m]
                if owner not in seen:
                    seen.add(owner)
                    out.append(owner)
                    if len(out) >= want:
                        break
            return out

    def load_split(self, keys) -> dict[str, int]:
        """Key count per node for an iterable of keys (balance probe)."""
        counts: dict[str, int] = {}
        for key in keys:
            node = self.route(key)
            counts[node] = counts.get(node, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConsistentHashRing(nodes={sorted(self.nodes)}, "
            f"vnodes={self.vnodes})"
        )
