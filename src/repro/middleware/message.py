"""Wire framing and payload serialisation.

Frames are length-prefixed: an 8-byte big-endian unsigned length followed by
the payload (the EOF-protocol role of the paper's Figure 7 connector).
Payload helpers pack the measurement-exchange records (bus ids + Vm/Va
pairs) into flat ``numpy`` buffers, which is the fast path mpi4py-style
communication expects.
"""

from __future__ import annotations

import socket
import struct

import numpy as np

__all__ = [
    "FrameError",
    "MAX_FRAME",
    "send_frame",
    "recv_frame",
    "pack_state_update",
    "unpack_state_update",
]

_LEN = struct.Struct(">Q")
#: refuse frames above this size (sanity bound, 1 GiB)
MAX_FRAME = 1 << 30


class FrameError(RuntimeError):
    """Raised on malformed frames or broken connections."""


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame too large: {len(payload)}")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Receive one length-prefixed frame."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame too large: {length}")
    return _recv_exact(sock, length)


def pack_state_update(bus_ids: np.ndarray, Vm: np.ndarray, Va: np.ndarray) -> bytes:
    """Pack a pseudo-measurement exchange record into a flat buffer."""
    bus_ids = np.ascontiguousarray(bus_ids, dtype=np.int64)
    Vm = np.ascontiguousarray(Vm, dtype=np.float64)
    Va = np.ascontiguousarray(Va, dtype=np.float64)
    if not (len(bus_ids) == len(Vm) == len(Va)):
        raise ValueError("array length mismatch")
    n = len(bus_ids)
    return _LEN.pack(n) + bus_ids.tobytes() + Vm.tobytes() + Va.tobytes()


def unpack_state_update(buf: bytes) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_state_update`."""
    if len(buf) < _LEN.size:
        raise FrameError("short state-update buffer")
    (n,) = _LEN.unpack(buf[: _LEN.size])
    expect = _LEN.size + n * (8 + 8 + 8)
    if len(buf) != expect:
        raise FrameError(f"state-update length mismatch: {len(buf)} != {expect}")
    off = _LEN.size
    bus_ids = np.frombuffer(buf, dtype=np.int64, count=n, offset=off).copy()
    off += 8 * n
    Vm = np.frombuffer(buf, dtype=np.float64, count=n, offset=off).copy()
    off += 8 * n
    Va = np.frombuffer(buf, dtype=np.float64, count=n, offset=off).copy()
    return bus_ids, Vm, Va
