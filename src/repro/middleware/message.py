"""Wire framing and payload serialisation.

Two frame formats share the middleware sockets:

- **legacy frames** — an 8-byte big-endian unsigned length followed by the
  payload (the EOF-protocol role of the paper's Figure 7 connector);
- **mux frames** — a compact 10-byte header ``(version, flags, src, dst,
  length)`` so many logical streams share one pooled connection and a
  router hop can forward by destination id without re-dialing.

Both paths are zero-copy where the kernel allows it: receives land in
preallocated buffers via ``recv_into`` (one kernel→user copy per frame,
no chunk-list reassembly) and sends use scatter-gather ``sendmsg`` so the
header and payload never get concatenated in userspace.  ``StreamReader``
is the incremental, non-blocking reassembler the event-driven receive
loops (``selectors``-based) feed from.

Payload helpers pack the measurement-exchange records (bus ids + Vm/Va
pairs) into flat ``numpy`` buffers in a single allocation;
``unpack_state_update(copy=False)`` returns views that alias the wire
buffer (see the ownership note on that function).
"""

from __future__ import annotations

import socket
import struct

import numpy as np

__all__ = [
    "FrameError",
    "PeerClosed",
    "MAX_FRAME",
    "MUX_HEADER",
    "MUX_VERSION",
    "FLAG_CONTROL",
    "FLAG_TRACED",
    "FLAG_TELEMETRY",
    "FLAG_CHECKPOINT",
    "FLAG_EPOCH",
    "TRACE_CTX",
    "EPOCH_CTX",
    "attach_trace_context",
    "read_trace_context",
    "strip_trace_context",
    "attach_epoch",
    "read_epoch",
    "strip_epoch",
    "pack_telemetry",
    "unpack_telemetry",
    "sendmsg_all",
    "send_frame",
    "send_frames",
    "recv_frame",
    "send_mux_frame",
    "send_mux_frames",
    "recv_mux_frame",
    "StreamReader",
    "pack_state_update",
    "unpack_state_update",
    "COND_FLAG_VALUES_ONLY",
    "pack_condensed_update",
    "unpack_condensed_update",
    "state_update_nbytes",
    "condensed_update_nbytes",
]

_LEN = struct.Struct(">Q")
#: refuse frames above this size (sanity bound, 1 GiB)
MAX_FRAME = 1 << 30

#: multiplexed fast-path header: version, flags, src id, dst id, payload length
MUX_HEADER = struct.Struct(">BBHHI")
MUX_VERSION = 1
#: control frame (connection registration HELLO / ACK), not forwarded data
FLAG_CONTROL = 0x01
#: the payload starts with a packed trace context (wire-level context
#: propagation: the router hop and the receiver join the sender's trace)
FLAG_TRACED = 0x02
#: telemetry frame (compact metric deltas for the health plane's
#: aggregation sink) — consumed at the mux hub, never forwarded to a dst
FLAG_TELEMETRY = 0x04
#: checkpoint frame (replicated subsystem state for failover) — routed to
#: the dst like data, but diverted to the dst's checkpoint sink instead of
#: the ordinary receive queue
FLAG_CHECKPOINT = 0x08
#: the payload carries a packed cluster-epoch prefix (after the trace
#: context when both flags are set); the mux hub may fence stale epochs
FLAG_EPOCH = 0x10

#: trace-context prefix carried by FLAG_TRACED payloads:
#: sampled flag, trace id, span id (17 bytes)
TRACE_CTX = struct.Struct(">BQQ")

#: cluster-epoch prefix carried by FLAG_EPOCH payloads (8 bytes)
EPOCH_CTX = struct.Struct(">Q")

#: scatter-gather batches stay well under IOV_MAX (1024 on Linux)
_IOV_BATCH = 256


def attach_trace_context(payload, ctx) -> tuple[bytes, int]:
    """Prefix ``payload`` with the packed span context ``ctx``.

    Returns ``(new_payload, FLAG_TRACED)``; the mux sender ORs the flag
    into the frame header so the router and the receiving link know the
    first :data:`TRACE_CTX` bytes are metadata, not application data.
    """
    prefix = TRACE_CTX.pack(1 if ctx.sampled else 0, ctx.trace_id, ctx.span_id)
    return prefix + payload, FLAG_TRACED


def read_trace_context(payload) -> tuple[int, int, bool]:
    """Read ``(trace_id, span_id, sampled)`` from a traced payload's
    prefix without consuming it (the router peeks; only the final
    receiver strips)."""
    if len(payload) < TRACE_CTX.size:
        raise FrameError("traced payload shorter than its trace context")
    sampled, trace_id, span_id = TRACE_CTX.unpack_from(payload, 0)
    return trace_id, span_id, bool(sampled)


def strip_trace_context(payload):
    """Remove the trace-context prefix, returning the application payload.

    Mutable buffers (``bytearray``) are trimmed in place (no new
    allocation); immutable ones are sliced.
    """
    if isinstance(payload, bytearray):
        del payload[: TRACE_CTX.size]
        return payload
    return payload[TRACE_CTX.size :]


def attach_epoch(payload, epoch: int) -> tuple[bytes, int]:
    """Prefix ``payload`` with the packed cluster epoch.

    Returns ``(new_payload, FLAG_EPOCH)``.  The epoch prefix sits *inside*
    the trace context on the wire (``[trace][epoch][app]``): callers attach
    the epoch first, then trace-wrap, so the mux hub still peeks the trace
    context at offset 0 and reads the epoch at a flag-dependent offset.
    """
    return EPOCH_CTX.pack(epoch) + payload, FLAG_EPOCH


def read_epoch(payload, flags: int) -> int:
    """Read the cluster epoch from an epoch-stamped payload without
    consuming it (the hub peeks when fencing; only the final receiver
    strips)."""
    off = TRACE_CTX.size if flags & FLAG_TRACED else 0
    if len(payload) < off + EPOCH_CTX.size:
        raise FrameError("epoch-stamped payload shorter than its prefix")
    return EPOCH_CTX.unpack_from(payload, off)[0]


def strip_epoch(payload):
    """Remove the epoch prefix (call after :func:`strip_trace_context`
    when both flags are set), returning the application payload."""
    if len(payload) < EPOCH_CTX.size:
        raise FrameError("epoch-stamped payload shorter than its prefix")
    if isinstance(payload, bytearray):
        del payload[: EPOCH_CTX.size]
        return payload
    return payload[EPOCH_CTX.size :]


#: telemetry payload header: version, flags (reserved), site-name length
_TELEM_HEADER = struct.Struct(">BBH")
TELEM_VERSION = 1


def pack_telemetry(site: str, records: list) -> bytes:
    """Encode one telemetry frame: metric-delta ``records`` from ``site``.

    Versioned header + UTF-8 site name + compact JSON body — the records
    are already small deltas (see :mod:`repro.obs.aggregate`), so JSON
    keeps the frame debuggable without a schema registry; the header
    leaves room to swap the body encoding later without a flag-day.
    """
    import json

    name = site.encode("utf-8")
    if len(name) > 0xFFFF:
        raise FrameError("telemetry site name too long")
    body = json.dumps(records, separators=(",", ":")).encode("utf-8")
    return _TELEM_HEADER.pack(TELEM_VERSION, 0, len(name)) + name + body


def unpack_telemetry(buf) -> tuple[str, list]:
    """Decode a telemetry frame back to ``(site, records)``."""
    import json

    if len(buf) < _TELEM_HEADER.size:
        raise FrameError("telemetry frame shorter than its header")
    version, _flags, nlen = _TELEM_HEADER.unpack_from(buf, 0)
    if version != TELEM_VERSION:
        raise FrameError(f"unsupported telemetry version {version}")
    off = _TELEM_HEADER.size
    if len(buf) < off + nlen:
        raise FrameError("telemetry frame truncated")
    site = bytes(buf[off : off + nlen]).decode("utf-8")
    records = json.loads(bytes(buf[off + nlen :]).decode("utf-8"))
    return site, records


class FrameError(RuntimeError):
    """Raised on malformed frames or broken connections."""


class PeerClosed(FrameError):
    """Orderly EOF at a frame boundary (peer closed between frames)."""


# ----------------------------------------------------------------------
# scatter-gather send
# ----------------------------------------------------------------------
def sendmsg_all(sock: socket.socket, parts: list) -> None:
    """Send every buffer in ``parts`` without concatenating them.

    Uses ``sendmsg`` (one syscall for many buffers) and handles partial
    writes and EAGAIN on non-blocking sockets.
    """
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX fallback
        sock.sendall(b"".join(parts))
        return
    views = [memoryview(p) for p in parts if len(p)]
    while views:
        try:
            sent = sock.sendmsg(views[:_IOV_BATCH])
        except (BlockingIOError, InterruptedError):
            import select

            select.select([], [sock], [])
            continue
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        if sent:
            views[0] = views[0][sent:]


# ----------------------------------------------------------------------
# blocking receive primitives
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int, *, eof_ok: bool = False) -> bytearray:
    """Receive exactly ``n`` bytes into one preallocated buffer.

    ``recv_into`` writes straight into the result — no per-chunk
    allocations, no ``b"".join`` copy.  ``eof_ok`` promotes a clean EOF
    before the first byte to :class:`PeerClosed` (a frame boundary).
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        r = sock.recv_into(view[got:])
        if r == 0:
            if got == 0 and eof_ok:
                raise PeerClosed("peer closed connection")
            raise FrameError("connection closed mid-frame")
        got += r
    return buf


def send_frame(sock: socket.socket, payload) -> None:
    """Send one length-prefixed legacy frame (header + payload, one syscall)."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame too large: {len(payload)}")
    sendmsg_all(sock, [_LEN.pack(len(payload)), payload])


def send_frames(sock: socket.socket, payloads) -> None:
    """Batch-coalesced send: many legacy frames ride one ``sendmsg``."""
    parts = []
    for payload in payloads:
        if len(payload) > MAX_FRAME:
            raise FrameError(f"frame too large: {len(payload)}")
        parts.append(_LEN.pack(len(payload)))
        parts.append(payload)
    if parts:
        sendmsg_all(sock, parts)


def recv_frame(sock: socket.socket) -> bytearray:
    """Receive one length-prefixed legacy frame."""
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame too large: {length}")
    return _recv_exact(sock, length)


# ----------------------------------------------------------------------
# multiplexed fast-path frames
# ----------------------------------------------------------------------
def send_mux_frame(
    sock: socket.socket, src: int, dst: int, payload, *, flags: int = 0
) -> None:
    """Send one mux frame (header + payload scatter-gathered)."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame too large: {len(payload)}")
    header = MUX_HEADER.pack(MUX_VERSION, flags, src, dst, len(payload))
    sendmsg_all(sock, [header, payload])


def send_mux_frames(sock: socket.socket, src: int, frames, *, flags: int = 0) -> None:
    """Batch-coalesced mux send: ``frames`` is an iterable of
    ``(dst, payload)`` pairs; all headers + payloads ride one syscall.
    ``flags`` applies to every frame of the burst."""
    parts = []
    for dst, payload in frames:
        if len(payload) > MAX_FRAME:
            raise FrameError(f"frame too large: {len(payload)}")
        parts.append(MUX_HEADER.pack(MUX_VERSION, flags, src, dst, len(payload)))
        parts.append(payload)
    if parts:
        sendmsg_all(sock, parts)


def _parse_mux_header(header) -> tuple[int, int, int, int]:
    version, flags, src, dst, length = MUX_HEADER.unpack(header)
    if version != MUX_VERSION:
        raise FrameError(f"unsupported mux frame version {version}")
    if length > MAX_FRAME:
        raise FrameError(f"frame too large: {length}")
    return flags, src, dst, length


def recv_mux_frame(sock: socket.socket) -> tuple[int, int, int, bytearray]:
    """Receive one mux frame; returns ``(flags, src, dst, payload)``."""
    header = _recv_exact(sock, MUX_HEADER.size, eof_ok=True)
    flags, src, dst, length = _parse_mux_header(header)
    return flags, src, dst, _recv_exact(sock, length)


# ----------------------------------------------------------------------
# incremental reassembly for event-driven receive loops
# ----------------------------------------------------------------------
class StreamReader:
    """Non-blocking incremental frame reassembly over ``recv_into``.

    One instance per connection in a ``selectors`` loop: each readiness
    event calls :meth:`feed`, which drains the socket until EAGAIN and
    returns the frames completed so far.  Legacy mode yields payload
    buffers; mux mode yields ``(flags, src, dst, payload)`` tuples.
    Payload buffers are freshly allocated per frame and owned by the
    caller (nothing retains or reuses them here).
    """

    def __init__(self, *, mux: bool = False):
        self._mux = mux
        self._hsize = MUX_HEADER.size if mux else _LEN.size
        self._hbuf = bytearray(self._hsize)
        self._hview = memoryview(self._hbuf)
        self._hgot = 0
        self._payload: bytearray | None = None
        self._pview: memoryview | None = None
        self._pgot = 0
        self._meta: tuple[int, int, int] | None = None

    def _start_payload(self) -> None:
        if self._mux:
            flags, src, dst, length = _parse_mux_header(self._hbuf)
            self._meta = (flags, src, dst)
        else:
            (length,) = _LEN.unpack(self._hbuf)
            if length > MAX_FRAME:
                raise FrameError(f"frame too large: {length}")
        self._payload = bytearray(length)
        self._pview = memoryview(self._payload)
        self._pgot = 0

    def _complete(self):
        payload = self._payload
        self._payload = self._pview = None
        self._hgot = 0
        if self._mux:
            flags, src, dst = self._meta
            self._meta = None
            return flags, src, dst, payload
        return payload

    def feed(self, sock: socket.socket) -> list:
        """Drain ``sock`` (non-blocking); return completed frames.

        Raises :class:`PeerClosed` on EOF at a frame boundary and
        :class:`FrameError` on EOF mid-header / mid-payload — either way
        the frames completed before the error have already been returned
        by earlier calls, and the caller should close the connection.
        """
        frames = []
        while True:
            if self._payload is None:
                try:
                    r = sock.recv_into(self._hview[self._hgot :])
                except (BlockingIOError, InterruptedError):
                    return frames
                if r == 0:
                    if self._hgot == 0:
                        if frames:
                            return frames  # deliver first; next feed raises
                        raise PeerClosed("peer closed connection")
                    raise FrameError("connection closed mid-header")
                self._hgot += r
                if self._hgot == self._hsize:
                    self._start_payload()
                    if len(self._payload) == 0:
                        frames.append(self._complete())
            else:
                try:
                    r = sock.recv_into(self._pview[self._pgot :])
                except (BlockingIOError, InterruptedError):
                    return frames
                if r == 0:
                    raise FrameError("connection closed mid-payload")
                self._pgot += r
                if self._pgot == len(self._payload):
                    frames.append(self._complete())


# ----------------------------------------------------------------------
# state-update payloads
# ----------------------------------------------------------------------
def pack_state_update(bus_ids: np.ndarray, Vm: np.ndarray, Va: np.ndarray) -> bytearray:
    """Pack a pseudo-measurement exchange record into a flat buffer.

    Single allocation: the count header and all three arrays are written
    straight into one ``bytearray`` (one copy per array, no ``tobytes`` or
    concatenation intermediates).
    """
    bus_ids = np.asarray(bus_ids)
    Vm = np.asarray(Vm, dtype=np.float64)
    Va = np.asarray(Va, dtype=np.float64)
    if not (len(bus_ids) == len(Vm) == len(Va)):
        raise ValueError("array length mismatch")
    n = len(bus_ids)
    buf = bytearray(_LEN.size + n * (8 + 8 + 8))
    _LEN.pack_into(buf, 0, n)
    off = _LEN.size
    np.frombuffer(buf, dtype=np.int64, count=n, offset=off)[:] = bus_ids
    off += 8 * n
    np.frombuffer(buf, dtype=np.float64, count=n, offset=off)[:] = Vm
    off += 8 * n
    np.frombuffer(buf, dtype=np.float64, count=n, offset=off)[:] = Va
    return buf


def unpack_state_update(
    buf, *, copy: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_state_update`.

    With ``copy=False`` the returned arrays are *views* aliasing ``buf``
    (zero-copy): they are only valid while the caller keeps ``buf`` alive
    and unmodified, and writing to a mutable ``buf`` changes them.  The
    default ``copy=True`` returns owned arrays.
    """
    if len(buf) < _LEN.size:
        raise FrameError("short state-update buffer")
    (n,) = _LEN.unpack_from(buf)
    expect = _LEN.size + n * (8 + 8 + 8)
    if len(buf) != expect:
        raise FrameError(f"state-update length mismatch: {len(buf)} != {expect}")
    off = _LEN.size
    bus_ids = np.frombuffer(buf, dtype=np.int64, count=n, offset=off)
    off += 8 * n
    Vm = np.frombuffer(buf, dtype=np.float64, count=n, offset=off)
    off += 8 * n
    Va = np.frombuffer(buf, dtype=np.float64, count=n, offset=off)
    if copy:
        return bus_ids.copy(), Vm.copy(), Va.copy()
    return bus_ids, Vm, Va


def state_update_nbytes(n: int) -> int:
    """Exact wire size of ``pack_state_update`` for ``n`` buses."""
    return _LEN.size + n * (8 + 8 + 8)


# ----------------------------------------------------------------------
# condensed boundary-update payloads
# ----------------------------------------------------------------------
#: condensed-update header: version, flags, source subsystem id, count
_COND_HEADER = struct.Struct(">BBHI")
COND_VERSION = 1
#: the frame carries only (Vm, Va) values — the receiver already learned
#: the bus ordering from this source's round-0 full frame (or knows it
#: a priori from the decomposition)
COND_FLAG_VALUES_ONLY = 0x01


def condensed_update_nbytes(n: int, *, values_only: bool = False) -> int:
    """Exact wire size of ``pack_condensed_update`` for ``n`` buses."""
    per_bus = 16 if values_only else 20
    return _COND_HEADER.size + n * per_bus


def pack_condensed_update(
    src: int,
    bus_ids: np.ndarray,
    Vm: np.ndarray,
    Va: np.ndarray,
    *,
    values_only: bool = False,
) -> bytearray:
    """Pack a condensed boundary-block exchange record.

    The condensed form is the Schur-reduced counterpart of
    :func:`pack_state_update`: per neighbour it carries only the
    tie-adjacent boundary buses (not the full exchange set), bus ids
    shrink to ``uint32``, and after the first round the ordering is known
    to the receiver so ``values_only=True`` drops the id block entirely —
    8 + 16n bytes against the legacy 8 + 24n over a strictly larger bus
    set.  ``src`` identifies the publishing subsystem so the receiver can
    match a values-only frame to the cached ordering.
    """
    Vm = np.asarray(Vm, dtype=np.float64)
    Va = np.asarray(Va, dtype=np.float64)
    n = len(Vm)
    if len(Va) != n or (not values_only and len(bus_ids) != n):
        raise ValueError("array length mismatch")
    flags = COND_FLAG_VALUES_ONLY if values_only else 0
    buf = bytearray(condensed_update_nbytes(n, values_only=values_only))
    _COND_HEADER.pack_into(buf, 0, COND_VERSION, flags, src, n)
    off = _COND_HEADER.size
    if not values_only:
        ids32 = np.asarray(bus_ids, dtype=np.uint32)
        np.frombuffer(buf, dtype=np.uint32, count=n, offset=off)[:] = ids32
        off += 4 * n
    np.frombuffer(buf, dtype=np.float64, count=n, offset=off)[:] = Vm
    off += 8 * n
    np.frombuffer(buf, dtype=np.float64, count=n, offset=off)[:] = Va
    return buf


def unpack_condensed_update(
    buf, *, copy: bool = True
) -> tuple[int, bool, np.ndarray | None, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_condensed_update`.

    Returns ``(src, values_only, bus_ids, Vm, Va)``; ``bus_ids`` is
    ``None`` for a values-only frame (the receiver supplies the cached
    ordering).  ``copy=False`` returns views aliasing ``buf`` with the
    same ownership rules as :func:`unpack_state_update`.
    """
    if len(buf) < _COND_HEADER.size:
        raise FrameError("short condensed-update buffer")
    version, flags, src, n = _COND_HEADER.unpack_from(buf)
    if version != COND_VERSION:
        raise FrameError(f"unsupported condensed-update version {version}")
    values_only = bool(flags & COND_FLAG_VALUES_ONLY)
    expect = condensed_update_nbytes(n, values_only=values_only)
    if len(buf) != expect:
        raise FrameError(
            f"condensed-update length mismatch: {len(buf)} != {expect}"
        )
    off = _COND_HEADER.size
    bus_ids = None
    if not values_only:
        bus_ids = np.frombuffer(buf, dtype=np.uint32, count=n, offset=off)
        off += 4 * n
    Vm = np.frombuffer(buf, dtype=np.float64, count=n, offset=off)
    off += 8 * n
    Va = np.frombuffer(buf, dtype=np.float64, count=n, offset=off)
    if copy:
        bus_ids = None if bus_ids is None else bus_ids.copy()
        return int(src), values_only, bus_ids, Vm.copy(), Va.copy()
    return int(src), values_only, bus_ids, Vm, Va
