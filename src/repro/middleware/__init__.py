"""MeDICi-style middleware: endpoints, transports, pipelines, clients."""

from .client import DataBuffer, EndpointRegistry, MWClient
from .endpoints import Endpoint, parse_endpoint
from .errors import (
    DEFAULT_RETRY,
    ClientClosed,
    ConnectFailed,
    DeadlineExceeded,
    MiddlewareError,
    RecvTimeout,
    RetryPolicy,
    SendFailed,
)
from .fastpath import InprocMuxRouter, MuxRouter
from .hashring import ConsistentHashRing, EmptyRing
from .message import (
    MAX_FRAME,
    MUX_HEADER,
    FrameError,
    PeerClosed,
    StreamReader,
    pack_state_update,
    recv_frame,
    recv_mux_frame,
    send_frame,
    send_frames,
    send_mux_frame,
    send_mux_frames,
    unpack_state_update,
)
from .pipeline import MifComponent, MifPipeline
from .router import MiddlewareFabric
from .transports import (
    Connection,
    InprocTransport,
    Listener,
    TcpTransport,
    transport_for,
)

__all__ = [
    "Endpoint",
    "parse_endpoint",
    "MiddlewareError",
    "ConnectFailed",
    "SendFailed",
    "RecvTimeout",
    "ClientClosed",
    "DeadlineExceeded",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "FrameError",
    "PeerClosed",
    "MAX_FRAME",
    "MUX_HEADER",
    "StreamReader",
    "send_frame",
    "send_frames",
    "recv_frame",
    "send_mux_frame",
    "send_mux_frames",
    "recv_mux_frame",
    "MuxRouter",
    "InprocMuxRouter",
    "ConsistentHashRing",
    "EmptyRing",
    "pack_state_update",
    "unpack_state_update",
    "Connection",
    "Listener",
    "TcpTransport",
    "InprocTransport",
    "transport_for",
    "MifComponent",
    "MifPipeline",
    "DataBuffer",
    "EndpointRegistry",
    "MWClient",
    "MiddlewareFabric",
]
