"""MeDICi-style middleware: endpoints, transports, pipelines, clients."""

from .client import DataBuffer, EndpointRegistry, MWClient
from .endpoints import Endpoint, parse_endpoint
from .message import (
    MAX_FRAME,
    FrameError,
    pack_state_update,
    recv_frame,
    send_frame,
    unpack_state_update,
)
from .pipeline import MifComponent, MifPipeline
from .router import MiddlewareFabric
from .transports import (
    Connection,
    InprocTransport,
    Listener,
    TcpTransport,
    transport_for,
)

__all__ = [
    "Endpoint",
    "parse_endpoint",
    "FrameError",
    "MAX_FRAME",
    "send_frame",
    "recv_frame",
    "pack_state_update",
    "unpack_state_update",
    "Connection",
    "Listener",
    "TcpTransport",
    "InprocTransport",
    "transport_for",
    "MifComponent",
    "MifPipeline",
    "DataBuffer",
    "EndpointRegistry",
    "MWClient",
    "MiddlewareFabric",
]
