"""Middleware fabric: pipelines wiring a set of estimators together.

``MiddlewareFabric`` builds the MeDICi pipelines for a set of neighbour
pairs: one one-way pipeline per direction (as in the paper, "each MeDICi
pipeline is responsible for a one-way communication between two state
estimators"), plus the per-site clients and the shared name registry.
"""

from __future__ import annotations

from .client import EndpointRegistry, MWClient
from .pipeline import MifComponent, MifPipeline
from .transports import InprocTransport

__all__ = ["MiddlewareFabric"]


class MiddlewareFabric:
    """Builds and owns the middleware plumbing for named estimators.

    Parameters
    ----------
    names:
        Estimator names (e.g. ``["se0", "se1", ...]``).
    pairs:
        Directed neighbour pairs to connect; ``None`` wires all ordered
        pairs.
    use_tcp:
        Real localhost TCP when True; in-process queues otherwise.
    """

    def __init__(
        self,
        names: list[str],
        pairs: list[tuple[str, str]] | None = None,
        *,
        use_tcp: bool = False,
    ):
        if len(set(names)) != len(names):
            raise ValueError("duplicate estimator names")
        self.names = list(names)
        self.registry = EndpointRegistry()
        self.inproc = None if use_tcp else InprocTransport()
        self.use_tcp = use_tcp
        self.clients: dict[str, MWClient] = {}
        self.pipelines: dict[tuple[str, str], MifPipeline] = {}
        self.inbound: dict[tuple[str, str], str] = {}

        if pairs is None:
            pairs = [(a, b) for a in names for b in names if a != b]
        self.pairs = list(pairs)
        for a, b in self.pairs:
            if a not in self.names or b not in self.names:
                raise ValueError(f"pair ({a}, {b}) references unknown estimator")

        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind every client endpoint and start every pipeline."""
        if self._started:
            raise RuntimeError("fabric already started")
        for i, name in enumerate(self.names):
            client = MWClient(name, self.registry, inproc=self.inproc)
            if self.use_tcp:
                client.serve("tcp://127.0.0.1:0")
            else:
                client.serve(f"inproc://site-{name}")
            self.clients[name] = client

        for a, b in self.pairs:
            pipeline = MifPipeline(inproc=self.inproc)
            comp = MifComponent(name=f"{a}->{b}")
            pipeline.add_mif_component(comp)
            if self.use_tcp:
                comp.set_in_endpoint("tcp://127.0.0.1:0")
            else:
                comp.set_in_endpoint(f"inproc://pipe-{a}-{b}")
            comp.set_out_endpoint(self.registry.resolve(b))
            pipeline.start()
            self.pipelines[(a, b)] = pipeline
            self.inbound[(a, b)] = comp.in_endpoint
        self._started = True

    def stop(self) -> None:
        for pipeline in self.pipelines.values():
            pipeline.stop()
        for client in self.clients.values():
            client.close()
        self._started = False

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: bytes) -> None:
        """Send through the (src → dst) pipeline — the architecture's data
        path (estimator → pipeline inbound → relay → destination buffer)."""
        try:
            inbound = self.inbound[(src, dst)]
        except KeyError as exc:
            raise KeyError(f"no pipeline for {src} -> {dst}") from exc
        self.clients[src].send(inbound, payload)

    def recv(self, name: str, *, timeout: float = 5.0) -> bytes:
        """Take the next payload delivered to estimator ``name``."""
        return self.clients[name].recv(timeout=timeout)

    def relay_stats(self) -> dict[tuple[str, str], tuple[int, int]]:
        """(frames, bytes) relayed per pipeline."""
        out = {}
        for key, pipeline in self.pipelines.items():
            comp = pipeline.components[0]
            out[key] = (comp.frames_relayed, comp.bytes_relayed)
        return out
