"""Middleware fabric: pipelines wiring a set of estimators together.

``MiddlewareFabric`` builds the MeDICi pipelines for a set of neighbour
pairs: one one-way pipeline per direction (as in the paper, "each MeDICi
pipeline is responsible for a one-way communication between two state
estimators"), plus the per-site clients and the shared name registry.

Two interchangeable data planes sit behind the same ``send``/``recv`` API:

- the **legacy plane** (``fast=False``) — one relay pipeline per directed
  pair, clients dialling each pipeline's inbound URL (pooled connections
  since the fast-path rework, so a pair still costs one dial total);
- the **fast plane** (``fast=True``) — a single mux router hub
  (:mod:`repro.middleware.fastpath`): every site keeps exactly one duplex
  connection to the hub and frames carry (src, dst) ids in a compact
  binary header, so the hub forwards without re-dialing and a site's
  whole neighbour burst can ride one syscall via :meth:`send_many`.
"""

from __future__ import annotations

from .. import obs
from .client import EndpointRegistry, MWClient
from .fastpath import InprocMuxRouter, MuxRouter
from .hashring import ConsistentHashRing
from .message import (
    FLAG_CHECKPOINT,
    FLAG_EPOCH,
    FLAG_TELEMETRY,
    FLAG_TRACED,
    attach_epoch,
    attach_trace_context,
)
from .pipeline import MifComponent, MifPipeline
from .transports import InprocTransport

__all__ = ["MiddlewareFabric"]


class MiddlewareFabric:
    """Builds and owns the middleware plumbing for named estimators.

    Parameters
    ----------
    names:
        Estimator names (e.g. ``["se0", "se1", ...]``).
    pairs:
        Directed neighbour pairs to connect; ``None`` wires all ordered
        pairs.
    use_tcp:
        Real localhost TCP when True; in-process queues otherwise.
    fast:
        Use the multiplexed single-hub data plane instead of one relay
        pipeline per pair.  Same delivery and statistics semantics.
    """

    def __init__(
        self,
        names: list[str],
        pairs: list[tuple[str, str]] | None = None,
        *,
        use_tcp: bool = False,
        fast: bool = False,
    ):
        if len(set(names)) != len(names):
            raise ValueError("duplicate estimator names")
        self.names = list(names)
        self.registry = EndpointRegistry()
        self.inproc = None if use_tcp else InprocTransport()
        self.use_tcp = use_tcp
        self.fast = fast
        self.clients: dict[str, MWClient] = {}
        self.pipelines: dict[tuple[str, str], MifPipeline] = {}
        self.inbound: dict[tuple[str, str], str] = {}
        self._hub: MuxRouter | InprocMuxRouter | None = None
        self._links: dict[str, object] = {}
        self._ids = {name: i for i, name in enumerate(self.names)}

        if pairs is None:
            pairs = [(a, b) for a in names for b in names if a != b]
        self.pairs = list(pairs)
        for a, b in self.pairs:
            if a not in self.names or b not in self.names:
                raise ValueError(f"pair ({a}, {b}) references unknown estimator")
        self._pair_set = set(self.pairs)

        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind every client endpoint and start the data plane."""
        if self._started:
            raise RuntimeError("fabric already started")
        if self.fast:
            self._start_fast()
        else:
            self._start_legacy()
        self._started = True

    def _start_legacy(self) -> None:
        for name in self.names:
            client = MWClient(name, self.registry, inproc=self.inproc)
            if self.use_tcp:
                client.serve("tcp://127.0.0.1:0")
            else:
                client.serve(f"inproc://site-{name}")
            self.clients[name] = client

        for a, b in self.pairs:
            pipeline = MifPipeline(inproc=self.inproc)
            comp = MifComponent(name=f"{a}->{b}")
            pipeline.add_mif_component(comp)
            if self.use_tcp:
                comp.set_in_endpoint("tcp://127.0.0.1:0")
            else:
                comp.set_in_endpoint(f"inproc://pipe-{a}-{b}")
            comp.set_out_endpoint(self.registry.resolve(b))
            pipeline.start()
            self.pipelines[(a, b)] = pipeline
            self.inbound[(a, b)] = comp.in_endpoint

    def _start_fast(self) -> None:
        self._hub = MuxRouter() if self.use_tcp else InprocMuxRouter()
        hub_url = self._hub.start()
        for name in self.names:
            client = MWClient(name, self.registry, inproc=self.inproc)
            self.clients[name] = client
            self.registry.register(name, hub_url)
            # one duplex link per site; inbound frames land in the client's
            # buffer through the same accounting path as a served endpoint
            self._links[name] = self._hub.attach(
                self._ids[name], client._deliver
            )

    def stop(self) -> None:
        for pipeline in self.pipelines.values():
            pipeline.stop()
        for link in self._links.values():
            link.close()
        if self._hub is not None:
            self._hub.stop()
        for client in self.clients.values():
            client.close()
        self._started = False

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()

    # ------------------------------------------------------------------
    def _check_pair(self, src: str, dst: str) -> None:
        if (src, dst) not in self._pair_set:
            raise KeyError(f"no pipeline for {src} -> {dst}")

    @staticmethod
    def _trace_wrap(payload):
        """Attach the calling thread's span context to a fast-plane payload
        (wire-level context propagation); no-op outside sampled spans."""
        ctx = obs.current_context()
        if ctx is None or not ctx.sampled:
            return payload, 0
        return attach_trace_context(payload, ctx)

    def send(self, src: str, dst: str, payload: bytes) -> None:
        """Send through the (src → dst) data plane — estimator → router
        hop → destination buffer."""
        if self.fast:
            self._check_pair(src, dst)
            nbytes = len(payload)
            payload, flags = self._trace_wrap(payload)
            self._links[src].send(self._ids[dst], payload, flags=flags)
            self.clients[src].bytes_sent += nbytes
            return
        try:
            inbound = self.inbound[(src, dst)]
        except KeyError as exc:
            raise KeyError(f"no pipeline for {src} -> {dst}") from exc
        self.clients[src].send(inbound, payload)

    def send_many(self, src: str, frames, *, epoch: int | None = None) -> None:
        """Send a burst of ``(dst, payload)`` frames from one site; on the
        fast plane they all ride one scatter-gather syscall.

        ``epoch`` (fast plane only) stamps every frame with the cluster
        epoch so the hub's fence can reject a zombie sender's frames
        after a failover (see :meth:`set_epoch_fence`).
        """
        frames = list(frames)
        if not frames:
            return
        if self.fast:
            for dst, _ in frames:
                self._check_pair(src, dst)
            nbytes = sum(len(p) for _, p in frames)
            flags = 0
            if epoch is not None:
                # epoch sits inside the trace context on the wire: attach
                # it first, trace-wrap after
                frames = [(dst, attach_epoch(p, epoch)[0]) for dst, p in frames]
                flags |= FLAG_EPOCH
            ctx = obs.current_context()
            if ctx is not None and ctx.sampled:
                frames = [
                    (dst, attach_trace_context(p, ctx)[0]) for dst, p in frames
                ]
                flags |= FLAG_TRACED
            self._links[src].send_many(
                ((self._ids[dst], payload) for dst, payload in frames),
                flags=flags,
            )
            self.clients[src].bytes_sent += nbytes
            return
        for dst, payload in frames:
            self.send(src, dst, payload)

    # -- shard-addressed routing ---------------------------------------
    def enable_sharding(
        self, shards: list[str] | None = None, *, vnodes: int = 64
    ) -> ConsistentHashRing:
        """Turn on key-addressed sends over a subset of sites.

        ``shards`` (default: every site) become consistent-hash targets;
        :meth:`send_keyed` then routes a frame by key instead of by name.
        Returns the ring so callers can adjust membership (a removed
        shard's keyspace falls to its clockwise successors — the same
        placement rule the serving tier's ``ShardRouter`` uses, so a
        co-located router and fabric agree on every key).
        """
        shards = list(self.names) if shards is None else list(shards)
        for name in shards:
            if name not in self.names:
                raise ValueError(f"shard {name!r} is not a fabric site")
        self._shard_ring = ConsistentHashRing(shards, vnodes=vnodes)
        return self._shard_ring

    def shard_for(self, key, *, exclude: str | None = None) -> str:
        """The site owning ``key`` (first live preference, skipping
        ``exclude`` — a sender that cannot deliver to itself)."""
        ring = getattr(self, "_shard_ring", None)
        if ring is None:
            raise RuntimeError("call enable_sharding() first")
        for name in ring.preference(key):
            if name != exclude:
                return name
        raise KeyError(f"no shard available for key {key!r}")

    def send_keyed(self, src: str, key, payload: bytes) -> str:
        """Send ``payload`` to the shard owning ``key``; returns the
        destination name the key hashed to."""
        dst = self.shard_for(key, exclude=src)
        self.send(src, dst, payload)
        if obs.enabled():
            obs.metrics().counter(
                "router.keyed_frames_total", dst=dst
            ).inc()
        return dst

    # -- telemetry plane -----------------------------------------------
    def enable_telemetry(self, sink) -> None:
        """Attach the cluster-side telemetry sink at the mux hub.

        ``sink(payload: bytes)`` receives every ``FLAG_TELEMETRY`` frame
        (typically :meth:`repro.obs.aggregate.TelemetryAggregator.ingest`);
        telemetry frames are consumed at the hub and never reach a site's
        deliver callback.  Fast plane only — the pipeline plane has no
        hub to aggregate at.
        """
        if not self.fast or self._hub is None:
            raise RuntimeError(
                "telemetry aggregation needs the fast plane "
                "(MiddlewareFabric(fast=True), started)"
            )
        self._hub.set_telemetry_sink(sink)

    def send_telemetry(self, src: str, payload: bytes) -> None:
        """Ship one packed telemetry frame from site ``src`` to the hub
        sink (see :func:`repro.middleware.message.pack_telemetry`)."""
        if not self.fast:
            raise RuntimeError("telemetry frames ride the fast plane only")
        # dst 0 is nominal — the hub consumes the frame before routing
        self._links[src].send(0, payload, flags=FLAG_TELEMETRY)
        if obs.enabled():
            obs.metrics().counter("mw.telemetry_frames_sent_total").inc()

    # -- recovery plane ------------------------------------------------
    def set_checkpoint_sink(self, name: str, sink) -> None:
        """Divert ``FLAG_CHECKPOINT`` frames addressed to site ``name``
        into ``sink(payload)`` instead of its ordinary receive queue (the
        recovery replica plane).  Fast plane only."""
        if not self.fast or self._hub is None:
            raise RuntimeError(
                "checkpoint frames ride the fast plane "
                "(MiddlewareFabric(fast=True), started)"
            )
        link = self._links[name]
        if hasattr(link, "checkpoint_sink"):
            # TCP: the frame is forwarded by the hub and diverted at the
            # receiving link's edge
            link.checkpoint_sink = sink
        else:
            # inproc: the hub delivers directly
            self._hub.set_checkpoint_sink(self._ids[name], sink)

    def send_checkpoint(
        self, src: str, dst: str, payload: bytes, *, epoch: int = 0
    ) -> None:
        """Replicate one checkpoint payload from ``src`` to ``dst``'s
        checkpoint sink, stamped with the cluster ``epoch``."""
        if not self.fast:
            raise RuntimeError("checkpoint frames ride the fast plane only")
        self._check_pair(src, dst)
        nbytes = len(payload)
        payload, _ = attach_epoch(payload, epoch)
        self._links[src].send(
            self._ids[dst], payload, flags=FLAG_CHECKPOINT | FLAG_EPOCH
        )
        self.clients[src].bytes_sent += nbytes
        if obs.enabled():
            obs.metrics().counter("mw.checkpoint_frames_sent_total").inc()

    def set_epoch_fence(self, fence) -> None:
        """Install ``fence(src_id, epoch) -> bool`` at the mux hub; frames
        stamped with a fenced (stale) epoch are dropped before routing.
        Fast plane only."""
        if not self.fast or self._hub is None:
            raise RuntimeError(
                "epoch fencing needs the fast plane "
                "(MiddlewareFabric(fast=True), started)"
            )
        self._hub.set_epoch_fence(fence)

    def site_id(self, name: str) -> int:
        """The wire-level id of site ``name`` (fence callbacks receive
        ids, not names)."""
        return self._ids[name]

    def recv(self, name: str, *, timeout: float = 5.0) -> bytes:
        """Take the next payload delivered to estimator ``name``."""
        return self.clients[name].recv(timeout=timeout)

    def relay_stats(self) -> dict[tuple[str, str], tuple[int, int]]:
        """(frames, bytes) relayed per directed pair."""
        if self.fast:
            by_id = self._hub.stats() if self._hub is not None else {}
            rev = {i: name for name, i in self._ids.items()}
            out = {pair: (0, 0) for pair in self.pairs}
            for (src_id, dst_id), rec in by_id.items():
                out[(rev[src_id], rev[dst_id])] = rec
            return out
        out = {}
        for key, pipeline in self.pipelines.items():
            comp = pipeline.components[0]
            out[key] = (comp.frames_relayed, comp.bytes_relayed)
        return out
