"""Multiplexed fast-path data plane: one router hop, pooled duplex links.

The legacy data plane dials a fresh TCP connection per message and runs one
relay pipeline per (src, dst) pair.  The fast path replaces that with a
single **mux router**: every site keeps exactly one long-lived duplex
connection to the hub, frames carry ``(src, dst)`` ids in a compact binary
header (:data:`~repro.middleware.message.MUX_HEADER`), and the hub forwards
a frame to the destination's connection without re-dialing — store-and-
forward routing with per-pair statistics, like the per-pair pipelines, but
over ``m`` sockets instead of ``m²`` dials.

Two interchangeable hubs:

- :class:`MuxRouter` — real localhost TCP; one ``selectors`` loop services
  every connection (no polling threads), reassembling frames incrementally
  with :class:`~repro.middleware.message.StreamReader` and forwarding
  header+payload via scatter-gather ``sendmsg``.
- :class:`InprocMuxRouter` — queue-based, for single-process fabrics; the
  router thread blocks on its inbox (event-driven, no timeouts).

Attachment protocol (TCP): a site dials the hub, sends a HELLO control
frame carrying its id, and waits for the hub's ACK before returning — so
once every site is attached, no data frame can race an unregistered
destination.
"""

from __future__ import annotations

import queue
import selectors
import socket
import threading
import time

from .. import faults, obs
from ..obs import SpanContext
from .endpoints import parse_endpoint
from .errors import SendFailed
from .message import (
    FLAG_CHECKPOINT,
    FLAG_CONTROL,
    FLAG_EPOCH,
    FLAG_TELEMETRY,
    FLAG_TRACED,
    FrameError,
    MUX_HEADER,
    MUX_VERSION,
    PeerClosed,
    StreamReader,
    read_epoch,
    read_trace_context,
    recv_mux_frame,
    send_mux_frame,
    send_mux_frames,
    sendmsg_all,
    strip_epoch,
    strip_trace_context,
)
from .transports import _size_socket_buffers

__all__ = ["MuxRouter", "InprocMuxRouter"]


def _hop_span(flags: int, payload, src: int, dst: int):
    """Router-hop span parented to the *sender's* span via the trace
    context carried in the frame (wire-level context propagation); returns
    ``None`` when the frame is untraced or observability is off here."""
    if not (flags & FLAG_TRACED) or not obs.enabled():
        return None
    try:
        trace_id, span_id, sampled = read_trace_context(payload)
    except FrameError:  # pragma: no cover - malformed peer
        return None
    return obs.span(
        "mux.forward",
        parent=SpanContext(trace_id, span_id, sampled),
        src=src, dst=dst, nbytes=len(payload),
    )


def _fence_ok(fence, src: int, flags: int, payload) -> bool:
    """Apply an epoch fence to an epoch-stamped frame.

    A frame whose prefix can't be read is fenced (it claims an epoch it
    can't prove); a fence callback that *raises* fails open — a broken
    fence must not take down the data plane.
    """
    try:
        epoch = read_epoch(payload, flags)
    except FrameError:
        return False
    try:
        return bool(fence(src, epoch))
    except Exception:  # noqa: BLE001 - fence must not kill the hub
        return True


#: sentinel from :func:`_forward_fault`: swallow the frame entirely
_DROP = object()
#: sentinel from :func:`_forward_fault`: hard-disconnect the destination
_KILL_DST = object()


def _forward_fault(src: int, dst: int, payload):
    """Mux-hop fault hook shared by both hubs.

    Returns ``(payloads, verdict)`` where ``payloads`` is the tuple of
    payloads to forward (empty on drop, two copies on duplicate, a
    truncated frame on corrupt — the header is re-packed so the framing
    stays valid and only the application decode fails) and ``verdict`` is
    ``None``, :data:`_DROP` or :data:`_KILL_DST`.  A ``delay`` sleeps
    *in the hub loop* — intentionally: the hub is the store-and-forward
    stage, so hub latency is what a slow link looks like to every site.
    """
    inj = faults.active()
    if inj is None:
        return (payload,), None
    d = inj.decide("mux.forward", (src, dst))
    if not d:
        return (payload,), None
    if d.action == "drop":
        return (), _DROP
    if d.action == "delay":
        if d.delay:
            time.sleep(d.delay)
        return (payload,), None
    if d.action == "duplicate":
        return (payload, payload), None
    if d.action == "corrupt":
        return (payload[: len(payload) // 2],), None
    # "disconnect"
    return (), _KILL_DST


class _TcpMuxLink:
    """A site's single duplex connection to the TCP hub."""

    def __init__(self, sock: socket.socket, my_id: int, deliver):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.my_id = my_id
        self._deliver = deliver
        #: optional ``callback(payload)`` for FLAG_CHECKPOINT frames; they
        #: bypass the ordinary receive queue (recovery replica plane)
        self.checkpoint_sink = None
        self._closed = False
        self._reader = threading.Thread(
            target=self._recv_loop, name=f"mux-link-{my_id}", daemon=True
        )
        self._reader.start()

    def _recv_loop(self) -> None:
        while True:
            try:
                flags, _src, _dst, payload = recv_mux_frame(self._sock)
            except (FrameError, OSError, ValueError):
                return
            if flags & (FLAG_CONTROL | FLAG_TELEMETRY):
                # control handshakes and telemetry are hub business; a
                # telemetry frame reaching a link means a hub without a
                # sink forwarded it — never application data either way
                continue
            if flags & FLAG_TRACED:
                # metadata prefix is for the routing layer, not the app
                try:
                    payload = strip_trace_context(payload)
                except FrameError:
                    # corrupted-in-flight frame: drop it, keep the link
                    continue
            if flags & FLAG_EPOCH:
                try:
                    payload = strip_epoch(payload)
                except FrameError:
                    continue
            if flags & FLAG_CHECKPOINT:
                sink = self.checkpoint_sink
                if sink is not None:
                    try:
                        sink(payload)
                    except Exception:  # noqa: BLE001 - sink must not kill the link
                        pass
                continue
            self._deliver(payload)

    def send(self, dst: int, payload, *, flags: int = 0) -> None:
        try:
            with self._send_lock:
                send_mux_frame(self._sock, self.my_id, dst, payload, flags=flags)
        except OSError as exc:
            raise SendFailed(f"mux link {self.my_id} -> {dst}: {exc}") from exc

    def send_many(self, frames, *, flags: int = 0) -> None:
        """``frames`` is an iterable of ``(dst, payload)``; all of them
        ride one scatter-gather syscall."""
        try:
            with self._send_lock:
                send_mux_frames(self._sock, self.my_id, frames, flags=flags)
        except OSError as exc:
            raise SendFailed(f"mux link {self.my_id} batch send: {exc}") from exc

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class MuxRouter:
    """TCP hub: accepts site links, routes mux frames by destination id.

    One selector loop owns every socket; per-(src, dst) frame/byte counts
    are kept for the fabric's relay statistics.
    """

    def __init__(self):
        self._sel = selectors.DefaultSelector()
        self._lsock: socket.socket | None = None
        self._routes: dict[int, socket.socket] = {}
        self._stats: dict[tuple[int, int], list[int]] = {}
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._waker_r: socket.socket | None = None
        self._waker_w: socket.socket | None = None
        self.endpoint: str | None = None
        self.frames_dropped = 0
        self.frames_fenced = 0
        self._telemetry_sink = None
        self._epoch_fence = None

    def set_telemetry_sink(self, callback) -> None:
        """``callback(payload: bytes)`` receives every FLAG_TELEMETRY
        frame at the hub (the aggregation point); such frames are
        consumed here and never forwarded to a destination."""
        self._telemetry_sink = callback

    def set_epoch_fence(self, fence) -> None:
        """``fence(src_id, epoch) -> bool`` is consulted for every
        FLAG_EPOCH frame; a ``False`` verdict drops the frame at the hub
        (stale-epoch rejection — a zombie site's frames never reach a
        post-failover destination)."""
        self._epoch_fence = fence

    # ------------------------------------------------------------------
    def start(self, url: str = "tcp://127.0.0.1:0") -> str:
        ep = parse_endpoint(url)
        if ep.scheme != "tcp":
            raise ValueError(f"MuxRouter needs a tcp endpoint, got {url!r}")
        self._lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        # accepted link sockets inherit the buffer sizing
        _size_socket_buffers(self._lsock)
        self._lsock.bind((ep.host, ep.port or 0))
        self._lsock.listen(128)
        self._lsock.setblocking(False)
        host, port = self._lsock.getsockname()
        self.endpoint = f"tcp://{host}:{port}"
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._sel.register(self._lsock, selectors.EVENT_READ, ("accept", None))
        self._sel.register(self._waker_r, selectors.EVENT_READ, ("wake", None))
        self._thread = threading.Thread(
            target=self._loop, name="mux-router", daemon=True
        )
        self._thread.start()
        return self.endpoint

    def attach(self, my_id: int, deliver) -> _TcpMuxLink:
        """Dial the hub, register ``my_id`` (HELLO/ACK), start the link's
        receive thread feeding ``deliver(payload)``."""
        if self.endpoint is None:
            raise RuntimeError("router not started")
        ep = parse_endpoint(self.endpoint)
        sock = socket.create_connection((ep.host, ep.port), timeout=5.0)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        _size_socket_buffers(sock)
        send_mux_frame(sock, my_id, 0, b"", flags=FLAG_CONTROL)
        # synchronous ACK: once this returns, the hub routes frames to us
        flags, _src, _dst, _payload = recv_mux_frame(sock)
        if not flags & FLAG_CONTROL:  # pragma: no cover - protocol error
            raise FrameError("expected ACK control frame from router")
        return _TcpMuxLink(sock, my_id, deliver)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            for key, _ in self._sel.select():
                kind, reader = key.data
                if kind == "wake":
                    try:
                        key.fileobj.recv(64)
                    except OSError:  # pragma: no cover - shutdown race
                        pass
                elif kind == "accept":
                    self._accept()
                else:
                    self._service(key.fileobj, reader)
        # teardown: close every socket the loop owns
        for key in list(self._sel.get_map().values()):
            try:
                self._sel.unregister(key.fileobj)
                key.fileobj.close()
            except (OSError, KeyError):  # pragma: no cover - defensive
                pass
        self._sel.close()

    def _accept(self) -> None:
        try:
            conn, _ = self._lsock.accept()
        except OSError:
            return
        conn.setblocking(False)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sel.register(conn, selectors.EVENT_READ, ("conn", StreamReader(mux=True)))

    def _drop_conn(self, sock: socket.socket) -> None:
        try:
            self._sel.unregister(sock)
        except KeyError:  # pragma: no cover - defensive
            pass
        for sid, s in list(self._routes.items()):
            if s is sock:
                del self._routes[sid]
        sock.close()

    def _service(self, sock: socket.socket, reader: StreamReader) -> None:
        try:
            frames = reader.feed(sock)
        except (PeerClosed, FrameError, OSError):
            self._drop_conn(sock)
            return
        for flags, src, dst, payload in frames:
            if flags & FLAG_CONTROL:
                stale = self._routes.get(src)
                if stale is not None and stale is not sock:
                    # the site re-dialed: the fresh registration wins, and
                    # the stale socket is retired so no frame is ever
                    # forwarded into the dead connection
                    self._drop_conn(stale)
                self._routes[src] = sock
                header = MUX_HEADER.pack(MUX_VERSION, FLAG_CONTROL, 0, src, 0)
                try:
                    sendmsg_all(sock, [header])
                except OSError:  # pragma: no cover - peer died mid-hello
                    self._drop_conn(sock)
                    return
                continue
            if flags & FLAG_TELEMETRY:
                sink = self._telemetry_sink
                if sink is not None:
                    try:
                        sink(bytes(payload))
                    except Exception:  # noqa: BLE001 - sink must not kill the hub
                        pass
                if obs.enabled():
                    obs.metrics().counter("mux.telemetry_frames_total").inc()
                continue
            if flags & FLAG_EPOCH and self._epoch_fence is not None:
                if not _fence_ok(self._epoch_fence, src, flags, payload):
                    with self._stats_lock:
                        self.frames_fenced += 1
                    if obs.enabled():
                        obs.metrics().counter("mux.frames_fenced_total").inc()
                    continue
            out = self._routes.get(dst)
            if out is None:
                with self._stats_lock:
                    self.frames_dropped += 1
                if obs.enabled():
                    obs.metrics().counter("mux.frames_dropped_total").inc()
                continue
            if faults.active() is not None:
                outs, verdict = _forward_fault(src, dst, payload)
                if verdict is _KILL_DST:
                    self._drop_conn(out)
                if verdict is not None:  # frame swallowed either way
                    with self._stats_lock:
                        self.frames_dropped += 1
                    continue
            else:
                outs = (payload,)
            hop = _hop_span(flags, payload, src, dst)
            failed = False
            for p in outs:
                header = MUX_HEADER.pack(MUX_VERSION, flags, src, dst, len(p))
                try:
                    if hop is not None:
                        with hop:
                            sendmsg_all(out, [header, p])
                        hop = None  # span covers the first copy only
                    else:
                        sendmsg_all(out, [header, p])
                except OSError:
                    self._drop_conn(out)
                    failed = True
                    break
            if failed:
                continue
            with self._stats_lock:
                rec = self._stats.setdefault((src, dst), [0, 0])
                rec[0] += 1
                rec[1] += len(payload)
            if obs.enabled():
                m = obs.metrics()
                m.counter("mux.frames_forwarded_total").inc()
                m.counter("mux.bytes_forwarded_total").inc(len(payload))

    # ------------------------------------------------------------------
    def stats(self) -> dict[tuple[int, int], tuple[int, int]]:
        """(frames, bytes) forwarded per (src id, dst id)."""
        with self._stats_lock:
            return {k: (v[0], v[1]) for k, v in self._stats.items()}

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        if self._waker_w is not None:
            try:
                self._waker_w.send(b"x")
            except OSError:  # pragma: no cover - already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if self._waker_w is not None:
            self._waker_w.close()


# ----------------------------------------------------------------------
# in-process variant
# ----------------------------------------------------------------------
_STOP = object()


class _InprocMuxLink:
    def __init__(self, router: "InprocMuxRouter", my_id: int):
        self._router = router
        self.my_id = my_id
        self._closed = False

    def send(self, dst: int, payload, *, flags: int = 0) -> None:
        if self._closed:
            raise SendFailed(f"mux link {self.my_id} closed")
        self._router._inbox.put((self.my_id, dst, payload, flags))

    def send_many(self, frames, *, flags: int = 0) -> None:
        if self._closed:
            raise SendFailed(f"mux link {self.my_id} closed")
        inbox = self._router._inbox
        for dst, payload in frames:
            inbox.put((self.my_id, dst, payload, flags))

    def close(self) -> None:
        self._closed = True


class InprocMuxRouter:
    """Queue-based hub mirroring :class:`MuxRouter` for inproc fabrics.

    A single router thread blocks on its inbox and hands each frame to the
    destination's ``deliver`` callback — the store-and-forward hop without
    sockets, and without any polling timeout.
    """

    def __init__(self):
        self._inbox: "queue.Queue" = queue.Queue()
        self._deliver: dict[int, object] = {}
        self._stats: dict[tuple[int, int], list[int]] = {}
        self._stats_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self.frames_dropped = 0
        self.frames_fenced = 0
        self._telemetry_sink = None
        self._epoch_fence = None
        self._ckpt_sinks: dict[int, object] = {}
        # ids hard-disconnected by fault injection: symmetric with the TCP
        # hub, where the closed socket kills both directions
        self._dead: set[int] = set()

    def set_telemetry_sink(self, callback) -> None:
        """Same contract as :meth:`MuxRouter.set_telemetry_sink`."""
        self._telemetry_sink = callback

    def set_epoch_fence(self, fence) -> None:
        """Same contract as :meth:`MuxRouter.set_epoch_fence`."""
        self._epoch_fence = fence

    def set_checkpoint_sink(self, dst_id: int, sink) -> None:
        """``sink(payload)`` receives FLAG_CHECKPOINT frames addressed to
        ``dst_id`` instead of its ordinary deliver callback (the TCP hub
        forwards such frames; its links divert at the receiving edge)."""
        self._ckpt_sinks[dst_id] = sink

    def start(self, url: str | None = None) -> str:
        self._thread = threading.Thread(
            target=self._loop, name="mux-router-inproc", daemon=True
        )
        self._thread.start()
        return "inproc://mux-router"

    def attach(self, my_id: int, deliver) -> _InprocMuxLink:
        if self._thread is None:
            raise RuntimeError("router not started")
        # a re-attach is a fresh registration: revive a fault-disconnected
        # id (socket parity — a re-dialed TCP link routes again after its
        # new HELLO)
        self._dead.discard(my_id)
        self._deliver[my_id] = deliver
        return _InprocMuxLink(self, my_id)

    def _loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                return
            src, dst, payload, flags = item
            if self._dead and (src in self._dead or dst in self._dead):
                with self._stats_lock:
                    self.frames_dropped += 1
                continue
            if flags & FLAG_TELEMETRY:
                sink = self._telemetry_sink
                if sink is not None:
                    try:
                        sink(bytes(payload))
                    except Exception:  # noqa: BLE001 - sink must not kill the hub
                        pass
                if obs.enabled():
                    obs.metrics().counter("mux.telemetry_frames_total").inc()
                continue
            if flags & FLAG_EPOCH and self._epoch_fence is not None:
                if not _fence_ok(self._epoch_fence, src, flags, payload):
                    with self._stats_lock:
                        self.frames_fenced += 1
                    if obs.enabled():
                        obs.metrics().counter("mux.frames_fenced_total").inc()
                    continue
            is_ckpt = bool(flags & FLAG_CHECKPOINT)
            deliver = self._ckpt_sinks.get(dst) if is_ckpt else self._deliver.get(dst)
            if deliver is None:
                with self._stats_lock:
                    self.frames_dropped += 1
                if obs.enabled():
                    obs.metrics().counter("mux.frames_dropped_total").inc()
                continue
            nbytes = len(payload)
            if faults.active() is not None:
                copies, verdict = _forward_fault(src, dst, payload)
                if verdict is _KILL_DST:
                    # hard-disconnect: the site stops receiving anything,
                    # and its own frames stop routing (socket-death parity)
                    self._deliver.pop(dst, None)
                    self._dead.add(dst)
                if verdict is not None:
                    with self._stats_lock:
                        self.frames_dropped += 1
                    continue
            else:
                copies = (payload,)
            hop = _hop_span(flags, payload, src, dst)
            delivered = []
            for p in copies:
                if flags & FLAG_TRACED:
                    try:
                        p = strip_trace_context(p)
                    except FrameError:
                        continue  # corrupted-in-flight frame
                if flags & FLAG_EPOCH:
                    try:
                        p = strip_epoch(p)
                    except FrameError:
                        continue
                delivered.append(p)
            for i, p in enumerate(delivered):
                try:
                    if hop is not None and i == 0:
                        with hop:
                            deliver(p)
                    else:
                        deliver(p)
                except Exception:  # noqa: BLE001 - a sink must not kill the hub
                    if not is_ckpt:
                        raise
            with self._stats_lock:
                rec = self._stats.setdefault((src, dst), [0, 0])
                rec[0] += 1
                rec[1] += nbytes
            if obs.enabled():
                m = obs.metrics()
                m.counter("mux.frames_forwarded_total").inc()
                m.counter("mux.bytes_forwarded_total").inc(nbytes)

    def stats(self) -> dict[tuple[int, int], tuple[int, int]]:
        with self._stats_lock:
            return {k: (v[0], v[1]) for k, v in self._stats.items()}

    def stop(self) -> None:
        if self._thread is not None:
            self._inbox.put(_STOP)
            self._thread.join(timeout=2.0)
            self._thread = None
